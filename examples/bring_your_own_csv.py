"""Run TargAD on your own CSV.

The other examples use the built-in synthetic analogs; this one shows the
real-data on-ramp: a labeled CSV goes through schema inference, categorical
encoding, and split assembly, then the standard TargAD workflow. Here the
CSV itself is synthesized (we are offline), but the code path is exactly
what you would run on a real export such as UNSW-NB15's CSV release.

Expected CSV shape: one row per instance, a header, and a label column
whose values are "normal" or an anomaly-family name.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import TargAD, TargADConfig, auprc, auroc
from repro.data.tabular import assemble_split, infer_schema, read_csv, to_matrix


def write_demo_csv(path: Path, rng: np.random.Generator) -> None:
    """Fabricate a plausible transactions CSV with three classes."""
    lines = ["amount,n_tx,hour_spread,payment_type,label"]

    def rows(n, amount_mu, tx_mu, spread_mu, types, label):
        for _ in range(n):
            payment = types[rng.integers(len(types))]
            lines.append(
                f"{rng.normal(amount_mu, amount_mu * 0.2):.2f},"
                f"{max(int(rng.normal(tx_mu, tx_mu * 0.3)), 1)},"
                f"{rng.normal(spread_mu, 1.5):.2f},"
                f"{payment},{label}"
            )

    rows(1600, amount_mu=80, tx_mu=40, spread_mu=8, types=["card", "qr", "cash"], label="normal")
    rows(70, amount_mu=900, tx_mu=15, spread_mu=2, types=["card"], label="fraud")
    rows(140, amount_mu=60, tx_mu=400, spread_mu=1, types=["qr"], label="click_farm")
    path.write_text("\n".join(lines) + "\n")


def main() -> None:
    rng = np.random.default_rng(0)
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "transactions.csv"
        write_demo_csv(csv_path, rng)

        print(f"Reading {csv_path.name}...")
        table = read_csv(csv_path)
        schema = infer_schema(table)
        print(f"  inferred schema: {schema}")

        matrix, categorical_idx, feature_names = to_matrix(table, schema, exclude=["label"])
        family = np.array(table.cells["label"], dtype=object)
        print(f"  {len(matrix)} rows, features {feature_names} "
              f"(categorical: {[feature_names[i] for i in categorical_idx]})")

        print("\nAssembling the semi-supervised split "
              "(fraud = target, click_farm = non-target)...")
        split = assemble_split(
            matrix, family,
            target_families=["fraud"],
            n_labeled=25,
            contamination=0.05,
            categorical_columns=categorical_idx,
            name="transactions-csv",
            random_state=0,
        )
        print(f"  {split.summary()}")

        print("\nTraining TargAD...")
        model = TargAD(TargADConfig(random_state=0))
        model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
        scores = model.decision_function(split.X_test)
        print(f"  test AUPRC={auprc(split.y_test_binary, scores):.3f} "
              f"AUROC={auroc(split.y_test_binary, scores):.3f}")

        tri = model.predict_triclass(split.X_test, strategy="ed")
        for code, label in ((1, "target (fraud)"), (2, "non-target (click_farm)")):
            true = split.test_kind == code
            if true.any():
                recall = (tri[true] == code).mean()
                print(f"  tri-class recall for {label}: {recall:.0%}")


if __name__ == "__main__":
    main()
