"""Operate TargAD as a continuously-running detection service.

The paper's scenarios (payment platform, enterprise SOC) run around the
clock. This example shows the serving layer:

1. fit TargAD, save it, reload it (deployment artifact round-trip),
2. calibrate an operating threshold on the validation split under a
   recall guarantee ("catch 90% of high-risk anomalies"),
3. process live batches — alerts ranked for the analyst queue, non-target
   anomalies deferred, covariate drift monitored,
4. demonstrate the drift alarm when the traffic distribution shifts.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import TargAD, TargADConfig, load_dataset
from repro.core import load_model, save_model
from repro.data.schema import KIND_TARGET
from repro.serving import ScoringPipeline


def main() -> None:
    print("Training TargAD on the UNSW-NB15 analog...")
    split = load_dataset("unsw_nb15", random_state=0, scale=0.05)
    model = TargAD(TargADConfig(k=4, random_state=0))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)

    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "targad.npz"
        save_model(model, artifact)
        print(f"Saved deployment artifact ({artifact.stat().st_size // 1024} KiB); reloading...")
        model = load_model(artifact)

    print("\nCalibrating: recall policy (catch >= 90% of target anomalies "
          "on validation)...")
    pipeline = ScoringPipeline(model, policy="recall", target_recall=0.9)
    pipeline.calibrate(split.X_val, split.y_val_binary,
                       X_reference=split.X_unlabeled)
    print(f"  operating threshold: {pipeline.threshold_:.3f}")

    print("\nProcessing live batches...")
    rng = np.random.default_rng(7)
    batch_size = 400
    order = rng.permutation(len(split.X_test))
    caught, total_targets = 0, 0
    for batch_no in range(3):
        idx = order[batch_no * batch_size : (batch_no + 1) * batch_size]
        batch = pipeline.process(split.X_test[idx])
        true_kinds = split.test_kind[idx]
        true_targets = int((true_kinds == KIND_TARGET).sum())
        hit = int((true_kinds[batch.alerts] == KIND_TARGET).sum())
        caught += hit
        total_targets += true_targets
        print(f"  batch {batch_no + 1}: {batch.summary()}")
        print(f"            {hit}/{true_targets} true high-risk in the alert queue")
    if total_targets:
        print(f"  running catch rate: {caught / total_targets:.0%}")

    print("\nSimulating traffic drift (feature block shifts upward)...")
    drifted_batch = split.X_test[order[:batch_size]].copy()
    drifted_batch[:, :20] = np.clip(drifted_batch[:, :20] + 0.5, 0.0, 1.5)
    result = pipeline.process(drifted_batch)
    print(f"  {result.drift.summary()}")
    print("  -> retraining/triage should be triggered before trusting these scores.")


if __name__ == "__main__":
    main()
