"""Payment-platform fraud triage — the paper's motivating SQB scenario.

An integrated payment platform sees millions of merchant-day records.
High-risk anomalies (fraud, gambling recharge) must be caught immediately;
low-risk anomalies (click farming, cash out) are 6-20x more frequent but
barely worth an analyst's time. A conventional detector floods the review
queue with low-risk cases; TargAD ranks the high-risk ones on top.

This example:

1. builds the synthetic SQB-like split,
2. trains TargAD and a conventional semi-supervised detector (DevNet),
3. compares the *review queue*: how many high-risk merchants an analyst
   finds in the top-N of each ranking (precision@N),
4. uses TargAD's tri-class mode to route instances into three buckets:
   immediate action / deferred review / no action.
"""

from __future__ import annotations

import numpy as np

from repro import TargAD, TargADConfig, auprc, load_dataset
from repro.baselines import DevNet
from repro.data.schema import KIND_NONTARGET, KIND_NORMAL, KIND_TARGET
from repro.metrics import precision_at_k


def main() -> None:
    print("Building the synthetic SQB-like split (proprietary data analog, "
          "see DESIGN.md)...")
    split = load_dataset("sqb", random_state=0, scale=0.05)
    stats = split.summary()
    print(f"  test: {stats['testing']['normal']} merchants treated as normal, "
          f"{stats['testing']['target']} high-risk, "
          f"{stats['testing']['non-target']} low-risk anomalies")

    print("\nTraining DevNet (conventional 'detect every anomaly' scorer)...")
    devnet = DevNet(random_state=0)
    devnet.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    devnet_scores = devnet.decision_function(split.X_test)

    print("Training TargAD (prioritized: high-risk anomalies only)...")
    model = TargAD(TargADConfig(k=4, random_state=0))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    targad_scores = model.decision_function(split.X_test)

    y = split.y_test_binary
    print(f"\nAUPRC for high-risk detection: "
          f"TargAD={auprc(y, targad_scores):.3f}  DevNet={auprc(y, devnet_scores):.3f}")

    print("\nAnalyst review queue (precision@N = fraction of the top-N that "
          "is actually high-risk):")
    print(f"  {'N':>4s}  {'TargAD':>7s}  {'DevNet':>7s}")
    for n in (20, 50, 100):
        print(f"  {n:4d}  {precision_at_k(y, targad_scores, n):7.3f}"
              f"  {precision_at_k(y, devnet_scores, n):7.3f}")

    print("\nTri-class routing with TargAD (Section III-C, ED strategy):")
    routed = model.predict_triclass(split.X_test, strategy="ed")
    buckets = {
        KIND_TARGET: "immediate action (predicted high-risk)",
        KIND_NONTARGET: "deferred review (predicted low-risk)",
        KIND_NORMAL: "no action (predicted normal)",
    }
    for code, label in buckets.items():
        mask = routed == code
        n_true_target = int((split.test_kind[mask] == KIND_TARGET).sum())
        print(f"  {label:42s}: {int(mask.sum()):6d} merchants "
              f"({n_true_target} true high-risk inside)")

    caught = (routed[split.test_kind == KIND_TARGET] == KIND_TARGET).mean()
    print(f"\nHigh-risk merchants routed to immediate action: {caught:.1%}")


if __name__ == "__main__":
    main()
