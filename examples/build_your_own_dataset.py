"""Define a custom population and run the full TargAD workflow on it.

Shows the lower-level API a downstream user needs to apply TargAD to their
own domain: declare normal behaviour groups and anomaly families with the
generator DSL, assemble a semi-supervised split, fit, and inspect every
intermediate artifact (clusters, reconstruction errors, candidates,
weights, tri-class output).

The scenario: an IoT fleet with three device profiles; firmware-tampering
events are the high-risk target; battery-drain misbehaviour is a known
low-risk nuisance.
"""

from __future__ import annotations

import numpy as np

from repro import TargAD, TargADConfig, auprc
from repro.data.splits import TableISpec, build_split
from repro.data.synthetic import (
    AnomalyFamilySpec,
    NormalGroupSpec,
    SyntheticTabularGenerator,
)


def main() -> None:
    print("Declaring a custom IoT-fleet population...")
    generator = SyntheticTabularGenerator(
        n_numeric=24,
        categorical_cardinalities=(4,),  # device hardware revision
        normal_groups=[
            NormalGroupSpec("sensor_node", weight=0.5, signature_size=6),
            NormalGroupSpec("gateway", weight=0.3, signature_size=8),
            NormalGroupSpec("camera", weight=0.2, signature_size=7),
        ],
        anomaly_families=[
            AnomalyFamilySpec("firmware_tamper", is_target=True,
                              n_affected=6, shift=5.0, shared_shift=3.0),
            AnomalyFamilySpec("battery_drain", is_target=False,
                              n_affected=5, shift=4.0, shared_shift=4.5),
        ],
        shared_anomaly_dims=4,
        random_state=7,
    )

    spec = TableISpec(
        name="iot-fleet",
        n_labeled=30,
        n_unlabeled=3000,
        val_counts=(500, 25, 40),
        test_counts=(1000, 50, 80),
        contamination=0.05,
    )
    split = build_split(generator, spec, scale=1.0, random_state=7)
    print(f"  split: {split.summary()}")

    print("\nFitting TargAD with elbow-selected k...")
    model = TargAD(TargADConfig(random_state=7))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    selection = model.selection_
    print(f"  elbow chose k={model.k_} clusters "
          f"(true behaviour-group count: 3)")
    print(f"  cluster sizes: {np.bincount(selection.cluster_labels)}")

    cand_kinds = split.unlabeled_kind[selection.candidate_indices]
    print(f"  candidates: {selection.candidate_mask.sum()} "
          f"({(cand_kinds > 0).mean():.0%} true anomalies — vs "
          f"{(split.unlabeled_kind > 0).mean():.0%} base rate)")

    weights = model.weight_history[-1]
    for kind, name in ((0, "leaked normals"), (1, "hidden targets"), (2, "non-targets")):
        mask = cand_kinds == kind
        if mask.any():
            print(f"  final mean OE weight on {name}: {weights[mask].mean():.2f}")

    scores = model.decision_function(split.X_test)
    print(f"\nTest AUPRC for firmware tampering: "
          f"{auprc(split.y_test_binary, scores):.3f}")

    tri = model.predict_triclass(split.X_test, strategy="ed")
    agreement = (tri == split.test_kind).mean()
    print(f"Tri-class agreement with ground truth: {agreement:.1%}")


if __name__ == "__main__":
    main()
