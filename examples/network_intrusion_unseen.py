"""Network intrusion with *unseen* low-risk attack families (Fig. 4(a)).

A SOC team cares about Generic/Backdoor/DoS attacks. Their training data
only ever contained Reconnaissance as a low-risk family — but at test time
Fuzzers, Analysis, and Exploits traffic appears too. This example shows
TargAD's robustness to those novel non-target families compared to a
conventional semi-supervised detector.

The mechanism: TargAD's OE pseudo-labels calibrate *any* instance that
resembles the mined non-target candidates toward a uniform predictive
distribution, so novel anomaly families that are neither normal nor
target-like do not become false positives.
"""

from __future__ import annotations

import numpy as np

from repro import TargAD, TargADConfig, auprc, load_dataset
from repro.baselines import DeepSAD
from repro.data.schema import KIND_NONTARGET

KNOWN_NONTARGET = ["Reconnaissance"]  # only this family is in training
SEED = 0


def fit_and_score(split):
    targad = TargAD(TargADConfig(k=4, random_state=SEED))
    targad.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    deepsad = DeepSAD(random_state=SEED)
    deepsad.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    return (
        targad.decision_function(split.X_test),
        deepsad.decision_function(split.X_test),
    )


def main() -> None:
    print("Scenario A — all four low-risk families seen during training:")
    split_all = load_dataset("unsw_nb15", random_state=SEED, scale=0.05)
    targad_all, deepsad_all = fit_and_score(split_all)
    print(f"  TargAD AUPRC={auprc(split_all.y_test_binary, targad_all):.3f}  "
          f"DeepSAD AUPRC={auprc(split_all.y_test_binary, deepsad_all):.3f}")

    print("\nScenario B — training only saw Reconnaissance; Fuzzers/Analysis/"
          "Exploits are NOVEL at test time:")
    split_novel = load_dataset(
        "unsw_nb15", random_state=SEED, scale=0.05,
        train_nontarget_families=KNOWN_NONTARGET,
    )
    targad_novel, deepsad_novel = fit_and_score(split_novel)
    print(f"  TargAD AUPRC={auprc(split_novel.y_test_binary, targad_novel):.3f}  "
          f"DeepSAD AUPRC={auprc(split_novel.y_test_binary, deepsad_novel):.3f}")

    print("\nFalse-positive pressure from novel families (mean anomaly score "
          "rank of each non-target family, lower = fewer false alarms):")
    scores = {"TargAD": targad_novel, "DeepSAD": deepsad_novel}
    for model_name, s in scores.items():
        ranks = s.argsort().argsort() / (len(s) - 1)  # normalized rank in [0, 1]
        print(f"  {model_name}:")
        for family in ["Reconnaissance", "Fuzzers", "Analysis", "Exploits"]:
            mask = (split_novel.test_family == family) & (
                split_novel.test_kind == KIND_NONTARGET
            )
            tag = "seen " if family in KNOWN_NONTARGET else "NOVEL"
            print(f"    {family:15s} [{tag}]  mean rank {ranks[mask].mean():.3f}")

    drop_targad = auprc(split_all.y_test_binary, targad_all) - auprc(
        split_novel.y_test_binary, targad_novel
    )
    drop_deepsad = auprc(split_all.y_test_binary, deepsad_all) - auprc(
        split_novel.y_test_binary, deepsad_novel
    )
    print(f"\nAUPRC drop when 3 families become novel: "
          f"TargAD {drop_targad:+.3f}, DeepSAD {drop_deepsad:+.3f} "
          "(paper Fig. 4(a): TargAD stays ~flat)")


if __name__ == "__main__":
    main()
