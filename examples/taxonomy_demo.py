"""Anomaly-taxonomy injectors: cross-family robustness in three acts.

Act 1 — injectors as population transforms: take normal rows, turn them
into anomalies of a named mechanism (ADBench's local/global/dependency/
cluster modes plus TABARD-style semantic violations).

Act 2 — the held-out configuration: attach a taxonomy family to a
dataset but keep it out of training, so it first appears at test time —
the paper's unseen-non-target setting generalized to injector families.

Act 3 — the sweep harness: one command produces the per-family
robustness table for any detector lineup (`repro taxonomy` is the CLI
twin of this).
"""

from __future__ import annotations

import numpy as np

from repro.data import get_injector, list_injectors, load_dataset
from repro.data.schema import KIND_NONTARGET
from repro.experiments import taxonomy_section, taxonomy_sweep

SEED = 0


def act1_injectors() -> None:
    print("Act 1 — the injector catalogue:", ", ".join(list_injectors()))
    rng = np.random.default_rng(SEED)
    latent = rng.normal(size=(400, 2))
    X_normal = latent @ rng.normal(size=(2, 8)) + 10.0

    for name in ("global", "temporal"):
        injector = get_injector(name).fit(X_normal, np.random.default_rng(SEED))
        X_anom = injector.transform(X_normal[:5], np.random.default_rng(SEED))
        drift = np.abs(X_anom - X_normal[:5]).mean()
        print(f"  {name:>10}: mean |drift| per cell = {drift:.2f} "
              f"(params {injector.params})")


def act2_unseen_family() -> None:
    print("\nAct 2 — 'tax:cluster' held out of training, present at test:")
    split = load_dataset(
        "kddcup99", random_state=SEED,
        train_nontarget_families=["Probe"],      # the only trained non-target
        taxonomy_families=["tax:cluster"],        # attached, but unseen
    )
    trained = sorted(
        {str(f) for f in
         split.unlabeled_family[split.unlabeled_kind == KIND_NONTARGET]}
    )
    at_test = sorted(
        {str(f) for f in split.test_family[split.test_kind == KIND_NONTARGET]}
    )
    print(f"  non-target families in training pool: {trained}")
    print(f"  non-target families at test time:     {at_test}")


def act3_sweep() -> None:
    print("\nAct 3 — the cross-family sweep (seen vs unseen cells):\n")
    result = taxonomy_sweep(
        "kddcup99",
        detectors=["iForest", "DevNet", "TargAD"],
        families=["local"],
        seeds=(SEED,),
        include_cross_target=False,
    )
    print(taxonomy_section(result))
    print("Full grid + all baselines: `repro taxonomy --grid full`")


def main() -> None:
    act1_injectors()
    act2_unseen_family()
    act3_sweep()


if __name__ == "__main__":
    main()
