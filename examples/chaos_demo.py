"""Chaos-test a TargAD serving pipeline with deterministic fault injection.

Production scorers fail in mundane ways: a bad model push starts raising,
a feature join fills a batch with NaN, upstream schema drift ships short
rows. This example drives the resilience layer through all of it:

1. fit TargAD and wrap it in a ``FaultyModel`` replaying a seeded
   ``FaultPlan`` (two raises, then one NaN-corrupted scoring call),
2. serve batches through a ``ScoringPipeline`` guarded by a
   ``CircuitBreaker`` on a simulated clock — the pipeline never raises;
   faulted batches are scored by the reconstruction-error fallback and
   marked DEGRADED,
3. watch the breaker trip, probe in half-open after the cooldown, and
   recover to the primary scorer,
4. feed a batch with corrupted rows and see them quarantined instead of
   crashing the batch.
"""

from __future__ import annotations

import numpy as np

from repro import TargAD, TargADConfig, load_dataset
from repro.obs import TelemetryRegistry
from repro.resilience import (
    CircuitBreaker,
    FaultPlan,
    FaultyModel,
    ManualClock,
    corrupt_rows,
)
from repro.serving import ScoringPipeline


def main() -> None:
    print("Training TargAD on the KDDCUP99 analog...")
    split = load_dataset("kddcup99", random_state=0, scale=0.05)
    model = TargAD(TargADConfig(k=3, random_state=0))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)

    plan = FaultPlan(raise_on=(1, 2), nan_fraction=0.3, nan_on=(4,), seed=7)
    print(f"\nFault plan: {plan.describe()}")

    registry = TelemetryRegistry()
    clock = ManualClock()
    breaker = CircuitBreaker(failure_threshold=2, cooldown=30.0,
                             clock=clock, telemetry=registry)
    pipeline = ScoringPipeline(model, policy="budget", review_budget=25,
                               circuit_breaker=breaker, telemetry=registry,
                               monitor_drift=False)
    pipeline.calibrate(split.X_val)
    # Swap in the chaos wrapper only after calibration so the plan's call
    # indices count serving batches.
    pipeline.model = FaultyModel(model, plan, sleep=lambda s: None,
                                 telemetry=registry)

    print("\nServing batches under injected faults "
          "(simulated clock, 20s between batches):")
    rng = np.random.default_rng(0)
    chunks = np.array_split(np.arange(len(split.X_test)), 6)
    for i, chunk in enumerate(c for c in chunks if len(c)):
        X = split.X_test[chunk]
        if i == 5:
            print("  (corrupting 10% of the final batch's rows)")
            X = corrupt_rows(X, 0.1, rng)
        batch = pipeline.process(X)
        print(f"  batch {i} [breaker {breaker.state:>9s}] {batch.summary()}")
        clock.advance(20.0)

    trips = registry.counters.get("resilience.breaker.trips", 0)
    recovers = registry.counters.get("resilience.breaker.recovers", 0)
    print(f"\nBreaker record: {trips:g} trip(s), {recovers:g} recovery "
          f"via half-open probe; final state: {breaker.state}")
    print("Telemetry transitions:")
    for event in registry.events:
        if event.name in ("resilience.breaker.trip", "resilience.breaker.recover"):
            print(f"  {event.format_line()}")
    print("\nEvery batch was answered: faults degraded service, "
          "never denied it.")


if __name__ == "__main__":
    main()
