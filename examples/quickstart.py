"""Quickstart: train TargAD on a synthetic UNSW-NB15-like split.

Demonstrates the end-to-end public API:

1. load a preprocessed semi-supervised split,
2. fit TargAD (candidate selection + classifier, Algorithm 1),
3. rank test instances by the target-anomaly score (Eq. 9),
4. report AUPRC / AUROC against the target-anomaly ground truth.

Run with ``python examples/quickstart.py``. Use ``REPRO_SCALE`` to change
dataset size (default here is a small, seconds-fast slice).
"""

from __future__ import annotations

import numpy as np

from repro import TargAD, TargADConfig, auprc, auroc, load_dataset


def main() -> None:
    print("Loading a synthetic UNSW-NB15-like split (see DESIGN.md)...")
    split = load_dataset("unsw_nb15", random_state=0, scale=0.05)
    stats = split.summary()
    print(f"  {stats['unlabeled']} unlabeled training rows, "
          f"{stats['labeled_target']} labeled target anomalies, "
          f"D={stats['D']} features, m={stats['m']} target classes")

    print("\nTraining TargAD (k-means -> per-cluster SAD autoencoders -> "
          "OE-regularized classifier)...")
    model = TargAD(TargADConfig(k=4, random_state=0))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    selection = model.selection_
    print(f"  candidate selection: {selection.candidate_mask.sum()} "
          f"non-target anomaly candidates (top {model.config.alpha:.0%} "
          f"by reconstruction error)")

    print("\nScoring the test split...")
    scores = model.decision_function(split.X_test)
    print(f"  AUPRC = {auprc(split.y_test_binary, scores):.3f}")
    print(f"  AUROC = {auroc(split.y_test_binary, scores):.3f}")

    # Show the score separation the model achieves per instance kind.
    for kind, name in ((0, "normal"), (1, "target anomaly"), (2, "non-target anomaly")):
        mask = split.test_kind == kind
        print(f"  mean S_tar for {name:19s}: {scores[mask].mean():.3f}")

    top10 = np.argsort(-scores)[:10]
    print("\nTop-10 ranked test instances (family / true kind):")
    for rank, idx in enumerate(top10, 1):
        kind_name = {0: "normal", 1: "TARGET", 2: "non-target"}[int(split.test_kind[idx])]
        print(f"  {rank:2d}. score={scores[idx]:.3f}  {split.test_family[idx]:16s} [{kind_name}]")


if __name__ == "__main__":
    main()
