"""Drift-triggered continual learning with a zero-downtime hot-swap.

A deployed detector degrades when the traffic distribution moves. This
example closes the loop end to end:

1. fit TargAD and calibrate a ``ScoringPipeline`` with the drift monitor
   armed,
2. wrap it in a ``LifecycleManager``: every served batch feeds the drift
   debouncer; a confirmed event triggers assemble → budgeted label query
   → warm-started incremental refit → AUPRC validation gate → atomic
   model hot-swap (the old generation serves until the instant the new
   one is ready — no dropped batches, breaker closed throughout),
3. replay warm traffic, then covariate-shifted traffic, and watch the
   live model's AUPRC on the shifted regime degrade and recover,
4. print the recovery report: batches to detection, detection→swap
   latency, label spend, and the generation history.
"""

from __future__ import annotations

import numpy as np

from repro import TargAD, TargADConfig, load_dataset
from repro.data.schema import KIND_TARGET
from repro.lifecycle import (
    DriftPolicy,
    LifecycleManager,
    drift_replay,
    make_split_oracle,
    shift_regime,
)
from repro.obs import TelemetryRegistry
from repro.serving import ScoringPipeline


def main() -> None:
    print("Training TargAD on the KDDCUP99 analog...")
    split = load_dataset("kddcup99", random_state=0, scale=0.05)
    model = TargAD(TargADConfig(k=3, random_state=0))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)

    registry = TelemetryRegistry()
    pipeline = ScoringPipeline(model, policy="f1", telemetry=registry,
                               drift_threshold=0.3)
    pipeline.calibrate(split.X_val, split.y_val_binary,
                       X_reference=split.X_unlabeled)

    # The "new regime": a seeded covariate shift of the test split. Half
    # becomes live traffic, half a held-out eval slice; the labeling
    # oracle answers from the shifted traffic's ground truth.
    X_shifted = shift_regime(split.X_test, shift=4.0, seed=0)
    half = len(X_shifted) // 2
    y_binary = np.where(split.test_kind == KIND_TARGET, 1, 0)
    oracle = make_split_oracle(X_shifted[:half], y_binary[:half])

    manager = LifecycleManager(
        pipeline, split.X_unlabeled, split.X_labeled, split.y_labeled,
        split.X_val, split.y_val_binary, oracle=oracle,
        policy=DriftPolicy(confirm_checks=2, cooldown_batches=10,
                           label_budget=20, refit_epochs=3,
                           min_auprc_ratio=0.8),
        telemetry=registry, seed=0,
    )

    print("\nReplaying warm traffic, then the shifted regime:")
    result = drift_replay(
        manager, split.X_val, X_shifted[:half],
        X_shifted[half:], y_binary[half:],
        batch_rows=64, progress=print,
    )

    d = result.to_dict()
    print("\nRecovery report:")
    print(f"  batches to detection: {d['batches_to_detection']}, "
          f"detection->swap {d['detection_to_swap_seconds']:.2f}s")
    print(f"  AUPRC on the shifted regime: {d['auprc_before_drift']:.3f} "
          f"(old model) -> {d['auprc_final']:.3f} (after swap)")
    print(f"  swaps: {d['swaps']}, rollbacks: {d['rollbacks']}, "
          f"recovered: {d['recovered']}")
    report = manager.report()
    print(f"  labels queried/found: {report['labels_queried']}"
          f"/{report['labels_found']}")
    print(f"  lifecycle generation: {report['generation']}")
    print("\nEvery batch was answered by a live model: drift degraded "
          "accuracy, never availability.")


if __name__ == "__main__":
    main()
