"""End-to-end integration tests across subsystem boundaries."""

import numpy as np
import pytest

import repro
from repro import TargAD, TargADConfig, auprc, auroc, load_dataset
from repro.eval import evaluate_detector, make_detector
from repro.eval.protocol import fit_on_split


class TestPublicAPI:
    def test_top_level_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestFullPipeline:
    @pytest.fixture(scope="class")
    def run(self):
        split = load_dataset("kddcup99", random_state=0, scale=0.03)
        model = TargAD(TargADConfig(k=3, random_state=0))
        model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
        return split, model

    def test_detection_quality(self, run):
        split, model = run
        scores = model.decision_function(split.X_test)
        assert auprc(split.y_test_binary, scores) > 0.6
        assert auroc(split.y_test_binary, scores) > 0.9

    def test_validation_and_test_consistent(self, run):
        split, model = run
        val_auprc = auprc(split.y_val_binary, model.decision_function(split.X_val))
        test_auprc = auprc(split.y_test_binary, model.decision_function(split.X_test))
        assert abs(val_auprc - test_auprc) < 0.35

    def test_triclass_pipeline(self, run):
        split, model = run
        tri = model.predict_triclass(split.X_test, strategy="ed")
        # Most normals kept out of the anomaly buckets.
        normals = split.test_kind == 0
        assert (tri[normals] == 0).mean() > 0.8


class TestProtocolIntegration:
    def test_registry_detector_on_real_split(self):
        split = load_dataset("nsl_kdd", random_state=1, scale=0.02)
        det = make_detector("DevNet", random_state=1, dataset="nsl_kdd", epochs=10)
        fit_on_split(det, split)
        scores = det.decision_function(split.X_test)
        assert auroc(split.y_test_binary, scores) > 0.7

    def test_evaluate_detector_seed_independence(self):
        r1 = evaluate_detector("iForest", "kddcup99", seeds=(0,), scale=0.01)
        r2 = evaluate_detector("iForest", "kddcup99", seeds=(0,), scale=0.01)
        assert r1.auprc_values == r2.auprc_values

    def test_split_reload_is_identical(self):
        a = load_dataset("unsw_nb15", random_state=5, scale=0.02)
        b = load_dataset("unsw_nb15", random_state=5, scale=0.02)
        np.testing.assert_array_equal(a.X_test, b.X_test)
        np.testing.assert_array_equal(a.unlabeled_kind, b.unlabeled_kind)


class TestCrossDatasetSanity:
    @pytest.mark.parametrize("name", ["unsw_nb15", "kddcup99", "nsl_kdd", "sqb"])
    def test_targad_beats_random_on_each_dataset(self, name):
        split = load_dataset(name, random_state=0, scale=0.03)
        model = TargAD(TargADConfig(random_state=0))
        model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
        scores = model.decision_function(split.X_test)
        prevalence = split.y_test_binary.mean()
        assert auprc(split.y_test_binary, scores) > 3 * prevalence
        assert auroc(split.y_test_binary, scores) > 0.75
