"""Sub-components of the baselines: LeSiNN scores, LSH filtering."""

import numpy as np
import pytest

from repro.baselines.pumad import lsh_reliable_normals
from repro.baselines.repen import lesinn_scores


class TestLeSiNN:
    def test_outliers_score_higher(self, blobs):
        inliers, outliers = blobs
        rng = np.random.default_rng(0)
        s_in = lesinn_scores(inliers, inliers, rng=rng)
        s_out = lesinn_scores(outliers, inliers, rng=np.random.default_rng(0))
        assert s_out.mean() > 2 * s_in.mean()

    def test_scores_nonnegative(self, blobs):
        inliers, _ = blobs
        scores = lesinn_scores(inliers[:50], inliers, rng=np.random.default_rng(1))
        assert np.all(scores >= 0)

    def test_subsample_capped_at_reference_size(self):
        X = np.random.default_rng(0).standard_normal((10, 3))
        scores = lesinn_scores(X, X[:4], subsample=100, rng=np.random.default_rng(0))
        assert scores.shape == (10,)

    def test_deterministic_with_seed(self, blobs):
        inliers, _ = blobs
        a = lesinn_scores(inliers[:30], inliers, rng=np.random.default_rng(3))
        b = lesinn_scores(inliers[:30], inliers, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)


class TestLSHFilter:
    def test_far_normals_are_reliable(self, blobs):
        inliers, outliers = blobs
        reliable = lsh_reliable_normals(inliers, outliers, rng=np.random.default_rng(0))
        # Most inliers should never collide with the far-away anomalies.
        assert reliable.mean() > 0.6

    def test_anomalies_themselves_are_unreliable(self, blobs):
        inliers, outliers = blobs
        X_unlabeled = np.vstack([inliers, outliers])
        reliable = lsh_reliable_normals(X_unlabeled, outliers, rng=np.random.default_rng(0))
        anomaly_part = reliable[len(inliers):]
        # An anomaly always collides with itself in every table.
        assert anomaly_part.mean() < 0.2

    def test_returns_boolean_mask(self, blobs):
        inliers, outliers = blobs
        reliable = lsh_reliable_normals(inliers, outliers, rng=np.random.default_rng(1))
        assert reliable.dtype == bool
        assert reliable.shape == (len(inliers),)

    def test_more_tables_filter_more(self, blobs):
        inliers, outliers = blobs
        rate_few = lsh_reliable_normals(
            inliers, outliers, n_tables=1, rng=np.random.default_rng(2)
        ).mean()
        rate_many = lsh_reliable_normals(
            inliers, outliers, n_tables=16, rng=np.random.default_rng(2)
        ).mean()
        assert rate_many <= rate_few + 1e-9
