"""Extra unsupervised detectors (LOF, ECOD, DeepSVDD, kNN).

These are not in the paper's Table II but are cited in its related work;
they share the same detector contract.
"""

import numpy as np
import pytest

from repro.baselines import ECOD, DeepSVDD, KNNDetector, LocalOutlierFactor
from repro.metrics import auroc

EXTRA = {
    "LOF": lambda seed: LocalOutlierFactor(random_state=seed),
    "ECOD": lambda seed: ECOD(random_state=seed),
    "DeepSVDD": lambda seed: DeepSVDD(random_state=seed, pretrain_epochs=5, epochs=10),
    "kNN": lambda seed: KNNDetector(random_state=seed),
}


@pytest.fixture(scope="module")
def workload():
    gen = np.random.default_rng(42)
    blob1 = gen.normal(0.0, 0.5, size=(200, 6)) + np.array([2, 2, 0, 0, 0, 0])
    blob2 = gen.normal(0.0, 0.5, size=(200, 6)) + np.array([-2, -2, 0, 0, 0, 0])
    inliers = np.vstack([blob1, blob2])
    outliers = gen.normal(0.0, 0.5, size=(30, 6)) + np.array([0, 0, 6, 6, 0, 0])
    X_test = np.vstack([inliers[:100], outliers])
    y_test = np.array([0] * 100 + [1] * 30)
    return inliers, X_test, y_test


@pytest.mark.parametrize("name", list(EXTRA))
class TestExtraDetectorContract:
    def test_detects_planted_outliers(self, name, workload):
        inliers, X_test, y_test = workload
        det = EXTRA[name](0).fit(inliers)
        assert auroc(y_test, det.decision_function(X_test)) > 0.9

    def test_scores_finite(self, name, workload):
        inliers, X_test, _ = workload
        det = EXTRA[name](0).fit(inliers)
        assert np.all(np.isfinite(det.decision_function(X_test)))

    def test_unsupervised_flag(self, name, workload):
        det = EXTRA[name](0)
        assert det.supervision == "unsupervised"

    def test_deterministic(self, name, workload):
        inliers, X_test, _ = workload
        s1 = EXTRA[name](3).fit(inliers).decision_function(X_test)
        s2 = EXTRA[name](3).fit(inliers).decision_function(X_test)
        np.testing.assert_allclose(s1, s2)


class TestLOFSpecifics:
    def test_inliers_score_near_one(self, workload):
        inliers, _, _ = workload
        det = LocalOutlierFactor(random_state=0).fit(inliers)
        scores = det.decision_function(inliers[:50])
        assert np.median(scores) == pytest.approx(1.0, abs=0.25)

    def test_subsamples_large_reference(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((5000, 4))
        det = LocalOutlierFactor(max_train=500, random_state=0).fit(X)
        assert len(det._X_ref) == 500

    def test_invalid_neighbors(self):
        with pytest.raises(ValueError):
            LocalOutlierFactor(n_neighbors=0)


class TestECODSpecifics:
    def test_extreme_value_scores_high(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((500, 3))
        det = ECOD().fit(X)
        center = det.decision_function(np.zeros((1, 3)))
        extreme = det.decision_function(np.full((1, 3), 10.0))
        assert extreme[0] > center[0] + 1.0

    def test_symmetric_tails(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((2000, 1))
        det = ECOD().fit(X)
        low = det.decision_function(np.array([[-4.0]]))[0]
        high = det.decision_function(np.array([[4.0]]))[0]
        assert low == pytest.approx(high, rel=0.2)


class TestKNNSpecifics:
    def test_max_aggregation_ge_mean(self, workload):
        inliers, X_test, _ = workload
        s_mean = KNNDetector(aggregation="mean", random_state=0).fit(inliers).decision_function(X_test)
        s_max = KNNDetector(aggregation="max", random_state=0).fit(inliers).decision_function(X_test)
        assert np.all(s_max >= s_mean - 1e-12)

    def test_invalid_aggregation(self):
        with pytest.raises(ValueError):
            KNNDetector(aggregation="median")


class TestDeepSVDDSpecifics:
    def test_ignores_labels(self, workload):
        inliers, X_test, _ = workload
        labels = np.zeros(10, dtype=np.int64)
        fake_anoms = inliers[:10] + 5.0
        a = DeepSVDD(random_state=0, pretrain_epochs=3, epochs=5).fit(inliers)
        b = DeepSVDD(random_state=0, pretrain_epochs=3, epochs=5).fit(
            inliers, fake_anoms, labels
        )
        np.testing.assert_allclose(a.decision_function(X_test), b.decision_function(X_test))
