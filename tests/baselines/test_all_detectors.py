"""Cross-cutting contract tests for every baseline detector.

Each detector must: (1) fit on the unified interface, (2) return finite
per-row scores, (3) separate planted anomalies from inliers on an easy
synthetic workload, and (4) be deterministic under a fixed seed.
"""

import numpy as np
import pytest

from repro.baselines import (
    ADOA,
    DPLAN,
    DeepSAD,
    DevNet,
    DualMGAN,
    FEAWAD,
    IsolationForest,
    PIAWAL,
    PReNet,
    PUMAD,
    REPEN,
)
from repro.metrics import auroc

FAST_KWARGS = {
    "iForest": dict(n_estimators=25),
    "REPEN": dict(epochs=5, n_triplets=300),
    "ADOA": dict(epochs=8),
    "FEAWAD": dict(ae_epochs=10, epochs=10),
    "PUMAD": dict(epochs=8, n_triplets=300),
    "DevNet": dict(epochs=10),
    "DeepSAD": dict(pretrain_epochs=5, epochs=10),
    "DPLAN": dict(n_steps=800),
    "PIA-WAL": dict(gan_epochs=4, epochs=10),
    "Dual-MGAN": dict(aug_epochs=10, det_epochs=10),
    "PReNet": dict(epochs=10, pairs_per_epoch=600),
}

DETECTOR_CLASSES = {
    "iForest": IsolationForest,
    "REPEN": REPEN,
    "ADOA": ADOA,
    "FEAWAD": FEAWAD,
    "PUMAD": PUMAD,
    "DevNet": DevNet,
    "DeepSAD": DeepSAD,
    "DPLAN": DPLAN,
    "PIA-WAL": PIAWAL,
    "Dual-MGAN": DualMGAN,
    "PReNet": PReNet,
}

SEMI_SUPERVISED = [n for n in DETECTOR_CLASSES if n not in ("iForest", "REPEN")]


def make_detector(name, seed=0):
    return DETECTOR_CLASSES[name](random_state=seed, **FAST_KWARGS[name])


@pytest.fixture(scope="module")
def workload(blobs_module):
    inliers, outliers = blobs_module
    rng = np.random.default_rng(0)
    # Unlabeled pool: inliers plus a pinch of hidden outliers.
    X_unlabeled = np.vstack([inliers, outliers[:5]])
    X_labeled = outliers[5:12]
    y_labeled = np.zeros(len(X_labeled), dtype=np.int64)
    X_test = np.vstack([inliers[:100], outliers[12:]])
    y_test = np.array([0] * 100 + [1] * len(outliers[12:]))
    return X_unlabeled, X_labeled, y_labeled, X_test, y_test


@pytest.fixture(scope="module")
def blobs_module():
    gen = np.random.default_rng(42)
    blob1 = gen.normal(0.0, 0.5, size=(200, 6)) + np.array([2, 2, 0, 0, 0, 0])
    blob2 = gen.normal(0.0, 0.5, size=(200, 6)) + np.array([-2, -2, 0, 0, 0, 0])
    inliers = np.vstack([blob1, blob2])
    outliers = gen.normal(0.0, 0.5, size=(40, 6)) + np.array([0, 0, 6, 6, 0, 0])
    return inliers, outliers


@pytest.mark.parametrize("name", list(DETECTOR_CLASSES))
class TestDetectorContract:
    def test_fit_and_score_shapes(self, name, workload):
        X_u, X_l, y_l, X_test, _ = workload
        det = make_detector(name).fit(X_u, X_l, y_l)
        scores = det.decision_function(X_test)
        assert scores.shape == (len(X_test),)
        assert np.all(np.isfinite(scores))

    def test_separates_planted_anomalies(self, name, workload):
        X_u, X_l, y_l, X_test, y_test = workload
        det = make_detector(name).fit(X_u, X_l, y_l)
        assert auroc(y_test, det.decision_function(X_test)) > 0.8

    def test_deterministic_under_seed(self, name, workload):
        X_u, X_l, y_l, X_test, _ = workload
        s1 = make_detector(name, seed=3).fit(X_u, X_l, y_l).decision_function(X_test)
        s2 = make_detector(name, seed=3).fit(X_u, X_l, y_l).decision_function(X_test)
        np.testing.assert_allclose(s1, s2)

    def test_unfitted_raises(self, name):
        with pytest.raises(RuntimeError):
            make_detector(name).decision_function(np.zeros((2, 6)))

    def test_empty_unlabeled_rejected(self, name):
        with pytest.raises(ValueError):
            make_detector(name).fit(np.empty((0, 6)))


@pytest.mark.parametrize("name", SEMI_SUPERVISED)
class TestSemiSupervisedContract:
    def test_requires_labeled_anomalies(self, name, workload):
        X_u = workload[0]
        if name == "DeepSAD":
            # DeepSAD degrades gracefully to unsupervised DeepSVDD.
            det = make_detector(name).fit(X_u, None, None)
            assert np.all(np.isfinite(det.decision_function(X_u[:5])))
            return
        with pytest.raises(ValueError):
            make_detector(name).fit(X_u, None, None)

    def test_epoch_callback_fires(self, name, workload):
        X_u, X_l, y_l, _, _ = workload
        calls = []
        make_detector(name).fit(
            X_u, X_l, y_l, epoch_callback=lambda e, det: calls.append(e)
        )
        assert len(calls) >= 5

    def test_scoring_inside_callback_works(self, name, workload):
        X_u, X_l, y_l, X_test, _ = workload
        seen = []

        def cb(epoch, det):
            seen.append(det.decision_function(X_test[:3]))

        make_detector(name).fit(X_u, X_l, y_l, epoch_callback=cb)
        assert all(s.shape == (3,) for s in seen)


class TestSupervisionMetadata:
    def test_unsupervised_flags(self):
        assert IsolationForest.supervision == "unsupervised"
        assert REPEN.supervision == "unsupervised"

    def test_semi_supervised_flags(self):
        for name in SEMI_SUPERVISED:
            assert DETECTOR_CLASSES[name].supervision == "semi-supervised"

    def test_names_match_paper_table(self):
        expected = {"iForest", "REPEN", "ADOA", "FEAWAD", "PUMAD", "DevNet",
                    "DeepSAD", "DPLAN", "PIA-WAL", "Dual-MGAN", "PReNet"}
        assert {cls.name for cls in DETECTOR_CLASSES.values()} == expected
