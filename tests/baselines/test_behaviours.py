"""Behavioural (not just contract) tests for individual baselines.

Each test pins the mechanism that distinguishes the method — the property
its paper advertises — on controlled data.
"""

import numpy as np
import pytest

from repro.baselines import ADOA, DeepSAD, DevNet, FEAWAD, PUMAD, DualMGAN
from repro.metrics import auroc


@pytest.fixture(scope="module")
def labeled_workload():
    """Two normal blobs + two anomaly families; one family labeled."""
    rng = np.random.default_rng(3)
    normal = np.vstack([
        rng.normal(0, 0.4, size=(250, 8)) + np.r_[2, 2, np.zeros(6)],
        rng.normal(0, 0.4, size=(250, 8)) - np.r_[2, 2, np.zeros(6)],
    ])
    fam_a = rng.normal(0, 0.4, size=(60, 8)) + np.r_[0, 0, 5, 5, np.zeros(4)]
    fam_b = rng.normal(0, 0.4, size=(60, 8)) + np.r_[0, 0, 0, 0, 5, 5, 0, 0]
    return normal, fam_a, fam_b


class TestDevNetMechanism:
    def test_labeled_family_scores_above_margin_region(self, labeled_workload):
        normal, fam_a, _ = labeled_workload
        det = DevNet(random_state=0, epochs=15, margin=5.0)
        det.fit(normal, fam_a[:20], np.zeros(20, dtype=np.int64))
        anom_scores = det.decision_function(fam_a[20:])
        normal_scores = det.decision_function(normal[:100])
        assert anom_scores.mean() > 3.0  # near the margin
        assert abs(normal_scores.mean()) < 1.0  # near the reference mean


class TestDeepSADMechanism:
    def test_labeled_anomalies_pushed_from_center(self, labeled_workload):
        normal, fam_a, _ = labeled_workload
        with_labels = DeepSAD(random_state=0, pretrain_epochs=5, epochs=15, eta=2.0)
        with_labels.fit(normal, fam_a[:20], np.zeros(20, dtype=np.int64))
        without = DeepSAD(random_state=0, pretrain_epochs=5, epochs=15)
        without.fit(normal)
        # Separation ratio must improve with the labeled term.
        def ratio(det):
            return det.decision_function(fam_a[20:]).mean() / (
                det.decision_function(normal[:100]).mean() + 1e-12
            )
        assert ratio(with_labels) > ratio(without)


class TestFEAWADMechanism:
    def test_reconstruction_error_feature_drives_scores(self, labeled_workload):
        normal, fam_a, _ = labeled_workload
        det = FEAWAD(random_state=0, ae_epochs=15, epochs=15)
        det.fit(normal, fam_a[:20], np.zeros(20, dtype=np.int64))
        features_anom = det._encode_features(fam_a[20:])
        features_norm = det._encode_features(normal[:100])
        # The final feature is the recon-error norm; anomalies reconstruct worse.
        assert features_anom[:, -1].mean() > features_norm[:, -1].mean()


class TestPUMADMechanism:
    def test_reliable_normal_filter_excludes_anomaly_region(self, labeled_workload):
        normal, fam_a, _ = labeled_workload
        X_unlabeled = np.vstack([normal, fam_a[40:]])
        det = PUMAD(random_state=0, epochs=8)
        det.fit(X_unlabeled, fam_a[:20], np.zeros(20, dtype=np.int64))
        mask = det.reliable_mask_
        # Hidden anomalies (last 20 rows) should mostly be filtered out.
        assert mask[: len(normal)].mean() > mask[len(normal):].mean()


class TestADOAMechanism:
    def test_detects_only_with_observed_anomalies(self, labeled_workload):
        normal, fam_a, fam_b = labeled_workload
        det = ADOA(random_state=0, epochs=10, n_anomaly_clusters=1)
        det.fit(normal, fam_a[:20], np.zeros(20, dtype=np.int64))
        X = np.vstack([normal[:100], fam_a[20:]])
        y = np.r_[np.zeros(100), np.ones(40)]
        assert auroc(y, det.decision_function(X)) > 0.9


class TestDualMGANMechanism:
    def test_detection_learns_from_generated_positives(self, labeled_workload):
        normal, fam_a, _ = labeled_workload
        det = DualMGAN(random_state=0, aug_epochs=50, det_epochs=15)
        det.fit(normal, fam_a[:20], np.zeros(20, dtype=np.int64))
        # Generated positives imitate fam_a, so held-out fam_a instances
        # should outscore normals even though the detector never saw them.
        s_anom = det.decision_function(fam_a[20:])
        s_norm = det.decision_function(normal[:100])
        assert s_anom.mean() > s_norm.mean()
