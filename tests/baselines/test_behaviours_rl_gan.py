"""Mechanism tests for the RL and adversarial baselines."""

import numpy as np
import pytest

from repro.baselines import DPLAN, PIAWAL, REPEN
from repro.metrics import auroc


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(5)
    normal = np.vstack([
        rng.normal(0, 0.4, size=(250, 6)) + np.r_[2, 2, 0, 0, 0, 0],
        rng.normal(0, 0.4, size=(250, 6)) - np.r_[2, 2, 0, 0, 0, 0],
    ])
    anomalies = rng.normal(0, 0.4, size=(60, 6)) + np.r_[0, 0, 4, 4, 0, 0]
    return normal, anomalies


class TestREPENMechanism:
    def test_learned_space_separates_better_than_random_projection(self, workload):
        normal, anomalies = workload
        det = REPEN(random_state=0, epochs=10, n_triplets=600)
        det.fit(np.vstack([normal, anomalies[:10]]))
        X = np.vstack([normal[:100], anomalies[10:]])
        y = np.r_[np.zeros(100), np.ones(50)]
        assert auroc(y, det.decision_function(X)) > 0.85

    def test_embedding_dimension_respected(self, workload):
        normal, _ = workload
        det = REPEN(random_state=0, epochs=2, n_triplets=100, embedding_dim=7)
        det.fit(normal)
        assert det._X_ref.shape[1] == 7


class TestDPLANMechanism:
    def test_q_values_higher_for_anomalies(self, workload):
        normal, anomalies = workload
        det = DPLAN(random_state=0, n_steps=1200)
        det.fit(normal, anomalies[:15], np.zeros(15, dtype=np.int64))
        q_anom = det.decision_function(anomalies[15:]).mean()
        q_norm = det.decision_function(normal[:100]).mean()
        assert q_anom > q_norm

    def test_external_reward_dominates(self, workload):
        """Labeled anomalies must be flagged reliably (reward +1 for action 1)."""
        normal, anomalies = workload
        det = DPLAN(random_state=0, n_steps=1500)
        det.fit(normal, anomalies[:15], np.zeros(15, dtype=np.int64))
        q = det.decision_function(anomalies[:15])
        X = np.vstack([normal[:50], anomalies[:15]])
        y = np.r_[np.zeros(50), np.ones(15)]
        assert auroc(y, det.decision_function(X)) > 0.9


class TestPIAWALMechanism:
    def test_generator_learns_data_support(self, workload):
        normal, anomalies = workload
        det = PIAWAL(random_state=0, gan_epochs=6, epochs=8)
        det.fit(normal, anomalies[:15], np.zeros(15, dtype=np.int64))
        # Scorer separates held-out anomalies from normals.
        X = np.vstack([normal[:100], anomalies[15:]])
        y = np.r_[np.zeros(100), np.ones(45)]
        assert auroc(y, det.decision_function(X)) > 0.85

    def test_peripheral_weighting_in_unit_interval(self, workload):
        # White-box: the stage-2 weights live in [0, 1] by construction; we
        # validate through a full fit not raising and producing finite scores.
        normal, anomalies = workload
        det = PIAWAL(random_state=1, gan_epochs=3, epochs=4, n_generated=64)
        det.fit(normal, anomalies[:10], np.zeros(10, dtype=np.int64))
        assert np.isfinite(det.decision_function(normal[:10])).all()
