"""Isolation forest behaviour."""

import numpy as np
import pytest

from repro.baselines.iforest import IsolationForest, average_path_length
from repro.metrics import auroc


class TestAveragePathLength:
    def test_known_values(self):
        # c(2) = 1; c(1) = 0 (leaf of size 1 adds nothing).
        np.testing.assert_allclose(average_path_length(np.array([2.0])), [1.0])
        np.testing.assert_allclose(average_path_length(np.array([1.0])), [0.0])

    def test_grows_logarithmically(self):
        c = average_path_length(np.array([16.0, 256.0, 4096.0]))
        diffs = np.diff(c)
        # Each 16x increase adds roughly 2*ln(16); allow slack.
        assert np.all(diffs > 4.0) and np.all(diffs < 7.0)


class TestIsolationForest:
    def test_detects_planted_outliers(self, blobs):
        inliers, outliers = blobs
        forest = IsolationForest(n_estimators=50, random_state=0).fit(inliers)
        X = np.vstack([inliers, outliers])
        y = np.array([0] * len(inliers) + [1] * len(outliers))
        assert auroc(y, forest.decision_function(X)) > 0.95

    def test_scores_in_unit_interval(self, blobs):
        inliers, _ = blobs
        forest = IsolationForest(n_estimators=20, random_state=0).fit(inliers)
        scores = forest.decision_function(inliers)
        assert np.all((scores > 0) & (scores < 1))

    def test_outliers_score_above_half(self, blobs):
        inliers, outliers = blobs
        forest = IsolationForest(n_estimators=50, random_state=0).fit(inliers)
        assert forest.decision_function(outliers).mean() > 0.55

    def test_ignores_labels(self, blobs):
        inliers, outliers = blobs
        a = IsolationForest(n_estimators=10, random_state=0).fit(inliers)
        b = IsolationForest(n_estimators=10, random_state=0).fit(
            inliers, X_labeled=outliers, y_labeled=np.zeros(len(outliers))
        )
        np.testing.assert_array_equal(a.decision_function(inliers), b.decision_function(inliers))

    def test_deterministic(self, blobs):
        inliers, _ = blobs
        s1 = IsolationForest(n_estimators=10, random_state=5).fit(inliers).decision_function(inliers)
        s2 = IsolationForest(n_estimators=10, random_state=5).fit(inliers).decision_function(inliers)
        np.testing.assert_array_equal(s1, s2)

    def test_constant_data_degenerates_gracefully(self):
        X = np.zeros((50, 3))
        forest = IsolationForest(n_estimators=5, random_state=0).fit(X)
        assert np.all(np.isfinite(forest.decision_function(X)))

    def test_validation(self):
        with pytest.raises(ValueError):
            IsolationForest(n_estimators=0)
        with pytest.raises(ValueError):
            IsolationForest(max_samples=1)
        with pytest.raises(RuntimeError):
            IsolationForest().decision_function(np.zeros((2, 2)))
