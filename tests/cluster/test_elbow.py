"""Elbow-method k selection."""

import numpy as np
import pytest

from repro.cluster import select_k_elbow
from repro.cluster.elbow import inertia_curve


def blob_data(rng, k_true, n_per=60, sep=12.0, d=4):
    # Deterministic well-separated centers (orthogonal axes scaled by sep)
    # so the inertia curve has an unambiguous elbow exactly at k_true.
    centers = np.zeros((k_true, d))
    for i in range(k_true):
        centers[i, i % d] = sep * (1 + i // d)
        centers[i, (i + 1) % d] = -sep if i % 2 else sep
    return np.vstack([rng.normal(0, 0.4, (n_per, d)) + c for c in centers])


class TestElbow:
    @pytest.mark.parametrize("k_true", [2, 3, 4])
    def test_finds_true_k_on_separated_blobs(self, k_true):
        rng = np.random.default_rng(k_true)
        X = blob_data(rng, k_true)
        k, _ = select_k_elbow(X, k_min=1, k_max=8, random_state=0)
        assert k == k_true

    def test_returns_inertia_curve(self):
        rng = np.random.default_rng(0)
        X = blob_data(rng, 2)
        k, inertias = select_k_elbow(X, 1, 6, random_state=0)
        assert len(inertias) == 6
        assert all(a >= b - 1e-9 for a, b in zip(inertias, inertias[1:]))

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            select_k_elbow(np.zeros((10, 2)), k_min=3, k_max=2)
        with pytest.raises(ValueError):
            select_k_elbow(np.zeros((10, 2)), k_min=0, k_max=2)

    def test_two_candidates_returns_first(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((30, 2))
        k, inertias = select_k_elbow(X, 1, 2, random_state=0)
        assert k == 1
        assert len(inertias) == 2

    def test_inertia_curve_subsamples_large_input(self):
        rng = np.random.default_rng(2)
        X = rng.standard_normal((10_000, 3))
        inertias = inertia_curve(X, [1, 2], random_state=0, sample_cap=500)
        assert len(inertias) == 2
