"""k-means correctness and robustness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import KMeans


def make_blobs(rng, centers, n_per=50, std=0.2):
    parts = [rng.normal(0, std, size=(n_per, len(c))) + np.asarray(c) for c in centers]
    labels = np.repeat(np.arange(len(centers)), n_per)
    return np.vstack(parts), labels


class TestKMeansCorrectness:
    def test_recovers_separated_blobs(self, rng):
        X, true = make_blobs(rng, [[0, 0], [10, 10], [-10, 10]])
        km = KMeans(n_clusters=3, random_state=0).fit(X)
        # Perfect clustering up to label permutation: each true cluster maps
        # to exactly one predicted cluster.
        for t in range(3):
            assert len(np.unique(km.labels_[true == t])) == 1
        assert len(np.unique(km.labels_)) == 3

    def test_centers_near_true_means(self, rng):
        centers = [[0, 0], [8, 8]]
        X, _ = make_blobs(rng, centers, n_per=200)
        km = KMeans(n_clusters=2, random_state=0).fit(X)
        found = sorted(km.cluster_centers_.tolist())
        np.testing.assert_allclose(found[0], [0, 0], atol=0.15)
        np.testing.assert_allclose(found[1], [8, 8], atol=0.15)

    def test_predict_assigns_nearest_center(self, rng):
        X, _ = make_blobs(rng, [[0, 0], [10, 10]])
        km = KMeans(n_clusters=2, random_state=0).fit(X)
        label_origin = km.predict(np.array([[0.1, -0.1]]))[0]
        label_far = km.predict(np.array([[9.8, 10.2]]))[0]
        assert label_origin != label_far

    def test_fit_predict_matches_labels(self, rng):
        X, _ = make_blobs(rng, [[0, 0], [5, 5]])
        km = KMeans(n_clusters=2, random_state=0)
        labels = km.fit_predict(X)
        np.testing.assert_array_equal(labels, km.labels_)

    def test_transform_distances(self, rng):
        X, _ = make_blobs(rng, [[0, 0], [10, 0]])
        km = KMeans(n_clusters=2, random_state=0).fit(X)
        dists = km.transform(np.array([[0.0, 0.0]]))
        assert dists.shape == (1, 2)
        np.testing.assert_allclose(sorted(dists[0]), [0.0, 10.0], atol=0.3)

    def test_single_cluster(self, rng):
        X = rng.standard_normal((30, 3))
        km = KMeans(n_clusters=1, random_state=0).fit(X)
        np.testing.assert_allclose(km.cluster_centers_[0], X.mean(axis=0), atol=1e-9)

    def test_inertia_decreases_with_k(self, rng):
        X = rng.standard_normal((100, 4))
        inertias = [
            KMeans(n_clusters=k, random_state=0).fit(X).inertia_ for k in (1, 2, 4, 8)
        ]
        assert all(a >= b for a, b in zip(inertias, inertias[1:]))

    def test_duplicate_points_dont_crash(self):
        X = np.zeros((20, 3))
        km = KMeans(n_clusters=3, random_state=0).fit(X)
        assert km.inertia_ == pytest.approx(0.0)

    def test_deterministic_given_seed(self, rng):
        X = rng.standard_normal((80, 4))
        a = KMeans(n_clusters=4, random_state=1).fit(X)
        b = KMeans(n_clusters=4, random_state=1).fit(X)
        np.testing.assert_array_equal(a.labels_, b.labels_)


class TestKMeansValidation:
    def test_more_clusters_than_points_rejected(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=10).fit(np.zeros((3, 2)))

    def test_1d_input_rejected(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=2).fit(np.zeros(10))

    def test_bad_hyperparams(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=0)
        with pytest.raises(ValueError):
            KMeans(n_clusters=2, n_init=0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            KMeans(n_clusters=2).predict(np.zeros((2, 2)))


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(10, 60),
    d=st.integers(1, 5),
    k=st.integers(1, 4),
    seed=st.integers(0, 100),
)
def test_kmeans_invariants(n, d, k, seed):
    """Labels are in range, every cluster label appears, inertia matches labels."""
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, d))
    km = KMeans(n_clusters=k, random_state=seed).fit(X)
    assert km.labels_.min() >= 0 and km.labels_.max() < k
    # Recompute inertia from final labels/centers.
    manual = sum(
        ((X[km.labels_ == j] - km.cluster_centers_[j]) ** 2).sum() for j in range(k)
    )
    assert km.inertia_ == pytest.approx(manual, rel=1e-9)
