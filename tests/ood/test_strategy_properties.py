"""Hypothesis properties of the OOD scoring strategies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ood import EnergyDiscrepancy, EnergyScore, MaxSoftmaxProbability

logit_matrices = arrays(
    np.float64,
    st.tuples(st.integers(1, 12), st.integers(2, 6)),
    elements=st.floats(-30, 30, allow_nan=False, width=64),
)


@settings(max_examples=40, deadline=None)
@given(logit_matrices)
def test_msp_score_bounds(logits):
    scores = MaxSoftmaxProbability().ood_score(logits)
    c = logits.shape[1]
    assert np.all(scores >= -1e-12)
    assert np.all(scores <= 1.0 - 1.0 / c + 1e-9)


@settings(max_examples=40, deadline=None)
@given(logit_matrices)
def test_ed_nonnegative_and_bounded(logits):
    scores = EnergyDiscrepancy().ood_score(logits)
    c = logits.shape[1]
    assert np.all(scores >= -1e-9)
    assert np.all(scores <= np.log(c) + 1e-9)


@settings(max_examples=40, deadline=None)
@given(logit_matrices)
def test_ed_shift_invariance(logits):
    ed = EnergyDiscrepancy()
    np.testing.assert_allclose(
        ed.ood_score(logits), ed.ood_score(logits + 7.5), atol=1e-9
    )


@settings(max_examples=40, deadline=None)
@given(logit_matrices)
def test_es_shift_covariance(logits):
    """Adding a constant c to all logits lowers the energy score by c."""
    es = EnergyScore()
    np.testing.assert_allclose(
        es.ood_score(logits + 2.0), es.ood_score(logits) - 2.0, atol=1e-9
    )


@settings(max_examples=40, deadline=None)
@given(logit_matrices)
def test_msp_is_monotone_function_of_full_ed(logits):
    """The identity that motivated the subset restriction:
    MSP = 1 − exp(−ED_full)."""
    msp = MaxSoftmaxProbability().ood_score(logits)
    ed = EnergyDiscrepancy().ood_score(logits)
    np.testing.assert_allclose(msp, 1.0 - np.exp(-ed), atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(logit_matrices, st.integers(1, 3))
def test_ed_subset_uses_only_first_dims(logits, n_dims):
    n_dims = min(n_dims, logits.shape[1])
    ed = EnergyDiscrepancy(n_dims=n_dims)
    scores = ed.ood_score(logits)
    perturbed = logits.copy()
    perturbed[:, n_dims:] += 100.0  # changing ignored dims must not matter
    np.testing.assert_allclose(ed.ood_score(perturbed), scores, atol=1e-9)
