"""OOD strategies: MSP, Energy Score, Energy Discrepancy."""

import numpy as np
import pytest

from repro.ood import EnergyDiscrepancy, EnergyScore, MaxSoftmaxProbability, get_strategy

PEAKED = np.array([[10.0, 0.0, 0.0, 0.0]])
UNIFORM = np.array([[1.0, 1.0, 1.0, 1.0]])


class TestScoreDirections:
    """Every strategy must give UNIFORM (OOD-like) a higher score than PEAKED."""

    @pytest.mark.parametrize("strategy_cls", [MaxSoftmaxProbability, EnergyDiscrepancy])
    def test_uniform_scores_higher(self, strategy_cls):
        strategy = strategy_cls()
        assert strategy.ood_score(UNIFORM)[0] > strategy.ood_score(PEAKED)[0]

    def test_energy_score_tracks_logit_magnitude(self):
        # ES measures absolute energy: small logits (weak evidence) = OOD.
        strong = np.array([[10.0, 9.0, 8.0]])
        weak = np.array([[0.1, 0.0, -0.1]])
        es = EnergyScore()
        assert es.ood_score(weak)[0] > es.ood_score(strong)[0]

    def test_msp_is_one_minus_max_prob(self):
        msp = MaxSoftmaxProbability()
        logits = np.array([[2.0, 0.0]])
        probs = np.exp(2.0) / (np.exp(2.0) + 1.0)
        assert msp.ood_score(logits)[0] == pytest.approx(1.0 - probs)

    def test_ed_zero_for_peaked_log_c_for_uniform(self):
        ed = EnergyDiscrepancy()
        assert ed.ood_score(np.array([[1000.0, 0.0, 0.0]]))[0] == pytest.approx(0.0, abs=1e-6)
        assert ed.ood_score(np.array([[0.0, 0.0, 0.0]]))[0] == pytest.approx(np.log(3))

    def test_ed_nonnegative(self):
        rng = np.random.default_rng(0)
        ed = EnergyDiscrepancy()
        assert np.all(ed.ood_score(rng.standard_normal((100, 5))) >= 0)


class TestCalibration:
    def test_threshold_separates_clean_sets(self):
        rng = np.random.default_rng(1)
        id_logits = rng.normal(0, 0.3, (50, 4))
        id_logits[:, 0] += 8.0  # confident class 0
        ood_logits = rng.normal(0, 0.3, (50, 4))  # near-uniform
        for name in ["msp", "es", "ed"]:
            strategy = get_strategy(name)
            strategy.fit_threshold(id_logits, ood_logits)
            assert strategy.is_ood(ood_logits).mean() > 0.9
            assert strategy.is_ood(id_logits).mean() < 0.1

    def test_is_ood_before_calibration_raises(self):
        with pytest.raises(RuntimeError):
            MaxSoftmaxProbability().is_ood(PEAKED)

    def test_empty_calibration_rejected(self):
        with pytest.raises(ValueError):
            MaxSoftmaxProbability().fit_threshold(np.empty((0, 3)), PEAKED)

    def test_identical_scores_degenerate(self):
        strategy = MaxSoftmaxProbability()
        threshold = strategy.fit_threshold(PEAKED, PEAKED)
        assert np.isfinite(threshold)


class TestRegistry:
    def test_get_by_name_case_insensitive(self):
        assert isinstance(get_strategy("MSP"), MaxSoftmaxProbability)
        assert isinstance(get_strategy("es"), EnergyScore)
        assert isinstance(get_strategy("Ed"), EnergyDiscrepancy)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_strategy("mahalanobis")

    def test_temperature_validation(self):
        with pytest.raises(ValueError):
            EnergyScore(temperature=0.0)
        with pytest.raises(ValueError):
            EnergyDiscrepancy(temperature=-1.0)

    def test_temperature_kwarg_via_registry(self):
        strategy = get_strategy("es", temperature=2.0)
        assert strategy.temperature == 2.0
