"""ASCII chart renderers."""

import numpy as np
import pytest

from repro.viz import bar_chart, heatmap, histogram, line_chart, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_min_max_glyphs(self):
        out = sparkline([0, 10])
        assert out[0] == "▁" and out[-1] == "█"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestLineChart:
    def test_contains_legend_and_axis(self):
        out = line_chart({"a": [1, 2, 3], "b": [3, 2, 1]}, width=20, height=5)
        assert "● a" in out and "○ b" in out
        assert "│" in out and "└" in out

    def test_title_and_bounds(self):
        out = line_chart({"x": [0.0, 1.0]}, title="T", width=10, height=4)
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "1.000" in out and "0.000" in out

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": []})

    def test_row_count(self):
        out = line_chart({"a": [1, 2]}, width=10, height=6)
        # height rows + axis + legend
        assert len(out.splitlines()) == 8


class TestBarChart:
    def test_longest_bar_is_max(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[1].count("█") == 10
        assert lines[0].count("█") == 5

    def test_values_annotated(self):
        out = bar_chart(["x"], [0.123], width=5)
        assert "0.123" in out

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_zero_values(self):
        out = bar_chart(["a"], [0.0])
        assert "█" not in out


class TestHeatmap:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            heatmap(np.zeros((2, 2)), ["r"], ["c1", "c2"])

    def test_contains_all_values(self):
        m = np.array([[0.1, 0.9], [0.5, 0.3]])
        out = heatmap(m, ["r1", "r2"], ["c1", "c2"])
        for v in ("0.100", "0.900", "0.500", "0.300"):
            assert v in out

    def test_extremes_shaded_differently(self):
        m = np.array([[0.0, 1.0]])
        out = heatmap(m, ["r"], ["lo", "hi"])
        row = out.splitlines()[1]
        assert " 0.000" in row and "█ 1.000" in row


class TestHistogram:
    def test_bin_count(self):
        out = histogram(np.random.default_rng(0).random(100), bins=5)
        assert len(out.splitlines()) == 5

    def test_counts_sum(self):
        values = [0.1] * 7 + [0.9] * 3
        out = histogram(values, bins=2, value_range=(0, 1))
        assert " 7" in out and " 3" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            histogram([])
