"""Chart renderer edge cases beyond the basics."""

import numpy as np
import pytest

from repro.viz import heatmap, line_chart, sparkline


class TestLineChartEdgeCases:
    def test_single_point_series(self):
        out = line_chart({"a": [0.5]}, width=10, height=4)
        assert "● a" in out

    def test_long_series_resampled_to_width(self):
        values = np.sin(np.linspace(0, 10, 5000))
        out = line_chart({"s": values}, width=30, height=6)
        body_rows = [l for l in out.splitlines() if "│" in l]
        assert all(len(row.split("│", 1)[1]) <= 30 for row in body_rows)

    def test_constant_series_renders(self):
        out = line_chart({"flat": [2.0, 2.0, 2.0]}, width=12, height=4)
        assert "2.000" in out

    def test_many_series_glyphs_cycle(self):
        series = {f"s{i}": [i, i + 1] for i in range(10)}
        out = line_chart(series, width=10, height=5)
        for i in range(10):
            assert f"s{i}" in out


class TestHeatmapEdgeCases:
    def test_constant_matrix(self):
        out = heatmap(np.full((2, 2), 3.0), ["a", "b"], ["x", "y"])
        assert "3.000" in out

    def test_single_cell(self):
        out = heatmap(np.array([[1.5]]), ["r"], ["c"])
        assert "1.500" in out

    def test_negative_values(self):
        out = heatmap(np.array([[-2.0, 2.0]]), ["r"], ["lo", "hi"])
        assert "-2.000" in out


class TestSparklineEdgeCases:
    def test_single_value(self):
        assert len(sparkline([3.0])) == 1

    def test_negative_values(self):
        out = sparkline([-5.0, 0.0, 5.0])
        assert out[0] == "▁" and out[-1] == "█"
