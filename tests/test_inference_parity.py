"""End-to-end parity: compiled serve path vs the autodiff graph path.

Acceptance contract for the compiled graph-free inference migration:
every hot read path — TargAD scoring/routing, candidate-selection
reconstruction errors, the serving fallback, and the neural baselines —
must agree with the Tensor-graph forward to atol 1e-9 at float64 (the
kernels actually achieve bitwise equality), and the serving pipeline
must construct zero Tensor objects per batch.
"""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.core import TargAD, TargADConfig
from repro.nn import force_graph_forward
from repro.resilience import ReconstructionFallback
from repro.serving import ScoringPipeline

ATOL = 1e-9


@pytest.fixture(scope="module")
def fitted():
    from repro.data.splits import build_split
    from tests.conftest import TINY_SPEC, make_tiny_generator

    split = build_split(make_tiny_generator(0), TINY_SPEC, scale=1.0, random_state=0)
    model = TargAD(TargADConfig(random_state=0, k=2, ae_lr=3e-3, ae_epochs=15,
                                clf_epochs=20))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    return model, split


class TestTargADParity:
    def test_logits_proba_and_scores(self, fitted):
        model, split = fitted
        X = split.X_test
        with force_graph_forward():
            logits_g = model.logits(X)
            proba_g = model.predict_proba_full(X)
            scores_g = model.decision_function(X)
        np.testing.assert_allclose(model.logits(X), logits_g, atol=ATOL)
        np.testing.assert_allclose(model.predict_proba_full(X), proba_g, atol=ATOL)
        np.testing.assert_allclose(model.decision_function(X), scores_g, atol=ATOL)
        # The compiled kernels replay the graph's fp op sequence exactly.
        np.testing.assert_array_equal(model.logits(X), logits_g)

    @pytest.mark.parametrize("strategy", ["ed", "es", "msp"])
    def test_triclass_routing_identical(self, fitted, strategy):
        model, split = fitted
        X = split.X_test
        with force_graph_forward():
            routing_g = model.predict_triclass(X, strategy=strategy)
        np.testing.assert_array_equal(
            model.predict_triclass(X, strategy=strategy), routing_g
        )

    def test_score_batch_matches_unfused_calls(self, fitted):
        model, split = fitted
        X = split.X_test
        scores, routing = model.score_batch(X)
        np.testing.assert_array_equal(scores, model.decision_function(X))
        np.testing.assert_array_equal(routing, model.predict_triclass(X))


class TestTargADParityUnderTiledBackend:
    """The same end-to-end contract holds under ``use_backend("tiled")``.

    The dense batches here never trigger the tiled sparse path, so the
    documented tolerance is the backend's ``parity_atol`` (1e-9); the
    routing decision must be identical either way.
    """

    def test_scores_and_routing(self, fitted):
        from repro.backend import use_backend

        model, split = fitted
        X = split.X_test
        with force_graph_forward():
            logits_g = model.logits(X)
        scores_n, routing_n = model.score_batch(X)
        with use_backend("tiled"):
            np.testing.assert_allclose(model.logits(X), logits_g, atol=ATOL)
            scores_t, routing_t = model.score_batch(X)
        np.testing.assert_allclose(scores_t, scores_n, atol=ATOL)
        np.testing.assert_array_equal(routing_t, routing_n)

    def test_pipeline_process_under_tiled(self, fitted):
        from repro.backend import use_backend

        model, split = fitted
        pipe_n = ScoringPipeline(model, policy="budget", review_budget=10,
                                 monitor_drift=False)
        pipe_n.calibrate(split.X_val)
        want = pipe_n.process(split.X_test)
        with use_backend("tiled"):
            pipe_t = ScoringPipeline(model, policy="budget", review_budget=10,
                                     monitor_drift=False)
            pipe_t.calibrate(split.X_val)
            got = pipe_t.process(split.X_test)
        np.testing.assert_allclose(got.scores, want.scores, atol=ATOL)
        np.testing.assert_array_equal(got.routing, want.routing)


class TestSelectorAndFallbackParity:
    def test_candidate_selector_reconstruction_error(self, fitted):
        model, split = fitted
        X = split.X_test
        with force_graph_forward():
            errors_g = model.selector_.reconstruction_error(X)
        np.testing.assert_allclose(
            model.selector_.reconstruction_error(X), errors_g, atol=ATOL
        )

    def test_reconstruction_fallback_score(self, fitted):
        model, split = fitted
        with force_graph_forward():
            fb_g = ReconstructionFallback(model).calibrate(split.X_val, 0.1)
            scores_g = fb_g.score(split.X_test)
        fb = ReconstructionFallback(model).calibrate(split.X_val, 0.1)
        np.testing.assert_allclose(fb.score(split.X_test), scores_g, atol=ATOL)


class TestServingIsGraphFree:
    def test_pipeline_process_builds_no_tensors(self, fitted, monkeypatch):
        """The serve path must stay off the autodiff graph entirely."""
        model, split = fitted
        pipe = ScoringPipeline(model, policy="budget", review_budget=10,
                               monitor_drift=False)
        pipe.calibrate(split.X_val)
        constructed = []
        original = Tensor.__init__

        def counting_init(self, *args, **kwargs):
            constructed.append(1)
            original(self, *args, **kwargs)

        monkeypatch.setattr(Tensor, "__init__", counting_init)
        batch = pipe.process(split.X_test)
        assert len(batch.scores) == len(split.X_test)
        assert not constructed, (
            f"serve path constructed {len(constructed)} Tensor objects"
        )

    def test_fallback_score_builds_no_tensors(self, fitted, monkeypatch):
        model, split = fitted
        fallback = ReconstructionFallback(model).calibrate(split.X_val, 0.1)
        constructed = []
        original = Tensor.__init__

        def counting_init(self, *args, **kwargs):
            constructed.append(1)
            original(self, *args, **kwargs)

        monkeypatch.setattr(Tensor, "__init__", counting_init)
        fallback.score(split.X_test)
        assert not constructed


class TestBaselineParity:
    """Every neural baseline's decision_function is backend-compiled."""

    @pytest.fixture(scope="class")
    def workload(self, blobs):
        inliers, outliers = blobs
        X_unlabeled = np.vstack([inliers, outliers[:5]])
        X_labeled = outliers[5:12]
        y_labeled = np.zeros(len(X_labeled), dtype=np.int64)
        X_test = np.vstack([inliers[:60], outliers[12:]])
        return X_unlabeled, X_labeled, y_labeled, X_test

    @pytest.mark.parametrize("name", [
        "REPEN", "ADOA", "FEAWAD", "PUMAD", "DevNet", "DeepSAD",
        "DPLAN", "PIA-WAL", "Dual-MGAN", "PReNet",
    ])
    def test_decision_function_parity(self, name, workload):
        from tests.baselines.test_all_detectors import make_detector

        X_unlabeled, X_labeled, y_labeled, X_test = workload
        detector = make_detector(name, seed=0)
        detector.fit(X_unlabeled, X_labeled, y_labeled)
        compiled = detector.decision_function(X_test)
        with force_graph_forward():
            graphed = detector.decision_function(X_test)
        np.testing.assert_allclose(compiled, graphed, atol=ATOL)
