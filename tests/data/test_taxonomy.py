"""Anomaly-taxonomy injectors: semantics, registry, and split wiring."""

import numpy as np
import pytest

from repro.data import (
    INJECTOR_NAMES,
    attach_taxonomy,
    get_injector,
    is_taxonomy_family,
    list_injectors,
    load_dataset,
    taxonomy_family_name,
)
from repro.data.schema import KIND_NONTARGET, KIND_NORMAL, KIND_TARGET
from repro.data.splits import build_split
from repro.data.taxonomy import TaxonomyInjector, injector_name
from tests.conftest import TINY_SPEC, make_tiny_generator

pytestmark = pytest.mark.taxonomy


@pytest.fixture(scope="module")
def reference():
    rng = np.random.default_rng(7)
    # Correlated reference: latent factor + noise, 200 x 10.
    latent = rng.normal(size=(200, 2))
    mixing = rng.normal(size=(2, 10))
    return latent @ mixing + 0.3 * rng.normal(size=(200, 10)) + 5.0


def fitted(name, reference, seed=0, **params):
    return get_injector(name, **params).fit(reference, np.random.default_rng(seed))


class TestRegistry:
    def test_catalogue_complete(self):
        assert list_injectors() == INJECTOR_NAMES
        # ADBench's four realistic-synthetic modes + five TABARD families.
        assert set(INJECTOR_NAMES) == {
            "local", "global", "dependency", "cluster",
            "calculation", "temporal", "logical", "normalization", "consistency",
        }

    def test_prefix_helpers(self):
        assert taxonomy_family_name("local") == "tax:local"
        assert taxonomy_family_name("tax:local") == "tax:local"
        assert injector_name("tax:local") == "local"
        assert is_taxonomy_family("tax:local")
        assert not is_taxonomy_family("Fuzzers")

    def test_get_injector_accepts_prefix_and_params(self):
        injector = get_injector("tax:local", alpha=6.0)
        assert injector.name == "local"
        assert injector.params == {"alpha": 6.0}

    def test_unknown_injector_suggests_closest(self):
        with pytest.raises(KeyError, match="did you mean 'local'"):
            get_injector("locl")

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            get_injector("local").transform(np.zeros((3, 4)), np.random.default_rng(0))

    def test_bad_params_raise(self):
        with pytest.raises(ValueError):
            get_injector("local", alpha=0.5)
        with pytest.raises(ValueError):
            get_injector("global", margin=-0.1)
        with pytest.raises(ValueError):
            get_injector("temporal", n_pairs=0)


class TestInjectorSemantics:
    """Each family produces its advertised violation."""

    def test_local_inflates_deviation_from_center(self, reference):
        injector = fitted("local", reference)
        X = reference[:50]
        out = injector.transform(X, np.random.default_rng(1))
        dev_in = np.abs(X - injector.mu_).mean()
        dev_out = np.abs(out - injector.mu_).mean()
        assert dev_out > 2.0 * dev_in

    def test_global_leaves_observed_support(self, reference):
        injector = fitted("global", reference, margin=0.25)
        out = injector.transform(reference[:200], np.random.default_rng(1))
        outside = (out < injector.lo_) | (out > injector.hi_)
        assert outside.any()
        pad = 0.25 * injector.range_
        assert (out >= injector.lo_ - pad - 1e-9).all()
        assert (out <= injector.hi_ + pad + 1e-9).all()

    def test_dependency_breaks_correlation_keeps_marginals(self, reference):
        injector = fitted("dependency", reference)
        out = injector.transform(reference, np.random.default_rng(1))
        corr_in = np.corrcoef(reference, rowvar=False)
        corr_out = np.corrcoef(out, rowvar=False)
        np.fill_diagonal(corr_in, 0.0)
        np.fill_diagonal(corr_out, 0.0)
        assert np.abs(corr_out).max() < np.abs(corr_in).max()
        assert (out >= injector.lo_).all() and (out <= injector.hi_).all()

    def test_cluster_displaces_along_fixed_direction(self, reference):
        injector = fitted("cluster", reference, alpha=5.0)
        out = injector.transform(reference[:50], np.random.default_rng(1))
        shift = (out - reference[:50]).mean(axis=0)
        assert np.all(np.sign(shift) == injector.direction_)
        assert np.abs(shift / injector.sigma_).min() > 3.0

    def test_calculation_overwrites_derived_columns(self, reference):
        injector = fitted("calculation", reference)
        X = reference[:50]
        out = injector.transform(X, np.random.default_rng(1))
        for a, b, derived in injector.triples_:
            expected = X[:, a] + X[:, b]
            # out = expected * noise with noise in [0.95, 1.05]
            assert (np.abs(out[:, derived] - expected)
                    <= 0.05 * np.abs(expected) + 1e-9).all()
        untouched = np.setdiff1d(np.arange(X.shape[1]), injector.triples_[:, 2])
        np.testing.assert_array_equal(out[:, untouched], X[:, untouched])

    def test_temporal_puts_end_before_start(self, reference):
        injector = fitted("temporal", reference)
        X = reference[:50]
        out = injector.transform(X, np.random.default_rng(1))
        for start, end in injector.pairs_:
            assert (out[:, end] < X[:, start]).all()

    def test_logical_exits_the_observed_range(self, reference):
        injector = fitted("logical", reference)
        out = injector.transform(reference[:50], np.random.default_rng(1))
        for col, side in zip(injector.columns_, injector.sides_):
            if side > 0:
                assert (out[:, col] > injector.hi_[col]).all()
            else:
                assert (out[:, col] < injector.lo_[col]).all()

    def test_normalization_rescales_units(self, reference):
        injector = fitted("normalization", reference, factor=100.0)
        X = reference[:50]
        out = injector.transform(X, np.random.default_rng(1))
        for col, factor in zip(injector.columns_, injector.factors_):
            # out - lo = (X - lo) * factor * jitter with jitter in [0.98, 1.02]
            displaced = out[:, col] - injector.lo_[col]
            original = X[:, col] - injector.lo_[col]
            assert (displaced >= 0.98 * factor * original - 1e-9).all()
            assert (displaced <= 1.02 * factor * original + 1e-9).all()

    def test_consistency_reverses_the_pair_relation(self, reference):
        injector = fitted("consistency", reference, n_pairs=1)
        out = injector.transform(reference, np.random.default_rng(1))
        i, j = injector.pairs_[0]
        rho_in = np.corrcoef(reference[:, i], reference[:, j])[0, 1]
        rho_out = np.corrcoef(out[:, i], out[:, j])[0, 1]
        # The fitted pair is the strongest in the reference; the transform
        # flips the sign of the relation.
        assert abs(rho_in) > 0.5
        assert np.sign(rho_out) == -np.sign(rho_in)

    @pytest.mark.parametrize("name", INJECTOR_NAMES)
    def test_fit_returns_self_and_shapes_match(self, name, reference):
        injector = get_injector(name)
        assert injector.fit(reference, np.random.default_rng(0)) is injector
        out = injector.transform(reference[:9], np.random.default_rng(1))
        assert out.shape == (9, reference.shape[1])
        assert np.isfinite(out).all()


class TestAugmentedGenerator:
    def test_family_surface(self, tiny_generator):
        wrapped = attach_taxonomy(
            tiny_generator, ["local", "tax:calculation"],
            target_families=["calculation"], random_state=0,
        )
        assert wrapped.taxonomy_family_names == ["tax:calculation", "tax:local"]
        assert set(wrapped.family_names) == set(tiny_generator.family_names) | {
            "tax:calculation", "tax:local",
        }
        assert "tax:calculation" in wrapped.target_family_names
        assert "tax:local" in wrapped.nontarget_family_names
        assert wrapped.n_raw_columns == tiny_generator.n_raw_columns

    def test_sample_family_kinds_and_delegation(self, tiny_generator):
        wrapped = attach_taxonomy(
            tiny_generator, ["local"], target_families=(), random_state=0,
        )
        rng = np.random.default_rng(0)
        tax = wrapped.sample_family("tax:local", 7, rng)
        assert tax.X.shape == (7, tiny_generator.n_raw_columns)
        assert (tax.kind == KIND_NONTARGET).all()
        assert (tax.family == "tax:local").all()
        base = wrapped.sample_family("tgt_easy", 4, rng)
        assert (base.kind == KIND_TARGET).all()
        normal = wrapped.sample_normal(5, rng)
        assert (normal.kind == KIND_NORMAL).all()

    def test_taxonomy_rows_differ_from_normals_numerically(self, tiny_generator):
        wrapped = attach_taxonomy(tiny_generator, ["global"], random_state=0)
        rng = np.random.default_rng(3)
        anomalies = wrapped.sample_family("tax:global", 50, rng)
        injector = wrapped.injector("global")
        numeric = anomalies.X[:, : tiny_generator.n_numeric]
        outside = (numeric < injector.lo_) | (numeric > injector.hi_)
        assert outside.any(axis=1).mean() > 0.9

    def test_mixture_counts(self, tiny_generator):
        wrapped = attach_taxonomy(tiny_generator, ["local", "temporal"], random_state=0)
        rng = np.random.default_rng(0)
        data = wrapped.sample_mixture(
            20, {"tax:local": 5, "nontgt": 3, "tax:temporal": 2}, rng
        )
        assert len(data) == 30
        families, counts = np.unique(data.family.astype(str), return_counts=True)
        table = dict(zip(families, counts))
        assert table["tax:local"] == 5 and table["tax:temporal"] == 2
        assert table["nontgt"] == 3

    def test_collision_and_validation_errors(self, tiny_generator):
        with pytest.raises(ValueError, match="duplicate"):
            attach_taxonomy(tiny_generator, ["local", "tax:local"])
        with pytest.raises(ValueError, match="at least one"):
            attach_taxonomy(tiny_generator, [])
        with pytest.raises(ValueError, match="not among"):
            attach_taxonomy(tiny_generator, ["local"], target_families=["global"])
        with pytest.raises(KeyError, match="did you mean"):
            attach_taxonomy(tiny_generator, ["lcoal"])

    def test_build_split_cross_family_targets(self, tiny_generator):
        """Targets and training non-targets from different taxonomy families."""
        wrapped = attach_taxonomy(
            tiny_generator, ["calculation", "local"],
            target_families=["calculation"], random_state=0,
        )
        split = build_split(
            wrapped, TINY_SPEC, scale=1.0, random_state=0,
            target_families=["tax:calculation"],
            train_nontarget_families=["tax:local"],
        )
        assert split.target_families == ["tax:calculation"]
        assert set(split.labeled_family) == {"tax:calculation"}
        train_nontargets = set(
            split.unlabeled_family[split.unlabeled_kind == KIND_NONTARGET].astype(str)
        )
        assert train_nontargets == {"tax:local"}


class TestRegistryWiring:
    def test_unseen_taxonomy_family_only_at_eval(self):
        split = load_dataset(
            "kddcup99", random_state=0, scale=0.02,
            taxonomy_families=["tax:local"],
            train_nontarget_families=["Probe"],
        )
        train = set(split.unlabeled_family[split.unlabeled_kind == KIND_NONTARGET].astype(str))
        assert "tax:local" not in train
        test = set(split.test_family[split.test_kind == KIND_NONTARGET].astype(str))
        assert "tax:local" in test
        assert "tax:local" in split.nontarget_families

    def test_seen_taxonomy_family_in_training_pool(self):
        split = load_dataset(
            "kddcup99", random_state=0, scale=0.02,
            train_nontarget_families=["Probe", "tax:cluster"],
        )
        train = set(split.unlabeled_family[split.unlabeled_kind == KIND_NONTARGET].astype(str))
        assert "tax:cluster" in train

    def test_taxonomy_target_family(self):
        split = load_dataset(
            "kddcup99", random_state=0, scale=0.02,
            target_families=["tax:calculation"],
            train_nontarget_families=["tax:local"],
            taxonomy_families=["tax:calculation", "tax:local"],
        )
        assert split.target_families == ["tax:calculation"]
        assert set(split.labeled_family) == {"tax:calculation"}
        assert len(split.X_labeled) > 0

    def test_unprefixed_taxonomy_families_rejected(self):
        with pytest.raises(ValueError, match="tax:"):
            load_dataset("kddcup99", random_state=0, scale=0.02,
                         taxonomy_families=["local"])

    def test_no_taxonomy_names_takes_plain_path(self):
        a = load_dataset("kddcup99", random_state=0, scale=0.02)
        b = load_dataset("kddcup99", random_state=0, scale=0.02,
                         taxonomy_families=[])
        np.testing.assert_array_equal(a.X_test, b.X_test)

    def test_split_is_deterministic_under_seed(self):
        kwargs = dict(
            scale=0.02, taxonomy_families=["tax:temporal"],
            train_nontarget_families=["Probe"],
        )
        a = load_dataset("kddcup99", random_state=5, **kwargs)
        b = load_dataset("kddcup99", random_state=5, **kwargs)
        assert a.X_test.tobytes() == b.X_test.tobytes()
        assert a.X_unlabeled.tobytes() == b.X_unlabeled.tobytes()
        np.testing.assert_array_equal(a.test_family, b.test_family)
