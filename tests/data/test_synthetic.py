"""Synthetic population generator behaviour."""

import numpy as np
import pytest

from repro.data.schema import KIND_NONTARGET, KIND_NORMAL, KIND_TARGET, GeneratedData
from repro.data.synthetic import AnomalyFamilySpec, NormalGroupSpec, SyntheticTabularGenerator
from tests.conftest import make_tiny_generator


class TestGeneratorBasics:
    def test_raw_column_count(self, tiny_generator):
        assert tiny_generator.n_raw_columns == 12 + 1

    def test_family_name_properties(self, tiny_generator):
        assert tiny_generator.target_family_names == ["tgt_easy", "tgt_hard"]
        assert tiny_generator.nontarget_family_names == ["nontgt"]

    def test_sample_normal_shapes_and_kinds(self, tiny_generator, rng):
        data = tiny_generator.sample_normal(50, rng)
        assert data.X.shape == (50, 13)
        assert np.all(data.kind == KIND_NORMAL)
        assert set(data.family) <= {"normal_a", "normal_b"}

    def test_sample_family_kinds(self, tiny_generator, rng):
        tgt = tiny_generator.sample_family("tgt_easy", 20, rng)
        assert np.all(tgt.kind == KIND_TARGET)
        non = tiny_generator.sample_family("nontgt", 20, rng)
        assert np.all(non.kind == KIND_NONTARGET)

    def test_unknown_family_rejected(self, tiny_generator, rng):
        with pytest.raises(KeyError):
            tiny_generator.sample_family("nope", 5, rng)

    def test_zero_count_sampling(self, tiny_generator, rng):
        assert len(tiny_generator.sample_normal(0, rng)) == 0
        assert len(tiny_generator.sample_family("nontgt", 0, rng)) == 0

    def test_sample_mixture_composition(self, tiny_generator, rng):
        data = tiny_generator.sample_mixture(100, {"tgt_easy": 10, "nontgt": 5}, rng)
        assert len(data) == 115
        assert (data.kind == KIND_NORMAL).sum() == 100
        assert (data.kind == KIND_TARGET).sum() == 10
        assert (data.kind == KIND_NONTARGET).sum() == 5

    def test_anomalies_deviate_from_normals(self, tiny_generator, rng):
        normal = tiny_generator.sample_normal(300, rng)
        anom = tiny_generator.sample_family("tgt_easy", 300, rng)
        # Mean displacement on the numeric block must be visible.
        diff = np.abs(anom.X[:, :12].mean(axis=0) - normal.X[:, :12].mean(axis=0))
        assert diff.max() > 0.2

    def test_population_structure_is_seed_deterministic(self, rng):
        g1 = make_tiny_generator(7)
        g2 = make_tiny_generator(7)
        d1 = g1.sample_normal(20, np.random.default_rng(0))
        d2 = g2.sample_normal(20, np.random.default_rng(0))
        np.testing.assert_array_equal(d1.X, d2.X)

    def test_different_population_seeds_differ(self):
        g1 = make_tiny_generator(1)
        g2 = make_tiny_generator(2)
        d1 = g1.sample_normal(20, np.random.default_rng(0))
        d2 = g2.sample_normal(20, np.random.default_rng(0))
        assert not np.allclose(d1.X, d2.X)


class TestGeneratorValidation:
    def test_duplicate_family_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            SyntheticTabularGenerator(
                n_numeric=10,
                normal_groups=[NormalGroupSpec("n")],
                anomaly_families=[
                    AnomalyFamilySpec("a", is_target=True),
                    AnomalyFamilySpec("a", is_target=False),
                ],
            )

    def test_needs_groups_and_families(self):
        with pytest.raises(ValueError):
            SyntheticTabularGenerator(10, [], [AnomalyFamilySpec("a", is_target=True)])
        with pytest.raises(ValueError):
            SyntheticTabularGenerator(10, [NormalGroupSpec("n")], [])

    def test_tiny_numeric_rejected(self):
        with pytest.raises(ValueError):
            SyntheticTabularGenerator(
                2, [NormalGroupSpec("n")], [AnomalyFamilySpec("a", is_target=True)]
            )

    def test_bad_direction_agreement_rejected(self):
        with pytest.raises(ValueError):
            SyntheticTabularGenerator(
                10,
                [NormalGroupSpec("n")],
                [AnomalyFamilySpec("a", is_target=True)],
                direction_agreement=1.5,
            )


class TestStructuralKnobs:
    def _base(self, **kwargs):
        return SyntheticTabularGenerator(
            n_numeric=20,
            normal_groups=[NormalGroupSpec("n", signature_size=4)],
            anomaly_families=[
                AnomalyFamilySpec("t", is_target=True, n_affected=6, shift=5.0, **kwargs.pop("family", {})),
                AnomalyFamilySpec("o", is_target=False, n_affected=6, shift=5.0),
            ],
            random_state=0,
            **kwargs,
        )

    def test_shared_dims_shift_all_families(self):
        gen = SyntheticTabularGenerator(
            n_numeric=20,
            normal_groups=[NormalGroupSpec("n")],
            anomaly_families=[
                AnomalyFamilySpec("t", is_target=True, n_affected=4, shift=0.0, shared_shift=6.0),
            ],
            shared_anomaly_dims=5,
            random_state=0,
        )
        rng = np.random.default_rng(0)
        normal = gen.sample_normal(500, rng)
        anom = gen.sample_family("t", 500, rng)
        diff = np.abs(anom.X[:, :20].mean(axis=0) - normal.X[:, :20].mean(axis=0))
        assert (diff > 0.1).sum() == 5  # exactly the shared dims move

    def test_family_dim_pool_restricts_signatures(self):
        gen = self._base(family_dim_pool=8)
        pool_union = set()
        for struct in gen._family_structs.values():
            pool_union.update(struct.affected.tolist())
        assert len(pool_union) <= 8

    def test_activation_rate_creates_partial_patterns(self):
        gen_full = SyntheticTabularGenerator(
            n_numeric=20,
            normal_groups=[NormalGroupSpec("n", noise_scale=0.01)],
            anomaly_families=[AnomalyFamilySpec("t", is_target=True, n_affected=10,
                                                shift=20.0, activation_rate=1.0)],
            random_state=0,
        )
        gen_half = SyntheticTabularGenerator(
            n_numeric=20,
            normal_groups=[NormalGroupSpec("n", noise_scale=0.01)],
            anomaly_families=[AnomalyFamilySpec("t", is_target=True, n_affected=10,
                                                shift=20.0, activation_rate=0.5)],
            random_state=0,
        )
        rng = np.random.default_rng(1)
        full = gen_full.sample_family("t", 200, rng)
        half = gen_half.sample_family("t", 200, np.random.default_rng(1))
        dims = gen_full._family_structs["t"].affected
        # Count strongly-displaced entries (shift*noise = 0.2 ≫ noise 0.01):
        # ~100% of signature entries fire vs ~50%.
        frac_full = (np.abs(full.X[:, dims] - 0.5) > 0.1).mean()
        frac_half = (np.abs(half.X[:, dims] - 0.5) > 0.1).mean()
        assert frac_half < frac_full * 0.75


class TestGeneratedData:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GeneratedData(np.zeros((3, 2)), np.zeros(2, dtype=np.int64), np.array(["a", "b", "c"], dtype=object))

    def test_subset(self, tiny_generator, rng):
        data = tiny_generator.sample_normal(10, rng)
        sub = data.subset(np.array([0, 2, 4]))
        assert len(sub) == 3

    def test_concatenate_empty_rejected(self):
        with pytest.raises(ValueError):
            GeneratedData.concatenate([])
