"""CSV ingestion and real-data split assembly."""

import numpy as np
import pytest

from repro.data.schema import KIND_NONTARGET, KIND_NORMAL, KIND_TARGET
from repro.data.tabular import assemble_split, infer_schema, read_csv, to_matrix

CSV_CONTENT = """amount,count,proto,label
10.5,3,tcp,normal
11.0,2,tcp,normal
250.0,90,udp,attack_a
9.8,4,icmp,normal
300.0,80,udp,attack_b
"""


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text(CSV_CONTENT)
    return path


class TestReadCSV:
    def test_parses_columns(self, csv_file):
        table = read_csv(csv_file)
        assert table.columns == ["amount", "count", "proto", "label"]
        assert len(table) == 5
        assert table.cells["proto"][2] == "udp"

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(ValueError, match="expected 2 fields"):
            read_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_csv(path)


class TestInferSchema:
    def test_detects_types(self, csv_file):
        table = read_csv(csv_file)
        schema = infer_schema(table)
        assert schema["amount"] == "numeric"
        assert schema["proto"] == "categorical"
        assert schema["label"] == "categorical"
        # Low-cardinality integers are categorical.
        assert schema["count"] == "categorical"

    def test_high_cardinality_integers_numeric(self, tmp_path):
        rows = "\n".join(str(i) for i in range(100))
        path = tmp_path / "ints.csv"
        path.write_text("x\n" + rows + "\n")
        schema = infer_schema(read_csv(path))
        assert schema["x"] == "numeric"


class TestToMatrix:
    def test_encodes_categoricals(self, csv_file):
        table = read_csv(csv_file)
        matrix, cat_idx, names = to_matrix(table, exclude=["label"])
        assert matrix.shape == (5, 3)
        assert names == ["amount", "count", "proto"]
        proto_col = names.index("proto")
        assert proto_col in cat_idx
        # tcp=0, udp=1, icmp=2 (first-appearance order).
        np.testing.assert_array_equal(matrix[:, proto_col], [0, 0, 1, 2, 1])

    def test_missing_numeric_imputed(self, tmp_path):
        path = tmp_path / "gap.csv"
        path.write_text("x,y\n1.5,0.1\n,0.9\n2.5,0.4\n")
        table = read_csv(path)
        matrix, _, _ = to_matrix(table, schema={"x": "numeric", "y": "numeric"})
        assert matrix[1, 0] == pytest.approx(2.0)  # median of {1.5, 2.5}


class TestAssembleSplit:
    @pytest.fixture
    def real_like(self):
        rng = np.random.default_rng(0)
        X_normal = rng.normal(0.3, 0.1, size=(600, 5))
        X_a = rng.normal(0.8, 0.1, size=(80, 5))
        X_b = rng.normal(0.1, 0.05, size=(60, 5))
        X = np.vstack([X_normal, X_a, X_b])
        family = np.array(
            ["normal"] * 600 + ["attack_a"] * 80 + ["attack_b"] * 60, dtype=object
        )
        return X, family

    def test_split_structure(self, real_like):
        X, family = real_like
        split = assemble_split(X, family, target_families=["attack_a"],
                               n_labeled=20, random_state=0)
        assert split.n_target_classes == 1
        assert split.nontarget_families == ["attack_b"]
        assert len(split.X_labeled) == 20
        assert set(split.labeled_family) == {"attack_a"}

    def test_contamination_respected(self, real_like):
        X, family = real_like
        split = assemble_split(X, family, target_families=["attack_a"],
                               contamination=0.05, random_state=0)
        kinds = split.unlabeled_kind
        rate = (kinds != KIND_NORMAL).mean()
        assert rate == pytest.approx(0.05, abs=0.02)

    def test_eval_sets_contain_both_anomaly_kinds(self, real_like):
        X, family = real_like
        split = assemble_split(X, family, target_families=["attack_a"], random_state=0)
        assert (split.test_kind == KIND_TARGET).sum() > 0
        assert (split.test_kind == KIND_NONTARGET).sum() > 0

    def test_features_preprocessed_to_unit_interval(self, real_like):
        X, family = real_like
        split = assemble_split(X, family, target_families=["attack_a"], random_state=0)
        assert split.X_unlabeled.min() >= 0.0 and split.X_unlabeled.max() <= 1.0

    def test_model_trains_on_assembled_split(self, real_like):
        from repro.core import TargAD, TargADConfig
        from repro.metrics import auroc

        X, family = real_like
        split = assemble_split(X, family, target_families=["attack_a"],
                               n_labeled=20, random_state=0)
        model = TargAD(TargADConfig(random_state=0, k=2, ae_epochs=10, clf_epochs=10))
        model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
        scores = model.decision_function(split.X_test)
        assert auroc(split.y_test_binary, scores) > 0.9

    def test_unknown_target_family_rejected(self, real_like):
        X, family = real_like
        with pytest.raises(ValueError, match="not present"):
            assemble_split(X, family, target_families=["nope"])

    def test_missing_normal_label_rejected(self, real_like):
        X, family = real_like
        with pytest.raises(ValueError, match="no rows labeled"):
            assemble_split(X, family, target_families=["attack_a"],
                           normal_label="benign")

    def test_csv_to_model_end_to_end(self, tmp_path):
        # Full path: CSV -> matrix -> split -> model.
        rng = np.random.default_rng(1)
        lines = ["f1,f2,kind"]
        for _ in range(300):
            lines.append(f"{rng.normal(0.3, 0.05):.4f},{rng.normal(0.5, 0.05):.4f},normal")
        for _ in range(40):
            lines.append(f"{rng.normal(0.9, 0.05):.4f},{rng.normal(0.5, 0.05):.4f},bad")
        path = tmp_path / "flow.csv"
        path.write_text("\n".join(lines) + "\n")

        table = read_csv(path)
        matrix, cat_idx, names = to_matrix(table, exclude=["kind"])
        family = np.array(table.cells["kind"], dtype=object)
        split = assemble_split(matrix, family, target_families=["bad"],
                               n_labeled=10, categorical_columns=cat_idx,
                               random_state=0)
        assert split.n_features == 2
        assert (split.test_kind == KIND_TARGET).sum() > 0
