"""Dataset registry knob forwarding."""

import numpy as np
import pytest

from repro.data import load_dataset


class TestKnobForwarding:
    def test_target_families_forwarded(self):
        split = load_dataset(
            "unsw_nb15", random_state=0, scale=0.02,
            target_families=["Fuzzers", "Exploits"],
        )
        assert split.target_families == ["Fuzzers", "Exploits"]
        assert "Generic" in split.nontarget_families

    def test_train_nontarget_families_forwarded(self):
        split = load_dataset(
            "unsw_nb15", random_state=0, scale=0.02,
            train_nontarget_families=["Fuzzers"],
        )
        train_families = set(split.unlabeled_family[split.unlabeled_kind == 2])
        assert train_families <= {"Fuzzers"}
        test_families = set(split.test_family[split.test_kind == 2])
        assert len(test_families) == 4  # all four present at test time

    def test_n_labeled_forwarded(self):
        split = load_dataset("kddcup99", random_state=0, scale=1.0, n_labeled=50)
        assert len(split.X_labeled) == 50

    def test_invalid_kwarg_raises(self):
        with pytest.raises(TypeError):
            load_dataset("kddcup99", random_state=0, scale=0.02, bogus_knob=1)

    def test_same_population_different_split_seeds(self):
        """Different split seeds draw different samples, but the population
        structure (and hence preprocessing dimensionality) is stable."""
        a = load_dataset("nsl_kdd", random_state=1, scale=0.02)
        b = load_dataset("nsl_kdd", random_state=2, scale=0.02)
        assert a.n_features == b.n_features
        assert a.target_families == b.target_families
