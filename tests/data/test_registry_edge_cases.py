"""Dataset registry knob forwarding and unknown-name diagnostics."""

import numpy as np
import pytest

from repro.data import get_generator, get_injector, load_dataset
from repro.data.naming import unknown_name_message


class TestKnobForwarding:
    def test_target_families_forwarded(self):
        split = load_dataset(
            "unsw_nb15", random_state=0, scale=0.02,
            target_families=["Fuzzers", "Exploits"],
        )
        assert split.target_families == ["Fuzzers", "Exploits"]
        assert "Generic" in split.nontarget_families

    def test_train_nontarget_families_forwarded(self):
        split = load_dataset(
            "unsw_nb15", random_state=0, scale=0.02,
            train_nontarget_families=["Fuzzers"],
        )
        train_families = set(split.unlabeled_family[split.unlabeled_kind == 2])
        assert train_families <= {"Fuzzers"}
        test_families = set(split.test_family[split.test_kind == 2])
        assert len(test_families) == 4  # all four present at test time

    def test_n_labeled_forwarded(self):
        split = load_dataset("kddcup99", random_state=0, scale=1.0, n_labeled=50)
        assert len(split.X_labeled) == 50

    def test_invalid_kwarg_raises(self):
        with pytest.raises(TypeError):
            load_dataset("kddcup99", random_state=0, scale=0.02, bogus_knob=1)

    def test_same_population_different_split_seeds(self):
        """Different split seeds draw different samples, but the population
        structure (and hence preprocessing dimensionality) is stable."""
        a = load_dataset("nsl_kdd", random_state=1, scale=0.02)
        b = load_dataset("nsl_kdd", random_state=2, scale=0.02)
        assert a.n_features == b.n_features
        assert a.target_families == b.target_families


class TestUnknownNameSuggestions:
    """Typos in registry names get a difflib "did you mean" suggestion."""

    def test_load_dataset_suggests_closest_dataset(self):
        with pytest.raises(KeyError) as err:
            load_dataset("unsw_nb51", random_state=0, scale=0.02)
        message = str(err.value)
        assert "did you mean 'unsw_nb15'" in message
        assert "kddcup99" in message  # full choice list is shown

    def test_get_generator_suggests_closest_dataset(self):
        with pytest.raises(KeyError, match="did you mean 'nsl_kdd'"):
            get_generator("nslkdd", random_state=0)

    def test_get_injector_suggests_closest_family(self):
        with pytest.raises(KeyError, match="did you mean 'temporal'"):
            get_injector("temporl")

    def test_far_off_names_get_no_suggestion(self):
        with pytest.raises(KeyError) as err:
            load_dataset("zzz", random_state=0)
        message = str(err.value)
        assert "did you mean" not in message
        assert "choices:" in message

    def test_message_formatting_helper(self):
        message = unknown_name_message("dataset", "sqbb", ["sqb", "kddcup99"])
        assert message.startswith("unknown dataset 'sqbb'")
        assert "did you mean 'sqb'" in message
        assert "choices: ['kddcup99', 'sqb']" in message
