"""Property tests for the taxonomy injectors (Hypothesis).

Three invariants, for *every* registered injector:

1. seeded determinism — same seed, same reference, same input rows give
   bitwise-identical output (``.tobytes()`` equality);
2. no input mutation — ``transform`` never writes into its argument;
3. label budget — splits built over taxonomy families honor the
   contamination rate exactly (the anomaly count in the unlabeled pool is
   ``round(contamination * n_unlabeled)``).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import attach_taxonomy, get_injector, taxonomy_family_name
from repro.data.schema import KIND_NORMAL
from repro.data.splits import build_split
from repro.data.taxonomy import INJECTOR_NAMES
from tests.conftest import TINY_SPEC, make_tiny_generator

pytestmark = pytest.mark.taxonomy

seeds = st.integers(min_value=0, max_value=2**32 - 1)


def make_reference(seed: int, n: int = 64, d: int = 9) -> np.ndarray:
    rng = np.random.default_rng(seed)
    latent = rng.normal(size=(n, 2))
    return latent @ rng.normal(size=(2, d)) + rng.normal(0.0, 0.3, size=(n, d))


@pytest.mark.parametrize("name", INJECTOR_NAMES)
class TestInjectorProperties:
    @given(fit_seed=seeds, transform_seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_seeded_determinism_is_bitwise(self, name, fit_seed, transform_seed):
        reference = make_reference(fit_seed)
        X = make_reference(fit_seed + 1, n=17)

        def run():
            injector = get_injector(name)
            injector.fit(reference, np.random.default_rng(fit_seed))
            return injector.transform(X, np.random.default_rng(transform_seed))

        first, second = run(), run()
        assert first.tobytes() == second.tobytes()

    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_transform_never_mutates_input(self, name, seed):
        reference = make_reference(seed)
        X = make_reference(seed + 1, n=13)
        before = X.copy()
        injector = get_injector(name).fit(reference, np.random.default_rng(seed))
        out = injector.transform(X, np.random.default_rng(seed))
        np.testing.assert_array_equal(X, before)
        assert out is not X

    @given(seed=seeds, n=st.integers(min_value=1, max_value=40))
    @settings(max_examples=10, deadline=None)
    def test_output_shape_and_finiteness(self, name, seed, n):
        reference = make_reference(seed)
        X = make_reference(seed + 1, n=n)
        injector = get_injector(name).fit(reference, np.random.default_rng(seed))
        out = injector.transform(X, np.random.default_rng(seed))
        assert out.shape == X.shape
        assert np.isfinite(out).all()

    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_fit_determinism_of_structure(self, name, seed):
        reference = make_reference(seed)
        a = get_injector(name).fit(reference, np.random.default_rng(seed))
        b = get_injector(name).fit(reference, np.random.default_rng(seed))
        for attr in ("mu_", "sigma_", "lo_", "hi_"):
            assert getattr(a, attr).tobytes() == getattr(b, attr).tobytes()
        structure = [k for k in vars(a) if k.endswith("_") and k not in
                     ("mu_", "sigma_", "lo_", "hi_")]
        for attr in structure:
            assert np.asarray(getattr(a, attr)).tobytes() == \
                np.asarray(getattr(b, attr)).tobytes()


@given(
    contamination=st.floats(min_value=0.01, max_value=0.15),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=8, deadline=None)
def test_split_contamination_budget_is_exact(contamination, seed):
    """Taxonomy-backed splits honor the contamination rate to the row."""
    generator = attach_taxonomy(
        make_tiny_generator(0), ["local", "calculation"],
        target_families=["calculation"], random_state=0,
    )
    split = build_split(
        generator, TINY_SPEC, scale=0.5, random_state=seed,
        contamination=contamination,
        target_families=[taxonomy_family_name("calculation")],
        train_nontarget_families=[taxonomy_family_name("local")],
    )
    n_unlabeled = len(split.X_unlabeled)
    n_anomalies = int((split.unlabeled_kind != KIND_NORMAL).sum())
    assert n_anomalies == round(contamination * n_unlabeled)
    assert set(split.unlabeled_family[split.unlabeled_kind != KIND_NORMAL].astype(str)) \
        <= {"tax:calculation", "tax:local"}
