"""Full-scale Table I fidelity.

At ``scale=1.0`` the splits must match the paper's Table I counts exactly
(up to the ±1 rounding of even family allocation). Generation is pure
numpy so this is seconds, not minutes; the memory-heavy datasets are
checked at scale 0.5 with proportional expectations.
"""

import numpy as np
import pytest

from repro.data import load_dataset
from repro.data.kddcup99 import SPEC as KDD_SPEC
from repro.data.nsl_kdd import SPEC as NSL_SPEC
from repro.data.sqb import SPEC as SQB_SPEC
from repro.data.unsw_nb15 import SPEC as UNSW_SPEC


class TestFullScaleCounts:
    @pytest.mark.parametrize("name,spec", [("kddcup99", KDD_SPEC), ("nsl_kdd", NSL_SPEC)])
    def test_exact_table1_counts(self, name, spec):
        split = load_dataset(name, random_state=0, scale=1.0)
        s = split.summary()
        assert s["labeled_target"] == spec.n_labeled
        assert s["unlabeled"] == spec.n_unlabeled
        assert s["validation"]["normal"] == spec.val_counts[0]
        assert s["validation"]["target"] == spec.val_counts[1]
        assert s["validation"]["non-target"] == spec.val_counts[2]
        assert s["testing"]["normal"] == spec.test_counts[0]
        assert s["testing"]["target"] == spec.test_counts[1]
        assert s["testing"]["non-target"] == spec.test_counts[2]

    @pytest.mark.parametrize("name,spec", [("unsw_nb15", UNSW_SPEC), ("sqb", SQB_SPEC)])
    def test_half_scale_counts(self, name, spec):
        split = load_dataset(name, random_state=0, scale=0.5)
        s = split.summary()
        assert s["unlabeled"] == round(spec.n_unlabeled * 0.5)
        assert s["testing"]["target"] == round(spec.test_counts[1] * 0.5)
        assert s["testing"]["non-target"] == round(spec.test_counts[2] * 0.5)

    def test_contamination_at_full_scale(self):
        split = load_dataset("kddcup99", random_state=0, scale=1.0)
        comp = split.summary()["unlabeled_composition"]
        anomalies = comp["target"] + comp["non-target"]
        assert anomalies == pytest.approx(0.05 * KDD_SPEC.n_unlabeled, abs=2)

    def test_labeled_fraction_in_paper_band(self):
        """The paper states labeled anomalies are 0.16%-0.48% of training."""
        for name in ("kddcup99", "nsl_kdd"):
            split = load_dataset(name, random_state=0, scale=1.0)
            fraction = len(split.X_labeled) / (len(split.X_labeled) + len(split.X_unlabeled))
            assert 0.001 < fraction < 0.006
