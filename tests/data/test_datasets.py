"""The four dataset analogs: Table I fidelity and registry access."""

import numpy as np
import pytest

from repro.data import DATASET_NAMES, get_generator, load_dataset
from repro.data import kddcup99, nsl_kdd, sqb, unsw_nb15

# (module, expected post-one-hot dimensionality from Table I, m)
DATASETS = [
    ("unsw_nb15", unsw_nb15, 196, 3),
    ("kddcup99", kddcup99, 32, 2),
    ("nsl_kdd", nsl_kdd, 41, 2),
    ("sqb", sqb, 182, 2),
]


class TestRegistry:
    def test_all_names_registered(self):
        assert set(DATASET_NAMES) == {"unsw_nb15", "kddcup99", "nsl_kdd", "sqb"}

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("mnist")
        with pytest.raises(KeyError):
            get_generator("mnist")


@pytest.mark.parametrize("name,module,dims,m", DATASETS)
class TestDatasetFidelity:
    def test_dimensionality_matches_table1(self, name, module, dims, m):
        split = load_dataset(name, random_state=0, scale=0.02)
        assert split.n_features == dims

    def test_target_class_count(self, name, module, dims, m):
        split = load_dataset(name, random_state=0, scale=0.02)
        assert split.n_target_classes == m
        assert split.target_families == module.TARGET_FAMILIES

    def test_nontarget_families(self, name, module, dims, m):
        split = load_dataset(name, random_state=0, scale=0.02)
        assert split.nontarget_families == module.NONTARGET_FAMILIES

    def test_split_sizes_scale_with_table1(self, name, module, dims, m):
        split = load_dataset(name, random_state=0, scale=0.02)
        s = split.summary()
        assert s["unlabeled"] == pytest.approx(module.SPEC.n_unlabeled * 0.02, rel=0.05)

    def test_generator_population_fixed_by_seed(self, name, module, dims, m):
        g1 = get_generator(name, random_state=5)
        g2 = get_generator(name, random_state=5)
        d1 = g1.sample_normal(10, np.random.default_rng(0))
        d2 = g2.sample_normal(10, np.random.default_rng(0))
        np.testing.assert_array_equal(d1.X, d2.X)


class TestDatasetSemantics:
    def test_unsw_has_seven_anomaly_families(self):
        gen = get_generator("unsw_nb15", random_state=0)
        assert len(gen.family_names) == 7

    def test_kdd_family_names(self):
        gen = get_generator("kddcup99", random_state=0)
        assert gen.target_family_names == ["R2L", "DoS"]
        assert gen.nontarget_family_names == ["Probe"]

    def test_sqb_test_set_dwarfs_targets(self):
        split = load_dataset("sqb", random_state=0, scale=0.02)
        s = split.summary()["testing"]
        # Extreme imbalance, as in the paper: targets ≪ non-targets ≪ normal.
        assert s["target"] < s["non-target"] < s["normal"]

    def test_unsw_nontarget_ratio_matches_table1(self):
        split = load_dataset("unsw_nb15", random_state=0, scale=0.05)
        s = split.summary()["testing"]
        # Table I: 1666 targets vs 2335 non-targets (ratio ~0.71).
        assert s["target"] / s["non-target"] == pytest.approx(1666 / 2335, rel=0.1)
