"""Split assembly: Table I composition, experiment knobs, preprocessing."""

import numpy as np
import pytest

from repro.data.schema import KIND_NONTARGET, KIND_NORMAL, KIND_TARGET
from repro.data.splits import TableISpec, build_split, default_scale
from tests.conftest import TINY_SPEC, make_tiny_generator


class TestBuildSplitComposition:
    def test_counts_match_spec(self, tiny_split):
        s = tiny_split.summary()
        # labeled scale floor is 1/3, here scale=1.0 so exact counts hold
        assert s["labeled_target"] == TINY_SPEC.n_labeled
        assert s["unlabeled"] == TINY_SPEC.n_unlabeled
        assert s["validation"]["normal"] == TINY_SPEC.val_counts[0]
        assert s["testing"]["target"] == TINY_SPEC.test_counts[1]

    def test_contamination_rate(self, tiny_split):
        comp = tiny_split.summary()["unlabeled_composition"]
        n_anom = comp["target"] + comp["non-target"]
        assert n_anom == pytest.approx(TINY_SPEC.contamination * TINY_SPEC.n_unlabeled, abs=2)

    def test_labeled_classes_cover_all_targets(self, tiny_split):
        assert set(tiny_split.y_labeled) == {0, 1}
        assert tiny_split.n_target_classes == 2

    def test_labeled_families_match_class_mapping(self, tiny_split):
        for cls, fam in zip(tiny_split.y_labeled, tiny_split.labeled_family):
            assert tiny_split.target_families[cls] == fam

    def test_features_in_unit_interval(self, tiny_split):
        for X in (tiny_split.X_labeled, tiny_split.X_unlabeled, tiny_split.X_val, tiny_split.X_test):
            assert X.min() >= 0.0 and X.max() <= 1.0

    def test_onehot_expansion(self, tiny_split):
        # 12 numeric + one categorical of cardinality 3.
        assert tiny_split.n_features == 15

    def test_binary_labels(self, tiny_split):
        y = tiny_split.y_test_binary
        assert set(np.unique(y)) <= {0, 1}
        assert y.sum() == (tiny_split.test_kind == KIND_TARGET).sum()


class TestSplitKnobs:
    def test_contamination_override(self):
        gen = make_tiny_generator(0)
        split = build_split(gen, TINY_SPEC, scale=1.0, random_state=0, contamination=0.15)
        comp = split.summary()["unlabeled_composition"]
        assert comp["target"] + comp["non-target"] == pytest.approx(0.15 * 900, abs=2)

    def test_n_labeled_override(self):
        gen = make_tiny_generator(0)
        split = build_split(gen, TINY_SPEC, scale=1.0, random_state=0, n_labeled=10)
        assert len(split.X_labeled) == 10

    def test_target_families_override_redesignates(self):
        gen = make_tiny_generator(0)
        split = build_split(
            gen, TINY_SPEC, scale=1.0, random_state=0, target_families=["nontgt"]
        )
        assert split.target_families == ["nontgt"]
        assert set(split.nontarget_families) == {"tgt_easy", "tgt_hard"}
        # Labeled data comes from the new target family.
        assert set(split.labeled_family) == {"nontgt"}
        # Test targets are exactly the redesignated family's instances.
        target_mask = split.test_kind == KIND_TARGET
        assert set(split.test_family[target_mask]) == {"nontgt"}

    def test_train_nontarget_restriction(self):
        gen = make_tiny_generator(0)
        split = build_split(
            gen, TINY_SPEC, scale=1.0, random_state=0, train_nontarget_families=[]
        )
        # No non-target anomalies in training, but the test set keeps them.
        assert (split.unlabeled_kind == KIND_NONTARGET).sum() == 0
        assert (split.test_kind == KIND_NONTARGET).sum() > 0

    def test_unknown_target_family_rejected(self):
        gen = make_tiny_generator(0)
        with pytest.raises(ValueError):
            build_split(gen, TINY_SPEC, random_state=0, target_families=["missing"])

    def test_bad_train_nontarget_rejected(self):
        gen = make_tiny_generator(0)
        with pytest.raises(ValueError):
            build_split(gen, TINY_SPEC, random_state=0, train_nontarget_families=["tgt_easy"])

    def test_bad_contamination_rejected(self):
        gen = make_tiny_generator(0)
        with pytest.raises(ValueError):
            build_split(gen, TINY_SPEC, random_state=0, contamination=1.5)

    def test_bad_scale_rejected(self):
        gen = make_tiny_generator(0)
        with pytest.raises(ValueError):
            build_split(gen, TINY_SPEC, random_state=0, scale=0.0)

    def test_scale_shrinks_split(self):
        gen = make_tiny_generator(0)
        split = build_split(gen, TINY_SPEC, scale=0.5, random_state=0)
        assert split.summary()["unlabeled"] == 450

    def test_labeled_floor_protects_small_scales(self):
        gen = make_tiny_generator(0)
        split = build_split(gen, TINY_SPEC, scale=0.1, random_state=0)
        # 40 * max(0.1, 1/3) ≈ 13, not 4.
        assert len(split.X_labeled) >= 12

    def test_seed_determinism(self):
        gen1 = make_tiny_generator(0)
        gen2 = make_tiny_generator(0)
        s1 = build_split(gen1, TINY_SPEC, scale=1.0, random_state=3)
        s2 = build_split(gen2, TINY_SPEC, scale=1.0, random_state=3)
        np.testing.assert_array_equal(s1.X_test, s2.X_test)
        np.testing.assert_array_equal(s1.test_kind, s2.test_kind)

    def test_different_seeds_resample(self):
        gen = make_tiny_generator(0)
        s1 = build_split(gen, TINY_SPEC, scale=1.0, random_state=1)
        s2 = build_split(gen, TINY_SPEC, scale=1.0, random_state=2)
        assert not np.allclose(s1.X_test, s2.X_test)


class TestEvalNormalContamination:
    def test_hidden_anomalies_keep_normal_label(self):
        gen = make_tiny_generator(0)
        spec = TableISpec(
            name="tiny-hidden",
            n_labeled=40,
            n_unlabeled=900,
            val_counts=(200, 20, 15),
            test_counts=(300, 30, 20),
            contamination=0.08,
            eval_normal_contamination=0.1,
        )
        split = build_split(gen, spec, scale=1.0, random_state=0)
        normal_mask = split.test_kind == KIND_NORMAL
        # Composition counts are unchanged...
        assert normal_mask.sum() == 300
        # ...but some "normal" rows carry anomaly family names.
        families = set(split.test_family[normal_mask])
        assert families & {"tgt_easy", "tgt_hard", "nontgt"}


def test_default_scale_reads_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.25")
    assert default_scale() == 0.25
    monkeypatch.delenv("REPRO_SCALE")
    assert default_scale() == 0.125
