"""Split save/load round-trip."""

import numpy as np
import pytest

from repro.data.export import load_split, save_split


class TestSplitExport:
    def test_roundtrip_arrays(self, tiny_split, tmp_path):
        path = tmp_path / "split.npz"
        save_split(tiny_split, path)
        loaded = load_split(path)
        np.testing.assert_array_equal(loaded.X_test, tiny_split.X_test)
        np.testing.assert_array_equal(loaded.y_labeled, tiny_split.y_labeled)
        np.testing.assert_array_equal(loaded.unlabeled_kind, tiny_split.unlabeled_kind)

    def test_roundtrip_families_and_metadata(self, tiny_split, tmp_path):
        path = tmp_path / "split.npz"
        save_split(tiny_split, path)
        loaded = load_split(path)
        assert loaded.name == tiny_split.name
        assert loaded.target_families == tiny_split.target_families
        assert list(loaded.test_family) == list(tiny_split.test_family)
        assert loaded.metadata == tiny_split.metadata

    def test_summary_preserved(self, tiny_split, tmp_path):
        path = tmp_path / "split.npz"
        save_split(tiny_split, path)
        assert load_split(path).summary() == tiny_split.summary()

    def test_loaded_split_trains_model(self, tiny_split, tmp_path):
        from repro.core import TargAD, TargADConfig

        path = tmp_path / "split.npz"
        save_split(tiny_split, path)
        loaded = load_split(path)
        model = TargAD(TargADConfig(random_state=0, k=2, ae_epochs=2, clf_epochs=2))
        model.fit(loaded.X_unlabeled, loaded.X_labeled, loaded.y_labeled)
        assert np.isfinite(model.decision_function(loaded.X_test)).all()
