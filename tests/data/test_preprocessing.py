"""Min-max scaling, one-hot encoding, and the combined preprocessor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data import MinMaxScaler, OneHotEncoder, TabularPreprocessor


class TestMinMaxScaler:
    def test_output_in_unit_interval(self, rng):
        X = rng.normal(5, 10, size=(50, 4))
        out = MinMaxScaler().fit_transform(X)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_train_extremes_map_to_bounds(self, rng):
        X = rng.normal(0, 1, size=(50, 3))
        scaler = MinMaxScaler().fit(X)
        out = scaler.transform(X)
        np.testing.assert_allclose(out.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(out.max(axis=0), 1.0, atol=1e-12)

    def test_constant_feature_maps_to_zero(self):
        X = np.full((10, 2), 3.0)
        out = MinMaxScaler().fit_transform(X)
        np.testing.assert_array_equal(out, 0.0)

    def test_out_of_range_clipped(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [1.0]]))
        out = scaler.transform(np.array([[-5.0], [5.0]]))
        np.testing.assert_array_equal(out.ravel(), [0.0, 1.0])

    def test_clip_disabled(self):
        scaler = MinMaxScaler(clip=False).fit(np.array([[0.0], [1.0]]))
        assert scaler.transform(np.array([[2.0]]))[0, 0] == pytest.approx(2.0)

    def test_inverse_transform_roundtrip(self, rng):
        X = rng.normal(2, 3, size=(30, 4))
        scaler = MinMaxScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X, atol=1e-9)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.zeros((2, 2)))

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            MinMaxScaler().fit(np.zeros(5))


class TestOneHotEncoder:
    def test_basic_encoding(self):
        X = np.array([[0], [1], [2], [1]])
        out = OneHotEncoder().fit_transform(X)
        expected = np.array([[1, 0, 0], [0, 1, 0], [0, 0, 1], [0, 1, 0]], dtype=float)
        np.testing.assert_array_equal(out, expected)

    def test_multiple_columns(self):
        X = np.array([[0, 5], [1, 7]])
        enc = OneHotEncoder().fit(X)
        assert enc.n_output_features == 4
        out = enc.transform(X)
        assert out.shape == (2, 4)
        np.testing.assert_array_equal(out.sum(axis=1), [2.0, 2.0])

    def test_unseen_category_maps_to_zeros(self):
        enc = OneHotEncoder().fit(np.array([[0], [1]]))
        out = enc.transform(np.array([[9]]))
        np.testing.assert_array_equal(out, [[0.0, 0.0]])

    def test_column_count_mismatch_rejected(self):
        enc = OneHotEncoder().fit(np.array([[0, 1]]))
        with pytest.raises(ValueError):
            enc.transform(np.array([[0]]))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            OneHotEncoder().transform(np.zeros((1, 1)))


class TestTabularPreprocessor:
    def test_expands_categoricals_and_scales(self, rng):
        numeric = rng.normal(0, 5, size=(40, 3))
        cats = rng.integers(0, 3, size=(40, 2)).astype(float)
        X = np.concatenate([numeric, cats], axis=1)
        pre = TabularPreprocessor(categorical_columns=[3, 4])
        out = pre.fit_transform(X)
        assert out.shape == (40, 3 + 6)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_numeric_only(self, rng):
        X = rng.normal(size=(20, 4))
        out = TabularPreprocessor().fit_transform(X)
        assert out.shape == (20, 4)

    def test_transform_consistent_with_fit_transform(self, rng):
        X = rng.normal(size=(20, 4))
        pre = TabularPreprocessor()
        a = pre.fit_transform(X)
        b = pre.transform(X)
        np.testing.assert_array_equal(a, b)


@settings(max_examples=25, deadline=None)
@given(
    arrays(
        np.float64,
        st.tuples(st.integers(2, 30), st.integers(1, 5)),
        elements=st.floats(-1e6, 1e6, allow_nan=False, width=64),
    )
)
def test_minmax_always_in_unit_interval(X):
    out = MinMaxScaler().fit_transform(X)
    assert np.all(out >= 0.0) and np.all(out <= 1.0)
