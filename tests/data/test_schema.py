"""DatasetSplit/GeneratedData container semantics."""

import numpy as np
import pytest

from repro.data.schema import (
    KIND_NAMES,
    KIND_NONTARGET,
    KIND_NORMAL,
    KIND_TARGET,
    DatasetSplit,
)


class TestKindConstants:
    def test_codes(self):
        assert (KIND_NORMAL, KIND_TARGET, KIND_NONTARGET) == (0, 1, 2)

    def test_names_cover_all_codes(self):
        assert set(KIND_NAMES) == {0, 1, 2}


class TestDatasetSplit:
    def test_binary_labels_only_targets_positive(self, tiny_split):
        labels = tiny_split.binary_labels(np.array([0, 1, 2, 1]))
        np.testing.assert_array_equal(labels, [0, 1, 0, 1])

    def test_n_features_matches_matrices(self, tiny_split):
        assert tiny_split.n_features == tiny_split.X_test.shape[1]
        assert tiny_split.n_features == tiny_split.X_labeled.shape[1]

    def test_summary_counts_consistent(self, tiny_split):
        s = tiny_split.summary()
        test_total = sum(s["testing"].values())
        assert test_total == len(tiny_split.X_test)
        unlabeled_total = sum(s["unlabeled_composition"].values())
        assert unlabeled_total == s["unlabeled"]

    def test_y_properties_match_binary_labels(self, tiny_split):
        np.testing.assert_array_equal(
            tiny_split.y_test_binary, tiny_split.binary_labels(tiny_split.test_kind)
        )
        np.testing.assert_array_equal(
            tiny_split.y_val_binary, tiny_split.binary_labels(tiny_split.val_kind)
        )

    def test_family_arrays_are_object_strings(self, tiny_split):
        assert tiny_split.test_family.dtype == object
        assert all(isinstance(f, str) for f in tiny_split.test_family[:10])

    def test_kind_and_family_consistent(self, tiny_split):
        targets = set(tiny_split.target_families)
        nontargets = set(tiny_split.nontarget_families)
        for kind, fam in zip(tiny_split.test_kind, tiny_split.test_family):
            if kind == KIND_TARGET:
                assert fam in targets
            elif kind == KIND_NONTARGET:
                assert fam in nontargets
