"""LifecycleManager: drift debounce, refit cycle, gate, rollback."""

import numpy as np
import pytest

from repro.core import TargAD, TargADConfig
from repro.lifecycle import DriftPolicy, LifecycleManager
from repro.obs import TelemetryRegistry
from repro.resilience import SwapFaultInjector, SwapFaultPlan
from repro.serving import ScoringPipeline


@pytest.fixture(scope="module")
def split():
    from tests.conftest import TINY_SPEC, make_tiny_generator
    from repro.data.splits import build_split

    return build_split(make_tiny_generator(0), TINY_SPEC, scale=1.0, random_state=0)


@pytest.fixture(scope="module")
def model(split):
    model = TargAD(TargADConfig(random_state=0, k=2, ae_lr=3e-3,
                                ae_epochs=10, clf_epochs=12))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    return model


def make_manager(split, model, *, policy=None, oracle=None, injector=None,
                 background=False, telemetry=None, checkpoint_dir=None):
    pipe = ScoringPipeline(model, policy="f1", drift_threshold=0.3,
                           telemetry=telemetry)
    pipe.calibrate(split.X_val, split.y_val_binary,
                   X_reference=split.X_unlabeled)
    return LifecycleManager(
        pipe, split.X_unlabeled, split.X_labeled, split.y_labeled,
        split.X_val, split.y_val_binary, oracle=oracle,
        policy=policy if policy is not None else DriftPolicy(
            confirm_checks=2, cooldown_batches=4, label_budget=8,
            refit_epochs=2, min_auprc_ratio=0.3,
        ),
        background=background, fault_injector=injector,
        checkpoint_dir=checkpoint_dir, telemetry=telemetry, seed=0,
    )


class TestDriftPolicy:
    @pytest.mark.parametrize("kwargs", [
        dict(confirm_checks=0),
        dict(cooldown_batches=-1),
        dict(label_budget=-1),
        dict(refit_epochs=0),
        dict(recent_rows=0),
        dict(min_auprc_ratio=-0.1),
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DriftPolicy(**kwargs)


class TestDebounce:
    def test_single_drifted_batch_does_not_trigger(self, split, model):
        manager = make_manager(split, model)
        manager.process(split.X_test[:60] + 6.0)
        manager.process(split.X_test[:60])  # back to normal: streak resets
        manager.process(split.X_test[60:120] + 6.0)
        assert manager.pipeline.generation == 0
        assert manager.history == []

    def test_consecutive_drift_confirms_and_swaps(self, split, model):
        manager = make_manager(split, model)
        for i in range(2):
            manager.process(split.X_test[i * 60:(i + 1) * 60] + 6.0)
        assert manager.pipeline.generation == 1
        assert [e.kind for e in manager.history] == ["drift_confirmed", "swap"]

    def test_cooldown_blocks_immediate_retrigger(self, split, model):
        manager = make_manager(split, model)
        for i in range(6):  # confirm at 2; 4 more land inside the cooldown
            manager.process(split.X_test[:60] + 6.0)
        assert manager.pipeline.generation == 1
        assert sum(1 for e in manager.history if e.kind == "swap") == 1

    def test_serving_continues_after_swap(self, split, model):
        manager = make_manager(split, model)
        for i in range(2):
            manager.process(split.X_test[:60] + 6.0)
        batch = manager.process(split.X_test[60:120])
        assert np.isfinite(batch.scores[batch.scored]).all()
        assert manager.pipeline.circuit_breaker.state == "closed"


class TestLabelQuery:
    def test_oracle_labels_grow_the_labeled_pool(self, split, model):
        calls = []

        def oracle(rows):
            calls.append(len(rows))
            return np.ones(len(rows), dtype=np.int64)  # everything class 1

        manager = make_manager(split, model, oracle=oracle)
        n_before = len(manager._X_labeled)
        for i in range(2):
            manager.process(split.X_test[:60] + 6.0)
        assert calls == [8]  # one query, budget-bounded
        assert len(manager._X_labeled) == n_before + 8
        assert set(manager._y_labeled[-8:]) == {0}  # stored 0-based

    def test_unconfirmed_answers_not_added(self, split, model):
        manager = make_manager(
            split, model,
            oracle=lambda rows: np.zeros(len(rows), dtype=np.int64),
        )
        n_before = len(manager._X_labeled)
        for i in range(2):
            manager.process(split.X_test[:60] + 6.0)
        assert len(manager._X_labeled) == n_before
        swap = [e for e in manager.history if e.kind == "swap"][0]
        assert swap.details["labels_queried"] == 8
        assert swap.details["labels_found"] == 0

    def test_no_oracle_means_no_queries(self, split, model):
        manager = make_manager(split, model, oracle=None)
        for i in range(2):
            manager.process(split.X_test[:60] + 6.0)
        swap = [e for e in manager.history if e.kind == "swap"][0]
        assert swap.details["labels_queried"] == 0

    def test_unspent_budget_carries_to_next_cycle(self, split, model):
        calls = []

        def oracle(rows):
            calls.append(len(rows))
            return np.ones(len(rows), dtype=np.int64)

        telemetry = TelemetryRegistry()
        manager = make_manager(
            split, model, oracle=oracle, telemetry=telemetry,
            policy=DriftPolicy(confirm_checks=2, cooldown_batches=0,
                               label_budget=200, refit_epochs=2,
                               min_auprc_ratio=0.3),
        )
        for i in range(2):
            manager.process(split.X_test[i * 60:(i + 1) * 60] + 6.0)
        # The recent pool (~120 rows) is smaller than the 200-row budget,
        # so the remainder rolls over instead of being forfeited.
        assert len(calls) == 1 and calls[0] < 200
        carried = 200 - calls[0]
        assert manager._label_carry == carried
        assert telemetry.counters["lifecycle.labels_carried"] == carried
        assert telemetry.gauges["lifecycle.label_carry"] == float(carried)
        swap = [e for e in manager.history if e.kind == "swap"][0]
        assert swap.details["labels_carried"] == carried

        manager.refit_now()
        # Amortized budget = base 200 + carried; still pool-bounded, and
        # the new remainder reflects the enlarged budget.
        assert len(calls) == 2
        assert manager._label_carry == 200 + carried - calls[1]


class TestGateAndRollback:
    def test_impossible_gate_rolls_back(self, split, model):
        telemetry = TelemetryRegistry()
        manager = make_manager(
            split, model, telemetry=telemetry,
            policy=DriftPolicy(confirm_checks=2, cooldown_batches=4,
                               refit_epochs=2, min_auprc_ratio=100.0),
        )
        for i in range(2):
            manager.process(split.X_test[:60] + 6.0)
        assert manager.pipeline.generation == 0
        rollback = [e for e in manager.history if e.kind == "rollback"][0]
        assert rollback.details["phase"] == "validate"
        assert rollback.details["error"] == "RefitRejected"
        assert telemetry.counters["lifecycle.rollbacks"] == 1
        # the old generation still serves
        batch = manager.process(split.X_test[60:120])
        assert np.isfinite(batch.scores[batch.scored]).all()

    def test_injected_refit_fault_rolls_back(self, split, model):
        injector = SwapFaultInjector(SwapFaultPlan(fail_phases=("refit",)))
        manager = make_manager(split, model, injector=injector)
        for i in range(2):
            manager.process(split.X_test[:60] + 6.0)
        assert manager.pipeline.generation == 0
        rollback = [e for e in manager.history if e.kind == "rollback"][0]
        assert rollback.details["phase"] == "refit"
        assert injector.fired == [(1, "refit")]

    def test_fault_on_second_cycle_only(self, split, model):
        injector = SwapFaultInjector(
            SwapFaultPlan(fail_phases=("assemble",), on_cycle=(2,))
        )
        manager = make_manager(split, model, injector=injector)
        for i in range(2):  # cycle 1: clean swap
            manager.process(split.X_test[:60] + 6.0)
        assert manager.pipeline.generation == 1
        for i in range(10):  # drain cooldown, then confirm again
            manager.process(split.X_test[:60] + 9.0)
        assert manager.pipeline.generation == 1  # cycle 2 faulted
        kinds = [e.kind for e in manager.history]
        assert kinds.count("rollback") == 1


class TestBackgroundRefit:
    def test_background_swap_completes(self, split, model):
        manager = make_manager(split, model, background=True)
        for i in range(2):
            manager.process(split.X_test[:60] + 6.0)
        manager.wait(timeout=60.0)
        assert manager.pipeline.generation == 1
        # serving during/after the background refit never faulted
        assert manager.pipeline.circuit_breaker.state == "closed"


class TestCycle:
    def test_refit_now_forces_a_cycle(self, split, model):
        manager = make_manager(split, model)
        manager.process(split.X_test[:120])  # remember some served rows
        assert manager.refit_now() is True
        assert manager.pipeline.generation == 1

    def test_checkpoints_written_per_cycle(self, split, model, tmp_path):
        manager = make_manager(split, model, checkpoint_dir=tmp_path)
        manager.process(split.X_test[:120])
        assert manager.refit_now() is True
        assert (tmp_path / "cycle-1").is_dir()
        assert list((tmp_path / "cycle-1").glob("ckpt-*.npz"))

    def test_report_shape(self, split, model):
        manager = make_manager(split, model)
        for i in range(2):
            manager.process(split.X_test[:60] + 6.0)
        report = manager.report()
        assert report["generation"] == 1
        assert report["swaps"] == 1 and report["rollbacks"] == 0
        assert report["cycles"] == 1
        kinds = [e["kind"] for e in report["events"]]
        assert kinds == ["drift_confirmed", "swap"]

    def test_telemetry_series(self, split, model):
        telemetry = TelemetryRegistry()
        manager = make_manager(split, model, telemetry=telemetry)
        for i in range(2):
            manager.process(split.X_test[:60] + 6.0)
        assert telemetry.counters["lifecycle.drift_confirmed"] == 1
        assert telemetry.counters["lifecycle.refits"] == 1
        assert telemetry.counters["lifecycle.swaps"] == 1
        assert telemetry.gauges["lifecycle.generation"] == 1.0
        cycles = [e for e in telemetry.events if e.name == "lifecycle.cycle"]
        assert len(cycles) == 1
        assert cycles[0].fields["outcome"] == "swap"
        assert cycles[0].fields["auprc_ratio"] > 0
