"""Gradient and semantic tests for the extended op set."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients

RNG = np.random.default_rng(11)


def randn(*shape):
    return RNG.standard_normal(shape)


def distinct(*shape):
    """Values with no ties (for extremum gradients)."""
    n = int(np.prod(shape))
    return (np.arange(n) * 0.317 + RNG.standard_normal(n) * 0.01).reshape(shape)


class TestMinVarStd:
    def test_min_gradient(self):
        check_gradients(lambda a: a.min(axis=1).sum(), [distinct(3, 4)])

    def test_min_all(self):
        check_gradients(lambda a: a.min() * 2.0, [distinct(3, 3)])

    def test_min_forward(self):
        t = Tensor(np.array([[3.0, 1.0, 2.0]]))
        assert t.min(axis=1).data[0] == 1.0

    def test_var_matches_numpy(self):
        x = randn(4, 5)
        np.testing.assert_allclose(Tensor(x).var(axis=1).data, x.var(axis=1), atol=1e-12)

    def test_var_gradient(self):
        check_gradients(lambda a: a.var(axis=1).sum(), [randn(3, 5)])

    def test_var_all_elements(self):
        x = randn(3, 4)
        assert Tensor(x).var().item() == pytest.approx(x.var())

    def test_std_matches_numpy(self):
        x = randn(4, 5)
        np.testing.assert_allclose(Tensor(x).std(axis=0).data, x.std(axis=0), atol=1e-6)

    def test_std_gradient(self):
        check_gradients(lambda a: a.std(axis=1).sum(), [randn(3, 5)], atol=1e-4)


class TestWhere:
    def test_forward(self):
        cond = np.array([True, False, True])
        out = Tensor.where(cond, Tensor(np.ones(3)), Tensor(np.zeros(3)))
        np.testing.assert_array_equal(out.data, [1.0, 0.0, 1.0])

    def test_gradient_routes_by_mask(self):
        cond = np.array([True, False])
        a = Tensor(np.zeros(2), requires_grad=True)
        b = Tensor(np.zeros(2), requires_grad=True)
        Tensor.where(cond, a, b).sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 0.0])
        np.testing.assert_array_equal(b.grad, [0.0, 1.0])

    def test_gradcheck(self):
        cond = RNG.random((3, 4)) > 0.5
        check_gradients(
            lambda a, b: Tensor.where(cond, a, b).sum(), [randn(3, 4), randn(3, 4)]
        )


class TestElementwiseExtrema:
    def test_maximum_forward(self):
        out = Tensor(np.array([1.0, 5.0])).maximum(Tensor(np.array([3.0, 2.0])))
        np.testing.assert_array_equal(out.data, [3.0, 5.0])

    def test_maximum_gradient(self):
        check_gradients(
            lambda a, b: a.maximum(b).sum(), [distinct(3, 3), distinct(3, 3)[::-1]]
        )

    def test_minimum_gradient(self):
        check_gradients(
            lambda a, b: a.minimum(b).sum(), [distinct(3, 3), distinct(3, 3)[::-1]]
        )

    def test_tie_splits_gradient(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        b = Tensor(np.array([2.0]), requires_grad=True)
        a.maximum(b).sum().backward()
        assert a.grad[0] == pytest.approx(0.5)
        assert b.grad[0] == pytest.approx(0.5)

    def test_maximum_with_scalar(self):
        out = Tensor(np.array([-1.0, 1.0])).maximum(0.0)
        np.testing.assert_array_equal(out.data, [0.0, 1.0])
