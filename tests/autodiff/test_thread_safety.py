"""Thread-locality of grad mode and slots guarantees on hot-path objects."""

import threading

import numpy as np
import pytest

from repro.autodiff import Tensor, is_grad_enabled, no_grad
from repro.autodiff.tensor import _Backward


def test_no_grad_disables_recording():
    a = Tensor(np.ones((2, 2)), requires_grad=True)
    with no_grad():
        assert not is_grad_enabled()
        out = (a * 2.0).sum()
    assert is_grad_enabled()
    assert out._backward is None
    assert not out.requires_grad


def test_no_grad_is_thread_local():
    """One thread entering no_grad() must not disable recording elsewhere.

    The main thread parks inside ``no_grad()`` while a worker thread checks
    its own grad mode and records a backward graph; a barrier pins both
    threads inside the critical section at the same time.
    """
    inside = threading.Barrier(2, timeout=5)
    done = threading.Event()
    results = {}

    def worker():
        inside.wait()
        results["enabled"] = is_grad_enabled()
        x = Tensor(np.full((3,), 2.0), requires_grad=True)
        y = (x * x).sum()
        y.backward()
        results["grad"] = x.grad
        # Symmetrically: the worker's no_grad() must not leak to the main
        # thread, which is still inside its own no_grad() block.
        with no_grad():
            results["worker_disabled"] = not is_grad_enabled()
        done.set()
        inside.wait()  # hold the main thread in its block until we finish

    t = threading.Thread(target=worker)
    t.start()
    with no_grad():
        inside.wait()
        assert not is_grad_enabled()
        assert done.wait(timeout=5)
        assert not is_grad_enabled()  # worker's enter/exit did not leak here
        inside.wait()
    t.join(timeout=5)
    assert results["enabled"] is True
    assert results["worker_disabled"] is True
    np.testing.assert_allclose(results["grad"], np.full((3,), 4.0))


def test_no_grad_restores_after_exception():
    with pytest.raises(RuntimeError):
        with no_grad():
            raise RuntimeError("boom")
    assert is_grad_enabled()


def test_nested_no_grad():
    with no_grad():
        with no_grad():
            assert not is_grad_enabled()
        assert not is_grad_enabled()
    assert is_grad_enabled()


class TestSlots:
    def test_tensor_has_no_instance_dict(self):
        t = Tensor(np.ones(3))
        assert not hasattr(t, "__dict__")
        with pytest.raises(AttributeError):
            t.some_new_attribute = 1

    def test_backward_record_has_no_instance_dict(self):
        a = Tensor(np.ones(3), requires_grad=True)
        out = a * 2.0
        assert isinstance(out._backward, _Backward)
        assert not hasattr(out._backward, "__dict__")

    def test_compiled_inference_has_no_instance_dict(self):
        from repro.nn import compile_inference
        from repro.nn.layers import mlp

        plan = compile_inference(mlp([4, 3, 2], rng=np.random.default_rng(0)))
        assert not hasattr(plan, "__dict__")

    def test_state_dict_round_trip_with_slots(self):
        """Persistence relies on public params, not __dict__ — must survive."""
        from repro.nn.layers import mlp

        rng = np.random.default_rng(0)
        model = mlp([4, 5, 2], rng=rng)
        state = model.state_dict()
        clone = mlp([4, 5, 2], rng=np.random.default_rng(1))
        clone.load_state_dict(state)
        X = np.asarray(rng.normal(size=(6, 4)))
        with no_grad():
            np.testing.assert_array_equal(
                model(Tensor(X)).data, clone(Tensor(X)).data
            )
