"""Hypothesis property tests for the autodiff engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.autodiff import Tensor

finite_floats = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, width=64)


def small_arrays(min_side=1, max_side=4):
    shapes = st.tuples(
        st.integers(min_side, max_side), st.integers(min_side, max_side)
    )
    return shapes.flatmap(lambda s: arrays(np.float64, s, elements=finite_floats))


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_softmax_is_probability_distribution(x):
    probs = Tensor(x).softmax(axis=1).data
    assert np.all(probs >= 0)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_log_softmax_exp_matches_softmax(x):
    t = Tensor(x)
    np.testing.assert_allclose(
        np.exp(t.log_softmax(axis=1).data), t.softmax(axis=1).data, atol=1e-9
    )


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_softmax_shift_invariance(x):
    a = Tensor(x).softmax(axis=1).data
    b = Tensor(x + 100.0).softmax(axis=1).data
    np.testing.assert_allclose(a, b, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_sum_gradient_is_ones(x):
    t = Tensor(x, requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(x))


@settings(max_examples=40, deadline=None)
@given(small_arrays(), st.floats(min_value=-5, max_value=5, allow_nan=False))
def test_linearity_of_gradients(x, c):
    t1 = Tensor(x, requires_grad=True)
    (t1 * c).sum().backward()
    np.testing.assert_allclose(t1.grad, np.full_like(x, c), atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_relu_idempotent(x):
    once = Tensor(x).relu().data
    twice = Tensor(once).relu().data
    np.testing.assert_array_equal(once, twice)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_sigmoid_symmetry(x):
    s_pos = Tensor(x).sigmoid().data
    s_neg = Tensor(-x).sigmoid().data
    np.testing.assert_allclose(s_pos + s_neg, 1.0, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_tanh_bounded(x):
    out = Tensor(x).tanh().data
    assert np.all(np.abs(out) <= 1.0)


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_logsumexp_bounds(x):
    # max(x) <= logsumexp(x) <= max(x) + log(n)
    lse = Tensor(x).logsumexp(axis=1).data
    mx = x.max(axis=1)
    n = x.shape[1]
    assert np.all(lse >= mx - 1e-9)
    assert np.all(lse <= mx + np.log(n) + 1e-9)


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_mean_equals_sum_over_size(x):
    t = Tensor(x)
    np.testing.assert_allclose(t.mean().data, t.sum().data / x.size, atol=1e-9)
