"""Graph mechanics: accumulation, reuse, detach, no_grad, error paths."""

import numpy as np
import pytest

from repro.autodiff import Tensor, no_grad


class TestBackwardMechanics:
    def test_scalar_backward_defaults_to_one(self):
        t = Tensor(np.array(3.0), requires_grad=True)
        (t * 2.0).backward()
        assert t.grad == pytest.approx(2.0)

    def test_non_scalar_backward_requires_grad_argument(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError, match="non-scalar"):
            (t * 2.0).backward()

    def test_backward_with_explicit_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 2.0).backward(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(t.grad, [2.0, 4.0, 6.0])

    def test_backward_on_non_grad_tensor_raises(self):
        t = Tensor(np.array(1.0))
        with pytest.raises(RuntimeError):
            t.backward()

    def test_tensor_reused_twice_accumulates(self):
        t = Tensor(np.array(2.0), requires_grad=True)
        out = t * t  # d/dt = 2t = 4
        out.backward()
        assert t.grad == pytest.approx(4.0)

    def test_diamond_graph_accumulates_once_per_path(self):
        t = Tensor(np.array(3.0), requires_grad=True)
        a = t * 2.0
        b = t * 5.0
        (a + b).backward()
        assert t.grad == pytest.approx(7.0)

    def test_deep_chain(self):
        t = Tensor(np.array(1.0), requires_grad=True)
        out = t
        for _ in range(50):
            out = out * 1.1
        out.backward()
        assert t.grad == pytest.approx(1.1**50, rel=1e-9)

    def test_grad_accumulates_across_backward_calls(self):
        t = Tensor(np.array(1.0), requires_grad=True)
        (t * 3.0).backward()
        (t * 3.0).backward()
        assert t.grad == pytest.approx(6.0)

    def test_zero_grad_resets(self):
        t = Tensor(np.array(1.0), requires_grad=True)
        (t * 3.0).backward()
        t.zero_grad()
        assert t.grad is None

    def test_no_grad_suppresses_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = (t * 2.0).sum()
        assert not out.requires_grad
        assert out._backward is None

    def test_no_grad_restores_on_exception(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        out = (t * 2.0).sum()
        assert out.requires_grad

    def test_detach_severs_graph(self):
        t = Tensor(np.array(2.0), requires_grad=True)
        d = (t * 3.0).detach()
        out = d * 5.0
        assert not out.requires_grad

    def test_constant_operand_gets_no_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        c = Tensor(np.ones(3))
        (t * c).sum().backward()
        assert c.grad is None
        np.testing.assert_allclose(t.grad, np.ones(3))

    def test_unbroadcast_sums_over_new_axes(self):
        bias = Tensor(np.zeros(4), requires_grad=True)
        x = Tensor(np.ones((5, 4)))
        (x + bias).sum().backward()
        np.testing.assert_allclose(bias.grad, np.full(4, 5.0))

    def test_unbroadcast_sums_over_size_one_axes(self):
        col = Tensor(np.zeros((3, 1)), requires_grad=True)
        x = Tensor(np.ones((3, 4)))
        (x * (col + 1.0)).sum().backward()
        np.testing.assert_allclose(col.grad, np.full((3, 1), 4.0))


class TestTensorBasics:
    def test_repr_mentions_requires_grad(self):
        assert "requires_grad=True" in repr(Tensor(np.array(1.0), requires_grad=True))
        assert "requires_grad" not in repr(Tensor(np.array(1.0)))

    def test_shape_ndim_size_len(self):
        t = Tensor(np.zeros((3, 4)))
        assert t.shape == (3, 4)
        assert t.ndim == 2
        assert t.size == 12
        assert len(t) == 3

    def test_item_on_scalar(self):
        assert Tensor(np.array(2.5)).item() == pytest.approx(2.5)

    def test_numpy_returns_underlying_array(self):
        data = np.ones(3)
        t = Tensor(data)
        assert t.numpy().shape == (3,)

    def test_data_is_float64(self):
        assert Tensor([1, 2, 3]).data.dtype == np.float64
