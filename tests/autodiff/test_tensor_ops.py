"""Per-operator gradient checks against central finite differences."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients

RNG = np.random.default_rng(7)


def randn(*shape):
    return RNG.standard_normal(shape)


def randpos(*shape):
    return RNG.uniform(0.5, 2.0, size=shape)


class TestArithmeticGradients:
    def test_add(self):
        check_gradients(lambda a, b: (a + b).sum(), [randn(3, 4), randn(3, 4)])

    def test_add_broadcast_row(self):
        check_gradients(lambda a, b: (a + b).sum(), [randn(3, 4), randn(4)])

    def test_add_broadcast_scalar(self):
        check_gradients(lambda a: (a + 2.5).sum(), [randn(3, 4)])

    def test_sub(self):
        check_gradients(lambda a, b: (a - b).sum(), [randn(2, 3), randn(2, 3)])

    def test_rsub(self):
        check_gradients(lambda a: (1.0 - a).sum(), [randn(5)])

    def test_mul(self):
        check_gradients(lambda a, b: (a * b).sum(), [randn(3, 4), randn(3, 4)])

    def test_mul_broadcast(self):
        check_gradients(lambda a, b: (a * b).sum(), [randn(3, 4), randn(3, 1)])

    def test_div(self):
        check_gradients(lambda a, b: (a / b).sum(), [randn(3, 3), randpos(3, 3)])

    def test_rdiv(self):
        check_gradients(lambda a: (1.0 / a).sum(), [randpos(4)])

    def test_neg(self):
        check_gradients(lambda a: (-a).sum(), [randn(3)])

    def test_pow(self):
        check_gradients(lambda a: (a**3.0).sum(), [randn(3, 3)])

    def test_pow_negative_exponent(self):
        check_gradients(lambda a: (a**-2.0).sum(), [randpos(4)])

    def test_matmul_2d(self):
        check_gradients(lambda a, b: (a @ b).sum(), [randn(3, 4), randn(4, 2)])

    def test_matmul_chain(self):
        check_gradients(
            lambda a, b, c: ((a @ b) @ c).sum(), [randn(2, 3), randn(3, 4), randn(4, 2)]
        )


class TestElementwiseGradients:
    def test_exp(self):
        check_gradients(lambda a: a.exp().sum(), [randn(3, 3)])

    def test_log(self):
        check_gradients(lambda a: a.log().sum(), [randpos(3, 3)])

    def test_sqrt(self):
        check_gradients(lambda a: a.sqrt().sum(), [randpos(4)])

    def test_abs(self):
        # Keep away from the kink at zero.
        check_gradients(lambda a: a.abs().sum(), [randpos(4)])

    def test_tanh(self):
        check_gradients(lambda a: a.tanh().sum(), [randn(3, 3)])

    def test_sigmoid(self):
        check_gradients(lambda a: a.sigmoid().sum(), [randn(3, 3)])

    def test_relu(self):
        check_gradients(lambda a: a.relu().sum(), [randpos(3, 3)])

    def test_leaky_relu(self):
        check_gradients(lambda a: a.leaky_relu(0.1).sum(), [randpos(3, 3) - 3.0])

    def test_softplus(self):
        check_gradients(lambda a: a.softplus().sum(), [randn(3, 3)])

    def test_clip_interior(self):
        check_gradients(lambda a: a.clip(-10.0, 10.0).sum(), [randn(3, 3)])


class TestReductionGradients:
    def test_sum_all(self):
        check_gradients(lambda a: a.sum(), [randn(3, 4)])

    def test_sum_axis0(self):
        check_gradients(lambda a: (a.sum(axis=0) ** 2.0).sum(), [randn(3, 4)])

    def test_sum_axis1_keepdims(self):
        check_gradients(lambda a: (a.sum(axis=1, keepdims=True) ** 2.0).sum(), [randn(3, 4)])

    def test_mean_all(self):
        check_gradients(lambda a: a.mean(), [randn(3, 4)])

    def test_mean_axis(self):
        check_gradients(lambda a: (a.mean(axis=1) ** 2.0).sum(), [randn(3, 4)])

    def test_max_axis(self):
        # Distinct values avoid tie-splitting ambiguity in finite differences.
        base = np.arange(12).reshape(3, 4) * 0.37 + randn(3, 4) * 0.01
        check_gradients(lambda a: a.max(axis=1).sum(), [base])

    def test_logsumexp(self):
        check_gradients(lambda a: a.logsumexp(axis=1).sum(), [randn(3, 4)])

    def test_logsumexp_keepdims(self):
        check_gradients(lambda a: (a.logsumexp(axis=1, keepdims=True) ** 2.0).sum(), [randn(3, 4)])


class TestSoftmaxGradients:
    def test_log_softmax(self):
        weights = randn(3, 4)
        check_gradients(lambda a: (a.log_softmax(axis=1) * weights).sum(), [randn(3, 4)])

    def test_softmax(self):
        weights = randn(3, 4)
        check_gradients(lambda a: (a.softmax(axis=1) * weights).sum(), [randn(3, 4)])

    def test_softmax_rows_sum_to_one(self):
        probs = Tensor(randn(5, 7)).softmax(axis=1)
        np.testing.assert_allclose(probs.data.sum(axis=1), np.ones(5), atol=1e-12)

    def test_log_softmax_stability_large_logits(self):
        logits = Tensor(np.array([[1e4, 0.0, -1e4]]))
        out = logits.log_softmax(axis=1)
        assert np.all(np.isfinite(out.data))
        assert out.data[0, 0] == pytest.approx(0.0, abs=1e-9)


class TestShapeGradients:
    def test_reshape(self):
        check_gradients(lambda a: (a.reshape(6) ** 2.0).sum(), [randn(2, 3)])

    def test_transpose(self):
        check_gradients(lambda a: (a.T @ a).sum(), [randn(3, 4)])

    def test_getitem_rows(self):
        check_gradients(lambda a: (a[0] ** 2.0).sum(), [randn(3, 4)])

    def test_getitem_fancy(self):
        idx = np.array([0, 2, 2])
        check_gradients(lambda a: (a[idx] ** 2.0).sum(), [randn(3, 4)])

    def test_getitem_pair_indexing(self):
        rows = np.array([0, 1, 2])
        cols = np.array([1, 0, 3])
        check_gradients(lambda a: a[rows, cols].sum(), [randn(3, 4)])

    def test_concatenate(self):
        check_gradients(
            lambda a, b: (Tensor.concatenate([a, b], axis=0) ** 2.0).sum(),
            [randn(2, 3), randn(4, 3)],
        )

    def test_concatenate_axis1(self):
        check_gradients(
            lambda a, b: (Tensor.concatenate([a, b], axis=1) ** 2.0).sum(),
            [randn(3, 2), randn(3, 5)],
        )

    def test_stack(self):
        check_gradients(
            lambda a, b: (Tensor.stack([a, b], axis=0) ** 2.0).sum(), [randn(3), randn(3)]
        )


class TestOpSemantics:
    def test_relu_forward(self):
        t = Tensor(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(t.relu().data, [0.0, 0.0, 2.0])

    def test_sigmoid_bounds(self):
        out = Tensor(np.array([-1000.0, 0.0, 1000.0])).sigmoid().data
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(0.5)
        assert out[2] == pytest.approx(1.0, abs=1e-12)

    def test_clip_values(self):
        out = Tensor(np.array([-2.0, 0.5, 3.0])).clip(0.0, 1.0).data
        np.testing.assert_array_equal(out, [0.0, 0.5, 1.0])

    def test_logsumexp_matches_scipy(self):
        from scipy.special import logsumexp

        x = randn(4, 6)
        np.testing.assert_allclose(
            Tensor(x).logsumexp(axis=1).data, logsumexp(x, axis=1), atol=1e-12
        )

    def test_max_ties_split_gradient(self):
        t = Tensor(np.array([[1.0, 1.0]]), requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.5, 0.5]])

    def test_tensor_pow_tensor_exponent_rejected(self):
        with pytest.raises(TypeError):
            Tensor(np.ones(3)) ** Tensor(np.ones(3))
