"""The finite-difference verification utility itself."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients, numerical_gradient


class TestNumericalGradient:
    def test_matches_analytic_for_quadratic(self):
        x = np.array([1.0, 2.0, 3.0])
        grad = numerical_gradient(lambda t: (t**2.0).sum(), [x], index=0)
        np.testing.assert_allclose(grad, 2 * x, atol=1e-5)

    def test_multi_input_indexing(self):
        a = np.array([1.0, 2.0])
        b = np.array([3.0, 4.0])
        grad_b = numerical_gradient(lambda x, y: (x * y).sum(), [a, b], index=1)
        np.testing.assert_allclose(grad_b, a, atol=1e-5)


class TestCheckGradients:
    def test_passes_on_correct_op(self):
        check_gradients(lambda a: (a * 3.0).sum(), [np.array([1.0, 2.0])])

    def test_fails_on_wrong_gradient(self):
        # An op with a deliberately wrong backward: use a constant-detach
        # trick so the analytic gradient is zero while numeric is not.
        def broken(t):
            return Tensor(t.data * 2.0, requires_grad=False).sum() + t.sum() * 0.0 + (t * 0.0).sum()

        # Analytic grad is 0; numeric grad is 2 -> must raise.
        with pytest.raises(AssertionError, match="gradient mismatch"):
            check_gradients(lambda t: broken(t), [np.array([1.0])])

    def test_rejects_non_scalar_output(self):
        with pytest.raises(ValueError, match="scalar"):
            check_gradients(lambda a: a * 2.0, [np.ones(3)])
