"""Programmatic experiment suites (small-scale smoke + semantics)."""

import numpy as np
import pytest

from repro.experiments import (
    alpha_contamination_matrix,
    convergence_curves,
    eta_sweep,
    lambda_grid,
    sweep,
)

TINY = dict(scale=0.015, seed=0)


class TestSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return sweep(
            "kddcup99",
            ["iForest", "TargAD"],
            {"low": {"contamination": 0.03}, "high": {"contamination": 0.09}},
            seeds=(0,),
            scale=0.015,
        )

    def test_structure(self, result):
        assert result.settings == ["low", "high"]
        assert set(result.auprc["low"]) == {"iForest", "TargAD"}

    def test_series_ordering(self, result):
        series = result.series("TargAD")
        assert len(series) == 2
        assert series[0] == result.auprc["low"]["TargAD"]

    def test_winner(self, result):
        assert result.winner("low") in ("iForest", "TargAD")

    def test_runs_recorded(self, result):
        assert len(result.auprc_runs["low"]["TargAD"]) == 1

    def test_values_in_range(self, result):
        for setting in result.settings:
            for value in result.auprc[setting].values():
                assert 0.0 <= value <= 1.0


class TestConvergence:
    def test_curves_have_epoch_length(self):
        result = convergence_curves(
            "kddcup99", baselines=["DevNet"], scale=0.015,
            targad_kwargs=dict(ae_epochs=3, clf_epochs=5),
        )
        assert len(result.auprc_curves["TargAD"]) == 5
        assert len(result.loss_curve) == 5
        assert len(result.auprc_curves["DevNet"]) > 0

    def test_epochs_to_reach(self):
        result = convergence_curves(
            "kddcup99", baselines=[], scale=0.015,
            targad_kwargs=dict(ae_epochs=3, clf_epochs=5),
        )
        epoch = result.epochs_to_reach("TargAD", fraction=0.5)
        assert 0 <= epoch < 5

    def test_final_auprc(self):
        result = convergence_curves(
            "kddcup99", baselines=[], scale=0.015,
            targad_kwargs=dict(ae_epochs=3, clf_epochs=4),
        )
        final = result.final_auprc()
        assert set(final) == {"TargAD"}


class TestSensitivity:
    def test_eta_sweep_keys(self):
        out = eta_sweep("kddcup99", etas=(0.0, 1.0), scale=0.015)
        assert set(out) == {0.0, 1.0}
        for p, r in out.values():
            assert 0.0 <= p <= 1.0 and 0.0 <= r <= 1.0

    def test_lambda_grid_cartesian(self):
        out = lambda_grid("kddcup99", lambdas=(0.1, 1.0), scale=0.015)
        assert set(out) == {(0.1, 0.1), (0.1, 1.0), (1.0, 0.1), (1.0, 1.0)}

    def test_alpha_matrix_shape(self):
        p, r = alpha_contamination_matrix(
            "kddcup99", alphas=(0.05, 0.1), contaminations=(0.05,), scale=0.015
        )
        assert p.shape == (2, 1) and r.shape == (2, 1)
        assert np.all((p >= 0) & (p <= 1))
