"""Cross-family taxonomy sweep: grid builder, results, reproducibility."""

import json

import numpy as np
import pytest

from repro.experiments.taxonomy_sweep import (
    FULL_FAMILIES,
    SMOKE_FAMILIES,
    TaxonomyScenario,
    TaxonomySweepResult,
    build_taxonomy_grid,
    grid_families,
    taxonomy_sweep,
)
from repro.experiments.report import taxonomy_section, write_taxonomy_report
from repro.data.taxonomy import INJECTOR_NAMES
from repro.obs import TelemetryRegistry

pytestmark = pytest.mark.taxonomy


class TestGridBuilder:
    def test_named_grids(self):
        assert grid_families("smoke") == SMOKE_FAMILIES
        assert grid_families("full") == FULL_FAMILIES
        assert set(FULL_FAMILIES) == set(INJECTOR_NAMES)
        with pytest.raises(ValueError, match="unknown grid"):
            grid_families("everything")

    def test_seen_unseen_cells_per_family(self):
        scenarios = build_taxonomy_grid("kddcup99", ["local", "temporal"],
                                        include_cross_target=False)
        labels = [s.label for s in scenarios]
        assert labels == ["local/seen", "local/unseen",
                          "temporal/seen", "temporal/unseen"]
        by_label = {s.label: s for s in scenarios}
        assert not by_label["local/seen"].unseen
        assert by_label["local/unseen"].unseen
        # Seen: the family joins the training non-targets; unseen: it
        # is attached (taxonomy_families) but not trained on.
        seen = by_label["local/seen"].overrides
        unseen = by_label["local/unseen"].overrides
        assert "tax:local" in seen["train_nontarget_families"]
        assert "tax:local" not in unseen["train_nontarget_families"]
        assert unseen["taxonomy_families"] == ["tax:local"]

    def test_cross_target_cell(self):
        scenarios = build_taxonomy_grid("kddcup99", ["local", "calculation"])
        cross = scenarios[-1]
        assert cross.label == "target=local/nontarget=calculation"
        assert cross.overrides["target_families"] == ["tax:local"]
        assert cross.overrides["train_nontarget_families"] == ["tax:calculation"]
        assert not cross.unseen

    def test_single_family_has_no_cross_cell(self):
        scenarios = build_taxonomy_grid("kddcup99", ["local"])
        assert len(scenarios) == 2

    def test_empty_families_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            build_taxonomy_grid("kddcup99", [])


class TestSweepResult:
    @pytest.fixture()
    def result(self):
        r = TaxonomySweepResult(
            dataset="d", scenarios=["s1", "s2"], detectors=["A", "B"],
            unseen={"s1": False, "s2": True}, seeds=[0], scale=0.02,
        )
        r.auprc = {"s1": {"A": 0.9, "B": 0.4}, "s2": {"A": 0.3, "B": 0.6}}
        r.auroc = {"s1": {"A": 0.95, "B": 0.5}, "s2": {"A": 0.5, "B": 0.7}}
        r.auprc_runs = {"s1": {"A": [0.9], "B": [0.4]},
                        "s2": {"A": [0.3], "B": [0.6]}}
        return r

    def test_series_winner_survival(self, result):
        assert result.series("A") == [0.9, 0.3]
        assert result.winner("s1") == "A"
        assert result.winner("s2") == "B"
        assert result.survival("A") == {"s1": True, "s2": False}

    def test_to_json_is_deterministic_and_parseable(self, result):
        text = result.to_json()
        assert text == result.to_json()
        payload = json.loads(text)
        assert payload["scenarios"] == ["s1", "s2"]
        assert payload["unseen"]["s2"] is True
        assert payload["auprc"]["s1"]["A"] == 0.9

    def test_markdown_section(self, result):
        text = taxonomy_section(result)
        assert "## Cross-family taxonomy robustness on d" in text
        # Unseen scenario column is starred; best cell is bolded.
        assert "s2*" in text and "s1 |" in text
        assert "**0.900**" in text and "**0.600**" in text

    def test_markdown_survival_line_mentions_targad(self):
        r = TaxonomySweepResult(
            dataset="d", scenarios=["s1"], detectors=["TargAD"],
            unseen={"s1": False}, seeds=[0],
        )
        r.auprc = {"s1": {"TargAD": 0.8}}
        r.auroc = {"s1": {"TargAD": 0.9}}
        r.auprc_runs = {"s1": {"TargAD": [0.8]}}
        assert "TargAD keeps the best AUPRC in 1/1" in taxonomy_section(r)

    def test_write_taxonomy_report(self, result, tmp_path):
        path = write_taxonomy_report(result, tmp_path / "tax.md")
        text = path.read_text()
        assert text.startswith("# TargAD taxonomy robustness report")
        assert "Cross-family taxonomy robustness" in text


class TestSweepExecution:
    @pytest.fixture(scope="class")
    def sweep_result(self):
        telemetry = TelemetryRegistry()
        result = taxonomy_sweep(
            "kddcup99", detectors=["iForest", "TargAD"], families=["local"],
            seeds=(0,), scale=0.01, include_cross_target=False,
            telemetry=telemetry,
        )
        return result, telemetry

    def test_structure_covers_the_grid(self, sweep_result):
        result, _ = sweep_result
        assert result.scenarios == ["local/seen", "local/unseen"]
        assert result.detectors == ["iForest", "TargAD"]
        assert result.unseen == {"local/seen": False, "local/unseen": True}
        for label in result.scenarios:
            for name in result.detectors:
                value = result.auprc[label][name]
                assert 0.0 <= value <= 1.0
                assert result.auprc_runs[label][name] == [value]  # one seed
                assert 0.0 <= result.auroc[label][name] <= 1.0

    def test_telemetry_recorded(self, sweep_result):
        _, telemetry = sweep_result
        assert telemetry.counters["taxonomy.cells"] == 4
        assert telemetry.counters["taxonomy.fits"] == 4
        assert telemetry.timer_stats("taxonomy.cell").count == 4
        values = telemetry.events.series("taxonomy.cell", "auprc")
        assert len(values) == 4
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_explicit_scenarios_override_grid(self):
        scenario = TaxonomyScenario(
            label="custom",
            overrides={"taxonomy_families": ["tax:global"],
                       "train_nontarget_families": ["Probe"]},
            unseen=True,
        )
        result = taxonomy_sweep(
            "kddcup99", detectors=["iForest"], scenarios=[scenario],
            seeds=(0,), scale=0.01,
        )
        assert result.scenarios == ["custom"]
        assert result.unseen["custom"] is True

    @pytest.mark.slow
    def test_bit_for_bit_reproducible(self):
        """Same inputs, two runs: byte-identical JSON payloads."""
        def run():
            return taxonomy_sweep(
                "kddcup99", detectors=["iForest"], families=["local"],
                seeds=(0,), scale=0.01, include_cross_target=False,
            ).to_json()

        assert run() == run()
