"""Markdown report generation."""

import pytest

from repro.experiments.report import _md_table, generate_report


class TestMarkdownTable:
    def test_structure(self):
        table = _md_table(["a", "b"], [["1", "2"], ["3", "4"]])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[3] == "| 3 | 4 |"


class TestGenerateReport:
    def test_writes_complete_report(self, tmp_path):
        path = generate_report(
            tmp_path / "report.md",
            datasets=("kddcup99",),
            detectors=("iForest", "TargAD"),
            seeds=(0,),
            scale=0.015,
        )
        text = path.read_text()
        assert "# TargAD experiment report" in text
        assert "## Overall comparison" in text
        assert "## Convergence" in text
        assert "## Contamination robustness" in text
        assert "TargAD" in text and "iForest" in text
        assert "Best AUPRC" in text

    def test_sections_optional(self, tmp_path):
        path = generate_report(
            tmp_path / "short.md",
            datasets=("kddcup99",),
            detectors=("iForest",),
            seeds=(0,),
            scale=0.015,
            include_convergence=False,
            include_robustness=False,
        )
        text = path.read_text()
        assert "## Convergence" not in text
        assert "## Contamination robustness" not in text
        assert "## Overall comparison" in text
