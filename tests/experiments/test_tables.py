"""Programmatic Table III/IV protocols."""

import pytest

from repro.experiments.tables import ABLATION_VARIANTS, ablation, triclass_report


class TestAblation:
    def test_structure_and_ranges(self):
        out = ablation(
            "kddcup99",
            variants={"TargAD": {}, "TargAD_-O-R": dict(use_oe_loss=False, use_re_loss=False)},
            seeds=(0,),
            scale=0.015,
        )
        assert set(out) == {"TargAD", "TargAD_-O-R"}
        for row in out.values():
            assert 0.0 <= row["auprc"] <= 1.0
            assert row["auprc_std"] >= 0.0

    def test_default_variants_match_paper(self):
        assert set(ABLATION_VARIANTS) == {"TargAD", "TargAD_-O", "TargAD_-R", "TargAD_-O-R"}


class TestTriclassReport:
    def test_reports_per_strategy(self):
        out = triclass_report("kddcup99", strategies=("msp", "ed"), scale=0.015)
        assert set(out) == {"msp", "ed"}
        for report in out.values():
            assert "macro avg" in report
            assert 0.0 <= report["macro avg"]["f1"] <= 1.0
