"""The opt-in classifier dropout knob."""

import numpy as np
import pytest

from repro.core import TargAD, TargADConfig
from repro.nn.regularization import Dropout

FAST = dict(k=2, ae_lr=3e-3, ae_epochs=5, clf_epochs=5)


@pytest.fixture(scope="module")
def tiny():
    from tests.conftest import TINY_SPEC, make_tiny_generator
    from repro.data.splits import build_split

    return build_split(make_tiny_generator(0), TINY_SPEC, scale=1.0, random_state=0)


class TestClassifierDropout:
    def test_dropout_layers_inserted(self, tiny):
        model = TargAD(TargADConfig(random_state=0, clf_dropout=0.3, **FAST))
        model.fit(tiny.X_unlabeled, tiny.X_labeled, tiny.y_labeled)
        dropouts = [m for m in model.network_.modules if isinstance(m, Dropout)]
        assert len(dropouts) == 2  # one per hidden activation

    def test_inference_is_deterministic(self, tiny):
        model = TargAD(TargADConfig(random_state=0, clf_dropout=0.3, **FAST))
        model.fit(tiny.X_unlabeled, tiny.X_labeled, tiny.y_labeled)
        s1 = model.decision_function(tiny.X_test)
        s2 = model.decision_function(tiny.X_test)
        np.testing.assert_array_equal(s1, s2)

    def test_dropout_off_by_default(self, tiny):
        model = TargAD(TargADConfig(random_state=0, **FAST))
        model.fit(tiny.X_unlabeled, tiny.X_labeled, tiny.y_labeled)
        assert not any(isinstance(m, Dropout) for m in model.network_.modules)

    def test_invalid_dropout_rejected(self):
        with pytest.raises(ValueError):
            TargADConfig(clf_dropout=1.0)

    def test_training_still_learns_with_dropout(self, tiny):
        from repro.metrics import auroc

        model = TargAD(TargADConfig(random_state=0, clf_dropout=0.2, k=2,
                                    ae_lr=3e-3, ae_epochs=10, clf_epochs=15))
        model.fit(tiny.X_unlabeled, tiny.X_labeled, tiny.y_labeled)
        scores = model.decision_function(tiny.X_test)
        assert auroc(tiny.y_test_binary, scores) > 0.8
