"""Hypothesis property tests for candidate-selection invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidate_selection import CandidateSelector


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(60, 200),
    d=st.integers(4, 10),
    alpha=st.floats(0.02, 0.3),
    k=st.integers(1, 3),
    seed=st.integers(0, 100),
)
def test_candidate_selection_invariants(n, d, alpha, k, seed):
    """For arbitrary data: the α-cut size, the partition, and threshold
    semantics all hold regardless of structure."""
    rng = np.random.default_rng(seed)
    X = rng.random((n, d))
    selector = CandidateSelector(k=k, alpha=alpha, ae_epochs=1, random_state=seed)
    selection = selector.fit(X, None)

    expected = max(int(round(alpha * n)), 1)
    assert selection.candidate_mask.sum() == expected
    # Partition property.
    assert len(selection.candidate_indices) + len(selection.normal_indices) == n
    assert not set(selection.candidate_indices) & set(selection.normal_indices)
    # Threshold separates the two sides in selection-score space.
    scores = selection.selection_scores
    assert scores[selection.candidate_mask].min() >= selection.threshold - 1e-9
    if (~selection.candidate_mask).any():
        assert scores[~selection.candidate_mask].max() <= selection.threshold + 1e-9
    # Errors are non-negative; cluster labels in range.
    assert np.all(selection.errors >= 0)
    assert selection.cluster_labels.max() < selection.k
