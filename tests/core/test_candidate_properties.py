"""Hypothesis property tests for candidate-selection invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidate_selection import CandidateSelector


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(60, 200),
    d=st.integers(4, 10),
    alpha=st.floats(0.02, 0.3),
    k=st.integers(1, 3),
    seed=st.integers(0, 100),
)
def test_candidate_selection_invariants(n, d, alpha, k, seed):
    """For arbitrary data: the α-cut size, the partition, and threshold
    semantics all hold regardless of structure."""
    rng = np.random.default_rng(seed)
    X = rng.random((n, d))
    selector = CandidateSelector(k=k, alpha=alpha, ae_epochs=1, random_state=seed)
    selection = selector.fit(X, None)

    expected = max(int(round(alpha * n)), 1)
    assert selection.candidate_mask.sum() == expected
    # Partition property.
    assert len(selection.candidate_indices) + len(selection.normal_indices) == n
    assert not set(selection.candidate_indices) & set(selection.normal_indices)
    # Threshold separates the two sides in selection-score space.
    scores = selection.selection_scores
    assert scores[selection.candidate_mask].min() >= selection.threshold - 1e-9
    if (~selection.candidate_mask).any():
        assert scores[~selection.candidate_mask].max() <= selection.threshold + 1e-9
    # Errors are non-negative; cluster labels in range.
    assert np.all(selection.errors >= 0)
    assert selection.cluster_labels.max() < selection.k


@settings(max_examples=10, deadline=None)
@given(
    n_unique=st.integers(2, 8),
    repeats=st.integers(8, 25),
    alpha=st.floats(0.02, 0.4),
    k=st.integers(1, 3),
    normalize=st.booleans(),
    seed=st.integers(0, 50),
)
def test_candidate_count_exact_under_ties(n_unique, repeats, alpha, k, normalize, seed):
    """Tie-heavy pools (many duplicated rows → duplicated reconstruction
    errors) must still produce exactly ``max(round(alpha·n), 1)``
    candidates, with ``candidate ∪ normal`` partitioning the pool,
    regardless of per-cluster normalization or cluster count."""
    rng = np.random.default_rng(seed)
    base = rng.random((n_unique, 5))
    X = np.repeat(base, repeats, axis=0)          # heavy ties by construction
    rng.shuffle(X)
    n = len(X)

    selector = CandidateSelector(
        k=k, alpha=alpha, ae_epochs=1, normalize_errors=normalize, random_state=seed
    )
    selection = selector.fit(X, None)

    expected = max(int(round(alpha * n)), 1)
    assert selection.candidate_mask.sum() == expected
    union = np.union1d(selection.candidate_indices, selection.normal_indices)
    np.testing.assert_array_equal(union, np.arange(n))
    assert len(selection.candidate_indices) + len(selection.normal_indices) == n


@settings(max_examples=8, deadline=None)
@given(alpha=st.floats(0.001, 0.02), seed=st.integers(0, 20))
def test_tiny_alpha_still_selects_at_least_one(alpha, seed):
    """The ``max(·, 1)`` floor: even α so small that round(α·n) == 0
    must yield exactly one candidate."""
    rng = np.random.default_rng(seed)
    X = rng.random((30, 4))
    selection = CandidateSelector(k=1, alpha=alpha, ae_epochs=1,
                                  random_state=seed).fit(X, None)
    assert selection.candidate_mask.sum() == max(int(round(alpha * 30)), 1) >= 1
