"""Eq. 9 scoring and the Section III-C normality rule."""

import numpy as np
import pytest

from repro.core.scoring import is_normal_rule, softmax, target_anomaly_score


class TestSoftmax:
    def test_rows_sum_to_one(self):
        probs = softmax(np.random.default_rng(0).standard_normal((5, 4)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-12)

    def test_stable_for_huge_logits(self):
        probs = softmax(np.array([[1e6, 0.0]]))
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)


class TestTargetAnomalyScore:
    def test_takes_max_over_first_m(self):
        probs = np.array([[0.1, 0.6, 0.2, 0.1]])
        assert target_anomaly_score(probs, m=2)[0] == pytest.approx(0.6)

    def test_ignores_normal_dims(self):
        probs = np.array([[0.1, 0.05, 0.85]])
        assert target_anomaly_score(probs, m=2)[0] == pytest.approx(0.1)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            target_anomaly_score(np.ones((3, 2)), m=2)  # needs k >= 1

    def test_ood_calibrated_instance_scores_one_over_m(self):
        # A perfectly OE-calibrated non-target: uniform over the m dims.
        m, k = 3, 4
        probs = np.zeros((1, m + k))
        probs[0, :m] = 1 / m
        assert target_anomaly_score(probs, m)[0] == pytest.approx(1 / m)


class TestNormalRule:
    def test_confident_normal_classified_normal(self):
        m, k = 2, 3
        probs = np.array([[0.02, 0.03, 0.9, 0.03, 0.02]])
        assert is_normal_rule(probs, m, k)[0]

    def test_confident_target_classified_anomalous(self):
        m, k = 2, 3
        probs = np.array([[0.9, 0.02, 0.04, 0.02, 0.02]])
        assert not is_normal_rule(probs, m, k)[0]

    def test_threshold_is_k_over_m_plus_k(self):
        m, k = 2, 2
        just_above = np.array([[0.24, 0.25, 0.26, 0.25]])  # normal mass 0.51 > 0.5
        just_below = np.array([[0.26, 0.25, 0.25, 0.24]])  # normal mass 0.49 < 0.5
        assert is_normal_rule(just_above, m, k)[0]
        assert not is_normal_rule(just_below, m, k)[0]

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            is_normal_rule(np.ones((2, 4)), m=2, k=3)
