"""The composite classifier loss (Eqs. 3, 6, 7, 8)."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients
from repro.core.losses import (
    classifier_loss,
    cross_entropy_term,
    entropy_regularizer_term,
    outlier_exposure_term,
)
from repro.core.pseudo_labels import normal_pseudo_labels, ood_pseudo_label, target_pseudo_labels
from repro.nn.layers import mlp

RNG = np.random.default_rng(0)


def make_net(d_in=6, d_out=5):
    return mlp([d_in, 8, d_out], rng=np.random.default_rng(1))


class TestCrossEntropyTerm:
    def test_sums_pool_means(self):
        logits_l = Tensor(RNG.standard_normal((3, 5)))
        logits_n = Tensor(RNG.standard_normal((7, 5)))
        t_l = target_pseudo_labels(np.array([0, 1, 0]), m=2, k=3)
        t_n = normal_pseudo_labels(np.array([0, 1, 2, 0, 1, 2, 0]), m=2, k=3)
        combined = cross_entropy_term(logits_l, t_l, logits_n, t_n).item()
        from repro.nn.losses import soft_cross_entropy

        expected = soft_cross_entropy(logits_l, t_l).item() + soft_cross_entropy(logits_n, t_n).item()
        assert combined == pytest.approx(expected)

    def test_single_pool_allowed(self):
        logits = Tensor(RNG.standard_normal((3, 5)))
        targets = target_pseudo_labels(np.array([0, 1, 0]), m=2, k=3)
        assert np.isfinite(cross_entropy_term(logits, targets, None, None).item())

    def test_both_empty_rejected(self):
        with pytest.raises(ValueError):
            cross_entropy_term(None, None, None, None)


class TestOutlierExposureTerm:
    def test_minimized_by_uniform_over_target_dims(self):
        m, k = 2, 3
        ood = np.tile(ood_pseudo_label(m, k), (2, 1))
        weights = np.ones(2)
        # Logits realizing exactly (1/2, 1/2, 0, 0, 0)-ish distribution:
        good = np.array([[5.0, 5.0, -5.0, -5.0, -5.0]] * 2)
        bad = np.array([[5.0, -5.0, -5.0, -5.0, -5.0]] * 2)
        loss_good = outlier_exposure_term(Tensor(good), ood, weights).item()
        loss_bad = outlier_exposure_term(Tensor(bad), ood, weights).item()
        assert loss_good < loss_bad

    def test_zero_weight_removes_instance(self):
        m, k = 2, 2
        ood = np.tile(ood_pseudo_label(m, k), (2, 1))
        logits = Tensor(RNG.standard_normal((2, 4)))
        loss = outlier_exposure_term(logits, ood, np.array([0.0, 0.0])).item()
        assert loss == pytest.approx(0.0)


class TestEntropyRegularizer:
    def test_union_mean_weighting(self):
        logits_l = Tensor(RNG.standard_normal((2, 4)))
        logits_n = Tensor(RNG.standard_normal((6, 4)))
        from repro.nn.losses import negative_entropy

        expected = (2 * negative_entropy(logits_l).item() + 6 * negative_entropy(logits_n).item()) / 8
        assert entropy_regularizer_term(logits_l, logits_n).item() == pytest.approx(expected)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            entropy_regularizer_term(None, None)


class TestClassifierLoss:
    def _inputs(self, m=2, k=3, d=6):
        X_l = RNG.standard_normal((4, d))
        t_l = target_pseudo_labels(np.array([0, 1, 1, 0]), m, k)
        X_n = RNG.standard_normal((8, d))
        t_n = normal_pseudo_labels(RNG.integers(0, k, 8), m, k)
        X_a = RNG.standard_normal((5, d))
        t_a = np.tile(ood_pseudo_label(m, k), (5, 1))
        w = RNG.random(5)
        return X_l, t_l, X_n, t_n, X_a, t_a, w

    def test_full_loss_is_finite_scalar(self):
        net = make_net()
        loss = classifier_loss(net, *self._inputs())
        assert loss.data.shape == ()
        assert np.isfinite(loss.item())

    def test_ablation_flags_change_value(self):
        net = make_net()
        inputs = self._inputs()
        full = classifier_loss(net, *inputs).item()
        no_oe = classifier_loss(net, *inputs, use_oe=False).item()
        no_re = classifier_loss(net, *inputs, use_re=False).item()
        assert full != pytest.approx(no_oe)
        assert full != pytest.approx(no_re)

    def test_lambda_zero_equals_flag_off(self):
        net = make_net()
        inputs = self._inputs()
        assert classifier_loss(net, *inputs, lambda1=0.0).item() == pytest.approx(
            classifier_loss(net, *inputs, use_oe=False).item()
        )
        assert classifier_loss(net, *inputs, lambda2=0.0).item() == pytest.approx(
            classifier_loss(net, *inputs, use_re=False).item()
        )

    def test_empty_candidate_batch_tolerated(self):
        net = make_net()
        X_l, t_l, X_n, t_n, _, _, _ = self._inputs()
        loss = classifier_loss(
            net, X_l, t_l, X_n, t_n, np.empty((0, 6)), np.empty((0, 5)), np.empty(0)
        )
        assert np.isfinite(loss.item())

    def test_gradients_flow_to_network(self):
        net = make_net()
        loss = classifier_loss(net, *self._inputs())
        loss.backward()
        assert all(p.grad is not None for p in net.parameters())

    def test_composite_loss_gradcheck_through_linear_net(self):
        # Treat the network weight itself as the differentiated input.
        m, k, d = 2, 2, 3
        X_l = RNG.standard_normal((2, d))
        t_l = target_pseudo_labels(np.array([0, 1]), m, k)
        X_n = RNG.standard_normal((3, d))
        t_n = normal_pseudo_labels(np.array([0, 1, 0]), m, k)
        X_a = RNG.standard_normal((2, d))
        t_a = np.tile(ood_pseudo_label(m, k), (2, 1))
        w = np.array([0.5, 1.0])

        def loss_of_weight(W):
            logits_l = Tensor(X_l) @ W
            logits_n = Tensor(X_n) @ W
            logits_a = Tensor(X_a) @ W
            from repro.core.losses import (
                cross_entropy_term,
                entropy_regularizer_term,
                outlier_exposure_term,
            )

            return (
                cross_entropy_term(logits_l, t_l, logits_n, t_n)
                + 0.1 * outlier_exposure_term(logits_a, t_a, w)
                + 1.0 * entropy_regularizer_term(logits_l, logits_n)
            )

        check_gradients(loss_of_weight, [RNG.standard_normal((d, m + k))])
