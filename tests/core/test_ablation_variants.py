"""Ablation-switch behaviour of the TargAD config (Table III extensions)."""

import numpy as np
import pytest

from repro.core import TargAD, TargADConfig

FAST = dict(k=2, ae_lr=3e-3, ae_epochs=8, clf_epochs=6)


@pytest.fixture(scope="module")
def tiny():
    from tests.conftest import TINY_SPEC, make_tiny_generator
    from repro.data.splits import build_split

    return build_split(make_tiny_generator(0), TINY_SPEC, scale=1.0, random_state=0)


class TestAblationVariants:
    def test_uniform_oe_label_style_runs(self, tiny):
        model = TargAD(TargADConfig(random_state=0, oe_label_style="uniform", **FAST))
        model.fit(tiny.X_unlabeled, tiny.X_labeled, tiny.y_labeled)
        scores = model.decision_function(tiny.X_test)
        assert np.all(np.isfinite(scores))

    def test_label_styles_change_predictions(self, tiny):
        def run(style):
            model = TargAD(TargADConfig(random_state=0, oe_label_style=style, **FAST))
            model.fit(tiny.X_unlabeled, tiny.X_labeled, tiny.y_labeled)
            return model.decision_function(tiny.X_test)

        assert not np.allclose(run("targad"), run("uniform"))

    def test_invalid_label_style_rejected(self):
        with pytest.raises(ValueError):
            TargADConfig(oe_label_style="flat")

    def test_no_weighting_uses_unit_weights(self, tiny):
        model = TargAD(TargADConfig(random_state=0, use_weighting=False, **FAST))
        model.fit(tiny.X_unlabeled, tiny.X_labeled, tiny.y_labeled)
        assert len(model.weight_history) == 1
        np.testing.assert_array_equal(model.weight_history[0], 1.0)

    def test_weighting_produces_epoch_history(self, tiny):
        model = TargAD(TargADConfig(random_state=0, use_weighting=True, **FAST))
        model.fit(tiny.X_unlabeled, tiny.X_labeled, tiny.y_labeled)
        assert len(model.weight_history) == FAST["clf_epochs"]
