"""Save/load roundtrip of a fitted TargAD."""

import numpy as np
import pytest

from repro.core import TargAD, TargADConfig, load_model, save_model

FAST = dict(k=2, ae_lr=3e-3, ae_epochs=10, clf_epochs=8)


@pytest.fixture(scope="module")
def fitted_and_split():
    from tests.conftest import TINY_SPEC, make_tiny_generator
    from repro.data.splits import build_split

    split = build_split(make_tiny_generator(0), TINY_SPEC, scale=1.0, random_state=0)
    model = TargAD(TargADConfig(random_state=0, **FAST))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    return model, split


class TestPersistence:
    def test_scores_identical_after_roundtrip(self, fitted_and_split, tmp_path):
        model, split = fitted_and_split
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)
        np.testing.assert_allclose(
            loaded.decision_function(split.X_test),
            model.decision_function(split.X_test),
        )

    def test_triclass_identical_after_roundtrip(self, fitted_and_split, tmp_path):
        model, split = fitted_and_split
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)
        for strategy in ("msp", "es", "ed"):
            np.testing.assert_array_equal(
                loaded.predict_triclass(split.X_test, strategy=strategy),
                model.predict_triclass(split.X_test, strategy=strategy),
            )

    def test_config_preserved(self, fitted_and_split, tmp_path):
        model, split = fitted_and_split
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.config == model.config
        assert loaded.m_ == model.m_
        assert loaded.k_ == model.k_

    def test_selection_state_preserved(self, fitted_and_split, tmp_path):
        model, split = fitted_and_split
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)
        np.testing.assert_array_equal(
            loaded.selection_.candidate_mask, model.selection_.candidate_mask
        )
        np.testing.assert_allclose(loaded.selection_.errors, model.selection_.errors)

    def test_reconstruction_error_preserved(self, fitted_and_split, tmp_path):
        model, split = fitted_and_split
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)
        np.testing.assert_allclose(
            loaded.selector_.reconstruction_error(split.X_test[:20]),
            model.selector_.reconstruction_error(split.X_test[:20]),
        )

    def test_unfitted_model_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            save_model(TargAD(TargADConfig()), tmp_path / "x.npz")
