"""Active label acquisition loop."""

import numpy as np
import pytest

from repro.core import TargADConfig
from repro.core.active import ActiveTargAD

FAST = TargADConfig(k=2, ae_lr=3e-3, ae_epochs=5, clf_epochs=5, random_state=0)


@pytest.fixture(scope="module")
def pool():
    from tests.conftest import TINY_SPEC, make_tiny_generator
    from repro.data.splits import build_split

    split = build_split(make_tiny_generator(0), TINY_SPEC, scale=1.0, random_state=0)
    return split


def make_oracle(split):
    """Ground-truth oracle over the unlabeled pool (by row identity).

    Works on feature rows: looks up each queried row in the unlabeled pool
    to recover its hidden kind/family.
    """
    pool_X = split.X_unlabeled
    kind = split.unlabeled_kind
    family = split.unlabeled_family
    fam_to_class = {f: i + 1 for i, f in enumerate(split.target_families)}

    def oracle(X_queried):
        labels = np.zeros(len(X_queried), dtype=np.int64)
        for i, row in enumerate(X_queried):
            matches = np.flatnonzero((pool_X == row).all(axis=1))
            j = matches[0]
            if kind[j] == 1:
                labels[i] = fam_to_class[family[j]]
        return labels

    return oracle


class TestActiveTargAD:
    def test_loop_runs_and_records_history(self, pool):
        active = ActiveTargAD(FAST, strategy="score", batch_size=15)
        model = active.run(pool.X_unlabeled, pool.X_labeled, pool.y_labeled,
                           make_oracle(pool), n_rounds=3)
        assert len(active.history) == 3
        assert model is active.model_
        scores = model.decision_function(pool.X_test)
        assert np.all(np.isfinite(scores))

    def test_score_strategy_finds_targets(self, pool):
        active = ActiveTargAD(FAST, strategy="score", batch_size=20)
        active.run(pool.X_unlabeled, pool.X_labeled, pool.y_labeled,
                   make_oracle(pool), n_rounds=3)
        # Querying the top of the score ranking must beat the pool's base
        # target rate by a clear factor.
        queried_total = sum(len(r.queried) for r in active.history)
        hit_rate = active.total_targets_found / queried_total
        base_rate = (pool.unlabeled_kind == 1).mean()
        assert hit_rate > 2 * base_rate

    def test_labeled_pool_grows(self, pool):
        active = ActiveTargAD(FAST, strategy="score", batch_size=20)
        active.run(pool.X_unlabeled, pool.X_labeled, pool.y_labeled,
                   make_oracle(pool), n_rounds=3)
        if active.total_targets_found:
            assert active.history[-1].labeled_pool_size > len(pool.X_labeled)

    @pytest.mark.parametrize("strategy", ["uncertainty", "candidate"])
    def test_other_strategies_run(self, pool, strategy):
        active = ActiveTargAD(FAST, strategy=strategy, batch_size=10)
        active.run(pool.X_unlabeled, pool.X_labeled, pool.y_labeled,
                   make_oracle(pool), n_rounds=2)
        assert len(active.history) == 2

    def test_no_repeat_queries(self, pool):
        active = ActiveTargAD(FAST, strategy="uncertainty", batch_size=10)
        active.run(pool.X_unlabeled, pool.X_labeled, pool.y_labeled,
                   lambda X: np.zeros(len(X), dtype=np.int64), n_rounds=3)
        # With an all-negative oracle the pool is never mutated, so queried
        # indices must be disjoint across rounds.
        all_queried = np.concatenate([r.queried for r in active.history])
        assert len(all_queried) == len(set(all_queried.tolist()))

    def test_bad_oracle_shape_rejected(self, pool):
        active = ActiveTargAD(FAST, batch_size=5)
        with pytest.raises(ValueError, match="one label per queried row"):
            active.run(pool.X_unlabeled, pool.X_labeled, pool.y_labeled,
                       lambda X: np.zeros(1, dtype=np.int64), n_rounds=1)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ActiveTargAD(strategy="random")
        with pytest.raises(ValueError):
            ActiveTargAD(batch_size=0)
