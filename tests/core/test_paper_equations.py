"""Direct numeric checks of the paper's equations (Eqs. 1-9).

Each test evaluates one equation on tiny hand-constructed inputs and
compares the library's computation to an explicit transcription of the
formula from the paper.
"""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.core.losses import (
    cross_entropy_term,
    entropy_regularizer_term,
    outlier_exposure_term,
)
from repro.core.pseudo_labels import normal_pseudo_label, ood_pseudo_label, target_pseudo_label
from repro.core.scoring import is_normal_rule, softmax, target_anomaly_score
from repro.core.weighting import initial_weights, update_weights
from repro.nn.autoencoder import SADAutoencoder
from repro.nn.losses import reconstruction_errors


def manual_softmax(z):
    e = np.exp(z - z.max(axis=1, keepdims=True))
    return e / e.sum(axis=1, keepdims=True)


class TestEq1And2Reconstruction:
    def test_eq2_srec_is_squared_l2(self):
        x = np.array([[1.0, 2.0, 3.0]])
        x_hat = np.array([[1.0, 1.0, 1.0]])
        expected = (0.0**2 + 1.0**2 + 2.0**2)
        got = reconstruction_errors(Tensor(x_hat), Tensor(x)).data[0]
        assert got == pytest.approx(expected)

    def test_eq1_inverse_term_direction(self, rng):
        """The η-term of Eq. 1 penalizes *low* labeled reconstruction error:
        training with it must push labeled errors up relative to η = 0."""
        X = rng.normal(0.5, 0.05, size=(300, 6))
        labeled = rng.normal(0.7, 0.05, size=(15, 6))
        plain = SADAutoencoder(eta=0.0, hidden_sizes=(8, 2), lr=3e-3, epochs=25, random_state=0)
        plain.fit(X, labeled)
        sad = SADAutoencoder(eta=10.0, hidden_sizes=(8, 2), lr=3e-3, epochs=25, random_state=0)
        sad.fit(X, labeled)
        assert sad.reconstruction_error(labeled).mean() > plain.reconstruction_error(labeled).mean()


class TestEq3CrossEntropy:
    def test_matches_formula(self):
        m, k = 2, 2
        z_l = np.array([[1.0, -1.0, 0.0, 0.5]])
        z_n = np.array([[0.2, 0.1, 2.0, -0.3]])
        y_t = target_pseudo_label(0, m, k)
        y_n = normal_pseudo_label(0, m, k)
        p_l = manual_softmax(z_l)
        p_n = manual_softmax(z_n)
        expected = -(y_t * np.log(p_l)).sum() - (y_n * np.log(p_n)).sum()
        got = cross_entropy_term(Tensor(z_l), y_t[None], Tensor(z_n), y_n[None]).item()
        assert got == pytest.approx(expected)


class TestEq4And5Weights:
    def test_eq5_formula(self):
        errors = np.array([2.0, 8.0, 5.0])
        expected = (8.0 - errors) / (8.0 - 2.0)
        np.testing.assert_allclose(initial_weights(errors), expected)

    def test_eq4_formula(self):
        probs = np.array([[0.7, 0.2, 0.1], [0.4, 0.35, 0.25], [0.5, 0.3, 0.2]])
        eps = probs.max(axis=1)  # [0.7, 0.4, 0.5]
        expected = (eps.max() - eps) / (eps.max() - eps.min())
        np.testing.assert_allclose(update_weights(probs), expected)


class TestEq6OutlierExposure:
    def test_matches_formula(self):
        m, k = 2, 2
        z = np.array([[0.3, -0.7, 1.2, 0.1], [0.0, 0.0, 0.0, 0.0]])
        w = np.array([0.5, 1.5])
        y_o = ood_pseudo_label(m, k)
        p = manual_softmax(z)
        per_instance = -(y_o[None] * np.log(p)).sum(axis=1)
        expected = (w * per_instance).mean()
        got = outlier_exposure_term(Tensor(z), np.tile(y_o, (2, 1)), w).item()
        assert got == pytest.approx(expected)


class TestEq7EntropyRegularizer:
    def test_matches_formula(self):
        z_l = np.array([[1.0, 0.0, -1.0]])
        z_n = np.array([[0.5, 0.5, 0.5], [2.0, -2.0, 0.0]])
        p_l = manual_softmax(z_l)
        p_n = manual_softmax(z_n)
        all_p = np.vstack([p_l, p_n])
        expected = (all_p * np.log(all_p)).sum(axis=1).mean()
        got = entropy_regularizer_term(Tensor(z_l), Tensor(z_n)).item()
        assert got == pytest.approx(expected)


class TestEq9AndTriClassRule:
    def test_eq9_formula(self):
        m = 2
        probs = np.array([[0.15, 0.45, 0.3, 0.1]])
        assert target_anomaly_score(probs, m)[0] == pytest.approx(0.45)

    def test_section3c_threshold(self):
        m, k = 2, 3
        # The cut sits at k/(m+k) = 0.6: just below -> anomalous, just
        # above -> normal. (Exact equality is untestable in floating point.)
        below = np.array([[0.205, 0.2, 0.2, 0.2, 0.195]])   # normal mass 0.595
        above = np.array([[0.195, 0.2, 0.2, 0.2, 0.205]])   # normal mass 0.605
        assert not is_normal_rule(below, m, k)[0]
        assert is_normal_rule(above, m, k)[0]

    def test_softmax_matches_manual(self, rng):
        z = rng.standard_normal((4, 5))
        np.testing.assert_allclose(softmax(z), manual_softmax(z), atol=1e-12)
