"""Candidate selection (Algorithm 1, lines 1-7)."""

import numpy as np
import pytest

from repro.core.candidate_selection import CandidateSelector


class TestCandidateSelector:
    def test_selects_alpha_fraction(self, tiny_split):
        selector = CandidateSelector(k=2, alpha=0.1, ae_epochs=3, random_state=0)
        sel = selector.fit(tiny_split.X_unlabeled, tiny_split.X_labeled)
        expected = round(0.1 * len(tiny_split.X_unlabeled))
        assert sel.candidate_mask.sum() == expected

    def test_candidates_and_normals_partition(self, tiny_split):
        selector = CandidateSelector(k=2, alpha=0.05, ae_epochs=3, random_state=0)
        sel = selector.fit(tiny_split.X_unlabeled, tiny_split.X_labeled)
        union = np.concatenate([sel.candidate_indices, sel.normal_indices])
        assert sorted(union.tolist()) == list(range(len(tiny_split.X_unlabeled)))

    def test_candidates_have_highest_selection_scores(self, tiny_split):
        selector = CandidateSelector(k=2, alpha=0.05, ae_epochs=3, random_state=0)
        sel = selector.fit(tiny_split.X_unlabeled, tiny_split.X_labeled)
        assert (
            sel.selection_scores[sel.candidate_mask].min()
            >= sel.selection_scores[~sel.candidate_mask].max()
        )

    def test_raw_error_ordering_without_normalization(self, tiny_split):
        selector = CandidateSelector(k=2, alpha=0.05, ae_epochs=3,
                                     normalize_errors=False, random_state=0)
        sel = selector.fit(tiny_split.X_unlabeled, tiny_split.X_labeled)
        np.testing.assert_array_equal(sel.selection_scores, sel.errors)
        assert sel.errors[sel.candidate_mask].min() >= sel.errors[~sel.candidate_mask].max()

    def test_threshold_equals_last_candidate_score(self, tiny_split):
        selector = CandidateSelector(k=2, alpha=0.05, ae_epochs=3, random_state=0)
        sel = selector.fit(tiny_split.X_unlabeled, tiny_split.X_labeled)
        assert sel.threshold == pytest.approx(sel.selection_scores[sel.candidate_mask].min())

    def test_normalization_standardizes_per_cluster(self, tiny_split):
        selector = CandidateSelector(k=2, alpha=0.05, ae_epochs=3, random_state=0)
        sel = selector.fit(tiny_split.X_unlabeled, tiny_split.X_labeled)
        for cluster in range(sel.k):
            mask = sel.cluster_labels == cluster
            assert sel.selection_scores[mask].mean() == pytest.approx(0.0, abs=1e-9)
            assert sel.selection_scores[mask].std() == pytest.approx(1.0, abs=1e-6)

    def test_candidates_enrich_anomalies(self, tiny_split):
        """Core claim: top-α% by recon error over-represents anomalies."""
        selector = CandidateSelector(k=2, alpha=0.08, ae_lr=3e-3, ae_epochs=30, random_state=0)
        sel = selector.fit(tiny_split.X_unlabeled, tiny_split.X_labeled)
        kinds = tiny_split.unlabeled_kind
        base_rate = (kinds > 0).mean()
        candidate_rate = (kinds[sel.candidate_mask] > 0).mean()
        assert candidate_rate > 2 * base_rate

    def test_elbow_when_k_none(self, tiny_split):
        selector = CandidateSelector(k=None, alpha=0.05, ae_epochs=2, k_max=4, random_state=0)
        sel = selector.fit(tiny_split.X_unlabeled, tiny_split.X_labeled)
        assert 1 <= sel.k <= 4

    def test_cluster_labels_in_range(self, tiny_split):
        selector = CandidateSelector(k=3, alpha=0.05, ae_epochs=2, random_state=0)
        sel = selector.fit(tiny_split.X_unlabeled, tiny_split.X_labeled)
        assert sel.cluster_labels.min() >= 0 and sel.cluster_labels.max() < 3

    def test_assign_clusters_for_new_data(self, tiny_split):
        selector = CandidateSelector(k=2, alpha=0.05, ae_epochs=2, random_state=0)
        selector.fit(tiny_split.X_unlabeled, tiny_split.X_labeled)
        clusters = selector.assign_clusters(tiny_split.X_test)
        assert clusters.shape == (len(tiny_split.X_test),)

    def test_reconstruction_error_for_new_data(self, tiny_split):
        selector = CandidateSelector(k=2, alpha=0.05, ae_epochs=10, random_state=0)
        selector.fit(tiny_split.X_unlabeled, tiny_split.X_labeled)
        errors = selector.reconstruction_error(tiny_split.X_test)
        assert errors.shape == (len(tiny_split.X_test),)
        assert np.all(errors >= 0)

    def test_unfitted_raises(self):
        selector = CandidateSelector(k=2)
        with pytest.raises(RuntimeError):
            selector.assign_clusters(np.zeros((2, 4)))
        with pytest.raises(RuntimeError):
            selector.reconstruction_error(np.zeros((2, 4)))

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            CandidateSelector(alpha=0.0)
        with pytest.raises(ValueError):
            CandidateSelector(alpha=1.0)

    def test_too_small_input_rejected(self):
        with pytest.raises(ValueError):
            CandidateSelector(k=1).fit(np.zeros((1, 3)), None)

    def test_works_without_labeled_data(self, tiny_split):
        selector = CandidateSelector(k=2, alpha=0.05, ae_epochs=2, random_state=0)
        sel = selector.fit(tiny_split.X_unlabeled, None)
        assert sel.candidate_mask.sum() > 0


class TestNoFittedAutoencoder:
    def test_clear_error_instead_of_stop_iteration(self, rng):
        """Regression: an all-unfitted autoencoder list used to leak a bare
        ``StopIteration`` out of ``next()``; it must be a ``RuntimeError``
        with an actionable message."""
        from repro.nn.autoencoder import SADAutoencoder

        X = rng.random((40, 4))
        selector = CandidateSelector(k=1, alpha=0.1, ae_epochs=1, random_state=0)
        selector.fit(X, None)
        # Simulate a selector whose clusters all ended up empty / unfitted.
        selector.autoencoders_ = [SADAutoencoder(hidden_sizes=(4,))]
        with pytest.raises(RuntimeError, match="no autoencoder was fitted"):
            selector.reconstruction_error(X)

    def test_fallback_still_used_for_partial_fit(self, rng):
        """Only the truly-empty cluster falls back; fitted ones are used."""
        X = rng.random((40, 4))
        selector = CandidateSelector(k=2, alpha=0.1, ae_epochs=1, random_state=0)
        selector.fit(X, None)
        # Unfit one cluster's AE; its members must fall back, not crash.
        from repro.nn.autoencoder import SADAutoencoder

        selector.autoencoders_[1] = SADAutoencoder(hidden_sizes=(4,))
        errors = selector.reconstruction_error(X)
        assert errors.shape == (40,)
        assert np.all(np.isfinite(errors))
