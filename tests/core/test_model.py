"""End-to-end TargAD behaviour on the tiny split."""

import numpy as np
import pytest

from repro.core import TargAD, TargADConfig
from repro.data.schema import KIND_NONTARGET, KIND_NORMAL, KIND_TARGET
from repro.metrics import auprc, auroc

FAST = dict(k=2, ae_lr=3e-3, ae_epochs=30, clf_epochs=30)


@pytest.fixture(scope="module")
def fitted(tiny_split_module):
    model = TargAD(TargADConfig(random_state=0, **FAST))
    model.fit(tiny_split_module.X_unlabeled, tiny_split_module.X_labeled,
              tiny_split_module.y_labeled)
    return model


@pytest.fixture(scope="module")
def tiny_split_module():
    from tests.conftest import TINY_SPEC, make_tiny_generator
    from repro.data.splits import build_split

    return build_split(make_tiny_generator(0), TINY_SPEC, scale=1.0, random_state=0)


class TestTargADFit:
    def test_detects_targets_well(self, fitted, tiny_split_module):
        scores = fitted.decision_function(tiny_split_module.X_test)
        assert auprc(tiny_split_module.y_test_binary, scores) > 0.7
        assert auroc(tiny_split_module.y_test_binary, scores) > 0.9

    def test_targets_outscore_nontargets(self, fitted, tiny_split_module):
        scores = fitted.decision_function(tiny_split_module.X_test)
        kinds = tiny_split_module.test_kind
        assert scores[kinds == KIND_TARGET].mean() > scores[kinds == KIND_NONTARGET].mean()
        assert scores[kinds == KIND_NONTARGET].mean() >= scores[kinds == KIND_NORMAL].mean() - 0.05

    def test_m_and_k_inferred(self, fitted):
        assert fitted.m_ == 2
        assert fitted.k_ == 2

    def test_loss_history_recorded(self, fitted):
        assert len(fitted.loss_history) == FAST["clf_epochs"]
        assert fitted.loss_history[-1] < fitted.loss_history[0]

    def test_weight_history_one_per_epoch(self, fitted):
        assert len(fitted.weight_history) == FAST["clf_epochs"]
        n_candidates = fitted.selection_.candidate_mask.sum()
        assert all(len(w) == n_candidates for w in fitted.weight_history)

    def test_scores_in_unit_interval(self, fitted, tiny_split_module):
        scores = fitted.decision_function(tiny_split_module.X_test)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_full_proba_shape(self, fitted, tiny_split_module):
        probs = fitted.predict_proba_full(tiny_split_module.X_test)
        assert probs.shape == (len(tiny_split_module.X_test), fitted.m_ + fitted.k_)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    def test_predict_binary(self, fitted, tiny_split_module):
        pred = fitted.predict(tiny_split_module.X_test)
        assert set(np.unique(pred)) <= {0, 1}

    def test_predict_target_class_range(self, fitted, tiny_split_module):
        classes = fitted.predict_target_class(tiny_split_module.X_test)
        assert classes.min() >= 0 and classes.max() < fitted.m_


class TestTriclass:
    @pytest.mark.parametrize("strategy", ["msp", "es", "ed"])
    def test_output_codes(self, fitted, tiny_split_module, strategy):
        tri = fitted.predict_triclass(tiny_split_module.X_test, strategy=strategy)
        assert set(np.unique(tri)) <= {KIND_NORMAL, KIND_TARGET, KIND_NONTARGET}

    def test_triclass_better_than_chance(self, fitted, tiny_split_module):
        tri = fitted.predict_triclass(tiny_split_module.X_test, strategy="ed")
        accuracy = (tri == tiny_split_module.test_kind).mean()
        assert accuracy > 0.7  # dominated by the normal class

    def test_normals_mostly_classified_normal(self, fitted, tiny_split_module):
        tri = fitted.predict_triclass(tiny_split_module.X_test)
        normals = tiny_split_module.test_kind == KIND_NORMAL
        assert (tri[normals] == KIND_NORMAL).mean() > 0.85

    def test_unknown_strategy_rejected(self, fitted, tiny_split_module):
        with pytest.raises(KeyError):
            fitted.predict_triclass(tiny_split_module.X_test, strategy="banana")

    def test_ed_usable_with_single_target_class(self, tiny_split_module):
        """Regression: ED over one target logit is identically zero; with
        m = 1 the strategy must widen or tri-class routes nothing to
        non-target."""
        from tests.conftest import TINY_SPEC, make_tiny_generator
        from repro.data.splits import build_split

        split = build_split(
            make_tiny_generator(0), TINY_SPEC, scale=1.0, random_state=0,
            target_families=["tgt_easy"],
        )
        model = TargAD(TargADConfig(random_state=0, **FAST))
        model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
        assert model.m_ == 1
        tri = model.predict_triclass(split.X_test, strategy="ed")
        # The strategy must be able to emit non-target decisions at all.
        strategy = model._get_strategy("ed")
        scores = strategy.ood_score(model.logits(split.X_test))
        assert scores.std() > 0.0


class TestTargADValidation:
    def test_unfitted_raises(self):
        model = TargAD(TargADConfig())
        with pytest.raises(RuntimeError):
            model.decision_function(np.zeros((2, 4)))

    def test_requires_labeled_anomalies(self, tiny_split_module):
        model = TargAD(TargADConfig(**FAST))
        with pytest.raises(ValueError):
            model.fit(tiny_split_module.X_unlabeled, np.empty((0, 15)), np.empty(0, dtype=int))

    def test_label_length_mismatch(self, tiny_split_module):
        model = TargAD(TargADConfig(**FAST))
        with pytest.raises(ValueError):
            model.fit(tiny_split_module.X_unlabeled, tiny_split_module.X_labeled, np.array([0]))

    def test_config_or_kwargs_not_both(self):
        with pytest.raises(ValueError):
            TargAD(TargADConfig(), alpha=0.1)

    def test_kwargs_construction(self):
        model = TargAD(alpha=0.07, random_state=3)
        assert model.config.alpha == 0.07

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TargADConfig(alpha=0.0)
        with pytest.raises(ValueError):
            TargADConfig(lambda1=-1.0)
        with pytest.raises(ValueError):
            TargADConfig(k=0)


class TestDeterminism:
    def test_same_seed_same_scores(self, tiny_split_module):
        def run():
            m = TargAD(TargADConfig(random_state=11, **FAST))
            m.fit(tiny_split_module.X_unlabeled, tiny_split_module.X_labeled,
                  tiny_split_module.y_labeled)
            return m.decision_function(tiny_split_module.X_test)

        np.testing.assert_array_equal(run(), run())

    def test_epoch_callback_invoked(self, tiny_split_module):
        calls = []
        m = TargAD(TargADConfig(random_state=0, k=2, ae_epochs=2, clf_epochs=4))
        m.fit(tiny_split_module.X_unlabeled, tiny_split_module.X_labeled,
              tiny_split_module.y_labeled, epoch_callback=lambda e, model: calls.append(e))
        assert calls == [0, 1, 2, 3]


class TestEmptyInput:
    """Regression: scoring an empty batch used to crash inside
    ``forward_in_batches`` (1-D empty logits broke softmax / column
    indexing). Every public scoring entry point must now accept
    zero-row input and return correctly-shaped empty output."""

    @pytest.fixture(scope="class")
    def empty_X(self, tiny_split_module):
        return np.empty((0, tiny_split_module.X_test.shape[1]))

    def test_logits_shape(self, fitted, empty_X):
        assert fitted.logits(empty_X).shape == (0, fitted.m_ + fitted.k_)

    def test_decision_function_shape(self, fitted, empty_X):
        scores = fitted.decision_function(empty_X)
        assert scores.shape == (0,)

    def test_predict_shape(self, fitted, empty_X):
        assert fitted.predict(empty_X).shape == (0,)

    def test_predict_triclass_shape(self, fitted, empty_X):
        assert fitted.predict_triclass(empty_X).shape == (0,)

    def test_predict_proba_full_shape(self, fitted, empty_X):
        probs = fitted.predict_proba_full(empty_X)
        assert probs.shape == (0, fitted.m_ + fitted.k_)
