"""Persistence error paths and forward-compatibility guards."""

import json

import numpy as np
import pytest

from repro.core import TargAD, TargADConfig, load_model, save_model
from repro.data.export import load_split, save_split


@pytest.fixture(scope="module")
def saved_model(tmp_path_factory):
    from tests.conftest import TINY_SPEC, make_tiny_generator
    from repro.data.splits import build_split

    split = build_split(make_tiny_generator(0), TINY_SPEC, scale=1.0, random_state=0)
    model = TargAD(TargADConfig(random_state=0, k=2, ae_epochs=3, clf_epochs=3))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    path = tmp_path_factory.mktemp("models") / "model.npz"
    save_model(model, path)
    return path, split


def _rewrite_header(src_path, dst_path, mutate):
    archive = dict(np.load(src_path, allow_pickle=False))
    header = json.loads(bytes(archive["header"]).decode("utf-8"))
    mutate(header)
    archive["header"] = np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8)
    with open(dst_path, "wb") as fh:
        np.savez_compressed(fh, **archive)


class TestModelPersistenceErrors:
    def test_future_format_version_rejected(self, saved_model, tmp_path):
        src, _ = saved_model
        bad = tmp_path / "future.npz"
        _rewrite_header(src, bad, lambda h: h.update(format_version=99))
        with pytest.raises(ValueError, match="format version"):
            load_model(bad)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(tmp_path / "nope.npz")

    def test_loaded_model_is_usable_for_all_inference(self, saved_model):
        path, split = saved_model
        model = load_model(path)
        assert model.predict(split.X_test[:10]).shape == (10,)
        assert model.predict_target_class(split.X_test[:10]).shape == (10,)


class TestCorruptArchives:
    def test_truncated_archive_raises_model_load_error(self, saved_model, tmp_path):
        from repro.core import ModelLoadError

        src, _ = saved_model
        bad = tmp_path / "truncated.npz"
        data = src.read_bytes()
        bad.write_bytes(data[: len(data) // 2])
        with pytest.raises(ModelLoadError):
            load_model(bad)

    def test_garbage_bytes_raise_model_load_error(self, tmp_path):
        from repro.core import ModelLoadError

        bad = tmp_path / "garbage.npz"
        bad.write_bytes(b"this is not an npz archive at all")
        with pytest.raises(ModelLoadError):
            load_model(bad)

    def test_missing_header_raises_model_load_error(self, saved_model, tmp_path):
        from repro.core import ModelLoadError

        src, _ = saved_model
        archive = dict(np.load(src, allow_pickle=False))
        del archive["header"]
        bad = tmp_path / "headerless.npz"
        with open(bad, "wb") as fh:
            np.savez_compressed(fh, **archive)
        with pytest.raises(ModelLoadError, match="header"):
            load_model(bad)

    def test_missing_arrays_raise_model_load_error(self, saved_model, tmp_path):
        from repro.core import ModelLoadError

        src, _ = saved_model
        archive = dict(np.load(src, allow_pickle=False))
        victim = next(k for k in archive if k.startswith("classifier"))
        del archive[victim]
        bad = tmp_path / "missing-arrays.npz"
        with open(bad, "wb") as fh:
            np.savez_compressed(fh, **archive)
        with pytest.raises(ModelLoadError, match="format version"):
            load_model(bad)

    def test_model_load_error_is_a_value_error(self):
        from repro.core import ModelLoadError

        assert issubclass(ModelLoadError, ValueError)


class TestAtomicSave:
    def test_failed_save_leaves_no_partial_file(self, saved_model, tmp_path,
                                                monkeypatch):
        import repro.core.persistence as persistence

        src, split = saved_model
        model = load_model(src)
        target = tmp_path / "model.npz"

        def exploding_savez(fh, **arrays):
            fh.write(b"partial bytes")
            raise OSError("disk full")

        monkeypatch.setattr(persistence.np, "savez_compressed", exploding_savez)
        with pytest.raises(OSError, match="disk full"):
            save_model(model, target)
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []  # temp file cleaned up too

    def test_failed_save_preserves_previous_version(self, saved_model, tmp_path,
                                                    monkeypatch):
        import repro.core.persistence as persistence

        src, _ = saved_model
        model = load_model(src)
        target = tmp_path / "model.npz"
        save_model(model, target)
        good_bytes = target.read_bytes()

        def exploding_savez(fh, **arrays):
            raise OSError("disk full")

        monkeypatch.setattr(persistence.np, "savez_compressed", exploding_savez)
        with pytest.raises(OSError):
            save_model(model, target)
        assert target.read_bytes() == good_bytes

    def test_save_overwrites_atomically(self, saved_model, tmp_path):
        src, _ = saved_model
        model = load_model(src)
        target = tmp_path / "model.npz"
        save_model(model, target)
        save_model(model, target)  # second save replaces in place
        assert load_model(target).m_ == model.m_


class TestSplitExportErrors:
    def test_future_format_version_rejected(self, tmp_path):
        from tests.conftest import TINY_SPEC, make_tiny_generator
        from repro.data.splits import build_split

        split = build_split(make_tiny_generator(0), TINY_SPEC, scale=0.5, random_state=0)
        src = tmp_path / "split.npz"
        save_split(split, src)
        bad = tmp_path / "future-split.npz"
        _rewrite_header(src, bad, lambda h: h.update(format_version=42))
        with pytest.raises(ValueError, match="format version"):
            load_split(bad)
