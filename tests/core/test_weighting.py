"""The Eq. 4/5 weight mechanism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.weighting import initial_weights, update_weights


class TestInitialWeights:
    def test_low_error_gets_high_weight(self):
        w = initial_weights(np.array([1.0, 5.0, 10.0]))
        assert w[0] == pytest.approx(1.0)
        assert w[2] == pytest.approx(0.0)
        assert w[0] > w[1] > w[2]

    def test_constant_errors_give_uniform_ones(self):
        np.testing.assert_array_equal(initial_weights(np.full(5, 3.0)), np.ones(5))

    def test_empty_input(self):
        assert len(initial_weights(np.array([]))) == 0


class TestUpdateWeights:
    def test_confident_predictions_get_low_weight(self):
        probs = np.array([
            [0.9, 0.05, 0.05],   # confident -> likely normal/target -> low w
            [0.34, 0.33, 0.33],  # uniform -> likely non-target -> high w
        ])
        w = update_weights(probs)
        assert w[0] == pytest.approx(0.0)
        assert w[1] == pytest.approx(1.0)

    def test_monotone_in_max_prob(self):
        probs = np.array([[0.9, 0.1], [0.7, 0.3], [0.55, 0.45]])
        w = update_weights(probs)
        assert w[0] < w[1] < w[2]

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            update_weights(np.array([0.5, 0.5]))


@settings(max_examples=40, deadline=None)
@given(
    arrays(
        np.float64,
        st.tuples(st.integers(1, 30), st.integers(2, 6)),
        elements=st.floats(0.01, 10.0, allow_nan=False, width=64),
    )
)
def test_update_weights_properties(raw):
    """Weights are in [0,1]; ordering is inverse to the row max."""
    probs = raw / raw.sum(axis=1, keepdims=True)
    w = update_weights(probs)
    assert np.all(w >= 0.0) and np.all(w <= 1.0)
    eps = probs.max(axis=1)
    order = np.argsort(eps)
    assert np.all(np.diff(w[order]) <= 1e-12)  # weight non-increasing in eps


@settings(max_examples=40, deadline=None)
@given(
    arrays(np.float64, st.integers(1, 40), elements=st.floats(0.0, 100.0, allow_nan=False, width=64))
)
def test_initial_weights_bounds(errors):
    w = initial_weights(errors)
    assert np.all(w >= 0.0) and np.all(w <= 1.0)

@settings(max_examples=40, deadline=None)
@given(
    arrays(
        np.float64,
        st.tuples(st.integers(2, 30), st.integers(2, 6)),
        elements=st.floats(0.01, 10.0, allow_nan=False, width=64),
    ),
    st.integers(0, 1000),
)
def test_update_weights_permutation_equivariant(raw, seed):
    """Shuffling the candidate rows shuffles the weights identically —
    no candidate's weight may depend on where it sits in the batch."""
    probs = raw / raw.sum(axis=1, keepdims=True)
    perm = np.random.default_rng(seed).permutation(len(probs))
    np.testing.assert_allclose(
        update_weights(probs[perm]), update_weights(probs)[perm],
        rtol=1e-12, atol=1e-12,
    )


@settings(max_examples=40, deadline=None)
@given(
    arrays(np.float64, st.integers(2, 40),
           elements=st.floats(0.0, 100.0, allow_nan=False, width=64)),
    st.integers(0, 1000),
)
def test_initial_weights_permutation_equivariant(errors, seed):
    perm = np.random.default_rng(seed).permutation(len(errors))
    np.testing.assert_allclose(
        initial_weights(errors[perm]), initial_weights(errors)[perm],
        rtol=1e-12, atol=1e-12,
    )


@settings(max_examples=40, deadline=None)
@given(
    arrays(np.float64, st.integers(2, 40),
           elements=st.floats(0.0, 100.0, allow_nan=False, width=64))
)
def test_initial_weights_monotone_decreasing_in_error(errors):
    """Eq. 5: larger reconstruction error -> smaller (or equal) weight."""
    w = initial_weights(errors)
    order = np.argsort(errors)
    assert np.all(np.diff(w[order]) <= 1e-12)
