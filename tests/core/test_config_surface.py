"""TargADConfig surface: defaults track the paper, validation is complete."""

import dataclasses

import pytest

from repro.core import TargADConfig


class TestPaperDefaults:
    """Section IV-C parameter setup (with documented deviations)."""

    def test_alpha_default_five_percent(self):
        assert TargADConfig().alpha == 0.05

    def test_eta_default_one(self):
        assert TargADConfig().eta == 1.0

    def test_lambda_defaults(self):
        cfg = TargADConfig()
        assert cfg.lambda1 == 0.1
        assert cfg.lambda2 == 1.0

    def test_batch_sizes_match_paper(self):
        cfg = TargADConfig()
        assert cfg.ae_batch_size == 256
        assert cfg.clf_batch_size == 128

    def test_k_defaults_to_elbow(self):
        assert TargADConfig().k is None

    def test_all_loss_terms_on_by_default(self):
        cfg = TargADConfig()
        assert cfg.use_oe_loss and cfg.use_re_loss and cfg.use_weighting
        assert cfg.oe_label_style == "targad"
        assert cfg.clf_dropout == 0.0


class TestValidationCompleteness:
    @pytest.mark.parametrize("field,bad", [
        ("alpha", 0.0),
        ("alpha", 1.0),
        ("eta", -0.1),
        ("lambda1", -1.0),
        ("lambda2", -1.0),
        ("k", 0),
        ("k_max", 0),
        ("oe_label_style", "nope"),
        ("clf_dropout", 1.0),
    ])
    def test_invalid_values_rejected(self, field, bad):
        with pytest.raises(ValueError):
            TargADConfig(**{field: bad})

    def test_config_is_a_dataclass(self):
        assert dataclasses.is_dataclass(TargADConfig)

    def test_config_roundtrips_via_asdict(self):
        cfg = TargADConfig(k=3, alpha=0.08, random_state=5)
        rebuilt = TargADConfig(**{
            key: tuple(v) if isinstance(v, list) else v
            for key, v in dataclasses.asdict(cfg).items()
        })
        assert rebuilt == cfg
