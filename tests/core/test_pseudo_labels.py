"""Pseudo-label construction (Section III-B2)."""

import numpy as np
import pytest

from repro.core.pseudo_labels import (
    normal_pseudo_label,
    normal_pseudo_labels,
    oe_uniform_pseudo_label,
    ood_pseudo_label,
    target_pseudo_label,
    target_pseudo_labels,
)


class TestTargetLabel:
    def test_onehot_in_first_m_dims(self):
        label = target_pseudo_label(1, m=3, k=4)
        assert label.shape == (7,)
        assert label[1] == 1.0 and label.sum() == 1.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            target_pseudo_label(3, m=3, k=4)
        with pytest.raises(ValueError):
            target_pseudo_label(-1, m=3, k=4)

    def test_vectorized_matches_scalar(self):
        y = np.array([0, 2, 1])
        batch = target_pseudo_labels(y, m=3, k=2)
        for row, cls in zip(batch, y):
            np.testing.assert_array_equal(row, target_pseudo_label(cls, 3, 2))

    def test_vectorized_range_check(self):
        with pytest.raises(ValueError):
            target_pseudo_labels(np.array([5]), m=3, k=2)


class TestNormalLabel:
    def test_onehot_in_last_k_dims(self):
        label = normal_pseudo_label(2, m=3, k=4)
        assert label[3 + 2] == 1.0 and label.sum() == 1.0
        assert label[:3].sum() == 0.0

    def test_cluster_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            normal_pseudo_label(4, m=3, k=4)

    def test_vectorized(self):
        clusters = np.array([0, 3, 1])
        batch = normal_pseudo_labels(clusters, m=2, k=4)
        assert batch.shape == (3, 6)
        np.testing.assert_array_equal(batch.sum(axis=1), np.ones(3))
        np.testing.assert_array_equal(batch[:, :2], 0.0)


class TestOODLabel:
    def test_uniform_over_target_dims_only(self):
        label = ood_pseudo_label(m=4, k=3)
        np.testing.assert_allclose(label[:4], 0.25)
        np.testing.assert_array_equal(label[4:], 0.0)

    def test_sums_to_one(self):
        assert ood_pseudo_label(3, 5).sum() == pytest.approx(1.0)

    def test_oe_uniform_is_flat_over_all(self):
        label = oe_uniform_pseudo_label(m=2, k=3)
        np.testing.assert_allclose(label, 1 / 5)

    def test_invalid_m_k_rejected(self):
        for fn in (ood_pseudo_label, oe_uniform_pseudo_label):
            with pytest.raises(ValueError):
                fn(0, 3)
            with pytest.raises(ValueError):
                fn(3, 0)
