"""Property-style invariants of a fitted TargAD."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TargAD, TargADConfig
from repro.core.scoring import is_normal_rule, softmax, target_anomaly_score


@pytest.fixture(scope="module")
def fitted_pair():
    from tests.conftest import TINY_SPEC, make_tiny_generator
    from repro.data.splits import build_split

    split = build_split(make_tiny_generator(0), TINY_SPEC, scale=1.0, random_state=0)
    model = TargAD(TargADConfig(random_state=0, k=2, ae_lr=3e-3, ae_epochs=10, clf_epochs=10))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    return model, split


class TestScoreInvariants:
    def test_scores_bounded_by_softmax(self, fitted_pair):
        model, split = fitted_pair
        scores = model.decision_function(split.X_test)
        assert np.all(scores >= 0.0) and np.all(scores <= 1.0)

    def test_score_equals_max_target_prob(self, fitted_pair):
        model, split = fitted_pair
        probs = model.predict_proba_full(split.X_test)
        np.testing.assert_allclose(
            model.decision_function(split.X_test),
            probs[:, : model.m_].max(axis=1),
        )

    def test_normal_rule_consistent_with_triclass(self, fitted_pair):
        model, split = fitted_pair
        probs = model.predict_proba_full(split.X_test)
        normal_mask = is_normal_rule(probs, model.m_, model.k_)
        tri = model.predict_triclass(split.X_test)
        np.testing.assert_array_equal(tri == 0, normal_mask)

    def test_predict_threshold_monotonicity(self, fitted_pair):
        model, split = fitted_pair
        loose = model.predict(split.X_test, threshold=0.3).sum()
        strict = model.predict(split.X_test, threshold=0.7).sum()
        assert strict <= loose

    def test_weight_history_values_bounded(self, fitted_pair):
        model, _ = fitted_pair
        for weights in model.weight_history:
            assert np.all(weights >= 0.0) and np.all(weights <= 1.0)


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(1, 4),
    k=st.integers(1, 4),
    seed=st.integers(0, 500),
)
def test_scoring_rules_consistent_for_any_distribution(m, k, seed):
    """For any probability matrix: the normal rule and Eq. 9 are coherent.

    A perfectly confident normal (all mass in a normal dim) must be
    classified normal and get S_tar ~ 0; a perfectly confident target must
    be anomalous with S_tar ~ 1.
    """
    rng = np.random.default_rng(seed)
    logits = rng.normal(0, 1, size=(8, m + k))
    # Construct extremes.
    confident_target = np.full(m + k, -30.0)
    confident_target[rng.integers(m)] = 30.0
    confident_normal = np.full(m + k, -30.0)
    confident_normal[m + rng.integers(k)] = 30.0
    probs = softmax(np.vstack([logits, confident_target, confident_normal]))

    s = target_anomaly_score(probs, m)
    normal = is_normal_rule(probs, m, k)
    assert s[-2] > 0.99 and not normal[-2]
    assert s[-1] < 0.01 and normal[-1]
    assert np.all((s >= 0) & (s <= 1))
