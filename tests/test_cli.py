"""CLI subcommands end-to-end (tiny scales)."""

import json

import pytest

from repro.cli import main


class TestCLI:
    def test_info_single_dataset(self, capsys):
        assert main(["info", "--dataset", "kddcup99", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert payload["name"] == "KDDCUP99"
        assert payload["D"] == 32

    def test_train_reports_metrics(self, capsys):
        code = main([
            "train", "--dataset", "kddcup99", "--scale", "0.02",
            "--seed", "0", "--k", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "AUPRC=" in out and "test" in out

    def test_train_save_then_evaluate(self, capsys, tmp_path):
        model_path = str(tmp_path / "model.npz")
        assert main([
            "train", "--dataset", "kddcup99", "--scale", "0.02",
            "--seed", "0", "--k", "3", "--output", model_path,
        ]) == 0
        assert main([
            "evaluate", "--dataset", "kddcup99", "--scale", "0.02",
            "--seed", "0", "--model", model_path, "--strategy", "ed",
        ]) == 0
        out = capsys.readouterr().out
        assert "Tri-class report (ED)" in out

    def test_compare_subset(self, capsys):
        code = main([
            "compare", "--dataset", "kddcup99", "--scale", "0.01",
            "--detectors", "iForest", "--n-seeds", "1",
        ])
        assert code == 0
        assert "iForest" in capsys.readouterr().out

    def test_compare_unknown_detector_errors(self, capsys):
        code = main([
            "compare", "--dataset", "kddcup99", "--detectors", "NotAModel",
        ])
        assert code == 2

    def test_report_subcommand(self, capsys, tmp_path):
        out = str(tmp_path / "rep.md")
        code = main([
            "report", "--output", out, "--datasets", "kddcup99",
            "--detectors", "iForest", "--scale", "0.015",
        ])
        assert code == 0
        assert "# TargAD experiment report" in open(out).read()

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
