"""CLI subcommands end-to-end (tiny scales)."""

import json

import pytest

from repro.cli import main


class TestCLI:
    def test_info_single_dataset(self, capsys):
        assert main(["info", "--dataset", "kddcup99", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert payload["name"] == "KDDCUP99"
        assert payload["D"] == 32

    def test_train_reports_metrics(self, capsys):
        code = main([
            "train", "--dataset", "kddcup99", "--scale", "0.02",
            "--seed", "0", "--k", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "AUPRC=" in out and "test" in out

    def test_train_save_then_evaluate(self, capsys, tmp_path):
        model_path = str(tmp_path / "model.npz")
        assert main([
            "train", "--dataset", "kddcup99", "--scale", "0.02",
            "--seed", "0", "--k", "3", "--output", model_path,
        ]) == 0
        assert main([
            "evaluate", "--dataset", "kddcup99", "--scale", "0.02",
            "--seed", "0", "--model", model_path, "--strategy", "ed",
        ]) == 0
        out = capsys.readouterr().out
        assert "Tri-class report (ED)" in out

    def test_compare_subset(self, capsys):
        code = main([
            "compare", "--dataset", "kddcup99", "--scale", "0.01",
            "--detectors", "iForest", "--n-seeds", "1",
        ])
        assert code == 0
        assert "iForest" in capsys.readouterr().out

    def test_compare_unknown_detector_errors(self, capsys):
        code = main([
            "compare", "--dataset", "kddcup99", "--detectors", "NotAModel",
        ])
        assert code == 2

    def test_report_subcommand(self, capsys, tmp_path):
        out = str(tmp_path / "rep.md")
        code = main([
            "report", "--output", out, "--datasets", "kddcup99",
            "--detectors", "iForest", "--scale", "0.015",
        ])
        assert code == 0
        assert "# TargAD experiment report" in open(out).read()

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


@pytest.mark.taxonomy
class TestTaxonomyCLI:
    def test_taxonomy_smoke_cell(self, capsys, tmp_path):
        json_path = tmp_path / "tax.json"
        md_path = tmp_path / "tax.md"
        code = main([
            "taxonomy", "--dataset", "kddcup99", "--scale", "0.01",
            "--families", "local", "--detectors", "iForest",
            "--json", str(json_path), "--markdown", str(md_path),
            "--telemetry",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Cross-family taxonomy robustness" in out
        assert "local/unseen*" in out  # unseen cell marked in the table
        payload = json.loads(json_path.read_text())
        assert payload["detectors"] == ["iForest"]
        assert payload["unseen"]["local/unseen"] is True
        assert "# TargAD taxonomy robustness report" in md_path.read_text()
        assert "taxonomy.cells" in out  # telemetry dashboard rendered

    def test_taxonomy_unknown_detector_errors(self, capsys):
        code = main([
            "taxonomy", "--dataset", "kddcup99", "--detectors", "NotAModel",
        ])
        assert code == 2

    def test_taxonomy_unknown_family_errors(self, capsys):
        code = main([
            "taxonomy", "--dataset", "kddcup99", "--families", "nosuchfamily",
        ])
        assert code == 2


class TestServeBenchCLI:
    def test_serve_bench_replays_and_reports(self, capsys, tmp_path):
        json_path = tmp_path / "replay.json"
        code = main([
            "serve-bench", "--dataset", "kddcup99", "--scale", "0.02",
            "--seed", "0", "--k", "3", "--rate", "200", "--requests", "40",
            "--batch-mix", "8:0.5,32:0.5", "--json", str(json_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "kddcup99/single:" in out
        assert "kddcup99/daemon:" in out
        assert "daemon vs single:" in out
        assert "daemon SLO gauges:" in out
        payload = json.loads(json_path.read_text())
        assert payload["single"]["n_requests"] == 40
        assert payload["daemon"]["n_requests"] == 40
        assert payload["daemon"]["rows"] == payload["single"]["rows"]
        assert payload["daemon"]["latency_p99_ms"] > 0
        assert payload["daemon_speedup_vs_single"] > 0

    def test_serve_bench_rejects_bad_batch_mix(self, capsys):
        with pytest.raises(ValueError):
            main([
                "serve-bench", "--dataset", "kddcup99", "--scale", "0.02",
                "--batch-mix", "0:1.0",
            ])


class TestResilienceCLI:
    @pytest.fixture(scope="class")
    def model_path(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("resilience") / "model.npz")
        assert main([
            "train", "--dataset", "kddcup99", "--scale", "0.02",
            "--seed", "0", "--k", "3", "--output", path,
        ]) == 0
        return path

    def test_default_plan_trips_and_recovers(self, capsys, model_path):
        code = main([
            "resilience", "--dataset", "kddcup99", "--scale", "0.02",
            "--seed", "0", "--model", model_path, "--batches", "6",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fault plan:" in out
        assert "DEGRADED" in out
        assert "resilience.breaker.trips = 1" in out
        assert "resilience.breaker.recovers = 1" in out
        assert "breaker transitions:" in out

    def test_custom_plan_file_and_corrupt_rows(self, capsys, model_path, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({"raise_on": [1], "seed": 3}))
        code = main([
            "resilience", "--dataset", "kddcup99", "--scale", "0.02",
            "--seed", "0", "--model", model_path, "--batches", "3",
            "--plan", str(plan), "--corrupt-rows", "0.1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "raise on call(s) [1]" in out
        assert "quarantined" in out

    def test_corrupt_model_file_exits_cleanly(self, capsys, tmp_path):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"junk")
        code = main([
            "resilience", "--dataset", "kddcup99", "--scale", "0.02",
            "--seed", "0", "--model", str(bad),
        ])
        assert code == 2
        assert "cannot load model" in capsys.readouterr().err
