"""Dense / Activation / Sequential / mlp builder tests."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn.layers import Activation, Dense, Sequential, mlp


class TestDense:
    def test_output_shape(self, rng):
        layer = Dense(5, 3, rng=rng)
        out = layer(Tensor(np.ones((7, 5))))
        assert out.shape == (7, 3)

    def test_linear_map_matches_manual(self, rng):
        layer = Dense(4, 2, rng=rng)
        x = rng.standard_normal((3, 4))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self, rng):
        layer = Dense(4, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_parameters_require_grad(self, rng):
        layer = Dense(4, 2, rng=rng)
        assert all(p.requires_grad for p in layer.parameters())

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            Dense(0, 3)
        with pytest.raises(ValueError):
            Dense(3, -1)

    def test_deterministic_init_with_seeded_rng(self):
        a = Dense(4, 2, rng=np.random.default_rng(3))
        b = Dense(4, 2, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_gradients_flow_to_weights(self, rng):
        layer = Dense(4, 2, rng=rng)
        out = layer(Tensor(np.ones((3, 4)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        np.testing.assert_allclose(layer.weight.grad, np.full((4, 2), 3.0))


class TestActivation:
    def test_known_names(self):
        for name in ["relu", "tanh", "sigmoid", "leaky_relu", "softplus", "linear"]:
            Activation(name)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown activation"):
            Activation("gelu")

    def test_linear_is_identity(self):
        x = np.array([[1.0, -2.0]])
        np.testing.assert_array_equal(Activation("linear")(Tensor(x)).data, x)

    def test_relu_applies(self):
        out = Activation("relu")(Tensor(np.array([-1.0, 3.0])))
        np.testing.assert_array_equal(out.data, [0.0, 3.0])


class TestSequential:
    def test_chains_modules(self, rng):
        model = Sequential(Dense(4, 8, rng=rng), Activation("relu"), Dense(8, 2, rng=rng))
        out = model(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 2)

    def test_collects_parameters(self, rng):
        model = Sequential(Dense(4, 8, rng=rng), Activation("relu"), Dense(8, 2, rng=rng))
        assert len(model.parameters()) == 4  # two weights + two biases

    def test_append(self, rng):
        model = Sequential(Dense(4, 4, rng=rng))
        model.append(Dense(4, 2, rng=rng))
        assert model(Tensor(np.ones((1, 4)))).shape == (1, 2)

    def test_state_dict_roundtrip(self, rng):
        model = Sequential(Dense(4, 3, rng=rng), Dense(3, 2, rng=rng))
        state = model.state_dict()
        x = np.ones((2, 4))
        before = model(Tensor(x)).data.copy()
        for p in model.parameters():
            p.data = p.data + 1.0
        assert not np.allclose(model(Tensor(x)).data, before)
        model.load_state_dict(state)
        np.testing.assert_allclose(model(Tensor(x)).data, before)

    def test_load_state_dict_length_mismatch(self, rng):
        model = Sequential(Dense(4, 3, rng=rng))
        with pytest.raises(ValueError, match="parameters"):
            model.load_state_dict([np.zeros((4, 3))])  # missing bias

    def test_load_state_dict_shape_mismatch(self, rng):
        model = Sequential(Dense(4, 3, rng=rng))
        with pytest.raises(ValueError, match="shape"):
            model.load_state_dict([np.zeros((3, 4)), np.zeros(3)])

    def test_zero_grad_clears_all(self, rng):
        model = Sequential(Dense(4, 2, rng=rng))
        model(Tensor(np.ones((2, 4)))).sum().backward()
        assert model.parameters()[0].grad is not None
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestMLPBuilder:
    def test_structure(self, rng):
        model = mlp([10, 16, 4], activation="relu", rng=rng)
        # Dense, relu, Dense (no output activation)
        assert len(model.modules) == 3

    def test_output_activation(self, rng):
        model = mlp([10, 16, 1], activation="relu", output_activation="sigmoid", rng=rng)
        out = model(Tensor(np.random.default_rng(0).standard_normal((5, 10))))
        assert np.all((out.data >= 0) & (out.data <= 1))

    def test_too_few_sizes_rejected(self):
        with pytest.raises(ValueError):
            mlp([10])

    def test_relu_nets_use_he_init(self, rng):
        model = mlp([100, 50], activation="relu", rng=np.random.default_rng(0))
        # He std for fan_in=100 is ~0.141; Xavier-uniform std would be ~0.08.
        std = model.modules[0].weight.data.std()
        assert 0.10 < std < 0.19
