"""Loss-function correctness against manual computations."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients
from repro.nn.losses import (
    binary_cross_entropy,
    deviation_loss,
    mse_loss,
    negative_entropy,
    reconstruction_errors,
    soft_cross_entropy,
    softmax_cross_entropy,
)


class TestMSE:
    def test_zero_for_identical(self):
        x = Tensor(np.ones((3, 4)))
        assert mse_loss(x, Tensor(np.ones((3, 4)))).item() == pytest.approx(0.0)

    def test_matches_manual(self):
        pred = Tensor(np.array([[1.0, 2.0]]))
        target = Tensor(np.array([[0.0, 0.0]]))
        assert mse_loss(pred, target).item() == pytest.approx(2.5)

    def test_gradient(self):
        rng = np.random.default_rng(0)
        target = rng.standard_normal((3, 4))
        check_gradients(lambda a: mse_loss(a, Tensor(target)), [rng.standard_normal((3, 4))])


class TestReconstructionErrors:
    def test_per_row_squared_l2(self):
        pred = Tensor(np.array([[1.0, 1.0], [0.0, 0.0]]))
        target = Tensor(np.array([[0.0, 0.0], [0.0, 3.0]]))
        np.testing.assert_allclose(reconstruction_errors(pred, target).data, [2.0, 9.0])


class TestSoftmaxCrossEntropy:
    def test_matches_manual(self):
        logits = np.array([[2.0, 0.0, 0.0]])
        expected = -np.log(np.exp(2.0) / (np.exp(2.0) + 2.0))
        assert softmax_cross_entropy(Tensor(logits), np.array([0])).item() == pytest.approx(expected)

    def test_uniform_logits_give_log_c(self):
        logits = np.zeros((5, 4))
        labels = np.array([0, 1, 2, 3, 0])
        assert softmax_cross_entropy(Tensor(logits), labels).item() == pytest.approx(np.log(4))

    def test_gradient(self):
        rng = np.random.default_rng(1)
        labels = np.array([0, 2, 1])
        check_gradients(
            lambda a: softmax_cross_entropy(a, labels), [rng.standard_normal((3, 4))]
        )


class TestSoftCrossEntropy:
    def test_reduces_to_hard_ce_for_onehot(self):
        rng = np.random.default_rng(2)
        logits = rng.standard_normal((4, 3))
        labels = np.array([0, 1, 2, 1])
        onehot = np.eye(3)[labels]
        hard = softmax_cross_entropy(Tensor(logits), labels).item()
        soft = soft_cross_entropy(Tensor(logits), onehot).item()
        assert soft == pytest.approx(hard)

    def test_weights_scale_instances(self):
        logits = Tensor(np.array([[1.0, 0.0], [1.0, 0.0]]))
        targets = np.eye(2)
        unweighted = soft_cross_entropy(logits, targets).item()
        weighted = soft_cross_entropy(logits, targets, weights=np.array([2.0, 0.0])).item()
        # instance 0 doubled, instance 1 dropped
        per0 = soft_cross_entropy(logits[np.array([0])], targets[:1]).item()
        assert weighted == pytest.approx(per0)
        assert weighted != pytest.approx(unweighted)

    def test_gradient_with_weights(self):
        rng = np.random.default_rng(3)
        targets = np.array([[0.5, 0.5, 0.0], [0.0, 0.0, 1.0]])
        weights = np.array([0.3, 1.7])
        check_gradients(
            lambda a: soft_cross_entropy(a, targets, weights=weights),
            [rng.standard_normal((2, 3))],
        )


class TestNegativeEntropy:
    def test_uniform_gives_minus_log_c(self):
        logits = Tensor(np.zeros((3, 4)))
        assert negative_entropy(logits).item() == pytest.approx(-np.log(4))

    def test_peaked_approaches_zero(self):
        logits = Tensor(np.array([[100.0, 0.0, 0.0]]))
        assert negative_entropy(logits).item() == pytest.approx(0.0, abs=1e-6)

    def test_minimizing_sharpens(self):
        # Gradient descent on negative entropy should reduce entropy.
        logits = Tensor(np.array([[0.2, 0.1, 0.0]]), requires_grad=True)
        loss = negative_entropy(logits)
        loss.backward()
        updated = logits.data - 1.0 * logits.grad
        before = negative_entropy(Tensor(logits.data)).item()
        after = negative_entropy(Tensor(updated)).item()
        assert after < before

    def test_gradient(self):
        rng = np.random.default_rng(4)
        check_gradients(negative_entropy, [rng.standard_normal((3, 4))])


class TestBCE:
    def test_matches_manual(self):
        pred = Tensor(np.array([0.9, 0.1]))
        targets = np.array([1.0, 0.0])
        expected = -np.log(0.9)
        assert binary_cross_entropy(pred, targets).item() == pytest.approx(expected, rel=1e-6)

    def test_clipping_avoids_infinities(self):
        pred = Tensor(np.array([0.0, 1.0]))
        loss = binary_cross_entropy(pred, np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())


class TestDeviationLoss:
    def test_anomalies_above_margin_incur_no_outlier_loss(self):
        scores = Tensor(np.array([10.0]))
        loss = deviation_loss(scores, np.array([1.0]), margin=5.0,
                              rng=np.random.default_rng(0))
        assert loss.item() == pytest.approx(0.0, abs=0.1)

    def test_anomaly_near_zero_penalized(self):
        low = deviation_loss(Tensor(np.array([0.0])), np.array([1.0]),
                             rng=np.random.default_rng(0)).item()
        high = deviation_loss(Tensor(np.array([6.0])), np.array([1.0]),
                              rng=np.random.default_rng(0)).item()
        assert low > high

    def test_normal_pushed_to_reference_mean(self):
        at_mean = deviation_loss(Tensor(np.array([0.0])), np.array([0.0]),
                                 rng=np.random.default_rng(0)).item()
        off_mean = deviation_loss(Tensor(np.array([4.0])), np.array([0.0]),
                                  rng=np.random.default_rng(0)).item()
        assert at_mean < off_mean
