"""Dropout, LR schedules, early stopping."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn.layers import Dense, Sequential
from repro.nn.optimizers import SGD
from repro.nn.regularization import CosineLR, Dropout, EarlyStopping, StepLR, set_training


class TestDropout:
    def test_identity_in_eval_mode(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        layer.training = False
        x = np.ones((4, 6))
        np.testing.assert_array_equal(layer(Tensor(x)).data, x)

    def test_zeroes_roughly_p_fraction(self):
        layer = Dropout(0.3, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((200, 50)))).data
        assert (out == 0).mean() == pytest.approx(0.3, abs=0.03)

    def test_inverted_scaling_preserves_mean(self):
        layer = Dropout(0.4, rng=np.random.default_rng(1))
        out = layer(Tensor(np.ones((500, 40)))).data
        assert out.mean() == pytest.approx(1.0, abs=0.03)

    def test_p_zero_is_identity(self):
        layer = Dropout(0.0)
        x = np.random.default_rng(0).standard_normal((3, 3))
        np.testing.assert_array_equal(layer(Tensor(x)).data, x)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)

    def test_set_training_recursive(self):
        rng = np.random.default_rng(0)
        model = Sequential(Dense(4, 4, rng=rng), Dropout(0.5), Dense(4, 2, rng=rng))
        set_training(model, False)
        assert model.modules[1].training is False
        set_training(model, True)
        assert model.modules[1].training is True

    def test_gradient_flows_through_mask(self):
        layer = Dropout(0.5, rng=np.random.default_rng(2))
        x = Tensor(np.ones((10, 10)), requires_grad=True)
        layer(x).sum().backward()
        # Gradient is the mask itself: zeros where dropped, 1/keep where kept.
        assert set(np.unique(x.grad)) <= {0.0, 2.0}


class TestSchedulers:
    def _opt(self, lr=1.0):
        p = Tensor(np.zeros(2), requires_grad=True)
        return SGD([p], lr=lr)

    def test_step_lr_decays(self):
        opt = self._opt(1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_cosine_reaches_min(self):
        opt = self._opt(1.0)
        sched = CosineLR(opt, total_epochs=10, min_lr=0.05)
        for _ in range(10):
            last = sched.step()
        assert last == pytest.approx(0.05, abs=1e-9)

    def test_cosine_monotone_decreasing(self):
        opt = self._opt(1.0)
        sched = CosineLR(opt, total_epochs=8)
        lrs = [sched.step() for _ in range(8)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            StepLR(self._opt(), step_size=0)
        with pytest.raises(ValueError):
            CosineLR(self._opt(), total_epochs=0)


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=2, direction="min")
        assert not stopper.update(1.0, 0)
        assert not stopper.update(1.1, 1)  # worse x1
        assert stopper.update(1.2, 2)      # worse x2 -> stop

    def test_improvement_resets_counter(self):
        stopper = EarlyStopping(patience=2, direction="min")
        stopper.update(1.0, 0)
        stopper.update(1.1, 1)
        assert not stopper.update(0.9, 2)  # improvement
        assert not stopper.update(1.0, 3)
        assert stopper.update(1.0, 4)

    def test_max_direction(self):
        stopper = EarlyStopping(patience=1, direction="max")
        stopper.update(0.5, 0)
        assert stopper.update(0.4, 1)
        assert stopper.best == 0.5 and stopper.best_epoch == 0

    def test_restore_best_snapshot(self):
        rng = np.random.default_rng(0)
        model = Sequential(Dense(3, 2, rng=rng))
        stopper = EarlyStopping(patience=5, direction="min").attach(model)
        stopper.update(1.0, 0)
        best_weights = model.parameters()[0].data.copy()
        model.parameters()[0].data += 99.0
        stopper.update(2.0, 1)  # no improvement -> snapshot unchanged
        stopper.restore_best()
        np.testing.assert_array_equal(model.parameters()[0].data, best_weights)

    def test_restore_without_attach_raises(self):
        with pytest.raises(RuntimeError):
            EarlyStopping().restore_best()

    def test_min_delta(self):
        stopper = EarlyStopping(patience=1, min_delta=0.1, direction="min")
        stopper.update(1.0, 0)
        assert stopper.update(0.95, 1)  # within min_delta: not an improvement
