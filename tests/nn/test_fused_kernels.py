"""Fused Dense+activation kernels: parity, tiling, and backend dispatch.

The contract under test: fused plans agree with the unfused op-for-op
replay (and the graph engine) to atol 1e-12 at float64 — including
batches large enough to cross the row-tile boundary — while
``disable_fused_kernels`` restores exact bitwise parity; the ``out=``
destination contract holds; and a backend without a fused kernel makes
compilation fall back to unfused automatically.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor, no_grad
from repro.backend import ops as B
from repro.backend.numpy_backend import FUSE_TILE_ROWS, NumpyBackend
from repro.backend.registry import backend_names, register_backend, use_backend
from repro.nn import compile_inference, disable_fused_kernels, fused_kernels_enabled
from repro.nn.layers import mlp

ACTIVATIONS = ["relu", "leaky_relu", "tanh", "sigmoid", "softplus", "linear"]

architectures = st.builds(
    lambda sizes, act, out_act, seed: (sizes, act, out_act, seed),
    st.lists(st.integers(1, 8), min_size=2, max_size=4),
    st.sampled_from(ACTIVATIONS),
    st.sampled_from(ACTIVATIONS),
    st.integers(0, 2**31 - 1),
)


def graph_forward(module, X):
    with no_grad():
        return module(Tensor(X)).data


@settings(max_examples=40, deadline=None)
@given(architectures, st.integers(1, 17))
def test_fused_matches_unfused_and_graph(arch, rows):
    sizes, act, out_act, seed = arch
    rng = np.random.default_rng(seed)
    model = mlp(sizes, activation=act, output_activation=out_act, rng=rng)
    X = rng.normal(size=(rows, sizes[0]))
    fused = compile_inference(model, fused=True)
    unfused = compile_inference(model, fused=False)
    expected = graph_forward(model, X)
    # atol 1e-12: the documented fused-kernel budget.
    np.testing.assert_allclose(fused(X), expected, atol=1e-12, rtol=0)
    np.testing.assert_allclose(fused(X), unfused(X), atol=1e-12, rtol=0)
    # Unfused replays the graph's fp op sequence bitwise.
    np.testing.assert_array_equal(unfused(X), expected)


@pytest.mark.parametrize("rows", [2 * FUSE_TILE_ROWS, 2 * FUSE_TILE_ROWS + 1, 1300])
def test_fused_parity_across_tile_boundary(rows):
    """Batches large enough to trigger row tiling keep the 1e-12 budget."""
    rng = np.random.default_rng(7)
    model = mlp([32, 64, 16, 64, 32], activation="relu",
                output_activation="relu", rng=rng)
    X = rng.normal(size=(rows, 32))
    fused = compile_inference(model, fused=True)
    unfused = compile_inference(model, fused=False)
    np.testing.assert_allclose(fused(X), unfused(X), atol=1e-12, rtol=0)


def test_disable_fused_kernels_restores_bitwise_parity():
    rng = np.random.default_rng(11)
    model = mlp([9, 7, 5], activation="tanh", rng=rng)
    X = rng.normal(size=(23, 9))
    with disable_fused_kernels():
        assert not fused_kernels_enabled()
        plan = compile_inference(model)
    assert not plan.fused
    np.testing.assert_array_equal(plan(X), graph_forward(model, X))


def test_fused_is_the_default_when_backend_supports_it():
    assert B.supports_fused_dense_act()
    assert fused_kernels_enabled()
    model = mlp([4, 3], rng=np.random.default_rng(0))
    assert compile_inference(model).fused


def test_out_destination_contract():
    rng = np.random.default_rng(3)
    model = mlp([6, 8, 4], activation="relu", rng=rng)
    plan = compile_inference(model, fused=True)
    X = rng.normal(size=(10, 6))
    expected = plan(X)
    dest = np.empty((10, 4), dtype=np.float64)
    returned = plan(X, out=dest)
    assert returned is dest
    np.testing.assert_array_equal(dest, expected)
    # Results handed out without ``out=`` are fresh arrays each call —
    # never aliases of the plan's internal buffers.
    first = plan(X)
    second = plan(X)
    assert not np.shares_memory(first, second)
    with pytest.raises(ValueError):
        plan(X, out=np.empty((9, 4)))
    with pytest.raises(ValueError):
        plan(X, out=np.empty((10, 4), dtype=np.float32))


class _UnfusedBackend(NumpyBackend):
    """A backend that opts out of the fused kernel."""

    name = "unfused-test"
    fused_dense_act = None


def test_backend_without_fused_kernel_compiles_unfused():
    rng = np.random.default_rng(5)
    model = mlp([5, 6, 3], activation="sigmoid", rng=rng)
    X = rng.normal(size=(8, 5))
    with disable_fused_kernels():
        reference = compile_inference(model)(X)
    if _UnfusedBackend.name not in backend_names():
        register_backend(_UnfusedBackend.name, _UnfusedBackend())
    with use_backend(_UnfusedBackend.name):
        assert not B.supports_fused_dense_act()
        assert not fused_kernels_enabled()
        plan = compile_inference(model)
        assert not plan.fused
        np.testing.assert_array_equal(plan(X), reference)


class _RaisingBackend(NumpyBackend):
    """A backend whose fused kernel always fails."""

    name = "raising-test"

    def fused_dense_act(self, x, weight, bias, activation, out):
        raise ValueError("kernel exploded")


def test_raising_fused_kernel_surfaces_backend_kernel_error():
    """A kernel failure must name the backend, not look like a plan bug."""
    from repro.backend.ops import BackendKernelError

    if _RaisingBackend.name not in backend_names():
        register_backend(_RaisingBackend.name, _RaisingBackend())
    X = np.ones((4, 3))
    W = np.ones((3, 2))
    out = np.empty((4, 2))
    with use_backend(_RaisingBackend.name):
        with pytest.raises(BackendKernelError, match="raising-test") as info:
            B.fused_dense_act(X, W, None, "relu", out)
    assert isinstance(info.value.__cause__, ValueError)
    assert "relu" in str(info.value)


def test_opted_out_backend_is_bitwise_identical_to_default_unfused():
    """The opt-out stub's plans replay the unfused sequence bit-for-bit."""
    rng = np.random.default_rng(21)
    model = mlp([7, 9, 4], activation="relu", rng=rng)
    X = rng.normal(size=(33, 7))
    reference = compile_inference(model, fused=False)(X)
    if _UnfusedBackend.name not in backend_names():
        register_backend(_UnfusedBackend.name, _UnfusedBackend())
    with use_backend(_UnfusedBackend.name):
        np.testing.assert_array_equal(compile_inference(model)(X), reference)


def test_fused_dense_act_kernel_direct():
    """The backend op itself: matmul + bias + activation into ``out``."""
    rng = np.random.default_rng(13)
    X = rng.normal(size=(600, 8))  # 600 > 2 * FUSE_TILE_ROWS: tiled path
    W = rng.normal(size=(8, 5))
    b = rng.normal(size=5)
    out = np.empty((600, 5))
    returned = B.fused_dense_act(X, W, b, "relu", out)
    assert returned is out
    np.testing.assert_allclose(
        out, np.maximum(X @ W + b, 0.0), atol=1e-12, rtol=0
    )
    # Bias-free and linear (activation=None) paths.
    out2 = np.empty((600, 5))
    B.fused_dense_act(X, W, None, None, out2)
    np.testing.assert_allclose(out2, X @ W, atol=1e-12, rtol=0)
