"""Backend conformance: every registered backend honours the plan contracts.

The compiled-vs-graph parity suite, parametrized over the backend
registry rather than pinned to the reference backend. Each backend
publishes its tolerance as ``parity_atol`` (0.0 = bitwise; the tiled
backend's sparse path reorders partial sums and publishes 1e-9), and the
suite asserts exactly that contract: dense random inputs never trigger
the sparse path, so *all* backends must be bitwise there; one-hot-regime
inputs are allowed to drift up to the published atol — and the tiled
backend is additionally asserted to actually take its sparse path on
them.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor, no_grad
from repro.backend import backend_names, get_backend, use_backend
from repro.backend.tiled import TiledBackend
from repro.nn import (
    compile_inference,
    force_graph_forward,
    forward_in_batches,
)
from repro.nn.layers import mlp

#: Snapshot of the registry at collection time — the shipped backends,
#: before any test registers throwaway stubs.
BACKENDS = backend_names()

ACTIVATIONS = ["relu", "leaky_relu", "tanh", "sigmoid", "softplus", "linear"]

architectures = st.builds(
    lambda sizes, act, out_act, seed: (sizes, act, out_act, seed),
    st.lists(st.integers(1, 8), min_size=2, max_size=4),
    st.sampled_from(ACTIVATIONS),
    st.sampled_from(ACTIVATIONS),
    st.integers(0, 2**31 - 1),
)


def graph_forward(module, X):
    with no_grad():
        return module(Tensor(X)).data


def make_onehot_batch(rng, rows, n_dense=20, blocks=(60, 30)):
    """A batch in the SQB one-hot regime: dense prefix + one-hot blocks."""
    d = n_dense + sum(blocks)
    X = np.zeros((rows, d))
    X[:, :n_dense] = rng.normal(size=(rows, n_dense))
    off = n_dense
    for b in blocks:
        X[np.arange(rows), off + rng.integers(0, b, size=rows)] = 1.0
        off += b
    return X


def test_registry_ships_both_backends():
    assert "numpy" in BACKENDS
    assert "tiled" in BACKENDS
    assert get_backend("numpy").parity_atol == 0.0
    assert get_backend("tiled").parity_atol == 1e-9


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=25, deadline=None)
@given(arch=architectures, rows=st.integers(1, 17))
def test_compiled_matches_graph_dense_inputs(backend, arch, rows):
    """Dense inputs: bitwise under every backend (no sparse path fires)."""
    sizes, act, out_act, seed = arch
    rng = np.random.default_rng(seed)
    model = mlp(sizes, activation=act, output_activation=out_act, rng=rng)
    X = rng.normal(size=(rows, sizes[0]))
    with use_backend(backend):
        expected = graph_forward(model, X)
        got = compile_inference(model)(X)
        unfused = compile_inference(model, fused=False)(X)
    assert got.dtype == np.float64
    np.testing.assert_array_equal(unfused, expected)
    np.testing.assert_allclose(got, expected, atol=1e-12, rtol=0)


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=15, deadline=None)
@given(arch=architectures, rows=st.integers(0, 40), batch_size=st.integers(1, 16))
def test_forward_in_batches_parity(backend, arch, rows, batch_size):
    sizes, act, out_act, seed = arch
    rng = np.random.default_rng(seed)
    model = mlp(sizes, activation=act, output_activation=out_act, rng=rng)
    X = rng.normal(size=(rows, sizes[0]))
    with use_backend(backend):
        compiled = forward_in_batches(model, X, batch_size=batch_size)
        with force_graph_forward():
            graphed = forward_in_batches(model, X, batch_size=batch_size)
    np.testing.assert_array_equal(compiled, graphed)
    assert compiled.shape == (rows, sizes[-1])


@pytest.mark.parametrize("backend", BACKENDS)
def test_onehot_inputs_within_published_parity_atol(backend):
    """One-hot batches: each backend stays inside its ``parity_atol``."""
    rng = np.random.default_rng(17)
    n_dense, blocks = 20, (60, 30)
    d = n_dense + sum(blocks)
    model = mlp([d, 64, 32, 5], activation="relu", rng=rng)
    X = make_onehot_batch(rng, rows=512, n_dense=n_dense, blocks=blocks)
    expected = graph_forward(model, X)
    impl = get_backend(backend)
    with use_backend(backend):
        got = compile_inference(model)(X)
    # The fused plan's own 1e-12 budget stacks on the backend's atol.
    np.testing.assert_allclose(
        got, expected, atol=impl.parity_atol + 1e-12, rtol=0
    )


def test_tiled_sparse_path_fires_on_onehot_batches():
    """The tiled backend must actually take its gather path, not fall back."""
    rng = np.random.default_rng(23)
    n_dense, blocks = 20, (60, 30)
    d = n_dense + sum(blocks)
    model = mlp([d, 64, 5], activation="relu", rng=rng)
    X = make_onehot_batch(rng, rows=512, n_dense=n_dense, blocks=blocks)
    tiled = get_backend("tiled")
    before = tiled.sparse_hits
    with use_backend("tiled"):
        got = compile_inference(model)(X)
        compile_inference(model)(X)  # second call rides the plan cache
    assert tiled.sparse_hits >= before + 2
    np.testing.assert_allclose(got, graph_forward(model, X), atol=1e-9, rtol=0)


def test_tiled_threaded_paths_are_bitwise():
    """Row-tiled threading never changes a per-row dot product."""
    threaded = TiledBackend(n_threads=2)
    rng = np.random.default_rng(29)
    a = rng.normal(size=(1300, 24))
    b = rng.normal(size=(24, 10))
    np.testing.assert_array_equal(threaded.matmul(a, b), a @ b)
    out = np.empty((1300, 10))
    bias = rng.normal(size=10)
    reference = np.empty((1300, 10))
    get_backend("numpy").fused_dense_act(a, b, bias, "relu", reference)
    got = threaded.fused_dense_act(a, b, bias, "relu", out)
    assert got is out
    np.testing.assert_array_equal(got, reference)


@pytest.mark.parametrize("backend", BACKENDS)
def test_float32_inference_dtype_supported(backend):
    rng = np.random.default_rng(31)
    model = mlp([6, 8, 3], rng=rng)
    X = rng.normal(size=(9, 6))
    expected = graph_forward(model, X)
    with use_backend(backend):
        got = compile_inference(model, dtype=np.float32)(X)
    assert got.dtype == np.float32
    np.testing.assert_allclose(got, expected, rtol=1e-5, atol=1e-5)
