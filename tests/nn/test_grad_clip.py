"""Gradient clipping."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn.optimizers import clip_grad_norm


def params_with_grads(*grads):
    out = []
    for g in grads:
        p = Tensor(np.zeros_like(np.asarray(g, dtype=float)), requires_grad=True)
        p.grad = np.asarray(g, dtype=float)
        out.append(p)
    return out


class TestClipGradNorm:
    def test_no_clip_when_under_limit(self):
        params = params_with_grads([0.3, 0.4])  # norm 0.5
        norm = clip_grad_norm(params, max_norm=1.0)
        assert norm == pytest.approx(0.5)
        np.testing.assert_allclose(params[0].grad, [0.3, 0.4])

    def test_clips_to_max_norm(self):
        params = params_with_grads([3.0, 4.0])  # norm 5
        norm = clip_grad_norm(params, max_norm=1.0)
        assert norm == pytest.approx(5.0)
        new_norm = np.sqrt((params[0].grad ** 2).sum())
        assert new_norm == pytest.approx(1.0, rel=1e-6)

    def test_global_norm_across_params(self):
        params = params_with_grads([3.0], [4.0])  # global norm 5
        clip_grad_norm(params, max_norm=1.0)
        total = sum(float((p.grad ** 2).sum()) for p in params)
        assert np.sqrt(total) == pytest.approx(1.0, rel=1e-6)

    def test_skips_gradless_params(self):
        p1 = params_with_grads([3.0, 4.0])[0]
        p2 = Tensor(np.zeros(2), requires_grad=True)  # no grad
        norm = clip_grad_norm([p1, p2], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert p2.grad is None

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)
