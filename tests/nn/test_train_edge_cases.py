"""Training-loop edge cases."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn.layers import mlp
from repro.nn.optimizers import SGD
from repro.nn.train import (
    forward_in_batches,
    infer_output_dim,
    iterate_minibatches,
    train_epoch,
)


class TestMinibatchEdgeCases:
    def test_batch_size_larger_than_n(self):
        batches = list(iterate_minibatches(3, 100, shuffle=False))
        assert len(batches) == 1 and len(batches[0]) == 3

    def test_n_equals_one(self):
        batches = list(iterate_minibatches(1, 4, shuffle=False))
        assert [b.tolist() for b in batches] == [[0]]

    def test_exact_multiple(self):
        batches = list(iterate_minibatches(20, 5, shuffle=False))
        assert [len(b) for b in batches] == [5, 5, 5, 5]


class TestTrainEpochEdgeCases:
    def test_returns_mean_loss(self):
        rng = np.random.default_rng(0)
        model = mlp([2, 1], rng=rng)
        opt = SGD(model.parameters(), lr=1e-9)  # effectively frozen
        X = rng.standard_normal((8, 2))

        def loss_fn(idx):
            return (model(Tensor(X[idx])) ** 2.0).mean()

        loss = train_epoch(model, opt, loss_fn, 8, 4, rng=rng)
        assert np.isfinite(loss) and loss >= 0


class TestInferOutputDim:
    def test_simple_mlp(self):
        assert infer_output_dim(mlp([3, 8, 2], rng=np.random.default_rng(0))) == 2

    def test_trailing_activation_does_not_hide_width(self):
        # A non-linear output activation leaves an Activation module after
        # the final Dense; inference must look past it.
        model = mlp([3, 4], output_activation="sigmoid",
                    rng=np.random.default_rng(0))
        assert infer_output_dim(model) == 4

    def test_model_without_linear_layers(self):
        class Opaque:
            pass

        assert infer_output_dim(Opaque()) is None


class TestForwardInBatchesEdgeCases:
    def test_empty_input_preserves_output_dim(self):
        # Regression: used to return a 1-D np.empty((0,)), which broke
        # downstream softmax / column indexing on empty batches.
        model = mlp([3, 2], rng=np.random.default_rng(0))
        out = forward_in_batches(model, np.empty((0, 3)))
        assert out.shape == (0, 2)

    def test_empty_input_matches_nonempty_width(self):
        rng = np.random.default_rng(2)
        model = mlp([4, 8, 5], rng=rng)
        full = forward_in_batches(model, rng.standard_normal((3, 4)))
        empty = forward_in_batches(model, np.empty((0, 4)))
        assert empty.shape[1] == full.shape[1]

    def test_batch_size_one(self):
        rng = np.random.default_rng(1)
        model = mlp([3, 2], rng=rng)
        X = rng.standard_normal((5, 3))
        np.testing.assert_allclose(
            forward_in_batches(model, X, batch_size=1),
            forward_in_batches(model, X, batch_size=100),
        )
