"""Mini-batch utilities."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn.layers import mlp
from repro.nn.optimizers import SGD
from repro.nn.train import forward_in_batches, iterate_minibatches, train_epoch


class TestIterateMinibatches:
    def test_covers_all_indices_once(self):
        seen = np.concatenate(list(iterate_minibatches(103, 10, rng=np.random.default_rng(0))))
        assert sorted(seen.tolist()) == list(range(103))

    def test_batch_sizes(self):
        batches = list(iterate_minibatches(25, 10, rng=np.random.default_rng(0)))
        assert [len(b) for b in batches] == [10, 10, 5]

    def test_no_shuffle_is_sequential(self):
        batches = list(iterate_minibatches(6, 4, shuffle=False))
        np.testing.assert_array_equal(batches[0], [0, 1, 2, 3])
        np.testing.assert_array_equal(batches[1], [4, 5])

    def test_shuffle_deterministic_with_seed(self):
        a = list(iterate_minibatches(20, 7, rng=np.random.default_rng(5)))
        b = list(iterate_minibatches(20, 7, rng=np.random.default_rng(5)))
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches(0, 4))
        with pytest.raises(ValueError):
            list(iterate_minibatches(10, 0))


class TestTrainEpoch:
    def test_reduces_loss(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((100, 3))
        y = X @ np.array([1.0, -2.0, 0.5])
        model = mlp([3, 1], activation="linear", rng=rng)
        opt = SGD(model.parameters(), lr=0.05)

        def loss_fn(idx):
            pred = model(Tensor(X[idx])).reshape(-1)
            return ((pred - Tensor(y[idx])) ** 2.0).mean()

        first = train_epoch(model, opt, loss_fn, len(X), 16, rng=rng)
        for _ in range(30):
            last = train_epoch(model, opt, loss_fn, len(X), 16, rng=rng)
        assert last < first / 10


class TestForwardInBatches:
    def test_matches_single_pass(self):
        rng = np.random.default_rng(1)
        model = mlp([4, 8, 2], rng=rng)
        X = rng.standard_normal((50, 4))
        full = model(Tensor(X)).data
        batched = forward_in_batches(model, X, batch_size=7)
        np.testing.assert_allclose(batched, full, atol=1e-12)

    def test_builds_no_graph(self):
        rng = np.random.default_rng(2)
        model = mlp([4, 2], rng=rng)
        forward_in_batches(model, rng.standard_normal((10, 4)))
        # Parameters should have no gradient pathway activated.
        assert all(p.grad is None for p in model.parameters())
