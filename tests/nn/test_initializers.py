"""Weight initializers."""

import numpy as np
import pytest

from repro.nn.initializers import get_initializer, he_normal, xavier_uniform, zeros


class TestInitializers:
    def test_xavier_bounds(self):
        rng = np.random.default_rng(0)
        W = xavier_uniform(100, 50, rng)
        limit = np.sqrt(6.0 / 150)
        assert W.shape == (100, 50)
        assert np.all(np.abs(W) <= limit)

    def test_he_std(self):
        rng = np.random.default_rng(0)
        W = he_normal(200, 100, rng)
        assert W.std() == pytest.approx(np.sqrt(2.0 / 200), rel=0.1)
        assert abs(W.mean()) < 0.02

    def test_zeros(self):
        W = zeros(5, 3, np.random.default_rng(0))
        np.testing.assert_array_equal(W, np.zeros((5, 3)))

    def test_registry_lookup(self):
        assert get_initializer("he_normal") is he_normal
        assert get_initializer("xavier_uniform") is xavier_uniform

    def test_registry_unknown(self):
        with pytest.raises(KeyError, match="unknown initializer"):
            get_initializer("orthogonal")

    def test_deterministic_under_seed(self):
        a = he_normal(10, 10, np.random.default_rng(7))
        b = he_normal(10, 10, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)
