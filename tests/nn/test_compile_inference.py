"""Compiled graph-free inference: parity with the autodiff graph path.

The contract under test: ``compile_inference`` produces *bitwise* float64
parity with the Tensor graph (both paths execute the same sequence of
numpy fp ops), honours the empty-batch shape contract, refuses
non-compilable trees (training-mode Dropout), and never aliases its
internal buffers into results handed to callers.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor, no_grad
from repro.nn import (
    NotCompilableError,
    Sequential,
    compile_inference,
    force_graph_forward,
    forward_in_batches,
)
from repro.nn.autoencoder import Autoencoder
from repro.nn.layers import mlp
from repro.nn.regularization import Dropout

ACTIVATIONS = ["relu", "leaky_relu", "tanh", "sigmoid", "softplus", "linear"]

architectures = st.builds(
    lambda sizes, act, out_act, seed: (sizes, act, out_act, seed),
    st.lists(st.integers(1, 8), min_size=2, max_size=4),
    st.sampled_from(ACTIVATIONS),
    st.sampled_from(ACTIVATIONS),
    st.integers(0, 2**31 - 1),
)


def graph_forward(module, X):
    with no_grad():
        return module(Tensor(X)).data


@settings(max_examples=50, deadline=None)
@given(architectures, st.integers(1, 17))
def test_compiled_matches_graph_bitwise_float64(arch, rows):
    sizes, act, out_act, seed = arch
    rng = np.random.default_rng(seed)
    model = mlp(sizes, activation=act, output_activation=out_act, rng=rng)
    X = rng.normal(size=(rows, sizes[0]))
    plan = compile_inference(model)
    expected = graph_forward(model, X)
    got = plan(X)
    assert got.dtype == np.float64
    # Bitwise: compiled kernels replay the exact graph fp op sequence.
    np.testing.assert_array_equal(got, expected)
    # atol documented in the acceptance criteria.
    np.testing.assert_allclose(got, expected, atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(1, 6), min_size=1, max_size=2),
    st.integers(1, 12),
    st.integers(0, 2**31 - 1),
)
def test_autoencoder_reconstructor_parity(hidden, rows, seed):
    rng = np.random.default_rng(seed)
    n_features = 5
    ae = Autoencoder(hidden_sizes=hidden, epochs=1, random_state=seed)
    ae._build(n_features, rng)
    X = rng.normal(size=(rows, n_features))
    chain = ae._reconstructor()
    expected = graph_forward(chain, X)
    got = compile_inference(chain)(X)
    np.testing.assert_array_equal(got, expected)


@settings(max_examples=25, deadline=None)
@given(architectures, st.integers(0, 40), st.integers(1, 16))
def test_forward_in_batches_parity_any_batch_size(arch, rows, batch_size):
    sizes, act, out_act, seed = arch
    rng = np.random.default_rng(seed)
    model = mlp(sizes, activation=act, output_activation=out_act, rng=rng)
    X = rng.normal(size=(rows, sizes[0]))
    compiled = forward_in_batches(model, X, batch_size=batch_size)
    with force_graph_forward():
        graphed = forward_in_batches(model, X, batch_size=batch_size)
    np.testing.assert_array_equal(compiled, graphed)
    assert compiled.shape == (rows, sizes[-1])


def test_empty_batch_shape_contract():
    rng = np.random.default_rng(0)
    model = mlp([4, 3, 2], rng=rng)
    plan = compile_inference(model)
    out = plan(np.empty((0, 4)))
    assert out.shape == (0, 2)
    assert out.dtype == np.float64
    out2 = forward_in_batches(model, np.empty((0, 4)))
    assert out2.shape == (0, 2)


def test_float32_plan_casts_and_stays_close():
    rng = np.random.default_rng(1)
    model = mlp([6, 8, 3], rng=rng)
    X = rng.normal(size=(9, 6))
    plan = compile_inference(model, dtype=np.float32)
    got = plan(X)
    assert got.dtype == np.float32
    expected = graph_forward(model, X)
    np.testing.assert_allclose(got, expected, rtol=1e-5, atol=1e-5)


def test_training_dropout_is_not_compilable():
    rng = np.random.default_rng(2)
    drop = Dropout(0.5, rng=rng)
    drop.training = True
    model = Sequential(mlp([4, 4], rng=rng), drop)
    with pytest.raises(NotCompilableError):
        compile_inference(model)
    # forward_in_batches silently falls back to the graph path...
    X = rng.normal(size=(5, 4))
    out = forward_in_batches(model, X)
    assert out.shape == (5, 4)
    # ...unless compiled=True demands the fast path.
    with pytest.raises(NotCompilableError):
        forward_in_batches(model, X, compiled=True)


def test_inference_dropout_compiles_to_identity():
    rng = np.random.default_rng(3)
    drop = Dropout(0.5, rng=rng)
    drop.training = False
    model = Sequential(mlp([4, 3], rng=rng), drop)
    plan = compile_inference(model)
    X = rng.normal(size=(6, 4))
    np.testing.assert_array_equal(plan(X), graph_forward(model, X))


def test_compiled_does_not_alias_buffers_or_mutate_input():
    rng = np.random.default_rng(4)
    model = mlp([3, 5, 2], activation="tanh", rng=rng)
    plan = compile_inference(model)
    X1 = rng.normal(size=(7, 3))
    X1_copy = X1.copy()
    out1 = plan(X1)
    snapshot = out1.copy()
    # Same-shape second call reuses internal buffers; out1 must not change.
    out2 = plan(rng.normal(size=(7, 3)))
    np.testing.assert_array_equal(out1, snapshot)
    assert not np.array_equal(out1, out2)
    np.testing.assert_array_equal(X1, X1_copy)


def test_activation_first_module_does_not_mutate_input():
    from repro.nn.layers import Activation

    model = Sequential(Activation("relu"))
    plan = compile_inference(model)
    X = np.array([[-1.0, 2.0], [3.0, -4.0]])
    X_copy = X.copy()
    out = plan(X)
    np.testing.assert_array_equal(X, X_copy)
    np.testing.assert_array_equal(out, np.maximum(X, 0.0))


def test_compiled_requires_2d_input():
    model = mlp([3, 2], rng=np.random.default_rng(5))
    plan = compile_inference(model)
    with pytest.raises(ValueError):
        plan(np.zeros(3))


def test_recompile_sees_updated_weights():
    """Plans snapshot weights by reference; optimizers rebind param.data,
    so forward_in_batches recompiles per call — fresh weights, fresh plan."""
    from repro.nn.losses import mse_loss
    from repro.nn.optimizers import SGD

    rng = np.random.default_rng(6)
    model = mlp([3, 4, 1], rng=rng)
    X = rng.normal(size=(8, 3))
    before = forward_in_batches(model, X)
    opt = SGD(model.parameters(), lr=0.1)
    opt.zero_grad()
    pred = model(Tensor(X))
    mse_loss(pred, Tensor(np.zeros((8, 1)))).backward()
    opt.step()
    after = forward_in_batches(model, X)
    assert not np.array_equal(before, after)
    np.testing.assert_array_equal(after, graph_forward(model, X))
