"""Autoencoder and SADAutoencoder (Eq. 1) behaviour."""

import numpy as np
import pytest

from repro.nn import Autoencoder, SADAutoencoder


def correlated_data(rng, n=400, d=10):
    """Low-rank data an AE can compress well."""
    latent = rng.standard_normal((n, 2))
    mix = rng.standard_normal((2, d))
    return 0.5 + 0.2 * (latent @ mix) + rng.normal(0, 0.02, (n, d))


class TestAutoencoder:
    def test_reconstruction_improves_with_training(self, rng):
        X = correlated_data(rng)
        ae = Autoencoder(hidden_sizes=(8, 2), epochs=40, lr=3e-3, random_state=0)
        ae.fit(X)
        assert ae.loss_history[-1] < ae.loss_history[0] / 2

    def test_outliers_have_higher_error(self, rng):
        X = correlated_data(rng)
        ae = Autoencoder(hidden_sizes=(8, 2), epochs=40, lr=3e-3, random_state=0)
        ae.fit(X)
        outliers = X[:20] + rng.choice([-1, 1], size=(20, X.shape[1])) * 0.8
        assert ae.reconstruction_error(outliers).mean() > 3 * ae.reconstruction_error(X).mean()

    def test_encode_dimension(self, rng):
        X = correlated_data(rng)
        ae = Autoencoder(hidden_sizes=(8, 3), epochs=2, random_state=0).fit(X)
        assert ae.encode(X).shape == (len(X), 3)

    def test_reconstruct_shape(self, rng):
        X = correlated_data(rng)
        ae = Autoencoder(hidden_sizes=(8, 3), epochs=2, random_state=0).fit(X)
        assert ae.reconstruct(X).shape == X.shape

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            Autoencoder().encode(np.zeros((2, 4)))

    def test_empty_hidden_rejected(self):
        with pytest.raises(ValueError):
            Autoencoder(hidden_sizes=())


class TestSADAutoencoder:
    def test_labeled_anomalies_reconstruct_worse_than_plain_ae(self, rng):
        X = correlated_data(rng)
        anomalies = correlated_data(rng, n=20) + 0.6

        plain = SADAutoencoder(eta=0.0, hidden_sizes=(8, 2), epochs=40, lr=3e-3, random_state=0)
        plain.fit(X, anomalies)
        sad = SADAutoencoder(eta=5.0, hidden_sizes=(8, 2), epochs=40, lr=3e-3, random_state=0)
        sad.fit(X, anomalies)

        # Compare the *relative* error (anomaly error / normal error): the
        # SAD term should widen the gap.
        ratio_plain = plain.reconstruction_error(anomalies).mean() / plain.reconstruction_error(X).mean()
        ratio_sad = sad.reconstruction_error(anomalies).mean() / sad.reconstruction_error(X).mean()
        assert ratio_sad > ratio_plain

    def test_eta_zero_equals_no_labels(self, rng):
        X = correlated_data(rng)
        anomalies = correlated_data(rng, n=10) + 1.0
        a = SADAutoencoder(eta=0.0, hidden_sizes=(8, 2), epochs=3, random_state=0)
        a.fit(X, anomalies)
        b = SADAutoencoder(eta=1.0, hidden_sizes=(8, 2), epochs=3, random_state=0)
        b.fit(X, None)
        np.testing.assert_allclose(a.reconstruction_error(X), b.reconstruction_error(X))

    def test_negative_eta_rejected(self):
        with pytest.raises(ValueError):
            SADAutoencoder(eta=-1.0)

    def test_deterministic_given_seed(self, rng):
        X = correlated_data(rng)
        anomalies = X[:5] + 1.0
        e1 = SADAutoencoder(epochs=3, random_state=4).fit(X, anomalies).reconstruction_error(X)
        e2 = SADAutoencoder(epochs=3, random_state=4).fit(X, anomalies).reconstruction_error(X)
        np.testing.assert_array_equal(e1, e2)
