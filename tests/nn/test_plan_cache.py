"""Weight-keyed plan cache: hit/miss/invalidation semantics.

The contract under test: ``cached_inference`` returns the *same* plan
object while weights are frozen, recompiles the moment any
``param.data`` is rebound (one optimizer step — the regression the
serving fast path depends on), detects ``load_state_dict`` and
structural edits, keeps dtype/fused variants in distinct slots, and
leaves a previously cached entry intact when a recompile attempt fails.
"""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    NotCompilableError,
    Sequential,
    cached_inference,
    clear_plan_cache,
    disable_fused_kernels,
    plan_cache_stats,
    reset_plan_cache_stats,
)
from repro.nn.layers import Activation, Dense, mlp
from repro.nn.regularization import Dropout, set_training


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_plan_cache()
    reset_plan_cache_stats()
    yield
    clear_plan_cache()


def make_model(seed=0, sizes=(6, 8, 4)):
    return mlp(list(sizes), rng=np.random.default_rng(seed))


def take_adam_step(model, X, lr=0.05):
    """One real optimizer step (rebinds every ``param.data``)."""
    from repro.autodiff import Tensor
    from repro.nn import mse_loss

    optimizer = Adam(model.parameters(), lr=lr)
    optimizer.zero_grad()
    out = model(Tensor(X))
    loss = mse_loss(out, np.zeros_like(out.data))
    loss.backward()
    optimizer.step()


def test_cache_hit_returns_identical_plan_object():
    model = make_model()
    first = cached_inference(model)
    second = cached_inference(model)
    assert second is first
    stats = plan_cache_stats()
    assert stats["misses"] == 1
    assert stats["hits"] == 1
    assert stats["invalidations"] == 0


def test_optimizer_step_forces_recompile():
    """The regression test: a rebound ``param.data`` must invalidate."""
    model = make_model()
    X = np.random.default_rng(1).normal(size=(5, 6))
    stale = cached_inference(model)
    before = stale(X).copy()

    take_adam_step(model, X)

    fresh = cached_inference(model)
    assert fresh is not stale
    assert plan_cache_stats()["invalidations"] == 1
    after = fresh(X)
    # The recompiled plan sees the stepped weights: graph parity, and
    # the output actually moved.
    from repro.autodiff import Tensor, no_grad

    with no_grad():
        expected = model(Tensor(X)).data
    np.testing.assert_array_equal(after, expected)
    assert not np.array_equal(after, before)


def test_load_state_dict_forces_recompile():
    model = make_model(seed=0)
    donor = make_model(seed=99)
    plan = cached_inference(model)
    model.load_state_dict(donor.state_dict())
    assert cached_inference(model) is not plan
    assert plan_cache_stats()["invalidations"] == 1


def test_dtype_and_fused_variants_are_distinct_slots():
    model = make_model()
    base = cached_inference(model)
    f32 = cached_inference(model, dtype="float32")
    with disable_fused_kernels():
        unfused = cached_inference(model)
    assert len({id(base), id(f32), id(unfused)}) == 3
    # Each variant now hits its own slot.
    assert cached_inference(model, dtype="float32") is f32
    with disable_fused_kernels():
        assert cached_inference(model) is unfused
    assert cached_inference(model) is base


def test_backend_switch_forces_recompile():
    """Switching backends mid-process must not replay another backend's plan."""
    from repro.backend import use_backend

    model = make_model()
    X = np.random.default_rng(4).normal(size=(5, 6))
    base = cached_inference(model)
    with use_backend("tiled"):
        tiled = cached_inference(model)
        assert tiled is not base
        # The tiled slot is its own cache entry: a second lookup hits it.
        assert cached_inference(model) is tiled
    # Switching back re-hits the original slot, and both plans agree on
    # the numpy-vs-tiled parity contract for dense inputs (bitwise).
    assert cached_inference(model) is base
    np.testing.assert_array_equal(base(X), tiled(X))


def test_clear_plan_cache_drops_entries():
    model = make_model()
    plan = cached_inference(model)
    clear_plan_cache()
    assert cached_inference(model) is not plan
    assert plan_cache_stats()["misses"] == 2


def test_structural_append_invalidates():
    model = make_model()
    plan = cached_inference(model)
    model.modules.append(Activation("relu"))
    fresh = cached_inference(model)
    assert fresh is not plan
    assert plan_cache_stats()["invalidations"] == 1
    X = np.random.default_rng(2).normal(size=(3, 6))
    np.testing.assert_array_equal(fresh(X), np.maximum(plan(X), 0.0))


def test_training_dropout_refusal_leaves_entry_intact():
    model = Sequential(
        Dense(4, 3, rng=np.random.default_rng(0)), Dropout(0.5)
    )
    set_training(model, False)
    plan = cached_inference(model)
    set_training(model, True)
    with pytest.raises(NotCompilableError):
        cached_inference(model)
    # Back in inference mode the original entry revalidates — no recompile.
    set_training(model, False)
    assert cached_inference(model) is plan


def test_forward_in_batches_reuses_cached_plan():
    from repro.nn import forward_in_batches

    model = make_model()
    X = np.random.default_rng(3).normal(size=(64, 6))
    forward_in_batches(model, X, batch_size=16)
    before = plan_cache_stats()
    forward_in_batches(model, X, batch_size=16)
    after = plan_cache_stats()
    assert after["hits"] > before["hits"]
    assert after["misses"] == before["misses"]
