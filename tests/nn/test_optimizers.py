"""Optimizer behaviour: convergence on a quadratic bowl, config validation."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn.optimizers import SGD, Adam, RMSprop


def quad_loss(param: Tensor) -> Tensor:
    """Convex bowl with minimum at (1, -2)."""
    target = Tensor(np.array([1.0, -2.0]))
    return ((param - target) ** 2.0).sum()


def run_optimizer(opt_cls, steps=300, **kwargs):
    param = Tensor(np.zeros(2), requires_grad=True)
    opt = opt_cls([param], **kwargs)
    for _ in range(steps):
        opt.zero_grad()
        loss = quad_loss(param)
        loss.backward()
        opt.step()
    return param.data


class TestConvergence:
    def test_sgd_converges(self):
        final = run_optimizer(SGD, lr=0.1)
        np.testing.assert_allclose(final, [1.0, -2.0], atol=1e-4)

    def test_sgd_momentum_converges(self):
        final = run_optimizer(SGD, lr=0.05, momentum=0.9)
        np.testing.assert_allclose(final, [1.0, -2.0], atol=1e-3)

    def test_adam_converges(self):
        final = run_optimizer(Adam, lr=0.05, steps=600)
        np.testing.assert_allclose(final, [1.0, -2.0], atol=1e-3)

    def test_rmsprop_converges(self):
        final = run_optimizer(RMSprop, lr=0.02, steps=800)
        np.testing.assert_allclose(final, [1.0, -2.0], atol=1e-2)

    def test_adam_faster_than_sgd_on_ill_conditioned(self):
        # Scale one coordinate: Adam's per-coordinate adaptation should win
        # for a fixed small step budget.
        def loss_fn(p):
            t = Tensor(np.array([1.0, -2.0]))
            scale = Tensor(np.array([100.0, 1.0]))
            return (scale * (p - t) ** 2.0).sum()

        def run(opt_cls, lr):
            p = Tensor(np.zeros(2), requires_grad=True)
            opt = opt_cls([p], lr=lr)
            for _ in range(200):
                opt.zero_grad()
                loss_fn(p).backward()
                opt.step()
            return float(loss_fn(p).data)

        assert run(Adam, 0.05) < run(SGD, 0.005)


class TestOptimizerValidation:
    def test_negative_lr_rejected(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        for cls in (SGD, Adam, RMSprop):
            with pytest.raises(ValueError):
                cls([p], lr=-0.1)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_bad_momentum_rejected(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.5)

    def test_bad_betas_rejected(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        with pytest.raises(ValueError):
            Adam([p], betas=(1.0, 0.999))

    def test_bad_alpha_rejected(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        with pytest.raises(ValueError):
            RMSprop([p], alpha=1.0)


class TestOptimizerMechanics:
    def test_step_skips_params_without_grad(self):
        p1 = Tensor(np.zeros(2), requires_grad=True)
        p2 = Tensor(np.zeros(2), requires_grad=True)
        opt = Adam([p1, p2], lr=0.1)
        (p1.sum() * 1.0).backward()
        opt.step()
        np.testing.assert_array_equal(p2.data, np.zeros(2))
        assert not np.allclose(p1.data, np.zeros(2))

    def test_zero_grad_clears(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        opt = SGD([p], lr=0.1)
        p.sum().backward()
        opt.zero_grad()
        assert p.grad is None

    def test_weight_decay_shrinks_weights(self):
        p = Tensor(np.full(2, 10.0), requires_grad=True)
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        for _ in range(20):
            opt.zero_grad()
            # Zero data-loss gradient: only decay acts.
            (p * 0.0).sum().backward()
            opt.step()
        assert np.all(np.abs(p.data) < 10.0)

    def test_adam_bias_correction_first_step(self):
        # After one step with constant grad g, Adam should move ~lr in -sign(g).
        p = Tensor(np.zeros(1), requires_grad=True)
        opt = Adam([p], lr=0.1)
        (p * 3.0).sum().backward()
        opt.step()
        assert p.data[0] == pytest.approx(-0.1, rel=1e-4)
