"""MLPClassifier behaviour."""

import numpy as np
import pytest

from repro.nn import MLPClassifier


def make_blobs_xy(rng, n=200):
    X0 = rng.normal(0, 0.3, size=(n // 2, 2)) + [1, 1]
    X1 = rng.normal(0, 0.3, size=(n // 2, 2)) + [-1, -1]
    X = np.vstack([X0, X1])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return X, y


class TestMLPClassifier:
    def test_learns_separable_blobs(self):
        rng = np.random.default_rng(0)
        X, y = make_blobs_xy(rng)
        clf = MLPClassifier(hidden_sizes=(16,), n_classes=2, epochs=40, random_state=0)
        clf.fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.97

    def test_learns_xor(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-1, 1, size=(400, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        clf = MLPClassifier(hidden_sizes=(32, 16), epochs=150, lr=5e-3, random_state=0)
        clf.fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.9

    def test_predict_proba_is_distribution(self):
        rng = np.random.default_rng(2)
        X, y = make_blobs_xy(rng)
        clf = MLPClassifier(epochs=5, random_state=0).fit(X, y)
        probs = clf.predict_proba(X)
        assert np.all(probs >= 0)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    def test_multiclass(self):
        rng = np.random.default_rng(3)
        centers = np.array([[2, 0], [-2, 0], [0, 2]])
        X = np.vstack([rng.normal(0, 0.3, (60, 2)) + c for c in centers])
        y = np.repeat([0, 1, 2], 60)
        clf = MLPClassifier(n_classes=3, epochs=60, random_state=0).fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.95

    def test_loss_history_decreases(self):
        rng = np.random.default_rng(4)
        X, y = make_blobs_xy(rng)
        clf = MLPClassifier(epochs=30, random_state=0).fit(X, y)
        assert clf.loss_history[-1] < clf.loss_history[0]

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(5)
        X, y = make_blobs_xy(rng)
        p1 = MLPClassifier(epochs=5, random_state=9).fit(X, y).predict_proba(X)
        p2 = MLPClassifier(epochs=5, random_state=9).fit(X, y).predict_proba(X)
        np.testing.assert_array_equal(p1, p2)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MLPClassifier().predict(np.zeros((1, 2)))

    def test_label_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            MLPClassifier(n_classes=2).fit(np.zeros((3, 2)), np.array([0, 1, 2]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MLPClassifier().fit(np.zeros((3, 2)), np.array([0, 1]))

    def test_n_classes_validation(self):
        with pytest.raises(ValueError):
            MLPClassifier(n_classes=1)
