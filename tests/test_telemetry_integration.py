"""Telemetry across all three instrumented layers, plus the overhead guard.

One registry must collect the candidate-selection, classifier-training,
and serving series of a full fit → calibrate → process cycle; and the
enabled path must stay cheap (design budget < 3% — asserted below with a
generous margin because CI wall clocks are noisy).
"""

import time

import numpy as np
import pytest

from repro.core import TargAD, TargADConfig
from repro.obs import TelemetryRegistry, render_dashboard, snapshot_to_dict
from repro.serving import ScoringPipeline

FAST = dict(k=2, ae_epochs=4, clf_epochs=8, clf_batch_size=64)


def _make_data(seed=0, n=400, d=10):
    rng = np.random.default_rng(seed)
    X_unlabeled = rng.normal(size=(n, d))
    X_unlabeled[: n // 20] += 4.0            # contamination
    X_labeled = rng.normal(size=(16, d)) + 6.0
    y_labeled = np.zeros(16, dtype=np.int64)
    X_val = rng.normal(size=(120, d))
    X_val[:12] += 6.0
    y_val = np.zeros(120, dtype=np.int64)
    y_val[:12] = 1
    X_live = rng.normal(size=(80, d))
    return X_unlabeled, X_labeled, y_labeled, X_val, y_val, X_live


def _run_cycle(telemetry, seed=0):
    X_unlabeled, X_labeled, y_labeled, X_val, y_val, X_live = _make_data(seed)
    model = TargAD(TargADConfig(random_state=seed, **FAST), telemetry=telemetry)
    model.fit(X_unlabeled, X_labeled, y_labeled)
    pipe = ScoringPipeline(model, policy="f1", telemetry=telemetry)
    pipe.calibrate(X_val, y_val, X_reference=X_unlabeled)
    pipe.process(X_live)
    pipe.process(X_live + 8.0)               # shifted batch -> drift event
    return model, pipe


@pytest.mark.telemetry
class TestThreeLayerIntegration:
    @pytest.fixture(scope="class")
    def registry(self):
        registry = TelemetryRegistry()
        _run_cycle(registry)
        return registry

    def test_candidate_selection_layer_recorded(self, registry):
        assert registry.timer_stats("select.total").count == 1
        ae_stats = registry.timer_stats("select.ae_fit")
        assert ae_stats.count == FAST["k"]           # one AE per cluster
        assert ae_stats.total > 0
        clusters = registry.events.by_name("select.cluster")
        assert len(clusters) == FAST["k"]
        assert sum(e.fields["size"] for e in clusters) == 400
        assert registry.counter("select.candidates") == max(round(0.05 * 400), 1)
        assert registry.gauge("select.k") == FAST["k"]

    def test_training_layer_recorded(self, registry):
        assert registry.timer_stats("train.epoch").count == FAST["clf_epochs"]
        assert registry.counter("train.epochs") == FAST["clf_epochs"]
        assert registry.counter("train.rows") > 0
        epochs = registry.events.by_name("train.epoch")
        assert [e.fields["epoch"] for e in epochs] == list(range(FAST["clf_epochs"]))
        for event in epochs:
            assert np.isfinite(event.fields["loss"])
            assert 0.0 <= event.fields["weight_mean"] <= 1.0
            assert 0.0 <= event.fields["weight_frac_above_median"] <= 1.0
            assert event.fields["rows_per_sec"] > 0
        # Phase timers nest sensibly: phases sum to no more than the total.
        total = registry.timer_stats("fit.total").total
        parts = sum(
            registry.timer_stats(name).total
            for name in ("fit.candidate_selection", "fit.classifier", "fit.calibration")
        )
        assert parts <= total * 1.01

    def test_serving_layer_recorded(self, registry):
        assert registry.timer_stats("serve.process").count == 2
        assert registry.counter("serve.batches") == 2
        assert registry.counter("serve.rows") == 160
        assert registry.counter("serve.drift_events") >= 1
        batches = registry.events.by_name("serve.batch")
        assert len(batches) == 2
        assert batches[1].fields["drifted"] is True
        assert registry.events.by_name("serve.calibrated")

    def test_dashboard_and_snapshot_cover_all_layers(self, registry):
        dashboard = render_dashboard(registry)
        for needle in ("select.ae_fit", "train.epoch", "serve.process",
                       "training loss / epoch"):
            assert needle in dashboard
        snapshot = snapshot_to_dict(registry)
        assert {"select.total", "fit.total", "serve.process"} <= set(snapshot["timers"])

    def test_model_results_identical_with_and_without_telemetry(self):
        """Instrumentation must not perturb the numerics."""
        model_on, _ = _run_cycle(TelemetryRegistry(), seed=1)
        model_off, _ = _run_cycle(None, seed=1)
        X = _make_data(1)[5]
        np.testing.assert_array_equal(
            model_on.decision_function(X), model_off.decision_function(X)
        )
        assert model_on.loss_history == model_off.loss_history


@pytest.mark.telemetry
@pytest.mark.slow
def test_enabled_telemetry_overhead_is_small():
    """Enabled telemetry must stay cheap (< 3% design budget).

    Wall-clock comparisons are noisy in CI, so this asserts a generous 50%
    ceiling on a min-of-3 measurement — an order of magnitude above the
    design budget, but still tight enough to catch accidental O(n) work
    (e.g. a per-row event or an unbounded history) in the hot loops.
    """
    def measure(telemetry_factory):
        best = float("inf")
        for _ in range(3):
            telemetry = telemetry_factory()
            start = time.perf_counter()
            _run_cycle(telemetry)
            best = min(best, time.perf_counter() - start)
        return best

    _run_cycle(None)                          # warm-up (imports, caches)
    disabled = measure(lambda: None)
    enabled = measure(TelemetryRegistry)
    assert enabled <= disabled * 1.5 + 0.05, (
        f"enabled telemetry took {enabled:.3f}s vs {disabled:.3f}s disabled"
    )
