"""Confusion-matrix metrics against hand-computed values."""

import numpy as np
import pytest

from repro.metrics import classification_report, confusion_matrix, precision_recall_f1


class TestConfusionMatrix:
    def test_hand_example(self):
        y_true = [0, 0, 1, 1, 2]
        y_pred = [0, 1, 1, 1, 0]
        m = confusion_matrix(y_true, y_pred, labels=[0, 1, 2])
        expected = np.array([[1, 1, 0], [0, 2, 0], [1, 0, 0]])
        np.testing.assert_array_equal(m, expected)

    def test_diagonal_for_perfect_prediction(self):
        y = [0, 1, 2, 0, 1]
        m = confusion_matrix(y, y)
        np.testing.assert_array_equal(m, np.diag([2, 2, 1]))

    def test_infers_labels_from_union(self):
        m = confusion_matrix([0, 0], [1, 1])
        assert m.shape == (2, 2)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 1], [0])

    def test_string_labels(self):
        m = confusion_matrix(["a", "b"], ["a", "a"], labels=["a", "b"])
        np.testing.assert_array_equal(m, [[1, 0], [1, 0]])


class TestPrecisionRecallF1:
    def test_hand_example(self):
        y_true = [0, 0, 0, 1, 1]
        y_pred = [0, 0, 1, 1, 0]
        out = precision_recall_f1(y_true, y_pred, labels=[0, 1])
        assert out[0]["precision"] == pytest.approx(2 / 3)
        assert out[0]["recall"] == pytest.approx(2 / 3)
        assert out[1]["precision"] == pytest.approx(1 / 2)
        assert out[1]["recall"] == pytest.approx(1 / 2)
        assert out[0]["support"] == 3

    def test_zero_division_yields_zero(self):
        out = precision_recall_f1([0, 0], [1, 1], labels=[0, 1])
        assert out[0]["precision"] == 0.0  # nothing predicted 0
        assert out[1]["recall"] == 0.0  # no true 1s
        assert out[1]["f1"] == 0.0

    def test_f1_is_harmonic_mean(self):
        out = precision_recall_f1([0, 0, 1, 1], [0, 1, 1, 1], labels=[0, 1])
        p, r = out[1]["precision"], out[1]["recall"]
        assert out[1]["f1"] == pytest.approx(2 * p * r / (p + r))


class TestClassificationReport:
    def test_macro_average_is_unweighted_mean(self):
        y_true = [0] * 8 + [1] * 2
        y_pred = [0] * 7 + [1] + [1, 0]
        rep = classification_report(y_true, y_pred, labels=[0, 1])
        per_class_f1 = [rep[0]["f1"], rep[1]["f1"]]
        assert rep["macro avg"]["f1"] == pytest.approx(np.mean(per_class_f1))

    def test_weighted_average_uses_support(self):
        y_true = [0] * 8 + [1] * 2
        y_pred = [0] * 7 + [1] + [1, 0]
        rep = classification_report(y_true, y_pred, labels=[0, 1])
        expected = (8 * rep[0]["f1"] + 2 * rep[1]["f1"]) / 10
        assert rep["weighted avg"]["f1"] == pytest.approx(expected)

    def test_total_support(self):
        rep = classification_report([0, 1, 1], [0, 1, 0])
        assert rep["macro avg"]["support"] == 3

    def test_perfect_prediction_scores_one(self):
        y = [0, 1, 2] * 5
        rep = classification_report(y, y)
        assert rep["macro avg"]["f1"] == pytest.approx(1.0)
        assert rep["weighted avg"]["precision"] == pytest.approx(1.0)
