"""AUROC / AUPRC correctness against hand-computed values and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import auprc, auroc, average_precision, precision_recall_curve, roc_curve


class TestAUROC:
    def test_perfect_ranking(self):
        assert auroc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == pytest.approx(1.0)

    def test_worst_ranking(self):
        assert auroc([1, 1, 0, 0], [0.1, 0.2, 0.8, 0.9]) == pytest.approx(0.0)

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 5000)
        s = rng.random(5000)
        assert auroc(y, s) == pytest.approx(0.5, abs=0.03)

    def test_hand_computed_example(self):
        # y:     1    0    1    0
        # s:    0.9  0.8  0.7  0.1
        # Pairs: (1@0.9 > both 0s) + (1@0.7 > 0@0.1, < 0@0.8) = 3/4
        assert auroc([1, 0, 1, 0], [0.9, 0.8, 0.7, 0.1]) == pytest.approx(0.75)

    def test_ties_get_half_credit(self):
        # All scores equal: AUROC must be exactly 0.5.
        assert auroc([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_matches_mann_whitney(self):
        from scipy.stats import mannwhitneyu

        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, 300)
        s = rng.random(300) + 0.3 * y
        u = mannwhitneyu(s[y == 1], s[y == 0]).statistic
        expected = u / ((y == 1).sum() * (y == 0).sum())
        assert auroc(y, s) == pytest.approx(expected, abs=1e-9)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            auroc([1, 1, 1], [0.1, 0.2, 0.3])

    def test_nonbinary_rejected(self):
        with pytest.raises(ValueError):
            auroc([0, 1, 2], [0.1, 0.2, 0.3])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            auroc([0, 1], [0.1, 0.2, 0.3])


class TestROCCurve:
    def test_starts_at_origin_ends_at_one_one(self):
        fpr, tpr, _ = roc_curve([0, 1, 0, 1], [0.1, 0.9, 0.3, 0.8])
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    def test_monotone(self):
        rng = np.random.default_rng(2)
        y = rng.integers(0, 2, 100)
        s = rng.random(100)
        fpr, tpr, _ = roc_curve(y, s)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)


class TestAUPRC:
    def test_perfect_ranking(self):
        assert auprc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == pytest.approx(1.0)

    def test_hand_computed_example(self):
        # Ranked: 1, 0, 1, 0 -> AP = 1/2 * (P@1 + P@3) = (1 + 2/3) / 2
        assert auprc([1, 0, 1, 0], [0.9, 0.8, 0.7, 0.1]) == pytest.approx((1 + 2 / 3) / 2)

    def test_all_negatives_rank_top(self):
        # Positives at the bottom of the ranking: AP = baseline-ish low.
        val = auprc([1, 1, 0, 0, 0, 0], [0.1, 0.2, 0.5, 0.6, 0.7, 0.8])
        # P at the two positives: 1/5 and 2/6.
        assert val == pytest.approx(0.5 * (1 / 5 + 2 / 6))

    def test_random_scores_near_prevalence(self):
        rng = np.random.default_rng(3)
        y = (rng.random(5000) < 0.1).astype(int)
        s = rng.random(5000)
        assert auprc(y, s) == pytest.approx(0.1, abs=0.03)

    def test_average_precision_alias(self):
        y = [0, 1, 0, 1]
        s = [0.1, 0.9, 0.3, 0.8]
        assert auprc(y, s) == average_precision(y, s)

    def test_no_positives_rejected(self):
        with pytest.raises(ValueError):
            auprc([0, 0], [0.1, 0.2])


class TestPRCurve:
    def test_anchor_point(self):
        precision, recall, _ = precision_recall_curve([0, 1], [0.2, 0.8])
        assert precision[-1] == 1.0 and recall[-1] == 0.0

    def test_recall_reaches_one(self):
        precision, recall, _ = precision_recall_curve([0, 1, 1], [0.5, 0.4, 0.9])
        assert recall[len(recall) - 2] == 1.0  # before the appended anchor


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(5, 80),
    seed=st.integers(0, 1000),
)
def test_ranking_metric_properties(n, seed):
    """AUROC/AUPRC in [0,1]; invariant to strictly monotone score transforms."""
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, n)
    if y.sum() == 0 or y.sum() == n:
        y[0], y[-1] = 0, 1
    s = rng.random(n)
    a1, p1 = auroc(y, s), auprc(y, s)
    assert 0.0 <= a1 <= 1.0 and 0.0 <= p1 <= 1.0
    transformed = np.exp(3.0 * s) + 7.0
    assert auroc(y, transformed) == pytest.approx(a1, abs=1e-12)
    assert auprc(y, transformed) == pytest.approx(p1, abs=1e-12)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(5, 50), seed=st.integers(0, 1000))
def test_auroc_complement_symmetry(n, seed):
    """Negating scores flips AUROC around 0.5 (when there are no ties)."""
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, n)
    if y.sum() == 0 or y.sum() == n:
        y[0], y[-1] = 0, 1
    s = rng.permutation(n).astype(float)  # distinct scores
    assert auroc(y, -s) == pytest.approx(1.0 - auroc(y, s), abs=1e-12)
