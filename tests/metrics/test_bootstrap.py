"""Bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.metrics import auprc
from repro.metrics.bootstrap import bootstrap_auprc, bootstrap_auroc, bootstrap_metric


def make_scored(n=400, signal=1.0, seed=0):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, n)
    s = rng.random(n) + signal * y
    return y, s


class TestBootstrap:
    def test_interval_contains_estimate(self):
        y, s = make_scored()
        result = bootstrap_auprc(y, s, n_resamples=200, random_state=0)
        assert result.lower <= result.estimate <= result.upper

    def test_estimate_matches_plain_metric(self):
        y, s = make_scored()
        result = bootstrap_auprc(y, s, n_resamples=50, random_state=0)
        assert result.estimate == pytest.approx(auprc(y, s))

    def test_more_data_tightens_interval(self):
        # Moderate signal so the metric is strictly inside (0.5, 1) and the
        # interval has nonzero width.
        y_small, s_small = make_scored(n=100, signal=0.4, seed=1)
        y_large, s_large = make_scored(n=3000, signal=0.4, seed=1)
        r_small = bootstrap_auroc(y_small, s_small, n_resamples=200, random_state=0)
        r_large = bootstrap_auroc(y_large, s_large, n_resamples=200, random_state=0)
        assert (r_large.upper - r_large.lower) < (r_small.upper - r_small.lower)

    def test_confidence_widens_interval(self):
        y, s = make_scored()
        narrow = bootstrap_auroc(y, s, confidence=0.5, n_resamples=300, random_state=0)
        wide = bootstrap_auroc(y, s, confidence=0.99, n_resamples=300, random_state=0)
        assert (wide.upper - wide.lower) > (narrow.upper - narrow.lower)

    def test_deterministic_under_seed(self):
        y, s = make_scored()
        a = bootstrap_auprc(y, s, n_resamples=100, random_state=5)
        b = bootstrap_auprc(y, s, n_resamples=100, random_state=5)
        assert (a.lower, a.upper) == (b.lower, b.upper)

    def test_str_format(self):
        y, s = make_scored()
        text = str(bootstrap_auprc(y, s, n_resamples=50, random_state=0))
        assert "95% CI" in text and "[" in text

    def test_validation(self):
        y, s = make_scored()
        with pytest.raises(ValueError):
            bootstrap_metric(auprc, y, s, confidence=1.0)
        with pytest.raises(ValueError):
            bootstrap_metric(auprc, y, s, n_resamples=5)
