"""precision@k."""

import numpy as np
import pytest

from repro.metrics import precision_at_k


class TestPrecisionAtK:
    def test_perfect_ranking(self):
        y = [0, 0, 1, 1]
        s = [0.1, 0.2, 0.8, 0.9]
        assert precision_at_k(y, s, 2) == pytest.approx(1.0)

    def test_mixed_top(self):
        y = [1, 0, 1, 0]
        s = [0.9, 0.8, 0.7, 0.1]
        assert precision_at_k(y, s, 2) == pytest.approx(0.5)
        assert precision_at_k(y, s, 3) == pytest.approx(2 / 3)

    def test_k_equals_n_gives_prevalence(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 100)
        s = rng.random(100)
        assert precision_at_k(y, s, 100) == pytest.approx(y.mean())

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k([0, 1], [0.1, 0.2], 0)
        with pytest.raises(ValueError):
            precision_at_k([0, 1], [0.1, 0.2], 3)
