"""Fault-injection harness: plan validation, determinism, delegation."""

import numpy as np
import pytest

from repro.obs import TelemetryRegistry
from repro.resilience import FaultPlan, FaultyModel, InjectedFault, corrupt_rows


class _StubModel:
    """Minimal stand-in: scores are the row sums."""

    m_ = 2

    def decision_function(self, X):
        return np.asarray(X, dtype=np.float64).sum(axis=1)


class TestFaultPlan:
    def test_roundtrip_through_json_dict(self):
        plan = FaultPlan(raise_on=(2, 5), nan_fraction=0.25, nan_on=(3,),
                         latency=0.01, seed=9)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan keys"):
            FaultPlan.from_dict({"raise_on": [1], "typo": True})

    @pytest.mark.parametrize("kwargs", [
        {"raise_on": (0,)},
        {"nan_on": (0,), "nan_fraction": 0.5},
        {"nan_fraction": 1.5},
        {"latency": -0.1},
    ])
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_describe_mentions_every_fault(self):
        plan = FaultPlan(raise_on=(2,), nan_fraction=0.5, latency=0.05)
        text = plan.describe()
        assert "raise" in text and "NaN" in text and "latency" in text
        assert FaultPlan().describe() == "no faults"


class TestFaultyModel:
    def test_raises_exactly_on_planned_calls(self):
        model = FaultyModel(_StubModel(), FaultPlan(raise_on=(2,)))
        X = np.ones((3, 2))
        model.decision_function(X)  # call 1: fine
        with pytest.raises(InjectedFault, match="call 2"):
            model.decision_function(X)
        model.decision_function(X)  # call 3: fine again

    def test_nan_corruption_is_deterministic(self):
        X = np.ones((20, 2))
        plan = FaultPlan(nan_fraction=0.3, seed=11)
        a = FaultyModel(_StubModel(), plan).decision_function(X)
        b = FaultyModel(_StubModel(), plan).decision_function(X)
        assert np.array_equal(np.isnan(a), np.isnan(b))
        assert np.isnan(a).sum() == max(int(round(0.3 * 20)), 1)

    def test_latency_uses_injected_sleep(self):
        slept = []
        model = FaultyModel(_StubModel(), FaultPlan(latency=0.25),
                            sleep=slept.append)
        model.decision_function(np.ones((2, 2)))
        assert slept == [0.25]

    def test_other_attributes_delegate(self):
        model = FaultyModel(_StubModel(), FaultPlan())
        assert model.m_ == 2

    def test_fault_telemetry_events(self):
        registry = TelemetryRegistry()
        model = FaultyModel(_StubModel(), FaultPlan(raise_on=(1,)),
                            telemetry=registry)
        with pytest.raises(InjectedFault):
            model.decision_function(np.ones((2, 2)))
        assert registry.counters["resilience.fault.raises"] == 1
        assert any(e.name == "resilience.fault.injected"
                   for e in registry.events)


class TestCorruptRows:
    def test_deterministic_and_at_least_one_row(self):
        X = np.ones((10, 3))
        a = corrupt_rows(X, 0.05, np.random.default_rng(3))
        b = corrupt_rows(X, 0.05, np.random.default_rng(3))
        assert np.array_equal(np.isnan(a), np.isnan(b))
        assert np.isnan(a).any(axis=1).sum() == 1

    def test_zero_fraction_is_identity(self):
        X = np.ones((4, 2))
        assert np.array_equal(corrupt_rows(X, 0.0, np.random.default_rng(0)), X)

    def test_original_untouched(self):
        X = np.ones((4, 2))
        corrupt_rows(X, 1.0, np.random.default_rng(0))
        assert np.all(np.isfinite(X))

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            corrupt_rows(np.ones((2, 2)), 1.5, np.random.default_rng(0))


class TestSwapFaultPlan:
    def test_unknown_phase_rejected(self):
        from repro.resilience import SwapFaultPlan

        with pytest.raises(ValueError, match="unknown swap phase"):
            SwapFaultPlan(fail_phases=("warp",))

    def test_dict_round_trip(self):
        from repro.resilience import SwapFaultPlan

        plan = SwapFaultPlan(fail_phases=("refit", "flip"), on_cycle=(2,))
        assert SwapFaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_rejects_unknown_keys(self):
        from repro.resilience import SwapFaultPlan

        with pytest.raises(ValueError):
            SwapFaultPlan.from_dict({"fail_phases": ["refit"], "oops": 1})

    def test_describe_mentions_phases(self):
        from repro.resilience import SwapFaultPlan

        assert "refit" in SwapFaultPlan(fail_phases=("refit",)).describe()


class TestSwapFaultInjector:
    def test_fires_only_on_configured_cycle(self):
        from repro.resilience import SwapFaultInjector, SwapFaultPlan

        injector = SwapFaultInjector(
            SwapFaultPlan(fail_phases=("refit",), on_cycle=(2,))
        )
        injector.begin_cycle()
        injector.fire("refit")  # cycle 1: no fault
        injector.begin_cycle()
        with pytest.raises(InjectedFault, match="refit"):
            injector.fire("refit")
        assert injector.fired == [(2, "refit")]

    def test_every_cycle_when_unpinned(self):
        from repro.resilience import SwapFaultInjector, SwapFaultPlan

        injector = SwapFaultInjector(SwapFaultPlan(fail_phases=("flip",)))
        for _ in range(3):
            injector.begin_cycle()
            injector.fire("stage")  # other phases never fault
            with pytest.raises(InjectedFault):
                injector.fire("flip")
        assert len(injector.fired) == 3

    def test_unknown_phase_rejected_at_fire(self):
        from repro.resilience import SwapFaultInjector, SwapFaultPlan

        injector = SwapFaultInjector(SwapFaultPlan(fail_phases=("flip",)))
        injector.begin_cycle()
        with pytest.raises(ValueError):
            injector.fire("warp")

    def test_telemetry_counts_swap_faults(self):
        from repro.resilience import SwapFaultInjector, SwapFaultPlan

        registry = TelemetryRegistry()
        injector = SwapFaultInjector(
            SwapFaultPlan(fail_phases=("validate",)), telemetry=registry
        )
        injector.begin_cycle()
        with pytest.raises(InjectedFault):
            injector.fire("validate")
        assert registry.counters["resilience.fault.swap"] == 1
