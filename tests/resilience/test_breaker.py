"""Circuit-breaker state machine: unit tests + hypothesis properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import TelemetryRegistry
from repro.resilience import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, ManualClock


def make_breaker(telemetry=None, **kwargs):
    clock = ManualClock()
    defaults = dict(failure_threshold=3, cooldown=30.0, half_open_successes=1)
    defaults.update(kwargs)
    return CircuitBreaker(clock=clock, telemetry=telemetry, **defaults), clock


class TestTransitions:
    def test_starts_closed_and_allows(self):
        breaker, _ = make_breaker()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_only_on_consecutive_failures(self):
        breaker, _ = make_breaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the streak
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_cooldown_gates_half_open(self):
        breaker, clock = make_breaker(cooldown=30.0)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(29.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()

    def test_half_open_success_closes(self):
        breaker, clock = make_breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(30.0)
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_needs_enough_successes(self):
        breaker, clock = make_breaker(half_open_successes=2)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(30.0)
        breaker.record_success()
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_failure_reopens_and_restarts_cooldown(self):
        breaker, clock = make_breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(30.0)
        assert breaker.state == HALF_OPEN
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(29.0)
        assert breaker.state == OPEN
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN

    def test_success_while_open_is_noop(self):
        breaker, _ = make_breaker()
        for _ in range(3):
            breaker.record_failure()
        breaker.record_success()
        assert breaker.state == OPEN

    def test_trip_resets_after_recovery(self):
        breaker, clock = make_breaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(30.0)
        breaker.record_success()
        assert breaker.state == CLOSED
        # Needs a fresh full streak to trip again.
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_snapshot_fields(self):
        breaker, _ = make_breaker()
        snap = breaker.snapshot()
        assert snap["state"] == CLOSED
        assert snap["failure_threshold"] == 3
        assert snap["name"] == "serve"


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"failure_threshold": 0},
        {"cooldown": 0.0},
        {"half_open_successes": 0},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            make_breaker(**kwargs)

    def test_clock_cannot_go_backwards(self):
        clock = ManualClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)


class TestTelemetry:
    def test_trip_and_recover_events(self):
        registry = TelemetryRegistry()
        breaker, clock = make_breaker(telemetry=registry)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(30.0)
        breaker.state  # poll: open -> half_open
        breaker.record_success()
        names = [e.name for e in registry.events]
        assert "resilience.breaker.trip" in names
        assert "resilience.breaker.recover" in names
        assert registry.counters["resilience.breaker.trips"] == 1
        assert registry.counters["resilience.breaker.recovers"] == 1


# -- property tests -------------------------------------------------------

#: One simulated interaction: report an outcome, then advance the clock.
STEP = st.tuples(st.booleans(),
                 st.floats(min_value=0.0, max_value=120.0,
                           allow_nan=False, allow_infinity=False))


@settings(max_examples=200, deadline=None)
@given(steps=st.lists(STEP, max_size=60))
def test_state_is_always_valid_and_transitions_legal(steps):
    """Arbitrary outcome/advance sequences never reach an invalid state,
    and every observed state change is an edge of the breaker automaton."""
    breaker, clock = make_breaker(failure_threshold=2, cooldown=10.0)
    legal = {
        (CLOSED, OPEN),        # trip
        (OPEN, HALF_OPEN),     # cooldown elapsed
        (HALF_OPEN, CLOSED),   # probe success(es)
        (HALF_OPEN, OPEN),     # probe failure
    }
    previous = breaker.state
    for success, advance in steps:
        if breaker.allow():
            if success:
                breaker.record_success()
            else:
                breaker.record_failure()
        observed = breaker.state
        assert observed in (CLOSED, OPEN, HALF_OPEN)
        if observed != previous:
            assert (previous, observed) in legal, (previous, observed)
        previous = observed
        clock.advance(advance)
        polled = breaker.state  # advancing time may legally open the probe
        if polled != previous:
            assert (previous, polled) in legal, (previous, polled)
        previous = polled


@settings(max_examples=100, deadline=None)
@given(
    failures=st.integers(min_value=1, max_value=10),
    threshold=st.integers(min_value=1, max_value=5),
    probes=st.integers(min_value=1, max_value=3),
)
def test_always_recovers_after_cooldown_on_sustained_success(
    failures, threshold, probes
):
    """However the breaker got wedged, cooldown + enough successful probes
    always returns it to CLOSED and traffic flows again."""
    breaker, clock = make_breaker(
        failure_threshold=threshold, cooldown=5.0, half_open_successes=probes
    )
    for _ in range(failures):
        if breaker.allow():
            breaker.record_failure()
        else:
            break
    # Sustained success: every time we are allowed through, report success.
    for _ in range(probes + 2):
        clock.advance(5.0)
        if breaker.allow():
            breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.allow()
