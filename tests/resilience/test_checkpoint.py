"""Checkpoint/resume for TargAD.fit: roundtrip, kill/resume, divergence."""

import numpy as np
import pytest

from repro.core import TargAD, TargADConfig, save_model
from repro.resilience import (
    CheckpointError,
    TrainingDivergenceError,
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
    prune_checkpoints,
)


def tiny_config(**overrides):
    defaults = dict(random_state=0, k=2, ae_lr=3e-3, ae_epochs=3, clf_epochs=6)
    defaults.update(overrides)
    return TargADConfig(**defaults)


@pytest.fixture(scope="module")
def split():
    from tests.conftest import TINY_SPEC, make_tiny_generator
    from repro.data.splits import build_split

    return build_split(make_tiny_generator(0), TINY_SPEC, scale=1.0, random_state=0)


class _KillAt:
    """Epoch callback that simulates a crash after N completed epochs."""

    def __init__(self, epoch):
        self.epoch = epoch

    def __call__(self, epoch, model):
        if epoch == self.epoch:
            raise KeyboardInterrupt(f"simulated kill at epoch {epoch}")


class TestCheckpointFiles:
    def test_fit_writes_and_prunes_checkpoints(self, split, tmp_path):
        model = TargAD(tiny_config())
        model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled,
                  checkpoint_dir=tmp_path)
        names = [p.name for p in list_checkpoints(tmp_path)]
        # Default keep=3: only the newest three survive pruning.
        assert names == ["ckpt-00004.npz", "ckpt-00005.npz", "ckpt-00006.npz"]

    def test_loaded_state_matches_run(self, split, tmp_path):
        model = TargAD(tiny_config())
        model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled,
                  checkpoint_dir=tmp_path)
        state = load_checkpoint(latest_checkpoint(tmp_path))
        assert state.epoch == model.config.clf_epochs
        assert state.loss_history == pytest.approx(model.loss_history)
        assert state.n_features == split.X_unlabeled.shape[1]
        assert state.m == model.m_ and state.k == model.k_
        np.testing.assert_allclose(state.weights, model._candidate_weights)

    def test_checkpoint_every_thins_the_cadence(self, split, tmp_path):
        model = TargAD(tiny_config())
        model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled,
                  checkpoint_dir=tmp_path, checkpoint_every=3)
        epochs = [int(p.name[5:10]) for p in list_checkpoints(tmp_path)]
        assert epochs == [0, 3, 6]


class TestHousekeeping:
    """latest_checkpoint corruption-skipping and keep-last-N pruning."""

    @pytest.fixture()
    def ckpt_dir(self, split, tmp_path):
        model = TargAD(tiny_config())
        model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled,
                  checkpoint_dir=tmp_path)  # default keep=3 leaves three
        return tmp_path

    def test_latest_skips_truncated_archive(self, ckpt_dir):
        paths = list_checkpoints(ckpt_dir)
        newest = paths[-1]
        newest.write_bytes(newest.read_bytes()[:40])
        chosen = latest_checkpoint(ckpt_dir)
        assert chosen == paths[-2]
        load_checkpoint(chosen)  # the fallback must actually be readable

    def test_latest_skips_garbage_archive(self, ckpt_dir):
        paths = list_checkpoints(ckpt_dir)
        paths[-1].write_bytes(b"not an npz archive at all")
        assert latest_checkpoint(ckpt_dir) == paths[-2]

    def test_latest_without_skip_returns_newest_blindly(self, ckpt_dir):
        paths = list_checkpoints(ckpt_dir)
        paths[-1].write_bytes(b"garbage")
        assert latest_checkpoint(ckpt_dir, skip_corrupt=False) == paths[-1]

    def test_latest_none_when_everything_corrupt(self, ckpt_dir):
        for path in list_checkpoints(ckpt_dir):
            path.write_bytes(b"garbage")
        assert latest_checkpoint(ckpt_dir) is None

    def test_latest_none_for_empty_or_missing_dir(self, tmp_path):
        assert latest_checkpoint(tmp_path) is None
        assert latest_checkpoint(tmp_path / "missing") is None

    def test_prune_keeps_newest_n(self, ckpt_dir):
        before = list_checkpoints(ckpt_dir)
        assert len(before) > 2
        removed = prune_checkpoints(ckpt_dir, keep=2)
        remaining = list_checkpoints(ckpt_dir)
        assert remaining == before[-2:]
        assert sorted(removed) == before[:-2]

    def test_prune_disabled_below_one(self, ckpt_dir):
        before = list_checkpoints(ckpt_dir)
        assert prune_checkpoints(ckpt_dir, keep=0) == []
        assert list_checkpoints(ckpt_dir) == before

    def test_prune_noop_when_under_budget(self, ckpt_dir):
        before = list_checkpoints(ckpt_dir)
        assert prune_checkpoints(ckpt_dir, keep=len(before) + 5) == []
        assert list_checkpoints(ckpt_dir) == before

    def test_resume_recovers_from_corrupt_newest(self, split, ckpt_dir):
        # The real payoff: fit(resume=True) quietly falls back to the
        # newest *readable* checkpoint instead of dying on the torn one.
        paths = list_checkpoints(ckpt_dir)
        paths[-1].write_bytes(paths[-1].read_bytes()[:64])
        resumed = TargAD(tiny_config())
        resumed.fit(split.X_unlabeled, split.X_labeled, split.y_labeled,
                    checkpoint_dir=ckpt_dir, resume=True)
        assert len(resumed.loss_history) == resumed.config.clf_epochs


class TestResume:
    def test_kill_and_resume_matches_uninterrupted_run(self, split, tmp_path):
        uninterrupted = TargAD(tiny_config())
        uninterrupted.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)

        model = TargAD(tiny_config())
        with pytest.raises(KeyboardInterrupt):
            model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled,
                      checkpoint_dir=tmp_path, epoch_callback=_KillAt(2))

        resumed = TargAD(tiny_config())
        resumed.fit(split.X_unlabeled, split.X_labeled, split.y_labeled,
                    checkpoint_dir=tmp_path, resume=True)

        assert len(resumed.loss_history) == resumed.config.clf_epochs
        np.testing.assert_allclose(resumed.loss_history,
                                   uninterrupted.loss_history, rtol=1e-10)
        np.testing.assert_allclose(
            resumed.decision_function(split.X_test),
            uninterrupted.decision_function(split.X_test), rtol=1e-10,
        )

    def test_resume_without_checkpoints_trains_from_scratch(self, split, tmp_path):
        model = TargAD(tiny_config())
        model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled,
                  checkpoint_dir=tmp_path / "empty", resume=True)
        assert len(model.loss_history) == model.config.clf_epochs

    def test_resume_requires_checkpoint_dir(self, split):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            TargAD(tiny_config()).fit(
                split.X_unlabeled, split.X_labeled, split.y_labeled, resume=True
            )

    def test_resume_rejects_mismatched_data(self, split, tmp_path):
        model = TargAD(tiny_config())
        model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled,
                  checkpoint_dir=tmp_path)
        with pytest.raises(CheckpointError, match="unlabeled pool"):
            TargAD(tiny_config()).fit(
                split.X_unlabeled[:-5], split.X_labeled, split.y_labeled,
                checkpoint_dir=tmp_path, resume=True,
            )

    def test_resume_rejects_mismatched_config(self, split, tmp_path):
        model = TargAD(tiny_config())
        model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled,
                  checkpoint_dir=tmp_path)
        with pytest.raises(CheckpointError, match="config"):
            TargAD(tiny_config(lambda1=0.42)).fit(
                split.X_unlabeled, split.X_labeled, split.y_labeled,
                checkpoint_dir=tmp_path, resume=True,
            )


class TestCheckpointErrors:
    def test_truncated_checkpoint_raises_checkpoint_error(self, split, tmp_path):
        model = TargAD(tiny_config())
        model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled,
                  checkpoint_dir=tmp_path)
        path = latest_checkpoint(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_saved_model_is_not_a_checkpoint(self, split, tmp_path):
        model = TargAD(tiny_config())
        model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
        path = tmp_path / "model.npz"
        save_model(model, path)
        with pytest.raises(CheckpointError, match="not a training checkpoint"):
            load_checkpoint(path)

    def test_missing_checkpoint_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "ckpt-00001.npz")


class TestDivergenceGuard:
    def test_transient_nan_loss_recovers_with_backoff(self, split, monkeypatch):
        import repro.core.model as model_module

        real_loss = model_module.classifier_loss
        calls = {"n": 0}

        def flaky_loss(*args, **kwargs):
            calls["n"] += 1
            loss = real_loss(*args, **kwargs)
            return loss * float("nan") if calls["n"] <= 2 else loss

        monkeypatch.setattr(model_module, "classifier_loss", flaky_loss)
        model = TargAD(tiny_config(clf_epochs=4))
        model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
        assert len(model.loss_history) == 4
        assert np.all(np.isfinite(model.loss_history))

    def test_persistent_nan_loss_raises_clear_error(self, split, monkeypatch):
        import repro.core.model as model_module

        real_loss = model_module.classifier_loss

        def broken_loss(*args, **kwargs):
            return real_loss(*args, **kwargs) * float("nan")

        monkeypatch.setattr(model_module, "classifier_loss", broken_loss)
        model = TargAD(tiny_config(clf_epochs=4))
        with pytest.raises(TrainingDivergenceError, match="rollback"):
            model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled,
                      max_rollbacks=2)

    def test_max_rollbacks_zero_fails_fast(self, split, monkeypatch):
        import repro.core.model as model_module

        real_loss = model_module.classifier_loss

        def broken_loss(*args, **kwargs):
            return real_loss(*args, **kwargs) * float("nan")

        monkeypatch.setattr(model_module, "classifier_loss", broken_loss)
        with pytest.raises(TrainingDivergenceError):
            TargAD(tiny_config(clf_epochs=2)).fit(
                split.X_unlabeled, split.X_labeled, split.y_labeled,
                max_rollbacks=0,
            )
