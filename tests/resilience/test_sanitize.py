"""Input sanitization: unit edge cases + the partition property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience import SanitizedBatch, sanitize_batch


class TestCleanBatches:
    def test_all_finite_rows_kept(self):
        X = np.arange(12.0).reshape(4, 3)
        out = sanitize_batch(X, 3)
        assert np.array_equal(out.kept, [0, 1, 2, 3])
        assert len(out.quarantined) == 0
        assert np.array_equal(out.X, X)

    def test_nonfinite_rows_quarantined(self):
        X = np.ones((4, 3))
        X[1, 0] = np.nan
        X[3, 2] = np.inf
        out = sanitize_batch(X, 3)
        assert np.array_equal(out.kept, [0, 2])
        assert np.array_equal(out.quarantined, [1, 3])
        assert np.all(np.isfinite(out.X))

    def test_empty_batch(self):
        out = sanitize_batch(np.empty((0, 3)), 3)
        assert out.n_total == 0
        assert out.X.shape == (0, 3)


class TestSchemaErrors:
    def test_uniform_wrong_width_raises_naming_both(self):
        with pytest.raises(ValueError, match=r"has 5 features, model expects 3"):
            sanitize_batch(np.ones((4, 5)), 3)

    def test_scalar_rejected(self):
        with pytest.raises(ValueError, match="scalar"):
            sanitize_batch(np.float64(1.0), 3)

    def test_3d_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            sanitize_batch(np.ones((2, 3, 4)), 3)


class TestRaggedPayloads:
    def test_short_rows_quarantined_individually(self):
        rows = [[1.0, 2.0, 3.0], [1.0, 2.0], [4.0, 5.0, 6.0]]
        out = sanitize_batch(rows, 3)
        assert np.array_equal(out.kept, [0, 2])
        assert np.array_equal(out.quarantined, [1])

    def test_non_numeric_rows_quarantined(self):
        rows = [[1.0, 2.0, 3.0], ["a", "b", "c"]]
        out = sanitize_batch(rows, 3)
        assert np.array_equal(out.kept, [0])
        assert np.array_equal(out.quarantined, [1])

    def test_single_bare_row_is_one_row(self):
        out = sanitize_batch(np.array([1.0, 2.0, 3.0]), 3)
        assert out.n_total == 1
        assert out.X.shape == (1, 3)


# -- property test --------------------------------------------------------

ROW = st.lists(
    st.floats(allow_nan=True, allow_infinity=True, width=64),
    min_size=0, max_size=6,
)


@settings(max_examples=300, deadline=None)
@given(rows=st.lists(ROW, max_size=20), n_features=st.integers(2, 6))
def test_kept_and_quarantined_partition_the_batch(rows, n_features):
    """For any ragged/non-finite payload, kept ∪ quarantined is exactly
    range(n) with no overlap, and kept rows are finite at model width."""
    try:
        out = sanitize_batch(rows, n_features)
    except ValueError:
        # Uniform wrong-width batches legitimately raise; anything else is
        # a bug the reconstruction below would have caught.
        arr = np.asarray(rows, dtype=np.float64)
        assert arr.ndim == 2 and arr.shape[1] != n_features and arr.shape[0] > 0
        return
    assert isinstance(out, SanitizedBatch)
    kept = set(out.kept.tolist())
    quarantined = set(out.quarantined.tolist())
    assert kept | quarantined == set(range(len(rows)))
    assert kept & quarantined == set()
    assert out.n_total == len(rows)
    assert out.X.shape == (len(kept), n_features)
    assert np.all(np.isfinite(out.X))
    # Kept rows survive unchanged, in original order.
    for position, index in enumerate(out.kept.tolist()):
        assert np.array_equal(
            out.X[position], np.asarray(rows[index], dtype=np.float64)
        )
