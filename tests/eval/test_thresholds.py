"""Threshold-selection utilities."""

import numpy as np
import pytest

from repro.eval.thresholds import best_f1_threshold, budget_threshold, recall_threshold


class TestBestF1:
    def test_perfect_separation(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.1, 0.2, 0.8, 0.9])
        threshold, f1 = best_f1_threshold(y, s)
        assert f1 == pytest.approx(1.0)
        assert 0.2 < threshold <= 0.8

    def test_applying_threshold_achieves_reported_f1(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 200)
        s = rng.random(200) + 0.5 * y
        threshold, f1 = best_f1_threshold(y, s)
        pred = (s >= threshold).astype(int)
        tp = ((pred == 1) & (y == 1)).sum()
        precision = tp / max(pred.sum(), 1)
        recall = tp / y.sum()
        manual_f1 = 2 * precision * recall / max(precision + recall, 1e-12)
        assert manual_f1 == pytest.approx(f1, abs=1e-9)


class TestRecallThreshold:
    def test_full_recall_is_min_positive_score(self):
        y = np.array([0, 1, 0, 1])
        s = np.array([0.1, 0.5, 0.3, 0.9])
        threshold = recall_threshold(y, s, 1.0)
        assert ((s >= threshold) & (y == 1)).sum() == 2
        assert threshold == pytest.approx(0.5)

    def test_partial_recall_is_looser(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, 300)
        s = rng.random(300) + y
        t_half = recall_threshold(y, s, 0.5)
        t_full = recall_threshold(y, s, 1.0)
        assert t_half >= t_full

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            recall_threshold([0, 1], [0.1, 0.9], 0.0)
        with pytest.raises(ValueError):
            recall_threshold([0, 1], [0.1, 0.9], 1.5)


class TestBudgetThreshold:
    def test_flags_at_most_budget(self):
        rng = np.random.default_rng(2)
        s = rng.random(100)
        threshold = budget_threshold(s, 10)
        assert (s >= threshold).sum() == 10

    def test_budget_equals_n(self):
        s = np.array([0.5, 0.1, 0.9])
        assert budget_threshold(s, 3) == pytest.approx(0.1)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            budget_threshold(np.ones(5), 0)
        with pytest.raises(ValueError):
            budget_threshold(np.ones(5), 6)
