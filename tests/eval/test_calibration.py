"""Rank normalization, ensembling, and probability calibration."""

import numpy as np
import pytest

from repro.eval.calibration import BinnedCalibrator, rank_normalize, unify_scores
from repro.metrics import auroc


class TestRankNormalize:
    def test_bounds_and_order(self):
        out = rank_normalize(np.array([3.0, 1.0, 2.0]))
        np.testing.assert_allclose(out, [1.0, 0.0, 0.5])

    def test_ties_average(self):
        out = rank_normalize(np.array([1.0, 1.0]))
        np.testing.assert_allclose(out, [0.5, 0.5])

    def test_preserves_auroc(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 200)
        s = rng.random(200) + 0.3 * y
        assert auroc(y, rank_normalize(s)) == pytest.approx(auroc(y, s), abs=1e-12)

    def test_single_value(self):
        np.testing.assert_allclose(rank_normalize(np.array([7.0])), [0.5])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rank_normalize(np.array([]))


class TestUnifyScores:
    def test_combines_complementary_detectors(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, 400)
        # Two weak detectors with independent noise.
        s1 = y + rng.normal(0, 1.5, 400)
        s2 = y + rng.normal(0, 1.5, 400)
        combined = unify_scores([s1, s2])
        assert auroc(y, combined) > max(auroc(y, s1), auroc(y, s2)) - 0.01

    def test_weighting(self):
        s1 = np.array([0.0, 1.0])
        s2 = np.array([1.0, 0.0])
        heavy_first = unify_scores([s1, s2], weights=[10.0, 1.0])
        assert heavy_first[1] > heavy_first[0]

    def test_scale_invariance(self):
        s1 = np.array([1.0, 5.0, 2.0])
        combined_a = unify_scores([s1, s1 * 1000.0])
        combined_b = unify_scores([s1, s1])
        np.testing.assert_allclose(combined_a, combined_b)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            unify_scores([np.ones(3), np.ones(4)])

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            unify_scores([np.ones(3)], weights=[0.0])


class TestBinnedCalibrator:
    def _data(self, n=2000, seed=2):
        rng = np.random.default_rng(seed)
        scores = rng.random(n)
        # True probability increases with the score.
        y = (rng.random(n) < scores**2).astype(int)
        return scores, y

    def test_outputs_probabilities(self):
        scores, y = self._data()
        cal = BinnedCalibrator(n_bins=10).fit(scores, y)
        probs = cal.predict_proba(scores)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_monotone_in_score(self):
        scores, y = self._data()
        cal = BinnedCalibrator(n_bins=10).fit(scores, y)
        grid = np.linspace(0, 1, 50)
        probs = cal.predict_proba(grid)
        assert np.all(np.diff(probs) >= -1e-12)

    def test_calibration_quality(self):
        scores, y = self._data(n=5000)
        cal = BinnedCalibrator(n_bins=10).fit(scores, y)
        probs = cal.predict_proba(scores)
        # Mean calibrated probability tracks the true prevalence.
        assert probs.mean() == pytest.approx(y.mean(), abs=0.02)
        # And per-region: high-score region must be near its true rate.
        high = scores > 0.8
        assert probs[high].mean() == pytest.approx(y[high].mean(), abs=0.05)

    def test_pav_fixes_nonmonotone_bins(self):
        # Construct data where a middle bin is accidentally inverted.
        scores = np.concatenate([np.full(50, 0.1), np.full(50, 0.5), np.full(50, 0.9)])
        y = np.concatenate([np.zeros(50), np.ones(50), np.zeros(50) + 0.0])
        y[100:150] = [1, 0] * 25  # high bin rate 0.5 < middle bin rate 1.0
        cal = BinnedCalibrator(n_bins=3).fit(scores, y)
        assert np.all(np.diff(cal.bin_probs_) >= -1e-12)

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            BinnedCalibrator().predict_proba(np.array([0.5]))

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            BinnedCalibrator(n_bins=10).fit(np.ones(5), np.ones(5))
