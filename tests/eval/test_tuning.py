"""Validation-based grid search."""

import numpy as np
import pytest

from repro.core import TargADConfig
from repro.eval.tuning import TuningResult, expand_grid, grid_search


class TestExpandGrid:
    def test_cartesian_product(self):
        grid = expand_grid({"a": [1, 2], "b": ["x", "y", "z"]})
        assert len(grid) == 6
        assert {"a": 2, "b": "y"} in grid

    def test_single_axis(self):
        assert expand_grid({"a": [1]}) == [{"a": 1}]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            expand_grid({})


class TestGridSearch:
    @pytest.fixture(scope="class")
    def split(self):
        from tests.conftest import TINY_SPEC, make_tiny_generator
        from repro.data.splits import build_split

        return build_split(make_tiny_generator(0), TINY_SPEC, scale=1.0, random_state=0)

    def test_finds_best_by_validation(self, split):
        base = TargADConfig(k=2, ae_lr=3e-3, ae_epochs=5, clf_epochs=8, random_state=0)
        result = grid_search(split, {"lambda1": [0.1, 1.0]}, base_config=base)
        assert result.best_params["lambda1"] in (0.1, 1.0)
        assert len(result.trials) == 2
        assert result.best_score == max(t["score"] for t in result.trials)

    def test_top_ordering(self, split):
        base = TargADConfig(k=2, ae_lr=3e-3, ae_epochs=3, clf_epochs=4, random_state=0)
        result = grid_search(split, {"alpha": [0.05, 0.1, 0.2]}, base_config=base)
        top = result.top(2)
        assert len(top) == 2
        assert top[0]["score"] >= top[1]["score"]

    def test_custom_detector_factory(self, split):
        from repro.baselines import IsolationForest

        result = grid_search(
            split,
            {"n_estimators": [10, 30]},
            detector_factory=lambda p: IsolationForest(random_state=0, **p),
        )
        assert set(result.best_params) == {"n_estimators"}
        assert len(result.trials) == 2
