"""Score-distribution analysis helpers."""

import numpy as np
import pytest

from repro.eval.analysis import ScoreStats, queue_composition, score_stats_by_kind, separation_ratio


@pytest.fixture
def scored():
    # normals ~0.1, targets ~0.9, non-targets ~0.5
    kinds = np.array([0] * 50 + [1] * 10 + [2] * 20)
    rng = np.random.default_rng(0)
    scores = np.concatenate([
        rng.normal(0.1, 0.02, 50), rng.normal(0.9, 0.02, 10), rng.normal(0.5, 0.02, 20)
    ])
    return scores, kinds


class TestScoreStats:
    def test_of_basic(self):
        stats = ScoreStats.of(np.array([1.0, 2.0, 3.0]))
        assert stats.count == 3
        assert stats.mean == pytest.approx(2.0)
        assert stats.median == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ScoreStats.of(np.array([]))

    def test_by_kind(self, scored):
        scores, kinds = scored
        stats = score_stats_by_kind(scores, kinds)
        assert set(stats) == {"normal", "target", "non-target"}
        assert stats["target"].mean > stats["non-target"].mean > stats["normal"].mean

    def test_shape_mismatch(self, scored):
        scores, kinds = scored
        with pytest.raises(ValueError):
            score_stats_by_kind(scores[:-1], kinds)


class TestQueueComposition:
    def test_top_of_queue_is_targets(self, scored):
        scores, kinds = scored
        comp = queue_composition(scores, kinds, depth=10)
        assert comp["by_kind"]["target"] == 10
        assert comp["target_precision"] == pytest.approx(1.0)

    def test_deeper_queue_dilutes(self, scored):
        scores, kinds = scored
        comp = queue_composition(scores, kinds, depth=30)
        assert comp["by_kind"]["target"] == 10
        assert comp["by_kind"]["non-target"] == 20
        assert comp["target_precision"] == pytest.approx(1 / 3)

    def test_family_breakdown(self, scored):
        scores, kinds = scored
        families = np.array(["n"] * 50 + ["fraud"] * 10 + ["spam"] * 20, dtype=object)
        comp = queue_composition(scores, kinds, depth=15, families=families)
        assert comp["by_family"]["fraud"] == 10
        assert comp["by_family"]["spam"] == 5

    def test_invalid_depth(self, scored):
        scores, kinds = scored
        with pytest.raises(ValueError):
            queue_composition(scores, kinds, depth=0)


class TestSeparationRatio:
    def test_ratios_reflect_priority(self, scored):
        scores, kinds = scored
        ratios = separation_ratio(scores, kinds)
        assert ratios["target_vs_nontarget"] > 1.5
        assert ratios["target_vs_normal"] > ratios["nontarget_vs_normal"]

    def test_missing_kind_tolerated(self):
        scores = np.array([0.1, 0.9])
        kinds = np.array([0, 1])  # no non-targets
        ratios = separation_ratio(scores, kinds)
        assert "target_vs_nontarget" not in ratios
        assert "target_vs_normal" in ratios
