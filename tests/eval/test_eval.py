"""Evaluation registry, protocol, and result formatting."""

import numpy as np
import pytest

from repro.baselines import BaseDetector, IsolationForest
from repro.core import TargAD
from repro.eval import (
    DETECTOR_NAMES,
    ResultTable,
    evaluate_detector,
    format_mean_std,
    make_detector,
    run_comparison,
)
from repro.eval.registry import DATASET_K


class TestRegistry:
    def test_twelve_detectors(self):
        assert len(DETECTOR_NAMES) == 12
        assert "TargAD" in DETECTOR_NAMES

    def test_all_names_constructible(self):
        for name in DETECTOR_NAMES:
            det = make_detector(name, random_state=0)
            assert isinstance(det, (BaseDetector, TargAD))

    def test_targad_gets_dataset_k(self):
        model = make_detector("TargAD", random_state=0, dataset="unsw_nb15")
        assert model.config.k == DATASET_K["unsw_nb15"]

    def test_targad_k_override_wins(self):
        model = make_detector("TargAD", random_state=0, dataset="unsw_nb15", k=7)
        assert model.config.k == 7

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            make_detector("NotARealDetector")

    def test_extra_detectors_constructible(self):
        from repro.eval.registry import EXTRA_DETECTOR_NAMES

        for name in EXTRA_DETECTOR_NAMES:
            det = make_detector(name, random_state=0)
            assert det.supervision == "unsupervised"

    def test_overrides_forwarded(self):
        det = make_detector("iForest", n_estimators=7)
        assert isinstance(det, IsolationForest)
        assert det.n_estimators == 7


class TestProtocol:
    def test_evaluate_detector_aggregates_seeds(self):
        result = evaluate_detector(
            "iForest", "kddcup99", seeds=(0, 1), scale=0.01,
            detector_kwargs={"n_estimators": 10},
        )
        assert len(result.auprc_values) == 2
        assert 0.0 <= result.auprc_mean <= 1.0
        assert result.auprc_std >= 0.0
        assert 0.0 <= result.auroc_mean <= 1.0

    def test_run_comparison_cartesian(self):
        results = run_comparison(
            ["iForest"], ["kddcup99", "nsl_kdd"], seeds=(0,), scale=0.01
        )
        assert len(results) == 2
        assert {r.dataset for r in results} == {"kddcup99", "nsl_kdd"}


class TestResults:
    def test_format_mean_std(self):
        assert format_mean_std(0.8041, 0.0012) == "0.804±0.001"

    def test_table_renders_all_cells(self):
        table = ResultTable("T", columns=["A", "B"])
        table.add_row("row1", {"A": "1", "B": "2"})
        table.add_row("row2", {"A": "3"})
        text = table.render()
        assert "T" in text and "row1" in text and "row2" in text
        assert "-" in text.splitlines()[-2]  # missing B cell rendered as '-'

    def test_table_alignment_consistent(self):
        table = ResultTable("Title", columns=["col"])
        table.add_row("a-very-long-label", {"col": "x"})
        table.add_row("b", {"col": "y"})
        lines = [l for l in table.render().splitlines() if l and not set(l) <= {"-"}]
        assert len({len(l.rstrip()) for l in lines[1:]}) <= 2
