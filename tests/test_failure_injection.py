"""Failure-injection and degenerate-input robustness tests.

A production detector gets fed weird data: constant features, duplicated
rows, single-class pools, extreme contamination, near-empty splits. These
tests pin the library's behaviour on such inputs — either a clean error or
a sane result, never a crash or silent NaN.
"""

import numpy as np
import pytest

from repro.baselines import DevNet, IsolationForest
from repro.core import TargAD, TargADConfig
from repro.core.candidate_selection import CandidateSelector
from repro.data import MinMaxScaler
from repro.metrics import auprc, auroc

FAST = dict(k=2, ae_epochs=3, clf_epochs=3)


def tiny_workload(rng, n=300, d=8):
    X_unlabeled = rng.normal(0.5, 0.1, size=(n, d))
    X_labeled = rng.normal(0.9, 0.05, size=(10, d))
    y_labeled = np.zeros(10, dtype=np.int64)
    return X_unlabeled, X_labeled, y_labeled


class TestConstantFeatures:
    def test_targad_survives_constant_columns(self, rng):
        X_u, X_l, y_l = tiny_workload(rng)
        X_u[:, 0] = 0.5
        X_l[:, 0] = 0.5
        model = TargAD(TargADConfig(random_state=0, **FAST))
        model.fit(X_u, X_l, y_l)
        assert np.all(np.isfinite(model.decision_function(X_u[:20])))

    def test_all_constant_data(self):
        X = np.full((100, 4), 0.3)
        forest = IsolationForest(n_estimators=5, random_state=0).fit(X)
        assert np.all(np.isfinite(forest.decision_function(X)))

    def test_scaler_on_constant_matrix(self):
        out = MinMaxScaler().fit_transform(np.full((10, 3), 7.0))
        assert np.all(out == 0.0)


class TestDuplicatedRows:
    def test_targad_with_heavy_duplication(self, rng):
        X_u, X_l, y_l = tiny_workload(rng, n=50)
        X_u = np.repeat(X_u, 5, axis=0)  # 80% duplicates
        model = TargAD(TargADConfig(random_state=0, **FAST))
        model.fit(X_u, X_l, y_l)
        assert np.all(np.isfinite(model.decision_function(X_u[:20])))

    def test_kmeans_inside_selector_with_duplicates(self, rng):
        X = np.repeat(rng.normal(0.5, 0.1, size=(20, 4)), 10, axis=0)
        selector = CandidateSelector(k=3, ae_epochs=2, random_state=0)
        selection = selector.fit(X, None)
        assert selection.candidate_mask.sum() >= 1


class TestExtremeComposition:
    def test_single_labeled_anomaly(self, rng):
        X_u, X_l, y_l = tiny_workload(rng)
        model = TargAD(TargADConfig(random_state=0, **FAST))
        model.fit(X_u, X_l[:1], y_l[:1])
        assert model.m_ == 1
        assert np.all(np.isfinite(model.decision_function(X_u[:20])))

    def test_tiny_unlabeled_pool(self, rng):
        X_u, X_l, y_l = tiny_workload(rng, n=30)
        model = TargAD(TargADConfig(random_state=0, k=2, ae_epochs=2, clf_epochs=2))
        model.fit(X_u, X_l, y_l)
        assert np.all(np.isfinite(model.decision_function(X_u)))

    def test_alpha_larger_than_pool_minimum(self, rng):
        X_u, X_l, y_l = tiny_workload(rng, n=40)
        # alpha 0.9: nearly everything becomes a candidate.
        model = TargAD(TargADConfig(random_state=0, k=2, alpha=0.9,
                                    ae_epochs=2, clf_epochs=2))
        model.fit(X_u, X_l, y_l)
        assert model.selection_.candidate_mask.sum() == 36

    def test_devnet_with_one_labeled_anomaly(self, rng):
        X_u, X_l, y_l = tiny_workload(rng)
        det = DevNet(random_state=0, epochs=3)
        det.fit(X_u, X_l[:1], y_l[:1])
        assert np.all(np.isfinite(det.decision_function(X_u[:10])))


class TestMetricEdgeCases:
    def test_auroc_with_all_tied_scores(self):
        assert auroc([0, 1, 0, 1], np.zeros(4)) == pytest.approx(0.5)

    def test_auprc_single_positive(self):
        assert auprc([0, 0, 1], [0.1, 0.2, 0.9]) == pytest.approx(1.0)

    def test_auprc_single_positive_ranked_last(self):
        assert auprc([1, 0, 0], [0.1, 0.2, 0.9]) == pytest.approx(1 / 3)


class TestScoreStability:
    def test_triclass_on_out_of_manifold_points(self, rng):
        X_u, X_l, y_l = tiny_workload(rng)
        model = TargAD(TargADConfig(random_state=0, **FAST))
        model.fit(X_u, X_l, y_l)
        # Points far outside [0, 1]: must classify without overflow.
        weird = np.full((5, X_u.shape[1]), 100.0)
        tri = model.predict_triclass(weird)
        assert set(np.unique(tri)) <= {0, 1, 2}

    def test_scores_finite_on_nan_free_extremes(self, rng):
        X_u, X_l, y_l = tiny_workload(rng)
        model = TargAD(TargADConfig(random_state=0, **FAST))
        model.fit(X_u, X_l, y_l)
        extremes = np.vstack([np.zeros(X_u.shape[1]), np.ones(X_u.shape[1]) * 1e6])
        assert np.all(np.isfinite(model.decision_function(extremes)))
