"""Shared fixtures: small synthetic populations and splits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.splits import TableISpec, build_split
from repro.data.synthetic import AnomalyFamilySpec, NormalGroupSpec, SyntheticTabularGenerator


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def make_tiny_generator(random_state: int = 0, n_numeric: int = 12) -> SyntheticTabularGenerator:
    """A small, easy population: 2 normal groups, 2 target + 1 non-target family."""
    return SyntheticTabularGenerator(
        n_numeric=n_numeric,
        categorical_cardinalities=(3,),
        normal_groups=[
            NormalGroupSpec("normal_a", weight=0.6, signature_size=4),
            NormalGroupSpec("normal_b", weight=0.4, signature_size=4),
        ],
        anomaly_families=[
            AnomalyFamilySpec("tgt_easy", is_target=True, n_affected=5, shift=6.0),
            AnomalyFamilySpec("tgt_hard", is_target=True, n_affected=4, shift=4.0, difficulty=0.2),
            AnomalyFamilySpec("nontgt", is_target=False, n_affected=4, shift=5.0),
        ],
        correlation_rank=2,
        shared_anomaly_dims=3,
        random_state=random_state,
    )


TINY_SPEC = TableISpec(
    name="tiny",
    n_labeled=40,
    n_unlabeled=900,
    val_counts=(200, 20, 15),
    test_counts=(300, 30, 20),
    contamination=0.08,
)


@pytest.fixture(scope="session")
def tiny_split():
    """A small preprocessed split shared (read-only) across tests."""
    generator = make_tiny_generator(0)
    return build_split(generator, TINY_SPEC, scale=1.0, random_state=0)


@pytest.fixture
def tiny_generator():
    return make_tiny_generator(0)


@pytest.fixture(scope="session")
def blobs():
    """Two well-separated Gaussian blobs plus planted outliers.

    Returns ``(X_inliers, X_outliers)`` with 400 inliers in 2 clusters and
    20 far-away outliers — the standard sanity workload for detectors.
    """
    gen = np.random.default_rng(42)
    blob1 = gen.normal(0.0, 0.5, size=(200, 6)) + np.array([2, 2, 0, 0, 0, 0])
    blob2 = gen.normal(0.0, 0.5, size=(200, 6)) + np.array([-2, -2, 0, 0, 0, 0])
    inliers = np.vstack([blob1, blob2])
    outliers = gen.normal(0.0, 0.5, size=(20, 6)) + np.array([0, 0, 6, 6, 0, 0])
    return inliers, outliers
