"""Every example script must run end-to-end.

Executed as subprocesses with a reduced REPRO_SCALE so the whole module
stays fast; each one asserts on a string the script is expected to print.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", "AUPRC"),
    ("payment_fraud_triage.py", "Analyst review queue"),
    ("network_intrusion_unseen.py", "Scenario B"),
    ("build_your_own_dataset.py", "Test AUPRC for firmware tampering"),
    ("deployment_pipeline.py", "operating threshold"),
    ("bring_your_own_csv.py", "inferred schema"),
    ("chaos_demo.py", "half-open"),
    ("taxonomy_demo.py", "Cross-family taxonomy robustness"),
    ("lifecycle_demo.py", "Recovery report"),
]


@pytest.mark.parametrize("script,expected", CASES)
def test_example_runs(script, expected):
    env = dict(os.environ, REPRO_SCALE="0.03")
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert expected in result.stdout


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == {name for name, _ in CASES}
