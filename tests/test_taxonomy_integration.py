"""Held-out-family integration: the triclass router on a foreign family.

Trains TargAD on taxonomy family A as targets and family B as the known
non-targets, then confronts the serving pipeline with family C — a
taxonomy family that never appeared anywhere in training. The model
cannot recognize C; the claim under test is *graceful degradation*: no
crash, routing stays within the triclass vocabulary, and every pipeline
invariant (alert ordering, deferred set, quarantine) holds on the
foreign rows.
"""

import numpy as np
import pytest

from repro.core import TargAD, TargADConfig
from repro.data import attach_taxonomy
from repro.data.schema import KIND_NONTARGET, KIND_TARGET
from repro.data.splits import build_split
from repro.serving import ScoringPipeline
from repro.serving.pipeline import ROUTE_QUARANTINED
from tests.conftest import TINY_SPEC, make_tiny_generator

pytestmark = pytest.mark.taxonomy


@pytest.fixture(scope="module")
def heldout():
    """Split + model: targets=calculation, trained non-targets=local,
    family ``global`` attached but excluded from training entirely."""
    generator = attach_taxonomy(
        make_tiny_generator(0), ["calculation", "local", "global"],
        target_families=["calculation"], random_state=0,
    )
    split = build_split(
        generator, TINY_SPEC, scale=1.0, random_state=0,
        target_families=["tax:calculation"],
        train_nontarget_families=["tax:local"],
    )
    model = TargAD(TargADConfig(random_state=0, k=2, ae_lr=3e-3, ae_epochs=15,
                                clf_epochs=20))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    pipeline = ScoringPipeline(model, policy="budget", review_budget=10,
                               monitor_drift=False)
    pipeline.calibrate(split.X_val)
    return generator, split, model, pipeline


class TestHeldOutFamilySplit:
    def test_family_c_absent_from_training_present_at_eval(self, heldout):
        _, split, _, _ = heldout
        train = set(split.unlabeled_family[split.unlabeled_kind == KIND_NONTARGET]
                    .astype(str))
        assert train == {"tax:local"}
        assert "tax:global" not in set(split.labeled_family.astype(str))
        test = set(split.test_family[split.test_kind == KIND_NONTARGET].astype(str))
        assert "tax:global" in test


class TestGracefulDegradation:
    def test_triclass_router_stays_in_vocabulary_on_foreign_rows(self, heldout):
        _, split, model, _ = heldout
        routing = model.predict_triclass(split.X_test)
        assert len(routing) == len(split.X_test)
        assert set(np.unique(routing)) <= {0, 1, 2}

    def test_pipeline_processes_foreign_rows_without_crash(self, heldout):
        _, split, _, pipeline = heldout
        batch = pipeline.process(split.X_test)
        assert len(batch.scores) == len(split.X_test)
        assert set(np.unique(batch.routing)) <= {ROUTE_QUARANTINED, 0, 1, 2}
        assert not batch.degraded

    def test_alert_invariants_hold(self, heldout):
        _, split, _, pipeline = heldout
        batch = pipeline.process(split.X_test)
        # Alerts: target-routed, above threshold, analyst-queue ordered.
        assert set(batch.alerts) <= set(np.flatnonzero(batch.routing == KIND_TARGET))
        assert (batch.scores[batch.alerts] >= batch.threshold).all()
        ordered = batch.scores[batch.alerts]
        assert (np.diff(ordered) <= 0).all()

    def test_deferred_set_is_exactly_the_nontarget_routed_rows(self, heldout):
        _, split, _, pipeline = heldout
        batch = pipeline.process(split.X_test)
        np.testing.assert_array_equal(
            np.sort(batch.deferred),
            np.flatnonzero(batch.routing == KIND_NONTARGET),
        )

    def test_unseen_family_rows_are_mostly_not_alerted(self, heldout):
        """The prioritization claim: foreign non-targets should not flood
        the alert queue (most of the queue stays target-family rows)."""
        _, split, _, pipeline = heldout
        batch = pipeline.process(split.X_test)
        families = split.test_family.astype(str)
        if len(batch.alerts):
            unseen_share = (families[batch.alerts] == "tax:global").mean()
            assert unseen_share <= 0.5

    def test_quarantine_still_catches_bad_rows(self, heldout):
        _, split, _, pipeline = heldout
        X = split.X_test.copy()
        X[7, 2] = np.nan
        X[19, 0] = np.inf
        batch = pipeline.process(X)
        assert set(batch.quarantined) == {7, 19}
        assert np.isnan(batch.scores[7]) and np.isnan(batch.scores[19])
        assert batch.routing[7] == batch.routing[19] == ROUTE_QUARANTINED
        assert 7 not in batch.alerts and 19 not in batch.alerts
