"""Documentation consistency: the docs must not drift from the code.

These tests cross-check the claims documents make (README, DESIGN.md,
docs/api.md) against the actual public API, so a rename or removal fails
CI instead of silently rotting the docs.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


class TestReadme:
    @pytest.fixture(scope="class")
    def readme(self):
        return (REPO / "README.md").read_text()

    def test_quickstart_code_runs_conceptually(self, readme):
        # Every symbol the quickstart imports must exist at top level.
        import repro

        match = re.search(r"from repro import (.+)", readme)
        assert match is not None
        for symbol in [s.strip() for s in match.group(1).split(",")]:
            assert hasattr(repro, symbol), symbol

    def test_mentioned_examples_exist(self, readme):
        for name in re.findall(r"`(\w+\.py)`", readme):
            if name in ("setup.py",):
                continue
            assert (REPO / "examples" / name).exists(), name

    def test_env_knobs_match_code(self, readme):
        from repro.data.splits import default_scale  # noqa: F401 - existence

        for knob in ("REPRO_SCALE", "REPRO_BENCH_SCALE", "REPRO_BENCH_SEEDS"):
            assert knob in readme


class TestDesignDoc:
    @pytest.fixture(scope="class")
    def design(self):
        return (REPO / "DESIGN.md").read_text()

    def test_all_bench_targets_exist(self, design):
        for name in set(re.findall(r"benchmarks/(bench_\w+\.py)", design)):
            assert (REPO / "benchmarks" / name).exists(), name

    def test_listed_modules_exist(self, design):
        for path in set(re.findall(r"repro/(\w+)/", design)):
            assert (REPO / "src" / "repro" / path).is_dir(), path


class TestApiDoc:
    @pytest.fixture(scope="class")
    def api(self):
        return (REPO / "docs" / "api.md").read_text()

    def test_detector_names_current(self, api):
        from repro.eval.registry import DETECTOR_NAMES, EXTRA_DETECTOR_NAMES

        for name in DETECTOR_NAMES + EXTRA_DETECTOR_NAMES:
            # CLI/API docs reference classes; registry names appear for most.
            base = name.replace("-", "")
            assert base in api.replace("-", "") or name in api, name

    def test_core_methods_exist(self, api):
        from repro.core import TargAD

        for method in re.findall(r"model\.(\w+)\(", api):
            assert hasattr(TargAD, method), method


class TestExperimentsDoc:
    def test_every_bench_has_an_entry(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for bench in (REPO / "benchmarks").glob("bench_*.py"):
            assert bench.name in text, f"{bench.name} missing from EXPERIMENTS.md"
