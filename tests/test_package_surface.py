"""Package-surface integrity: every ``__all__`` entry must resolve."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.autodiff",
    "repro.nn",
    "repro.cluster",
    "repro.metrics",
    "repro.data",
    "repro.core",
    "repro.ood",
    "repro.baselines",
    "repro.eval",
    "repro.experiments",
    "repro.lifecycle",
    "repro.obs",
    "repro.resilience",
    "repro.serving",
    "repro.viz",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_entries_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} in __all__ but missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_is_sorted_and_unique(package):
    module = importlib.import_module(package)
    names = list(module.__all__)
    assert len(names) == len(set(names)), f"{package}.__all__ has duplicates"


@pytest.mark.parametrize("package", PACKAGES)
def test_module_docstrings_present(package):
    module = importlib.import_module(package)
    assert module.__doc__ and len(module.__doc__.strip()) > 20, package


def test_public_estimators_have_docstrings():
    from repro.baselines import __all__ as detector_names
    import repro.baselines as baselines

    for name in detector_names:
        obj = getattr(baselines, name)
        if isinstance(obj, type):
            assert obj.__doc__, f"{name} lacks a class docstring"
