"""Soak test: repeated daemon lifecycles leak nothing.

25 up/score/down cycles split across the fork and spawn start methods
must leave zero shared-memory segments in ``/dev/shm`` and zero orphaned
worker processes — the leak classes a long-lived serving host actually
dies of. A final cycle drops a daemon without calling ``close()`` to
prove the pid-guarded finalizer backstop unlinks the segments anyway.
"""

import gc
import os

import multiprocessing as mp
import numpy as np
import pytest

from repro.core import TargAD, TargADConfig
from repro.serving.daemon import ServingDaemon
from repro.serving.sharding import build_scoring_spec

SHM_DIR = "/dev/shm"


def _shm_segments():
    """Names of multiprocessing shared-memory segments currently linked."""
    try:
        return {n for n in os.listdir(SHM_DIR) if n.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux hosts
        return set()


@pytest.fixture(scope="module")
def spec():
    from repro.data.splits import build_split
    from tests.conftest import TINY_SPEC, make_tiny_generator

    split = build_split(make_tiny_generator(0), TINY_SPEC, scale=1.0,
                        random_state=0)
    model = TargAD(TargADConfig(random_state=0, k=2, ae_lr=3e-3, ae_epochs=15,
                                clf_epochs=20))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    return build_scoring_spec(model, "ed"), np.asarray(split.X_test[:16],
                                                       dtype=np.float64)


@pytest.mark.slow
class TestDaemonSoak:
    def test_25_lifecycles_leak_nothing(self, spec):
        scoring_spec, X = spec
        methods = [m for m in ("fork", "spawn")
                   if m in mp.get_all_start_methods()]
        assert methods, "no multiprocessing start method available"
        # fork cycles are cheap; spawn pays a full interpreter start per
        # worker, so it gets the smaller share of the 25.
        cycles = (["fork"] * 20 + ["spawn"] * 5) if len(methods) == 2 else (
            [methods[0]] * 25
        )
        before_segments = _shm_segments()
        before_children = {p.pid for p in mp.active_children()}
        for i, method in enumerate(cycles):
            with ServingDaemon(scoring_spec, start_method=method) as daemon:
                scores, routing = daemon.score(X)
                assert scores.shape == (len(X),)
                assert routing.shape == (len(X),)
            assert not daemon.alive
        gc.collect()
        leaked = _shm_segments() - before_segments
        assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"
        orphans = {p.pid for p in mp.active_children()} - before_children
        assert not orphans, f"orphaned worker processes: {sorted(orphans)}"

    def test_daemon_rings_exist_only_while_running(self, spec):
        scoring_spec, X = spec
        before = _shm_segments()
        daemon = ServingDaemon(scoring_spec).start()
        daemon.score(X)
        created = _shm_segments() - before
        assert len(created) == 2  # one request + one response ring
        daemon.close()
        assert not (_shm_segments() - before)

    def test_dropped_ring_finalizer_unlinks_segment(self):
        """A ring abandoned without release() must still unlink: the
        pid-guarded ``weakref.finalize`` backstop."""
        from repro.serving.shm_ring import ShmRing

        ring = ShmRing.create(1024)
        name = ring.name
        assert name in _shm_segments()
        del ring
        gc.collect()
        assert name not in _shm_segments()

    def test_forked_child_exit_never_unlinks_parent_segment(self):
        """A child that inherited the ring object and exits cleanly (its
        finalizers run) must not unlink the parent's live segment."""
        from repro.serving.shm_ring import ShmRing

        if "fork" not in mp.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        ring = ShmRing.create(1024)
        try:
            ring.write(b"still here")
            child = mp.get_context("fork").Process(target=_inherit_and_exit)
            child.start()
            child.join(timeout=30.0)
            assert child.exitcode == 0
            assert ring.name in _shm_segments()
            assert ring.read(timeout=1.0) == (0, b"still here")
        finally:
            ring.close()
            ring.release()
        assert ring.name not in _shm_segments()


def _inherit_and_exit() -> None:
    """Child body: return normally so interpreter-exit finalizers run."""
    gc.collect()
