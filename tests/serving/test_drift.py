"""Drift monitoring."""

import numpy as np
import pytest

from repro.serving import DriftMonitor
from repro.serving.drift import ks_statistic


class TestKSStatistic:
    def test_identical_samples_zero(self):
        x = np.random.default_rng(0).standard_normal(300)
        assert ks_statistic(x, x) == pytest.approx(0.0)

    def test_disjoint_samples_one(self):
        assert ks_statistic(np.zeros(50), np.ones(50)) == pytest.approx(1.0)

    def test_matches_scipy(self):
        from scipy.stats import ks_2samp

        rng = np.random.default_rng(1)
        a = rng.standard_normal(200)
        b = rng.standard_normal(150) + 0.4
        assert ks_statistic(a, b) == pytest.approx(ks_2samp(a, b).statistic, abs=1e-12)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_statistic(np.array([]), np.ones(3))


class TestDriftMonitor:
    def test_no_drift_on_same_distribution(self, rng):
        reference = rng.normal(0, 1, size=(800, 4))
        batch = rng.normal(0, 1, size=(400, 4))
        report = DriftMonitor(threshold=0.15).fit(reference).check(batch)
        assert not report.drifted

    def test_detects_shifted_feature(self, rng):
        reference = rng.normal(0, 1, size=(800, 4))
        batch = rng.normal(0, 1, size=(400, 4))
        batch[:, 2] += 2.0
        report = DriftMonitor(threshold=0.15).fit(reference).check(batch)
        assert report.drifted
        assert report.drifted_features == [2]
        assert "DRIFT" in report.summary()

    def test_reference_subsampled(self, rng):
        reference = rng.normal(0, 1, size=(10_000, 3))
        monitor = DriftMonitor(max_reference=500, random_state=0).fit(reference)
        assert len(monitor._reference) == 500

    def test_feature_count_mismatch_rejected(self, rng):
        monitor = DriftMonitor().fit(rng.normal(size=(100, 3)))
        with pytest.raises(ValueError):
            monitor.check(rng.normal(size=(10, 4)))

    def test_unfitted_rejected(self, rng):
        with pytest.raises(RuntimeError):
            DriftMonitor().check(rng.normal(size=(10, 3)))

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            DriftMonitor(threshold=0.0)
