"""Drift monitoring."""

import numpy as np
import pytest

from repro.serving import DriftMonitor
from repro.serving.drift import ks_statistic


class TestKSStatistic:
    def test_identical_samples_zero(self):
        x = np.random.default_rng(0).standard_normal(300)
        assert ks_statistic(x, x) == pytest.approx(0.0)

    def test_disjoint_samples_one(self):
        assert ks_statistic(np.zeros(50), np.ones(50)) == pytest.approx(1.0)

    def test_matches_scipy(self):
        from scipy.stats import ks_2samp

        rng = np.random.default_rng(1)
        a = rng.standard_normal(200)
        b = rng.standard_normal(150) + 0.4
        assert ks_statistic(a, b) == pytest.approx(ks_2samp(a, b).statistic, abs=1e-12)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_statistic(np.array([]), np.ones(3))


class TestDriftMonitor:
    def test_no_drift_on_same_distribution(self, rng):
        reference = rng.normal(0, 1, size=(800, 4))
        batch = rng.normal(0, 1, size=(400, 4))
        report = DriftMonitor(threshold=0.15).fit(reference).check(batch)
        assert not report.drifted

    def test_detects_shifted_feature(self, rng):
        reference = rng.normal(0, 1, size=(800, 4))
        batch = rng.normal(0, 1, size=(400, 4))
        batch[:, 2] += 2.0
        report = DriftMonitor(threshold=0.15).fit(reference).check(batch)
        assert report.drifted
        assert report.drifted_features == [2]
        assert "DRIFT" in report.summary()

    def test_reference_subsampled(self, rng):
        reference = rng.normal(0, 1, size=(10_000, 3))
        monitor = DriftMonitor(max_reference=500, random_state=0).fit(reference)
        assert len(monitor._reference) == 500

    def test_feature_count_mismatch_rejected(self, rng):
        monitor = DriftMonitor().fit(rng.normal(size=(100, 3)))
        with pytest.raises(ValueError):
            monitor.check(rng.normal(size=(10, 4)))

    def test_unfitted_rejected(self, rng):
        with pytest.raises(RuntimeError):
            DriftMonitor().check(rng.normal(size=(10, 3)))

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            DriftMonitor(threshold=0.0)


class TestRobustness:
    """Degenerate references and hostile batches must not raise or
    manufacture spurious drift."""

    def test_constant_feature_no_spurious_drift(self, rng):
        reference = rng.normal(0, 1, size=(500, 3))
        reference[:, 1] = 7.0  # constant column (e.g. a dead sensor)
        monitor = DriftMonitor(threshold=0.15).fit(reference)
        batch = rng.normal(0, 1, size=(200, 3))
        batch[:, 1] = 7.0
        report = monitor.check(batch)
        assert 1 not in report.drifted_features
        assert report.statistics[1] == pytest.approx(0.0)

    def test_constant_feature_tolerates_float_noise(self, rng):
        reference = rng.normal(0, 1, size=(500, 2))
        reference[:, 0] = 3.0
        monitor = DriftMonitor(threshold=0.15).fit(reference)
        batch = rng.normal(0, 1, size=(200, 2))
        batch[:, 0] = 3.0 + 1e-13  # numerically identical, bit-different
        report = monitor.check(batch)
        assert report.statistics[0] == pytest.approx(0.0)

    def test_constant_feature_still_detects_a_real_move(self, rng):
        reference = rng.normal(0, 1, size=(500, 2))
        reference[:, 0] = 3.0
        monitor = DriftMonitor(threshold=0.15).fit(reference)
        batch = rng.normal(0, 1, size=(200, 2))
        batch[:, 0] = 4.5  # the dead sensor came back different
        report = monitor.check(batch)
        assert report.statistics[0] == pytest.approx(1.0)
        assert 0 in report.drifted_features

    def test_nan_rows_do_not_raise_or_drift(self, rng):
        reference = rng.normal(0, 1, size=(500, 3))
        monitor = DriftMonitor(threshold=0.15).fit(reference)
        batch = rng.normal(0, 1, size=(200, 3))
        batch[:50, 0] = np.nan
        batch[10:20, 2] = np.inf
        report = monitor.check(batch)  # must not raise
        assert not report.drifted
        assert report.skipped_features == []

    def test_all_nan_feature_skipped_not_drifted(self, rng):
        reference = rng.normal(0, 1, size=(500, 3))
        monitor = DriftMonitor(threshold=0.15).fit(reference)
        batch = rng.normal(0, 1, size=(100, 3))
        batch[:, 1] = np.nan
        report = monitor.check(batch)
        assert report.skipped_features == [1]
        assert report.statistics[1] == pytest.approx(0.0)
        assert 1 not in report.drifted_features

    def test_entirely_nonfinite_batch_skips_everything(self, rng):
        reference = rng.normal(0, 1, size=(300, 2))
        monitor = DriftMonitor(threshold=0.15).fit(reference)
        report = monitor.check(np.full((50, 2), np.nan))
        assert not report.drifted
        assert report.skipped_features == [0, 1]
        assert report.to_dict()["n_skipped"] == 2

    def test_report_to_dict_round_trip_fields(self, rng):
        reference = rng.normal(0, 1, size=(400, 3))
        batch = rng.normal(0, 1, size=(200, 3))
        batch[:, 0] += 2.0
        d = DriftMonitor(threshold=0.15).fit(reference).check(batch).to_dict()
        assert d["drifted"] is True
        assert d["drifted_features"] == [0]
        assert d["max_ks"] > 0.15 and d["threshold"] == pytest.approx(0.15)
