"""Chaos scenarios: the pipeline under injected faults never raises.

The acceptance scenario: a fault plan takes the primary scorer down, the
breaker trips within ``failure_threshold`` batches, batches are served
degraded by the reconstruction fallback, and after the cooldown a
half-open probe restores the primary — with the trip and recovery on the
telemetry record.
"""

import numpy as np
import pytest

from repro.core import TargAD, TargADConfig
from repro.data.schema import KIND_NORMAL, KIND_TARGET
from repro.obs import TelemetryRegistry
from repro.resilience import (
    CircuitBreaker,
    FaultPlan,
    FaultyModel,
    ManualClock,
    corrupt_rows,
)
from repro.serving import ROUTE_QUARANTINED, ScoringPipeline

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def fitted():
    from tests.conftest import TINY_SPEC, make_tiny_generator
    from repro.data.splits import build_split

    split = build_split(make_tiny_generator(0), TINY_SPEC, scale=1.0, random_state=0)
    model = TargAD(TargADConfig(random_state=0, k=2, ae_lr=3e-3, ae_epochs=15,
                                clf_epochs=20))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    return model, split


def make_pipeline(model, split, plan, registry, clock, **breaker_kwargs):
    defaults = dict(failure_threshold=2, cooldown=30.0)
    defaults.update(breaker_kwargs)
    breaker = CircuitBreaker(clock=clock, telemetry=registry, **defaults)
    pipe = ScoringPipeline(model, policy="budget", review_budget=10,
                           circuit_breaker=breaker, telemetry=registry,
                           monitor_drift=False)
    pipe.calibrate(split.X_val)
    # Wrap after calibration so plan call indices count serving batches.
    pipe.model = FaultyModel(model, plan, sleep=lambda s: None,
                             telemetry=registry)
    return pipe, breaker


class TestChaosEndToEnd:
    def test_trip_degrade_and_half_open_recovery(self, fitted):
        model, split = fitted
        registry = TelemetryRegistry()
        clock = ManualClock()
        plan = FaultPlan(raise_on=(1, 2), seed=0)
        pipe, breaker = make_pipeline(model, split, plan, registry, clock)

        degraded = []
        for _ in range(5):
            batch = pipe.process(split.X_test)  # must never raise
            degraded.append(batch.degraded)
            clock.advance(40.0)  # past the cooldown before the next batch

        # Batches 1-2 fault (degraded, trip on the 2nd = failure_threshold);
        # batch 3 is the successful half-open probe back on the primary.
        assert degraded == [True, True, False, False, False]
        names = [e.name for e in registry.events]
        assert names.count("resilience.breaker.trip") == 1
        assert names.count("resilience.breaker.recover") == 1
        assert registry.counters["resilience.degraded_batches"] == 2
        assert registry.counters["resilience.scoring_faults"] == 2
        assert breaker.state == "closed"

    def test_open_breaker_serves_fallback_without_touching_primary(self, fitted):
        model, split = fitted
        registry = TelemetryRegistry()
        clock = ManualClock()
        plan = FaultPlan(raise_on=(1, 2), seed=0)
        pipe, breaker = make_pipeline(model, split, plan, registry, clock)

        for _ in range(2):
            pipe.process(split.X_test)
        assert breaker.state == "open"
        calls_before = pipe.model.calls
        batch = pipe.process(split.X_test)  # within cooldown: no primary call
        assert batch.degraded
        assert pipe.model.calls == calls_before

    def test_nan_scores_count_as_faults_and_trip(self, fitted):
        model, split = fitted
        registry = TelemetryRegistry()
        clock = ManualClock()
        plan = FaultPlan(nan_fraction=0.2, seed=3)  # every call corrupted
        pipe, breaker = make_pipeline(model, split, plan, registry, clock)

        first = pipe.process(split.X_test)
        second = pipe.process(split.X_test)
        assert first.degraded and second.degraded
        assert np.all(np.isfinite(first.scores[first.scored]))
        assert breaker.state == "open"
        assert registry.counters["resilience.scoring_faults"] == 2

    def test_degraded_batch_flags_anomalies_conservatively(self, fitted):
        model, split = fitted
        registry = TelemetryRegistry()
        clock = ManualClock()
        plan = FaultPlan(raise_on=(1,), seed=0)
        pipe, _ = make_pipeline(model, split, plan, registry, clock)

        batch = pipe.process(split.X_test)
        assert batch.degraded
        assert batch.threshold == pipe.fallback.threshold_
        # Fallback routing is binary: analyst queue or normal, never deferred.
        scored_routes = set(batch.routing[batch.scored].tolist())
        assert scored_routes <= {KIND_NORMAL, KIND_TARGET}
        assert len(batch.deferred) == 0
        if batch.n_alerts:
            assert np.all(batch.scores[batch.alerts] >= batch.threshold)

    def test_quarantine_and_faults_compose(self, fitted):
        model, split = fitted
        registry = TelemetryRegistry()
        clock = ManualClock()
        plan = FaultPlan(raise_on=(1,), seed=0)
        pipe, _ = make_pipeline(model, split, plan, registry, clock)

        X = corrupt_rows(split.X_test, 0.1, np.random.default_rng(5))
        batch = pipe.process(X)  # bad rows + primary fault in one batch
        bad = np.flatnonzero(~np.isfinite(X).all(axis=1))
        assert np.array_equal(np.sort(batch.quarantined), bad)
        assert np.all(batch.routing[batch.quarantined] == ROUTE_QUARANTINED)
        assert np.all(np.isnan(batch.scores[batch.quarantined]))
        assert batch.degraded
        assert registry.counters["resilience.quarantine"] == len(bad)
        # Index sets partition the original batch.
        assert len(batch.scored) + len(batch.quarantined) == len(X)

    def test_latency_fault_is_observable_but_harmless(self, fitted):
        model, split = fitted
        registry = TelemetryRegistry()
        clock = ManualClock()
        plan = FaultPlan(latency=0.5, seed=0)
        pipe, breaker = make_pipeline(model, split, plan, registry, clock)

        batch = pipe.process(split.X_test)
        assert not batch.degraded
        assert breaker.state == "closed"


class TestSwapChaos:
    """Swap-phase fault plans: every injected fault must leave the old
    generation serving correctly — no dropped batches, breaker closed."""

    def _manager(self, model, split, injector, registry=None, **policy_kwargs):
        from repro.lifecycle import DriftPolicy, LifecycleManager

        pipe = ScoringPipeline(model, policy="f1", drift_threshold=0.3,
                               telemetry=registry)
        pipe.calibrate(split.X_val, split.y_val_binary,
                       X_reference=split.X_unlabeled)
        defaults = dict(confirm_checks=2, cooldown_batches=4,
                        refit_epochs=2, min_auprc_ratio=0.3)
        defaults.update(policy_kwargs)
        return LifecycleManager(
            pipe, split.X_unlabeled, split.X_labeled, split.y_labeled,
            split.X_val, split.y_val_binary,
            policy=DriftPolicy(**defaults),
            fault_injector=injector, telemetry=registry, seed=0,
        )

    @pytest.mark.parametrize("phase", [
        "assemble", "label", "refit", "validate", "stage", "push", "flip",
    ])
    def test_every_swap_phase_fault_leaves_old_generation_serving(
        self, fitted, phase
    ):
        from repro.resilience import SwapFaultInjector, SwapFaultPlan

        model, split = fitted
        injector = SwapFaultInjector(SwapFaultPlan(fail_phases=(phase,)))
        manager = self._manager(model, split, injector)
        before = manager.pipeline.process(split.X_test[:80])

        for i in range(2):
            batch = manager.process(split.X_test[:60] + 6.0)
            assert np.isfinite(batch.scores[batch.scored]).all()

        assert injector.fired == [(1, phase)]
        assert manager.pipeline.generation == 0
        rollbacks = [e for e in manager.history if e.kind == "rollback"]
        assert len(rollbacks) == 1
        # Manager-side phases are recorded verbatim; pipeline-side phases
        # (stage/push/flip) surface as the manager's "swap" step wrapped
        # in a SwapError.
        if phase in ("assemble", "label", "refit", "validate"):
            assert rollbacks[0].details["phase"] == phase
            assert rollbacks[0].details["error"] == "InjectedFault"
        else:
            assert rollbacks[0].details["phase"] == "swap"
            assert rollbacks[0].details["error"] == "SwapError"
        # The old generation still serves, bitwise unchanged.
        after = manager.pipeline.process(split.X_test[:80])
        np.testing.assert_array_equal(after.scores, before.scores)
        np.testing.assert_array_equal(after.routing, before.routing)
        assert manager.pipeline.circuit_breaker.state == "closed"

    def test_crash_during_refit_then_checkpoint_recovery(self, fitted, tmp_path):
        """A refit crash leaves torn checkpoints; recovery resumes from
        the newest readable one and the recovered model hot-swaps in."""
        from repro.resilience import latest_checkpoint, list_checkpoints

        model, split = fitted
        config = TargADConfig(random_state=0, k=2, ae_lr=3e-3, ae_epochs=15,
                              clf_epochs=20)

        class KillAt:
            def __init__(self, epoch):
                self.epoch = epoch

            def __call__(self, epoch, _model):
                if epoch == self.epoch:
                    raise KeyboardInterrupt("simulated crash mid-refit")

        candidate = TargAD(config)
        with pytest.raises(KeyboardInterrupt):
            candidate.incremental_fit(
                split.X_unlabeled, split.X_labeled, split.y_labeled,
                donor=model, epochs=6, checkpoint_dir=tmp_path,
                epoch_callback=KillAt(4),
            )
        # The crash also tore the newest checkpoint (corrupt candidate).
        paths = list_checkpoints(tmp_path)
        assert paths
        paths[-1].write_bytes(paths[-1].read_bytes()[:50])
        assert latest_checkpoint(tmp_path) != paths[-1]

        recovered = TargAD(config)
        recovered.incremental_fit(
            split.X_unlabeled, split.X_labeled, split.y_labeled,
            donor=model, epochs=6, checkpoint_dir=tmp_path, resume=True,
        )
        pipe = ScoringPipeline(model, policy="f1", monitor_drift=False)
        pipe.calibrate(split.X_val, split.y_val_binary)
        pipe.swap_model(recovered, split.X_val, split.y_val_binary)
        assert pipe.generation == 1
        batch = pipe.process(split.X_test[:80])
        assert np.isfinite(batch.scores[batch.scored]).all()

    def test_fault_mid_swap_with_inflight_daemon_batches(self, fitted):
        """Chaos at the flip while a daemon is serving concurrent traffic:
        every in-flight batch is answered, the old spec keeps serving."""
        import threading

        from repro.resilience import SwapError

        model, split = fitted
        config = TargADConfig(random_state=0, k=2, ae_lr=3e-3, ae_epochs=15,
                              clf_epochs=20)
        candidate = TargAD(config)
        candidate.incremental_fit(
            split.X_unlabeled + 0.2, split.X_labeled, split.y_labeled,
            donor=model, epochs=2,
        )
        registry = TelemetryRegistry()
        pipe = ScoringPipeline(model, policy="f1", daemon=True,
                               daemon_workers=2, monitor_drift=False,
                               telemetry=registry)
        pipe.calibrate(split.X_val, split.y_val_binary)
        X = split.X_test[:96]
        try:
            before = pipe.process(X)  # starts the daemon
            assert pipe._daemon is not None and pipe._daemon.alive

            results, errors = [], []
            stop = threading.Event()

            def hammer():
                try:
                    while not stop.is_set():
                        results.append(pipe.process(X))
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            thread = threading.Thread(target=hammer)
            thread.start()
            try:

                def fire(phase):
                    if phase == "flip":
                        raise RuntimeError("chaos mid-swap")

                with pytest.raises(SwapError, match="during flip"):
                    pipe.swap_model(candidate, split.X_val,
                                    split.y_val_binary, fault_points=fire)
            finally:
                stop.set()
                thread.join(60.0)

            assert not errors
            assert results  # traffic flowed throughout the failed swap
            for batch in results:
                assert np.isfinite(batch.scores[batch.scored]).all()
            assert pipe.generation == 0 and pipe.model is model
            after = pipe.process(X)
            np.testing.assert_array_equal(after.scores, before.scores)
            np.testing.assert_array_equal(after.routing, before.routing)
            assert registry.counters.get("resilience.breaker.trips", 0) == 0
            assert pipe.circuit_breaker.state == "closed"
        finally:
            pipe.close()
