"""Chaos scenarios: the pipeline under injected faults never raises.

The acceptance scenario: a fault plan takes the primary scorer down, the
breaker trips within ``failure_threshold`` batches, batches are served
degraded by the reconstruction fallback, and after the cooldown a
half-open probe restores the primary — with the trip and recovery on the
telemetry record.
"""

import numpy as np
import pytest

from repro.core import TargAD, TargADConfig
from repro.data.schema import KIND_NORMAL, KIND_TARGET
from repro.obs import TelemetryRegistry
from repro.resilience import (
    CircuitBreaker,
    FaultPlan,
    FaultyModel,
    ManualClock,
    corrupt_rows,
)
from repro.serving import ROUTE_QUARANTINED, ScoringPipeline

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def fitted():
    from tests.conftest import TINY_SPEC, make_tiny_generator
    from repro.data.splits import build_split

    split = build_split(make_tiny_generator(0), TINY_SPEC, scale=1.0, random_state=0)
    model = TargAD(TargADConfig(random_state=0, k=2, ae_lr=3e-3, ae_epochs=15,
                                clf_epochs=20))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    return model, split


def make_pipeline(model, split, plan, registry, clock, **breaker_kwargs):
    defaults = dict(failure_threshold=2, cooldown=30.0)
    defaults.update(breaker_kwargs)
    breaker = CircuitBreaker(clock=clock, telemetry=registry, **defaults)
    pipe = ScoringPipeline(model, policy="budget", review_budget=10,
                           circuit_breaker=breaker, telemetry=registry,
                           monitor_drift=False)
    pipe.calibrate(split.X_val)
    # Wrap after calibration so plan call indices count serving batches.
    pipe.model = FaultyModel(model, plan, sleep=lambda s: None,
                             telemetry=registry)
    return pipe, breaker


class TestChaosEndToEnd:
    def test_trip_degrade_and_half_open_recovery(self, fitted):
        model, split = fitted
        registry = TelemetryRegistry()
        clock = ManualClock()
        plan = FaultPlan(raise_on=(1, 2), seed=0)
        pipe, breaker = make_pipeline(model, split, plan, registry, clock)

        degraded = []
        for _ in range(5):
            batch = pipe.process(split.X_test)  # must never raise
            degraded.append(batch.degraded)
            clock.advance(40.0)  # past the cooldown before the next batch

        # Batches 1-2 fault (degraded, trip on the 2nd = failure_threshold);
        # batch 3 is the successful half-open probe back on the primary.
        assert degraded == [True, True, False, False, False]
        names = [e.name for e in registry.events]
        assert names.count("resilience.breaker.trip") == 1
        assert names.count("resilience.breaker.recover") == 1
        assert registry.counters["resilience.degraded_batches"] == 2
        assert registry.counters["resilience.scoring_faults"] == 2
        assert breaker.state == "closed"

    def test_open_breaker_serves_fallback_without_touching_primary(self, fitted):
        model, split = fitted
        registry = TelemetryRegistry()
        clock = ManualClock()
        plan = FaultPlan(raise_on=(1, 2), seed=0)
        pipe, breaker = make_pipeline(model, split, plan, registry, clock)

        for _ in range(2):
            pipe.process(split.X_test)
        assert breaker.state == "open"
        calls_before = pipe.model.calls
        batch = pipe.process(split.X_test)  # within cooldown: no primary call
        assert batch.degraded
        assert pipe.model.calls == calls_before

    def test_nan_scores_count_as_faults_and_trip(self, fitted):
        model, split = fitted
        registry = TelemetryRegistry()
        clock = ManualClock()
        plan = FaultPlan(nan_fraction=0.2, seed=3)  # every call corrupted
        pipe, breaker = make_pipeline(model, split, plan, registry, clock)

        first = pipe.process(split.X_test)
        second = pipe.process(split.X_test)
        assert first.degraded and second.degraded
        assert np.all(np.isfinite(first.scores[first.scored]))
        assert breaker.state == "open"
        assert registry.counters["resilience.scoring_faults"] == 2

    def test_degraded_batch_flags_anomalies_conservatively(self, fitted):
        model, split = fitted
        registry = TelemetryRegistry()
        clock = ManualClock()
        plan = FaultPlan(raise_on=(1,), seed=0)
        pipe, _ = make_pipeline(model, split, plan, registry, clock)

        batch = pipe.process(split.X_test)
        assert batch.degraded
        assert batch.threshold == pipe.fallback.threshold_
        # Fallback routing is binary: analyst queue or normal, never deferred.
        scored_routes = set(batch.routing[batch.scored].tolist())
        assert scored_routes <= {KIND_NORMAL, KIND_TARGET}
        assert len(batch.deferred) == 0
        if batch.n_alerts:
            assert np.all(batch.scores[batch.alerts] >= batch.threshold)

    def test_quarantine_and_faults_compose(self, fitted):
        model, split = fitted
        registry = TelemetryRegistry()
        clock = ManualClock()
        plan = FaultPlan(raise_on=(1,), seed=0)
        pipe, _ = make_pipeline(model, split, plan, registry, clock)

        X = corrupt_rows(split.X_test, 0.1, np.random.default_rng(5))
        batch = pipe.process(X)  # bad rows + primary fault in one batch
        bad = np.flatnonzero(~np.isfinite(X).all(axis=1))
        assert np.array_equal(np.sort(batch.quarantined), bad)
        assert np.all(batch.routing[batch.quarantined] == ROUTE_QUARANTINED)
        assert np.all(np.isnan(batch.scores[batch.quarantined]))
        assert batch.degraded
        assert registry.counters["resilience.quarantine"] == len(bad)
        # Index sets partition the original batch.
        assert len(batch.scored) + len(batch.quarantined) == len(X)

    def test_latency_fault_is_observable_but_harmless(self, fitted):
        model, split = fitted
        registry = TelemetryRegistry()
        clock = ManualClock()
        plan = FaultPlan(latency=0.5, seed=0)
        pipe, breaker = make_pipeline(model, split, plan, registry, clock)

        batch = pipe.process(split.X_test)
        assert not batch.degraded
        assert breaker.state == "closed"
