"""Scoring pipeline end-to-end."""

import numpy as np
import pytest

from repro.core import TargAD, TargADConfig
from repro.data.schema import KIND_TARGET
from repro.serving import ScoringPipeline


@pytest.fixture(scope="module")
def fitted():
    from tests.conftest import TINY_SPEC, make_tiny_generator
    from repro.data.splits import build_split

    split = build_split(make_tiny_generator(0), TINY_SPEC, scale=1.0, random_state=0)
    model = TargAD(TargADConfig(random_state=0, k=2, ae_lr=3e-3, ae_epochs=15, clf_epochs=20))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    return model, split


class TestCalibration:
    def test_f1_policy(self, fitted):
        model, split = fitted
        pipe = ScoringPipeline(model, policy="f1")
        pipe.calibrate(split.X_val, split.y_val_binary)
        assert 0.0 <= pipe.threshold_ <= 1.0

    def test_recall_policy_catches_target_fraction(self, fitted):
        model, split = fitted
        pipe = ScoringPipeline(model, policy="recall", target_recall=0.8)
        pipe.calibrate(split.X_val, split.y_val_binary)
        scores = model.decision_function(split.X_val)
        y = split.y_val_binary
        recall = ((scores >= pipe.threshold_) & (y == 1)).sum() / y.sum()
        assert recall >= 0.8

    def test_budget_policy_needs_no_labels(self, fitted):
        model, split = fitted
        pipe = ScoringPipeline(model, policy="budget", review_budget=25)
        pipe.calibrate(split.X_val)
        scores = model.decision_function(split.X_val)
        assert (scores >= pipe.threshold_).sum() == 25

    def test_supervised_policy_without_labels_rejected(self, fitted):
        model, split = fitted
        with pytest.raises(ValueError, match="needs y_val"):
            ScoringPipeline(model, policy="f1").calibrate(split.X_val)

    def test_invalid_policy(self, fitted):
        model, _ = fitted
        with pytest.raises(ValueError):
            ScoringPipeline(model, policy="vibes")

    def test_unfitted_model_rejected(self):
        with pytest.raises(RuntimeError):
            ScoringPipeline(TargAD(TargADConfig()))


class TestProcessing:
    def test_alert_batch_structure(self, fitted):
        model, split = fitted
        pipe = ScoringPipeline(model, policy="f1").calibrate(
            split.X_val, split.y_val_binary
        )
        batch = pipe.process(split.X_test)
        assert len(batch.scores) == len(split.X_test)
        assert batch.routing.shape == (len(split.X_test),)
        assert "scored" in batch.summary()

    def test_alerts_sorted_by_score(self, fitted):
        model, split = fitted
        pipe = ScoringPipeline(model, policy="f1").calibrate(
            split.X_val, split.y_val_binary
        )
        batch = pipe.process(split.X_test)
        alert_scores = batch.scores[batch.alerts]
        assert np.all(np.diff(alert_scores) <= 1e-12)

    def test_alerts_are_routed_targets_above_threshold(self, fitted):
        model, split = fitted
        pipe = ScoringPipeline(model, policy="f1").calibrate(
            split.X_val, split.y_val_binary
        )
        batch = pipe.process(split.X_test)
        assert np.all(batch.scores[batch.alerts] >= batch.threshold)
        assert np.all(batch.routing[batch.alerts] == KIND_TARGET)

    def test_alert_quality(self, fitted):
        model, split = fitted
        pipe = ScoringPipeline(model, policy="f1").calibrate(
            split.X_val, split.y_val_binary
        )
        batch = pipe.process(split.X_test)
        if batch.n_alerts:
            precision = (split.test_kind[batch.alerts] == KIND_TARGET).mean()
            assert precision > 0.5

    def test_drift_detected_on_shifted_batch(self, fitted):
        model, split = fitted
        pipe = ScoringPipeline(model, policy="budget", review_budget=10,
                               drift_threshold=0.25)
        pipe.calibrate(split.X_val, X_reference=split.X_unlabeled)
        clean = pipe.process(split.X_test)
        assert clean.drift is not None and not clean.drift.drifted
        shifted = split.X_test.copy()
        shifted[:, 0] = np.clip(shifted[:, 0] + 0.7, 0, 1.5)
        drifted = pipe.process(shifted)
        assert drifted.drift.drifted

    def test_uncalibrated_process_rejected(self, fitted):
        model, split = fitted
        with pytest.raises(RuntimeError, match="not calibrated"):
            ScoringPipeline(model).process(split.X_test)

    def test_drift_disabled(self, fitted):
        model, split = fitted
        pipe = ScoringPipeline(model, policy="budget", monitor_drift=False)
        pipe.calibrate(split.X_val)
        assert pipe.process(split.X_test).drift is None
