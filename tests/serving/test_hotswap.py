"""Zero-downtime model hot-swap: atomicity, parity, worker re-push.

Acceptance for the lifecycle tentpole: a live ScoringPipeline — plain,
daemon-backed, and sharded — completes a hot-swap under concurrent
traffic with zero dropped batches, the breaker closed throughout, and
post-swap scoring bitwise-identical to a pipeline freshly constructed
and calibrated on the new model.
"""

import threading

import numpy as np
import pytest

from repro.core import TargAD, TargADConfig
from repro.resilience import SwapError
from repro.serving import ScoringPipeline


@pytest.fixture(scope="module")
def split():
    from tests.conftest import TINY_SPEC, make_tiny_generator
    from repro.data.splits import build_split

    return build_split(make_tiny_generator(0), TINY_SPEC, scale=1.0, random_state=0)


@pytest.fixture(scope="module")
def models(split):
    """Generation A (from scratch) and B (warm-started refit of A)."""
    config = TargADConfig(random_state=0, k=2, ae_lr=3e-3,
                          ae_epochs=10, clf_epochs=12)
    model_a = TargAD(config)
    model_a.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    model_b = TargAD(config)
    model_b.incremental_fit(
        split.X_unlabeled + 0.2, split.X_labeled, split.y_labeled,
        donor=model_a, epochs=4,
    )
    return model_a, model_b


def calibrated(model, split, **kwargs):
    pipe = ScoringPipeline(model, policy="f1", **kwargs)
    pipe.calibrate(split.X_val, split.y_val_binary,
                   X_reference=split.X_unlabeled)
    return pipe


def assert_batches_equal(got, want):
    np.testing.assert_array_equal(got.scores, want.scores)
    np.testing.assert_array_equal(got.routing, want.routing)
    np.testing.assert_array_equal(got.alerts, want.alerts)
    assert got.threshold == want.threshold
    assert got.degraded == want.degraded == False  # noqa: E712


class TestInProcessSwap:
    def test_swap_matches_fresh_pipeline_bitwise(self, split, models):
        model_a, model_b = models
        pipe = calibrated(model_a, split)
        pipe.process(split.X_test[:100])

        pipe.swap_model(model_b, split.X_val, split.y_val_binary,
                        X_reference=split.X_unlabeled)
        fresh = calibrated(model_b, split)

        assert pipe.generation == 1
        assert pipe.threshold_ == fresh.threshold_
        for start in (0, 100, 200):
            X = split.X_test[start:start + 100]
            assert_batches_equal(pipe.process(X), fresh.process(X))

    def test_swap_emits_telemetry(self, split, models):
        from repro.obs import TelemetryRegistry

        model_a, model_b = models
        registry = TelemetryRegistry()
        pipe = calibrated(model_a, split, telemetry=registry)
        pipe.swap_model(model_b, split.X_val, split.y_val_binary)
        assert registry.counters["serve.swap.success"] == 1
        assert registry.gauges["serve.generation"] == 1.0
        assert any(e.name == "serve.swap" for e in registry.events)

    def test_unfitted_candidate_rejected_cleanly(self, split, models):
        model_a, _ = models
        pipe = calibrated(model_a, split)
        before = pipe.process(split.X_test[:80])
        with pytest.raises(SwapError, match="staging failed"):
            pipe.swap_model(TargAD(TargADConfig(random_state=0)),
                            split.X_val, split.y_val_binary)
        assert pipe.generation == 0
        assert pipe.model is model_a
        assert_batches_equal(pipe.process(split.X_test[:80]), before)
        assert pipe.circuit_breaker.state == "closed"

    def test_wrong_width_candidate_rejected(self, split, models):
        model_a, _ = models
        narrow = TargAD(TargADConfig(random_state=0, k=2, ae_epochs=3,
                                     clf_epochs=3))
        narrow.fit(split.X_unlabeled[:, :-1], split.X_labeled[:, :-1],
                   split.y_labeled)
        pipe = calibrated(model_a, split)
        with pytest.raises(SwapError, match="features"):
            pipe.swap_model(narrow, split.X_val[:, :-1], split.y_val_binary)
        assert pipe.generation == 0

    def test_fault_at_flip_restores_old_generation(self, split, models):
        model_a, model_b = models
        pipe = calibrated(model_a, split)
        before = pipe.process(split.X_test[:80])

        def fire(phase):
            if phase == "flip":
                raise RuntimeError("chaos at flip")

        with pytest.raises(SwapError, match="during flip"):
            pipe.swap_model(model_b, split.X_val, split.y_val_binary,
                            fault_points=fire)
        assert pipe.generation == 0 and pipe.model is model_a
        assert_batches_equal(pipe.process(split.X_test[:80]), before)
        assert pipe.circuit_breaker.state == "closed"

    def test_concurrent_traffic_never_sees_half_swapped_state(self, split, models):
        model_a, model_b = models
        pipe = calibrated(model_a, split)
        fresh_a = calibrated(model_a, split)
        fresh_b = calibrated(model_b, split)
        X = split.X_test[:120]
        want_a = fresh_a.process(X)
        want_b = fresh_b.process(X)

        results, errors = [], []
        stop = threading.Event()

        def hammer():
            try:
                while not stop.is_set():
                    results.append(pipe.process(X))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            pipe.swap_model(model_b, split.X_val, split.y_val_binary,
                            X_reference=split.X_unlabeled)
        finally:
            stop.set()
            thread.join(30.0)

        assert not errors
        assert len(results) > 0
        # Every batch matches exactly one full generation — bitwise.
        for batch in results:
            if batch.threshold == want_a.threshold and np.array_equal(
                batch.scores, want_a.scores
            ):
                np.testing.assert_array_equal(batch.routing, want_a.routing)
            else:
                assert_batches_equal(batch, want_b)
        assert pipe.circuit_breaker.state == "closed"


class TestDaemonSwap:
    def test_daemon_swap_zero_dropped_and_bitwise_parity(self, split, models):
        from repro.obs import TelemetryRegistry

        model_a, model_b = models
        registry = TelemetryRegistry()
        pipe = calibrated(model_a, split, daemon=True, daemon_workers=2,
                          telemetry=registry)
        fresh_b = calibrated(model_b, split)
        X = split.X_test[:96]

        pipe.process(X)  # lazily starts the daemon
        assert pipe._daemon is not None and pipe._daemon.alive

        results, errors = [], []
        stop = threading.Event()

        def hammer():
            try:
                while not stop.is_set():
                    results.append(pipe.process(X))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            pipe.swap_model(model_b, split.X_val, split.y_val_binary,
                            X_reference=split.X_unlabeled)
        finally:
            stop.set()
            thread.join(60.0)
        try:
            assert not errors
            assert pipe.generation == 1
            # The daemon survived the swap: same object, respawned workers.
            assert pipe._daemon is not None and pipe._daemon.alive
            assert registry.counters["serve.daemon.spec_updates"] == 1
            # Zero dropped batches: every concurrent call returned finite
            # scores for every kept row (no DaemonUnavailable fallback is a
            # drop, but even a fallback batch must answer).
            for batch in results:
                assert np.isfinite(batch.scores[batch.scored]).all()
            assert registry.counters.get("resilience.breaker.trips", 0) == 0
            assert pipe.circuit_breaker.state == "closed"
            # Post-swap daemon scoring is bitwise-identical to a fresh
            # single-process pipeline on model B.
            assert_batches_equal(pipe.process(X), fresh_b.process(X))
        finally:
            pipe.close()

    def test_daemon_swap_fault_keeps_old_generation_serving(self, split, models):
        model_a, model_b = models
        pipe = calibrated(model_a, split, daemon=True, daemon_workers=1)
        X = split.X_test[:64]
        try:
            before = pipe.process(X)
            assert pipe._daemon is not None and pipe._daemon.alive

            def fire(phase):
                if phase == "flip":
                    raise RuntimeError("chaos at flip")

            with pytest.raises(SwapError):
                pipe.swap_model(model_b, split.X_val, split.y_val_binary,
                                fault_points=fire)
            assert pipe.generation == 0 and pipe.model is model_a
            after = pipe.process(X)  # daemon lazily rebuilt on model A
            assert_batches_equal(after, before)
            assert pipe.circuit_breaker.state == "closed"
        finally:
            pipe.close()


class TestShardedSwap:
    def test_sharded_swap_bitwise_parity(self, split, models):
        model_a, model_b = models
        pipe = calibrated(model_a, split, shard_workers=2, min_shard_rows=64)
        fresh_b = calibrated(model_b, split)
        X = split.X_test[:128]
        try:
            pipe.process(X)  # builds the shard pool
            assert pipe._sharder is not None
            pipe.swap_model(model_b, split.X_val, split.y_val_binary,
                            X_reference=split.X_unlabeled)
            assert pipe.generation == 1
            got = pipe.process(X)
            assert pipe._last_n_shards > 0  # actually scored via the pool
            assert_batches_equal(got, fresh_b.process(X))
            assert pipe.circuit_breaker.state == "closed"
        finally:
            pipe.close()

    def test_sharded_swap_fault_rolls_back_pool(self, split, models):
        model_a, model_b = models
        pipe = calibrated(model_a, split, shard_workers=2, min_shard_rows=64)
        X = split.X_test[:128]
        try:
            before = pipe.process(X)

            def fire(phase):
                if phase == "flip":
                    raise RuntimeError("chaos at flip")

            pipe.process(X)
            with pytest.raises(SwapError):
                pipe.swap_model(model_b, split.X_val, split.y_val_binary,
                                fault_points=fire)
            assert pipe.generation == 0
            after = pipe.process(X)
            assert_batches_equal(after, before)
        finally:
            pipe.close()
