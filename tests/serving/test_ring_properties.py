"""Property tests for the shared-memory SPSC ring buffer.

The invariants the daemon transport depends on, driven by hypothesis:

- arbitrary interleavings of variable-sized writes and reads deliver
  every frame byte-identical, in order, with gapless sequence numbers
  (``try_read`` itself raises :class:`RingCorruption` on any gap);
- a writer pushing against full-ring backpressure and a reader draining
  concurrently never deadlock and never corrupt a frame, even when
  every frame wraps the physical end of the data region;
- closed-ring and never-fits frames fail loudly instead of hanging.

These run single-process (one writer, one reader — the SPSC contract),
which is exactly how the daemon uses a ring; cross-process behaviour is
covered by the daemon and soak suites.
"""

import threading
from collections import deque

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serving.shm_ring import (
    HEADER_BYTES,
    KIND_DATA,
    KIND_RESULT,
    RingClosed,
    ShmRing,
)

# Each op is either a write of `size` payload bytes or a read attempt.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("w"), st.integers(min_value=0, max_value=96),
                  st.sampled_from([KIND_DATA, KIND_RESULT])),
        st.tuples(st.just("r"), st.just(0), st.just(0)),
    ),
    min_size=1,
    max_size=80,
)


def _payload(i: int, size: int) -> bytes:
    # Distinct, position-dependent bytes so any frame mixup is visible.
    return bytes((i * 31 + j) % 251 for j in range(size))


class TestInterleavings:
    @given(ops=_ops, capacity=st.integers(min_value=HEADER_BYTES + 8,
                                          max_value=256))
    @settings(max_examples=75, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_frames_survive_any_interleaving(self, ops, capacity):
        """try_write/try_read in any order: exact frames, exact order."""
        with ShmRing.create(capacity) as ring:
            expected = deque()
            n_written = 0
            for op, size, kind in ops:
                if op == "w":
                    payload = _payload(n_written, size)
                    if HEADER_BYTES + size > capacity:
                        with pytest.raises(ValueError):
                            ring.try_write(payload, kind=kind)
                        continue
                    if ring.try_write(payload, kind=kind):
                        expected.append((kind, payload))
                        n_written += 1
                    else:
                        # Backpressure must mean "genuinely no room".
                        assert ring.free_bytes() < HEADER_BYTES + size
                else:
                    frame = ring.try_read()
                    if expected:
                        assert frame == expected.popleft()
                    else:
                        assert frame is None
            # Drain: everything written must come out, byte-identical.
            while expected:
                assert ring.try_read() == expected.popleft()
            assert ring.try_read() is None
            assert ring.pending() == 0

    @given(sizes=st.lists(st.integers(min_value=0, max_value=64),
                          min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_backpressure_never_deadlocks(self, sizes):
        """Blocking writer vs concurrent reader on a tiny ring: every
        frame arrives in order; nobody hangs even though nearly every
        frame wraps and the ring is full most of the time."""
        capacity = HEADER_BYTES + 64 + 8  # fits exactly one largest frame
        with ShmRing.create(capacity) as ring:
            frames = [_payload(i, size) for i, size in enumerate(sizes)]
            received = []
            errors = []

            def write_all():
                try:
                    for frame in frames:
                        ring.write(frame, timeout=20.0)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            def read_all():
                try:
                    for _ in frames:
                        received.append(ring.read(timeout=20.0))
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=write_all),
                       threading.Thread(target=read_all)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            assert not any(t.is_alive() for t in threads), "ring deadlocked"
            assert not errors
            assert [p for _, p in received] == frames
            assert ring.pending() == 0


class TestEdges:
    def test_oversized_frame_rejected_up_front(self):
        with ShmRing.create(64) as ring:
            with pytest.raises(ValueError):
                ring.try_write(b"x" * 64)

    def test_closed_ring_fails_writes_and_drains_reads(self):
        with ShmRing.create(256) as ring:
            assert ring.try_write(b"last words")
            ring.close()
            with pytest.raises(RingClosed):
                ring.try_write(b"after close")
            # The reader still sees frames published before the close...
            assert ring.try_read() == (KIND_DATA, b"last words")
            # ...and only then the closed signal.
            with pytest.raises(RingClosed):
                ring.try_read()

    def test_attach_sees_creators_frames(self):
        ring = ShmRing.create(512)
        try:
            ring.write(b"hello across mappings")
            peer = ShmRing.attach(ring.name, 512)
            try:
                assert peer.read(timeout=1.0) == (KIND_DATA,
                                                  b"hello across mappings")
            finally:
                peer.release()
        finally:
            ring.close()
            ring.release()

    def test_capacity_floor_enforced(self):
        with pytest.raises(ValueError):
            ShmRing.create(HEADER_BYTES)
