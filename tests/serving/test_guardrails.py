"""Serving guardrail regressions: sanitization, calibration edges, drift."""

import numpy as np
import pytest

from repro.core import TargAD, TargADConfig
from repro.resilience import ReconstructionFallback
from repro.serving import DriftMonitor, ROUTE_QUARANTINED, ScoringPipeline


@pytest.fixture(scope="module")
def fitted():
    from tests.conftest import TINY_SPEC, make_tiny_generator
    from repro.data.splits import build_split

    split = build_split(make_tiny_generator(0), TINY_SPEC, scale=1.0, random_state=0)
    model = TargAD(TargADConfig(random_state=0, k=2, ae_lr=3e-3, ae_epochs=15,
                                clf_epochs=20))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    return model, split


class TestSanitizationInPipeline:
    def test_nonfinite_rows_quarantined_not_fatal(self, fitted):
        model, split = fitted
        pipe = ScoringPipeline(model, policy="budget", review_budget=10,
                               monitor_drift=False)
        pipe.calibrate(split.X_val)
        X = split.X_test.copy()
        X[3, 0] = np.nan
        X[7, 1] = np.inf
        batch = pipe.process(X)
        assert np.array_equal(batch.quarantined, [3, 7])
        assert not batch.degraded
        assert np.all(np.isnan(batch.scores[[3, 7]]))
        assert np.all(batch.routing[[3, 7]] == ROUTE_QUARANTINED)
        assert 3 not in batch.alerts and 7 not in batch.alerts
        assert "quarantined" in batch.summary()

    def test_clean_scores_unchanged_by_quarantine(self, fitted):
        model, split = fitted
        pipe = ScoringPipeline(model, policy="budget", review_budget=10,
                               monitor_drift=False)
        pipe.calibrate(split.X_val)
        clean = pipe.process(split.X_test)
        X = split.X_test.copy()
        X[0] = np.nan
        dirty = pipe.process(X)
        np.testing.assert_allclose(dirty.scores[1:], clean.scores[1:])

    def test_uniform_wrong_width_batch_raises(self, fitted):
        model, split = fitted
        pipe = ScoringPipeline(model, policy="budget", review_budget=10)
        pipe.calibrate(split.X_val)
        with pytest.raises(ValueError, match="features, model expects"):
            pipe.process(split.X_test[:, :-1])

    def test_all_rows_quarantined_yields_empty_batch(self, fitted):
        model, split = fitted
        pipe = ScoringPipeline(model, policy="budget", review_budget=10,
                               monitor_drift=False)
        pipe.calibrate(split.X_val)
        X = np.full((4, split.X_test.shape[1]), np.nan)
        batch = pipe.process(X)
        assert len(batch.quarantined) == 4
        assert batch.n_alerts == 0 and not batch.degraded


class TestCalibrationEdges:
    def test_zero_positive_yval_f1_policy(self, fitted):
        model, split = fitted
        pipe = ScoringPipeline(model, policy="f1")
        with pytest.raises(ValueError, match="zero positive"):
            pipe.calibrate(split.X_val, np.zeros(len(split.X_val)))

    def test_zero_positive_yval_recall_policy(self, fitted):
        model, split = fitted
        pipe = ScoringPipeline(model, policy="recall")
        with pytest.raises(ValueError, match="zero positive"):
            pipe.calibrate(split.X_val, np.zeros(len(split.X_val)))

    def test_mismatched_yval_length(self, fitted):
        model, split = fitted
        pipe = ScoringPipeline(model, policy="f1")
        with pytest.raises(ValueError, match="labels for"):
            pipe.calibrate(split.X_val, split.y_val_binary[:-3])

    @pytest.mark.parametrize("budget", [0, -5])
    def test_nonpositive_budget_rejected_at_init(self, fitted, budget):
        model, _ = fitted
        with pytest.raises(ValueError, match="review_budget"):
            ScoringPipeline(model, policy="budget", review_budget=budget)

    def test_budget_larger_than_split_is_clamped(self, fitted):
        model, split = fitted
        pipe = ScoringPipeline(model, policy="budget",
                               review_budget=10 * len(split.X_val))
        pipe.calibrate(split.X_val)
        assert pipe.threshold_ is not None

    def test_calibrate_builds_fallback(self, fitted):
        model, split = fitted
        pipe = ScoringPipeline(model, policy="budget", review_budget=10)
        assert pipe.fallback is None
        pipe.calibrate(split.X_val)
        assert pipe.fallback is not None
        assert pipe.fallback.threshold_ is not None


class TestDriftWidths:
    def test_mismatch_error_names_both_widths(self, fitted):
        _, split = fitted
        monitor = DriftMonitor().fit(split.X_val)
        with pytest.raises(ValueError, match=r"batch has \d+ features but the "
                                             r"drift reference has \d+"):
            monitor.check(split.X_test[:, :-1])

    def test_non_2d_batch_rejected(self, fitted):
        _, split = fitted
        monitor = DriftMonitor().fit(split.X_val)
        with pytest.raises(ValueError, match="2-D"):
            monitor.check(split.X_test[0])

    def test_pipeline_drift_checks_only_clean_rows(self, fitted):
        model, split = fitted
        pipe = ScoringPipeline(model, policy="budget", review_budget=10,
                               drift_threshold=0.25)
        pipe.calibrate(split.X_val, X_reference=split.X_unlabeled)
        X = split.X_test.copy()
        X[:5] = np.nan  # would crash the KS check if not excluded
        batch = pipe.process(X)
        assert batch.drift is not None and not batch.drift.drifted


class TestReconstructionFallback:
    def test_scores_in_unit_interval(self, fitted):
        model, split = fitted
        fb = ReconstructionFallback(model).calibrate(split.X_val, 0.1)
        scores = fb.score(split.X_test)
        assert np.all((scores >= 0) & (scores <= 1))
        assert fb.threshold_ == pytest.approx(0.9)

    def test_alert_fraction_matches_on_calibration_data(self, fitted):
        model, split = fitted
        fb = ReconstructionFallback(model).calibrate(split.X_val, 0.1)
        frac = float(np.mean(fb.score(split.X_val) >= fb.threshold_))
        assert frac == pytest.approx(0.1, abs=0.03)

    def test_unfitted_model_rejected(self):
        with pytest.raises(RuntimeError, match="fitted"):
            ReconstructionFallback(TargAD(TargADConfig()))

    def test_uncalibrated_score_rejected(self, fitted):
        model, _ = fitted
        fb = ReconstructionFallback(model)
        with pytest.raises(RuntimeError, match="calibrate"):
            fb.score(np.ones((2, 2)))

    @pytest.mark.parametrize("fraction", [-0.1, 1.5])
    def test_bad_alert_fraction_rejected(self, fitted, fraction):
        model, split = fitted
        with pytest.raises(ValueError, match="alert_fraction"):
            ReconstructionFallback(model).calibrate(split.X_val, fraction)
