"""Zero-copy result reads: ring ``read_view`` semantics and daemon wiring.

The daemon's result path borrows the payload bytes straight out of the
ring's shared-memory segment via :meth:`ShmRing.read_view` instead of
copying them into a ``bytes`` object first. These tests pin the three
properties that make that safe: the yielded view aliases ring memory
and dies at block exit, the frame is consumed only on *clean* exit (an
exception leaves it readable), and wrapped frames transparently fall
back to a copied ``bytes`` payload. The daemon-level test asserts the
hot path actually takes the zero-copy branch.
"""

import numpy as np
import pytest

from repro.core import TargAD, TargADConfig
from repro.obs import TelemetryRegistry
from repro.serving.daemon import ServingDaemon
from repro.serving.sharding import build_scoring_spec
from repro.serving.shm_ring import (
    HEADER_BYTES,
    KIND_RESULT,
    RingEmpty,
    ShmRing,
)


class TestReadView:
    def test_view_aliases_ring_memory_and_dies_on_exit(self):
        with ShmRing.create(256) as ring:
            payload = bytes(range(64))
            assert ring.try_write(payload, KIND_RESULT)
            with ring.read_view() as (kind, view):
                assert kind == KIND_RESULT
                assert isinstance(view, memoryview)
                assert view.obj is ring._data.obj  # borrowed, not copied
                assert bytes(view) == payload
            with pytest.raises(ValueError):
                bytes(view)  # released at block exit

    def test_clean_exit_consumes_frame(self):
        with ShmRing.create(256) as ring:
            ring.try_write(b"first", KIND_RESULT)
            ring.try_write(b"second", KIND_RESULT)
            with ring.read_view() as (_, view):
                assert bytes(view) == b"first"
            with ring.read_view() as (_, view):
                assert bytes(view) == b"second"
            assert ring.pending() == 0

    def test_exception_leaves_frame_unconsumed(self):
        with ShmRing.create(256) as ring:
            ring.try_write(b"keep me", KIND_RESULT)
            pending = ring.pending()  # bytes, not frames
            with pytest.raises(RuntimeError, match="reader bailed"):
                with ring.read_view() as (_, view):
                    raise RuntimeError("reader bailed")
            assert ring.pending() == pending  # read counter not published
            # The same frame is served again, seq accounting intact.
            with ring.read_view() as (kind, view):
                assert kind == KIND_RESULT
                assert bytes(view) == b"keep me"
            assert ring.pending() == 0

    def test_wrapped_frame_falls_back_to_copied_bytes(self):
        with ShmRing.create(64) as ring:
            # First frame fills the front of the ring, then is drained so
            # the next write's payload must wrap past the end.
            assert ring.try_write(bytes(16), KIND_RESULT)
            with ring.read_view() as (_, view):
                assert isinstance(view, memoryview)
            payload = bytes(range(24))
            assert ring.try_write(payload, KIND_RESULT)
            assert 64 - ((HEADER_BYTES + 16 + 7 & ~7) + HEADER_BYTES) < 24
            with ring.read_view() as (kind, view):
                assert kind == KIND_RESULT
                assert isinstance(view, bytes)  # wrap -> copy fallback
                assert view == payload

    def test_empty_ring_times_out(self):
        with ShmRing.create(128) as ring:
            with pytest.raises(RingEmpty):
                with ring.read_view(timeout=0.05):
                    pass


class TestDaemonZeroCopy:
    def test_result_path_is_zero_copy(self, tiny_split):
        model = TargAD(TargADConfig(random_state=0, k=2, ae_lr=3e-3,
                                    ae_epochs=10, clf_epochs=12))
        model.fit(tiny_split.X_unlabeled, tiny_split.X_labeled,
                  tiny_split.y_labeled)
        telemetry = TelemetryRegistry()
        spec = build_scoring_spec(model, "ed")
        with ServingDaemon(spec, telemetry=telemetry).start() as daemon:
            for _ in range(3):
                scores, routing = daemon.score(tiny_split.X_test)
                assert scores.flags.owndata  # caller owns its arrays
        # Small result frames never wrap the 8 MB ring, so every read
        # must take the borrowed-memoryview branch.
        assert telemetry.counters["serve.daemon.zero_copy_reads"] >= 3
        assert "serve.daemon.copied_reads" not in telemetry.counters
        exp_s, _ = model.score_batch(tiny_split.X_test, strategy="ed")
        np.testing.assert_array_equal(scores, exp_s)
