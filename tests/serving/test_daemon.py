"""Serving daemon: parity, micro-batching, failure taxonomy, respawn.

The contract under test mirrors ``test_sharding.py`` one level up: a
daemon-backed ``ScoringPipeline.process`` is *bitwise identical* to the
single-process pipeline (scores, routing, alert order, quarantine,
degraded-fallback batches), worker model faults flow through the
circuit-breaker guardrails with their original exception type, daemon
infrastructure failures fall back to single-process scoring without
touching the breaker, and a killed worker is detected and respawned.
"""

import numpy as np
import pytest

from repro.core import TargAD, TargADConfig
from repro.obs import TelemetryRegistry
from repro.resilience import CircuitBreaker, ManualClock
from repro.serving import ScoringPipeline
from repro.serving.daemon import DaemonUnavailable, ServingDaemon
from repro.serving.replay import ReplaySpec, build_schedule, replay_daemon
from repro.serving.sharding import ScoringSpec, build_scoring_spec


class FaultyDaemonSpec(ScoringSpec):
    """Spec whose worker-side scoring always faults with a distinctive
    type (module-level: must survive the trip into the worker)."""

    def score(self, network, X):
        raise ValueError("injected daemon worker fault")


@pytest.fixture(scope="module")
def fitted():
    from repro.data.splits import build_split
    from tests.conftest import TINY_SPEC, make_tiny_generator

    split = build_split(make_tiny_generator(0), TINY_SPEC, scale=1.0,
                        random_state=0)
    model = TargAD(TargADConfig(random_state=0, k=2, ae_lr=3e-3, ae_epochs=15,
                                clf_epochs=20))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    return model, split


@pytest.fixture(scope="module")
def daemon(fitted):
    """One shared daemon for the read-only parity tests (cheap to share:
    every test scores through the same resident spec)."""
    model, _ = fitted
    with ServingDaemon(build_scoring_spec(model, "ed")) as d:
        yield d


def make_pipeline(model, split, **kwargs):
    pipe = ScoringPipeline(model, policy="budget", review_budget=10,
                           monitor_drift=False, **kwargs)
    pipe.calibrate(split.X_val)
    return pipe


class TestDaemonScoring:
    def test_score_matches_score_batch_bitwise(self, fitted, daemon):
        model, split = fitted
        expected_scores, expected_routing = model.score_batch(
            split.X_test, strategy="ed"
        )
        scores, routing = daemon.score(split.X_test)
        np.testing.assert_array_equal(scores, expected_scores)
        np.testing.assert_array_equal(routing, expected_routing)

    def test_empty_batch_short_circuits(self, fitted, daemon):
        _, split = fitted
        scores, routing = daemon.score(split.X_test[:0])
        assert scores.shape == (0,) and routing.shape == (0,)

    def test_wrong_width_rejected(self, fitted, daemon):
        with pytest.raises(ValueError):
            daemon.submit(np.zeros((3, 2)))

    def test_micro_batching_coalesces_small_requests(self, fitted):
        """Requests queued behind a busy worker fuse into one dispatch,
        and the fused results split back per-request bitwise."""
        model, split = fitted
        telemetry = TelemetryRegistry()
        spec = build_scoring_spec(model, "ed")
        big = np.repeat(split.X_test, 8, axis=0)  # keeps the worker busy
        with ServingDaemon(spec, telemetry=telemetry) as daemon:
            daemon.score(split.X_test[:4])  # warm the worker's plan cache
            blocker = daemon.submit(big)
            smalls = [daemon.submit(split.X_test[i:i + 3])
                      for i in range(0, 30, 3)]
            blocker.result(60.0)
            for i, handle in zip(range(0, 30, 3), smalls):
                scores, routing = handle.result(60.0)
                exp_s, exp_r = model.score_batch(split.X_test[i:i + 3],
                                                 strategy="ed")
                np.testing.assert_array_equal(scores, exp_s)
                np.testing.assert_array_equal(routing, exp_r)
            snap = daemon.slo_snapshot()
        # All 10 small requests queued while the big one ran, so they
        # coalesced into one fused dispatch (9 requests saved).
        assert snap["coalesced"] >= 9
        assert snap["dispatches"] < snap["requests"]
        assert snap["p50_ms"] > 0.0
        assert telemetry.timer_stats("serve.daemon.request").count >= 12

    def test_worker_model_fault_reraised_with_original_type(self):
        spec = _faulty_spec()
        with ServingDaemon(spec) as daemon:
            with pytest.raises(ValueError, match="injected daemon worker"):
                daemon.score(np.zeros((4, 12)))
            # A fault is a *model* problem: the daemon itself stays up.
            assert daemon.alive

    def test_score_after_close_raises_unavailable(self, fitted):
        model, _ = fitted
        daemon = ServingDaemon(build_scoring_spec(model, "ed")).start()
        daemon.close()
        daemon.close()  # idempotent
        with pytest.raises(DaemonUnavailable):
            daemon.score(np.zeros((2, 12)))

    def test_undersized_ring_rejected_at_start(self, fitted):
        model, _ = fitted
        daemon = ServingDaemon(build_scoring_spec(model, "ed"),
                               ring_bytes=1024, max_batch_rows=8192)
        with pytest.raises(DaemonUnavailable, match="ring_bytes"):
            daemon.start()


def _faulty_spec(model=None):
    """A worker-faulting spec; built from ``model`` so the batch width
    matches the pipeline's sanitized rows (a width mismatch would fail
    client-side in ``submit`` and never exercise the worker path)."""
    if model is not None:
        spec = build_scoring_spec(model, "ed")
    else:
        spec = ScoringSpec(
            layers=[("dense", np.zeros((12, 3)), None)], m=2, k=1,
            strategy=None,
        )
    return FaultyDaemonSpec(layers=spec.layers, m=spec.m, k=spec.k,
                            strategy=spec.strategy)


class TestDaemonCrashRecovery:
    def test_killed_worker_is_respawned(self, fitted):
        model, split = fitted
        telemetry = TelemetryRegistry()
        expected_scores, _ = model.score_batch(split.X_test, strategy="ed")
        with ServingDaemon(build_scoring_spec(model, "ed"),
                           telemetry=telemetry) as daemon:
            daemon.score(split.X_test[:4])
            slot = daemon._slots[0]
            old_pid = slot.process.pid
            slot.process.kill()
            slot.process.join()
            # The first request lands on the dead worker and fails as an
            # infrastructure error (never a model fault)...
            with pytest.raises(DaemonUnavailable):
                daemon.score(split.X_test[:4], timeout=30.0)
            # ...after which the respawned worker serves correctly.
            scores, _ = daemon.score(split.X_test, timeout=30.0)
            np.testing.assert_array_equal(scores, expected_scores)
            assert daemon._slots[0].process.pid != old_pid
        assert telemetry.counters["serve.daemon.respawns"] == 1
        events = [e for e in telemetry.events
                  if e.name == "serve.daemon.respawn"]
        assert len(events) == 1


class TestDaemonPipeline:
    def test_process_identical_to_single_process(self, fitted):
        """Full-pipeline parity incl. quarantine routing + alert order."""
        model, split = fitted
        single = make_pipeline(model, split)
        piped = make_pipeline(model, split, daemon=True)
        X = split.X_test.copy()
        X[3, 0] = np.nan  # quarantine path must survive the daemon
        expected = single.process(X)
        got = piped.process(X)
        assert piped._daemon is not None and piped._daemon.alive
        piped.close()
        np.testing.assert_array_equal(got.scores, expected.scores)
        np.testing.assert_array_equal(got.routing, expected.routing)
        np.testing.assert_array_equal(got.alerts, expected.alerts)
        np.testing.assert_array_equal(got.deferred, expected.deferred)
        np.testing.assert_array_equal(got.quarantined, expected.quarantined)
        assert got.degraded == expected.degraded == False  # noqa: E712

    def test_shared_daemon_is_not_closed_by_pipeline(self, fitted, daemon):
        """A caller-owned daemon instance outlives the pipeline."""
        model, split = fitted
        pipe = make_pipeline(model, split, daemon=daemon)
        batch = pipe.process(split.X_test)
        pipe.close()
        assert daemon.alive  # caller owns the lifecycle
        assert not batch.degraded
        expected_scores, _ = model.score_batch(split.X_test, strategy="ed")
        np.testing.assert_array_equal(
            batch.scores[batch.scored], expected_scores
        )

    def test_breaker_opens_on_injected_worker_faults(self, fitted):
        """Worker model faults are scorer faults: degraded fallback per
        batch, breaker open after the threshold, daemon NOT disabled."""
        model, split = fitted
        telemetry = TelemetryRegistry()
        breaker = CircuitBreaker(failure_threshold=2, cooldown=60.0,
                                 clock=ManualClock(), telemetry=telemetry,
                                 name="serve")
        pipe = make_pipeline(model, split, daemon=True, telemetry=telemetry,
                             circuit_breaker=breaker)
        pipe._daemon = ServingDaemon(_faulty_spec(model),
                                     telemetry=telemetry).start()
        pipe._daemon_owned = True

        first = pipe.process(split.X_test)
        assert first.degraded and breaker.state == "closed"
        second = pipe.process(split.X_test)
        assert second.degraded and breaker.state == "open"
        # Open breaker: the third batch never reaches the daemon.
        faults_before = telemetry.counters["serve.daemon.faults"]
        third = pipe.process(split.X_test)
        pipe.close()
        assert third.degraded
        assert telemetry.counters["serve.daemon.faults"] == faults_before
        assert telemetry.counters["resilience.scoring_faults"] == 2
        assert not pipe._daemon_disabled
        assert "serve.daemon.fallbacks" not in telemetry.counters

    def test_degraded_batches_identical_to_single_process(self, fitted):
        """While degraded, daemon and single-process pipelines emit the
        same fallback batches — the queue sees one degraded contract."""
        model, split = fitted
        single = make_pipeline(model, split)
        single.circuit_breaker.record_failure()
        for _ in range(10):
            single.circuit_breaker.record_failure()
        expected = single.process(split.X_test)
        assert expected.degraded

        piped = make_pipeline(model, split, daemon=True)
        piped._daemon = ServingDaemon(_faulty_spec(model)).start()
        piped._daemon_owned = True
        got = piped.process(split.X_test)
        piped.close()
        assert got.degraded
        np.testing.assert_array_equal(got.scores, expected.scores)
        np.testing.assert_array_equal(got.routing, expected.routing)
        np.testing.assert_array_equal(got.alerts, expected.alerts)

    def test_dead_daemon_falls_back_single_process(self, fitted):
        """Infrastructure failure: single-process rescore, breaker
        untouched, daemon disabled for the pipeline's lifetime."""
        model, split = fitted
        telemetry = TelemetryRegistry()
        single = make_pipeline(model, split)
        expected = single.process(split.X_test)

        dead = ServingDaemon(build_scoring_spec(model, "ed")).start()
        dead.close()
        pipe = make_pipeline(model, split, daemon=dead, telemetry=telemetry)
        got = pipe.process(split.X_test)
        assert pipe._daemon_disabled
        assert not got.degraded
        assert pipe.circuit_breaker.state == "closed"
        np.testing.assert_array_equal(got.scores, expected.scores)
        np.testing.assert_array_equal(got.routing, expected.routing)
        assert telemetry.counters["serve.daemon.fallbacks"] == 1
        assert telemetry.counters["serve.daemon.disabled"] == 1
        assert "resilience.scoring_faults" not in telemetry.counters
        # Later batches skip the daemon entirely: no second fallback.
        again = pipe.process(split.X_test)
        pipe.close()
        np.testing.assert_array_equal(again.scores, expected.scores)
        assert telemetry.counters["serve.daemon.fallbacks"] == 1


@pytest.mark.slow
class TestReplaySmoke:
    def test_two_worker_replay_under_load(self, fitted):
        """A short open-loop replay against a real 2-worker pool: every
        request completes with correct shapes, SLO gauges populate, and
        the ledger balances (requests == completions, gapless)."""
        model, split = fitted
        telemetry = TelemetryRegistry()
        spec = ReplaySpec(name="smoke", rate_rps=400.0, n_requests=300,
                          batch_mix=((8, 0.6), (32, 0.3), (128, 0.1)),
                          seed=3)
        X_pool = np.asarray(split.X_test, dtype=np.float64)
        schedule = build_schedule(spec, len(X_pool))
        with ServingDaemon(build_scoring_spec(model, "ed"), n_workers=2,
                           telemetry=telemetry) as daemon:
            daemon.score(X_pool[:8])
            result = replay_daemon(spec, schedule, X_pool, daemon,
                                   timeout=60.0)
            snap = daemon.slo_snapshot()
        assert result.n_requests == spec.n_requests
        assert result.n_rows == sum(len(r.rows) for r in schedule)
        assert np.all(np.isfinite(result.latencies_s))
        assert result.percentile_ms(99) >= result.percentile_ms(50) > 0
        assert snap["requests"] == spec.n_requests + 1  # + the warmup
        assert snap["p99_ms"] >= snap["p50_ms"] > 0
        assert snap["respawns"] == 0
        assert telemetry.counters.get("serve.daemon.desyncs", 0) == 0
