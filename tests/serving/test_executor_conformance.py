"""Executor conformance: every execution path honours one contract.

The executor layer (:mod:`repro.serving.executor`) promises that the
choice of execution path is *invisible* except in latency: bitwise
score/routing parity with the inline path (including across model hot
swaps), infrastructure failures demote down the chain in order without
ever touching the circuit breaker, model faults propagate raw into the
breaker/fallback guardrails, ``update_spec`` makes a new generation
visible to live worker surfaces, and ``close()`` is idempotent. This
module pins that contract once, parametrized over all executors, so a
new execution path only has to join the parametrization to be held to
the same bar.
"""

import numpy as np
import pytest

from repro.core import TargAD, TargADConfig
from repro.obs import TelemetryRegistry
from repro.serving import ScoringPipeline
from repro.serving.errors import ExecutorUnavailable
from repro.serving.executor import (
    DaemonExecutor,
    Executor,
    FallbackChain,
    InlineExecutor,
    ShardedExecutor,
    StripedDaemonExecutor,
)
from repro.serving.daemon import ServingDaemon
from repro.serving.sharding import build_scoring_spec

EXECUTOR_KINDS = ["inline", "sharded", "daemon", "striped_daemon"]
WORKER_KINDS = ["sharded", "daemon", "striped_daemon"]


@pytest.fixture(scope="module")
def fitted():
    from repro.data.splits import build_split
    from tests.conftest import TINY_SPEC, make_tiny_generator

    split = build_split(make_tiny_generator(0), TINY_SPEC, scale=1.0,
                        random_state=0)
    model = TargAD(TargADConfig(random_state=0, k=2, ae_lr=3e-3, ae_epochs=15,
                                clf_epochs=20))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    return model, split


@pytest.fixture(scope="module")
def model_b(fitted):
    _, split = fitted
    other = TargAD(TargADConfig(random_state=7, k=2, ae_lr=3e-3, ae_epochs=15,
                                clf_epochs=20))
    other.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    return other


def make_executor(kind, spec_factory, model_ref, telemetry=None):
    """Build one executor of ``kind`` with worker counts fit for CI."""
    if kind == "inline":
        return InlineExecutor(model_ref, "ed")
    if kind == "sharded":
        return ShardedExecutor(spec_factory, 2, min_rows=1,
                               telemetry=telemetry)
    if kind == "daemon":
        return DaemonExecutor(spec_factory, n_workers=2, telemetry=telemetry)
    assert kind == "striped_daemon"
    return StripedDaemonExecutor(spec_factory, n_workers=2, stripe_min_rows=8,
                                 telemetry=telemetry)


def make_pipeline(model, split, preset, **kwargs):
    pipe = ScoringPipeline(
        model, policy="budget", review_budget=10, monitor_drift=False,
        executor=preset, min_shard_rows=8, stripe_min_rows=8,
        daemon_workers=2, **kwargs,
    )
    pipe.calibrate(split.X_val)
    return pipe


def assert_batches_equal(got, want):
    np.testing.assert_array_equal(got.scores, want.scores)
    np.testing.assert_array_equal(got.routing, want.routing)
    np.testing.assert_array_equal(got.alerts, want.alerts)
    np.testing.assert_array_equal(got.deferred, want.deferred)
    np.testing.assert_array_equal(got.quarantined, want.quarantined)
    assert got.degraded == want.degraded


class StubExecutor(Executor):
    """Scripted executor for chain-matrix tests: returns or raises."""

    def __init__(self, name, outcome, alive=True, eligible=True):
        self.name = name
        self._outcome = outcome
        self._alive = alive
        self._eligible = eligible
        self.calls = 0
        self.reset_calls = 0
        self.close_calls = 0

    @property
    def alive(self):
        return self._alive

    def eligible(self, n_rows):
        return self._eligible

    def score(self, X):
        self.calls += 1
        if isinstance(self._outcome, Exception):
            raise self._outcome
        return self._outcome

    def reset(self):
        self.reset_calls += 1

    def close(self):
        self.close_calls += 1


class TestBitwiseParity:
    @pytest.mark.parametrize("kind", EXECUTOR_KINDS)
    def test_score_matches_inline_bitwise(self, kind, fitted):
        model, split = fitted
        executor = make_executor(
            kind, lambda: build_scoring_spec(model, "ed"), lambda: model
        )
        try:
            scores, routing = executor.score(split.X_test)
        finally:
            executor.close()
        exp_s, exp_r = model.score_batch(split.X_test, strategy="ed")
        np.testing.assert_array_equal(scores, exp_s)
        np.testing.assert_array_equal(routing, exp_r)

    @pytest.mark.parametrize("preset", EXECUTOR_KINDS)
    def test_pipeline_parity_with_quarantine(self, preset, fitted):
        model, split = fitted
        inline = make_pipeline(model, split, "inline")
        pipe = make_pipeline(model, split, preset)
        X = split.X_test.copy()
        X[3, 0] = np.nan  # quarantine path must survive every executor
        try:
            want = inline.process(X)
            got = pipe.process(X)
            assert pipe.chain.last_executor == preset
        finally:
            pipe.close()
            inline.close()
        assert_batches_equal(got, want)

    @pytest.mark.parametrize("preset", EXECUTOR_KINDS)
    def test_post_swap_parity(self, preset, fitted, model_b):
        """After a hot swap every executor serves the new generation
        bitwise-identically to a fresh inline pipeline on that model."""
        model, split = fitted
        pipe = make_pipeline(model, split, preset)
        fresh_b = make_pipeline(model_b, split, "inline")
        X = split.X_test[:96]
        try:
            pipe.process(X)  # lazily builds the worker surface
            pipe.swap_model(model_b, split.X_val)
            got = pipe.process(X)
            assert pipe.generation == 1
            assert pipe.chain.last_executor == preset
            assert_batches_equal(got, fresh_b.process(X))
        finally:
            pipe.close()
            fresh_b.close()


class TestBackendConformance:
    """Executors inherit the active backend by name into their workers."""

    @pytest.mark.parametrize("kind", EXECUTOR_KINDS)
    def test_score_under_tiled_backend_matches_inline(self, kind, fitted):
        from repro.backend import use_backend

        model, split = fitted
        with use_backend("tiled"):
            executor = make_executor(
                kind, lambda: build_scoring_spec(model, "ed"), lambda: model
            )
            try:
                scores, routing = executor.score(split.X_test)
            finally:
                executor.close()
            exp_s, exp_r = model.score_batch(split.X_test, strategy="ed")
        np.testing.assert_array_equal(scores, exp_s)
        np.testing.assert_array_equal(routing, exp_r)

    def test_spec_records_active_backend(self, fitted):
        from repro.backend import use_backend

        model, _ = fitted
        assert build_scoring_spec(model, "ed").backend == "numpy"
        with use_backend("tiled"):
            assert build_scoring_spec(model, "ed").backend == "tiled"


class TestUpdateSpecVisibility:
    @pytest.mark.parametrize("kind", WORKER_KINDS)
    def test_new_spec_visible_to_workers(self, kind, fitted, model_b):
        model, split = fitted
        executor = make_executor(
            kind, lambda: build_scoring_spec(model, "ed"), lambda: model
        )
        X = split.X_test[:64]
        try:
            executor.score(X)  # builds the worker surface on model A
            assert executor.needs_spec()
            executor.update_spec(build_scoring_spec(model_b, "ed"))
            scores, routing = executor.score(X)
        finally:
            executor.close()
        exp_s, exp_r = model_b.score_batch(X, strategy="ed")
        np.testing.assert_array_equal(scores, exp_s)
        np.testing.assert_array_equal(routing, exp_r)

    def test_inline_tracks_model_ref_without_spec(self, fitted, model_b):
        model, split = fitted
        holder = {"model": model}
        executor = InlineExecutor(lambda: holder["model"], "ed")
        X = split.X_test[:32]
        assert not executor.needs_spec()  # nothing consumes a spec push
        before = executor.score(X)
        holder["model"] = model_b
        after = executor.score(X)
        np.testing.assert_array_equal(
            before[0], model.score_batch(X, strategy="ed")[0]
        )
        np.testing.assert_array_equal(
            after[0], model_b.score_batch(X, strategy="ed")[0]
        )


class TestFallbackMatrix:
    def test_infra_faults_demote_in_chain_order(self):
        telemetry = TelemetryRegistry()
        first = StubExecutor("first", ExecutorUnavailable("shm gone"))
        second = StubExecutor("second", ExecutorUnavailable("pool broke"))
        ok = StubExecutor("ok", (np.ones(3), np.zeros(3, dtype=np.int64)))
        chain = FallbackChain([first, second, ok], telemetry=telemetry)
        scores, routing = chain.score(np.zeros((3, 4)))
        np.testing.assert_array_equal(scores, np.ones(3))
        assert (first.calls, second.calls, ok.calls) == (1, 1, 1)
        assert chain.last_executor == "ok"
        assert telemetry.counters["serve.executor.demotions"] == 2
        demoted = [e for e in telemetry.events
                   if e.name == "serve.executor.demoted"]
        assert [e.fields["executor"] for e in demoted] == ["first", "second"]

    def test_dead_and_ineligible_executors_skipped_without_call(self):
        dead = StubExecutor("dead", (None, None), alive=False)
        small = StubExecutor("small", (None, None), eligible=False)
        ok = StubExecutor("ok", (np.zeros(2), np.zeros(2, dtype=np.int64)))
        chain = FallbackChain([dead, small, ok],
                              telemetry=TelemetryRegistry())
        chain.score(np.zeros((2, 4)))
        assert dead.calls == 0 and small.calls == 0 and ok.calls == 1

    def test_model_fault_propagates_without_demotion(self):
        telemetry = TelemetryRegistry()
        faulty = StubExecutor("faulty", ValueError("bad weights"))
        ok = StubExecutor("ok", (np.zeros(2), np.zeros(2, dtype=np.int64)))
        chain = FallbackChain([faulty, ok], telemetry=telemetry)
        with pytest.raises(ValueError, match="bad weights"):
            chain.score(np.zeros((2, 4)))
        assert ok.calls == 0  # a model fault is NOT an executor problem
        assert "serve.executor.demotions" not in telemetry.counters

    def test_every_executor_down_raises_unavailable(self):
        chain = FallbackChain(
            [StubExecutor("a", ExecutorUnavailable("down")),
             StubExecutor("b", (None, None), alive=False)],
            telemetry=TelemetryRegistry(),
        )
        with pytest.raises(ExecutorUnavailable):
            chain.score(np.zeros((2, 4)))

    def test_reset_and_close_fan_out_to_all_executors(self):
        stubs = [StubExecutor(f"s{i}", (None, None)) for i in range(3)]
        chain = FallbackChain(stubs, telemetry=TelemetryRegistry())
        chain.reset()
        chain.close()
        chain.close()  # idempotent at the chain level too
        assert all(s.reset_calls == 1 for s in stubs)
        assert all(s.close_calls == 2 for s in stubs)


class TestBreakerContract:
    """The pipeline treats every executor identically at the guardrails."""

    def test_infra_fault_never_touches_breaker(self, fitted):
        model, split = fitted
        telemetry = TelemetryRegistry()
        pipe = make_pipeline(model, split, "inline", telemetry=telemetry)
        pipe.chain.executors.insert(
            0, StubExecutor("flaky", ExecutorUnavailable("transient"))
        )
        batch = pipe.process(split.X_test)
        pipe.close()
        assert not batch.degraded
        assert pipe.circuit_breaker.state == "closed"
        assert telemetry.counters["serve.executor.demotions"] == 1
        assert "resilience.scoring_faults" not in telemetry.counters

    def test_model_fault_reports_to_breaker(self, fitted):
        model, split = fitted
        telemetry = TelemetryRegistry()
        pipe = make_pipeline(model, split, "inline", telemetry=telemetry)
        pipe.chain.executors.insert(
            0, StubExecutor("faulty", ValueError("injected model fault"))
        )
        batch = pipe.process(split.X_test)
        pipe.close()
        assert batch.degraded  # scored by the reconstruction fallback
        assert telemetry.counters["resilience.scoring_faults"] == 1
        assert "serve.executor.demotions" not in telemetry.counters


class TestCloseIdempotent:
    @pytest.mark.parametrize("kind", EXECUTOR_KINDS)
    def test_double_close_after_scoring(self, kind, fitted):
        model, split = fitted
        executor = make_executor(
            kind, lambda: build_scoring_spec(model, "ed"), lambda: model
        )
        executor.score(split.X_test[:32])
        executor.close()
        executor.close()

    def test_external_daemon_survives_executor_close(self, fitted):
        model, split = fitted
        daemon = ServingDaemon(build_scoring_spec(model, "ed")).start()
        try:
            executor = DaemonExecutor(
                lambda: build_scoring_spec(model, "ed"), daemon=daemon
            )
            executor.score(split.X_test[:16])
            executor.close()
            assert daemon.alive  # caller owns the lifecycle
        finally:
            daemon.close()


class TestStriping:
    def test_large_batch_stripes_across_workers_in_order(self, fitted):
        model, split = fitted
        telemetry = TelemetryRegistry()
        executor = StripedDaemonExecutor(
            lambda: build_scoring_spec(model, "ed"),
            n_workers=2, stripe_min_rows=8, telemetry=telemetry,
        )
        X = split.X_test
        try:
            scores, routing = executor.score(X)
        finally:
            executor.close()
        exp_s, exp_r = model.score_batch(X, strategy="ed")
        np.testing.assert_array_equal(scores, exp_s)  # in-order merge
        np.testing.assert_array_equal(routing, exp_r)
        assert telemetry.counters["serve.daemon.stripes"] == 2
        assert telemetry.counters["serve.daemon.striped_batches"] == 1
        assert executor.telemetry_tags()["n_stripes"] == 2

    def test_small_batch_takes_plain_daemon_path(self, fitted):
        model, split = fitted
        telemetry = TelemetryRegistry()
        executor = StripedDaemonExecutor(
            lambda: build_scoring_spec(model, "ed"),
            n_workers=2, stripe_min_rows=10_000, telemetry=telemetry,
        )
        try:
            executor.score(split.X_test)
        finally:
            executor.close()
        assert "serve.daemon.stripes" not in telemetry.counters
        assert executor.telemetry_tags()["n_stripes"] == 0

    def test_submit_handle_merges_like_score(self, fitted):
        """The async submit() surface (used by the replay bench) returns
        a handle whose result is the same in-order merge."""
        model, split = fitted
        executor = StripedDaemonExecutor(
            lambda: build_scoring_spec(model, "ed"),
            n_workers=2, stripe_min_rows=8,
        )
        X = split.X_test
        try:
            handle = executor.submit(X)
            scores, routing = handle.result(60.0)
            assert handle.t_done is not None
        finally:
            executor.close()
        exp_s, exp_r = model.score_batch(X, strategy="ed")
        np.testing.assert_array_equal(scores, exp_s)
        np.testing.assert_array_equal(routing, exp_r)
