"""Multi-process batch sharding: determinism, parity, and failure modes.

The contract under test: a sharded ``ScoringPipeline.process`` produces
*identical* output to the single-process pipeline (scores, routing,
alert order, quarantine), pool-infrastructure failures degrade to
single-process scoring without touching the circuit breaker, worker
model faults flow through the existing breaker/fallback guardrails,
small batches skip sharding entirely, and the ``ScoringSpec`` pickle
round-trip reproduces ``model.score_batch`` exactly.
"""

import pickle

import numpy as np
import pytest

from repro.core import TargAD, TargADConfig
from repro.obs import TelemetryRegistry
from repro.serving import ScoringPipeline
from repro.serving.sharding import (
    ScoringSpec,
    ShardedScorer,
    ShardPoolUnavailable,
    build_scoring_spec,
)


class FaultySpec(ScoringSpec):
    """Spec whose worker-side scoring always faults (module-level: must
    survive the trip into the worker process)."""

    def score(self, network, X):
        raise RuntimeError("injected worker fault")


#: Marker value planted in column 0 to make ``CrashSpec`` hard-kill its
#: worker process — a mid-batch pool breakdown, not a Python exception.
CRASH_MARKER = 1.2345e7


class CrashSpec(ScoringSpec):
    """Spec that kills the worker when it sees the marker row; shards
    without the marker score normally. The killer waits a beat so the
    clean shard's result is collected first — a *mid-batch* breakdown."""

    def score(self, network, X):
        import os
        import time

        if np.any(X[:, 0] == CRASH_MARKER):
            time.sleep(0.25)
            os._exit(17)  # hard kill: BrokenProcessPool, not a fault
        return super().score(network, X)


@pytest.fixture(scope="module")
def fitted():
    from repro.data.splits import build_split
    from tests.conftest import TINY_SPEC, make_tiny_generator

    split = build_split(make_tiny_generator(0), TINY_SPEC, scale=1.0, random_state=0)
    model = TargAD(TargADConfig(random_state=0, k=2, ae_lr=3e-3, ae_epochs=15,
                                clf_epochs=20))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    return model, split


def make_pipelines(model, split, **shard_kwargs):
    single = ScoringPipeline(model, policy="budget", review_budget=10,
                             monitor_drift=False)
    single.calibrate(split.X_val)
    sharded = ScoringPipeline(model, policy="budget", review_budget=10,
                              monitor_drift=False, **shard_kwargs)
    sharded.calibrate(split.X_val)
    return single, sharded


class TestScoringSpec:
    def test_pickle_roundtrip_matches_score_batch(self, fitted):
        model, split = fitted
        spec = pickle.loads(pickle.dumps(build_scoring_spec(model, "ed")))
        scores, routing = spec.score(spec.build_network(), split.X_test)
        expected_scores, expected_routing = model.score_batch(
            split.X_test, strategy="ed"
        )
        np.testing.assert_array_equal(scores, expected_scores)
        np.testing.assert_array_equal(routing, expected_routing)

    def test_spec_carries_calibrated_strategy(self, fitted):
        model, _ = fitted
        spec = build_scoring_spec(model, "msp")
        assert spec.strategy.threshold_ is not None
        assert spec.strategy is not model._get_strategy("msp")

    def test_shard_slices_cover_in_order(self):
        slices = ShardedScorer.shard_slices(10, 3)
        covered = np.concatenate([np.arange(s.start, s.stop) for s in slices])
        np.testing.assert_array_equal(covered, np.arange(10))
        assert all(s.stop > s.start for s in slices)
        # Never more shards than rows; never an empty shard.
        assert len(ShardedScorer.shard_slices(2, 8)) == 2
        assert ShardedScorer.shard_slices(0, 4) == []


class TestShardedScorer:
    def test_merged_output_matches_single_process(self, fitted):
        model, split = fitted
        expected_scores, expected_routing = model.score_batch(
            split.X_test, strategy="ed"
        )
        with ShardedScorer(build_scoring_spec(model, "ed"), 2) as scorer:
            result = scorer.score(split.X_test)
        assert result.n_shards == 2
        assert all(t >= 0 for t in result.shard_seconds)
        np.testing.assert_array_equal(result.scores, expected_scores)
        np.testing.assert_array_equal(result.routing, expected_routing)

    def test_bad_start_method_raises_pool_unavailable(self, fitted):
        model, _ = fitted
        scorer = ShardedScorer(
            build_scoring_spec(model, "ed"), 2, start_method="no-such-method"
        )
        with pytest.raises(ShardPoolUnavailable):
            scorer.score(np.zeros((4, 12)))


class TestShardedPipeline:
    def test_process_identical_to_single_process(self, fitted):
        model, split = fitted
        single, sharded = make_pipelines(
            model, split, shard_workers=2, min_shard_rows=8
        )
        X = split.X_test.copy()
        X[3, 0] = np.nan  # quarantine path must survive sharding
        expected = single.process(X)
        got = sharded.process(X)
        sharded.close()
        assert sharded._last_n_shards == 2
        np.testing.assert_array_equal(got.scores, expected.scores)
        np.testing.assert_array_equal(got.routing, expected.routing)
        np.testing.assert_array_equal(got.alerts, expected.alerts)
        np.testing.assert_array_equal(got.deferred, expected.deferred)
        np.testing.assert_array_equal(got.quarantined, expected.quarantined)
        assert got.degraded == expected.degraded == False  # noqa: E712

    def test_small_batches_stay_single_process(self, fitted):
        model, split = fitted
        _, sharded = make_pipelines(
            model, split, shard_workers=2, min_shard_rows=10_000
        )
        batch = sharded.process(split.X_test)
        assert sharded._last_n_shards == 0
        assert sharded._sharder is None  # pool never created
        assert not batch.degraded
        sharded.close()

    def test_pool_failure_degrades_to_single_process(self, fitted):
        """Infra failure: sharding off, batch rescored, breaker untouched."""
        model, split = fitted
        telemetry = TelemetryRegistry()
        pipe = ScoringPipeline(
            model, policy="budget", review_budget=10, monitor_drift=False,
            shard_workers=2, min_shard_rows=8,
            shard_start_method="no-such-method", telemetry=telemetry,
        )
        pipe.calibrate(split.X_val)
        single, _ = make_pipelines(model, split)
        expected = single.process(split.X_test)
        got = pipe.process(split.X_test)
        assert pipe._sharding_disabled
        assert not got.degraded
        assert pipe.circuit_breaker.state == "closed"
        np.testing.assert_array_equal(got.scores, expected.scores)
        np.testing.assert_array_equal(got.routing, expected.routing)
        assert telemetry.counters["serve.sharding_disabled"] == 1
        assert "resilience.scoring_faults" not in telemetry.counters
        # Later batches go straight to the single-process path.
        again = pipe.process(split.X_test)
        np.testing.assert_array_equal(again.scores, expected.scores)

    def test_worker_model_fault_trips_guardrails(self, fitted):
        """A fault raised inside a worker is a scorer fault: breaker +
        degraded fallback, exactly like the single-process path."""
        model, split = fitted
        telemetry = TelemetryRegistry()
        pipe = ScoringPipeline(
            model, policy="budget", review_budget=10, monitor_drift=False,
            shard_workers=2, min_shard_rows=8, telemetry=telemetry,
        )
        pipe.calibrate(split.X_val)
        spec = build_scoring_spec(model, "ed")
        faulty = FaultySpec(layers=spec.layers, m=spec.m, k=spec.k,
                            strategy=spec.strategy)
        pipe._sharder = ShardedScorer(faulty, 2)
        batch = pipe.process(split.X_test)
        pipe.close()
        assert batch.degraded
        assert not pipe._sharding_disabled
        assert telemetry.counters["resilience.scoring_faults"] == 1

    def test_shard_telemetry_recorded(self, fitted):
        model, split = fitted
        telemetry = TelemetryRegistry()
        pipe = ScoringPipeline(
            model, policy="budget", review_budget=10, monitor_drift=False,
            shard_workers=2, min_shard_rows=8, telemetry=telemetry,
        )
        pipe.calibrate(split.X_val)
        pipe.process(split.X_test)
        assert telemetry.counters["serve.shards"] == 2
        assert telemetry.timer_stats("serve.shard").count == 2
        series = telemetry.events.series("serve.batch", "n_shards")
        assert series[-1] == 2
        # A below-threshold batch scores in-process: its plan-cache
        # activity (a hit against the cached serving plan) is mirrored
        # into the serve.plan_cache.* counters. Fully sharded batches
        # leave these untouched — the workers own that cache activity.
        pipe.process(split.X_test[:4])
        pipe.close()
        assert telemetry.counter("serve.plan_cache.hits") >= 1
        assert telemetry.events.series("serve.batch", "n_shards")[-1] == 0

    def test_mid_batch_pool_break_accounts_for_aborted_shards(self, fitted):
        """Regression: a pool broken *mid-batch* (one shard done, one
        worker dead) rescored the whole batch single-process but never
        recorded the discarded shard work — the serve.shards ledger
        silently hid the double-scoring. Pin the telemetry contract:
        no serve.shards increment for the aborted batch, the completed
        shard count lands in serve.shards.aborted, sharding disables
        exactly once, the breaker stays closed, and output matches the
        single-process pipeline bitwise."""
        model, split = fitted
        telemetry = TelemetryRegistry()
        pipe = ScoringPipeline(
            model, policy="budget", review_budget=10, monitor_drift=False,
            shard_workers=2, min_shard_rows=8, telemetry=telemetry,
        )
        pipe.calibrate(split.X_val)
        spec = build_scoring_spec(model, "ed")
        crashy = CrashSpec(layers=spec.layers, m=spec.m, k=spec.k,
                           strategy=spec.strategy)
        pipe._sharder = ShardedScorer(crashy, 2)

        X = split.X_test.copy()
        X[-1, 0] = CRASH_MARKER  # second shard kills its worker
        single, _ = make_pipelines(model, split)
        expected = single.process(X)
        got = pipe.process(X)
        pipe.close()

        assert pipe._sharding_disabled
        assert not got.degraded
        assert pipe.circuit_breaker.state == "closed"
        # The ledger: no shards credited for the aborted batch, the
        # completed-then-discarded shard recorded as aborted work.
        assert "serve.shards" not in telemetry.counters
        assert telemetry.counters["serve.shards.aborted"] == 1
        assert telemetry.counters["serve.sharding_disabled"] == 1
        assert "resilience.scoring_faults" not in telemetry.counters
        events = [e for e in telemetry.events
                  if e.name == "serve.sharding_disabled"]
        assert len(events) == 1
        assert events[0].fields["n_aborted_shards"] == 1
        # The rescore produced the single-process batch bitwise — the
        # double-scored rows are invisible in the output, which is
        # exactly why the ledger has to make them visible.
        np.testing.assert_array_equal(got.scores, expected.scores)
        np.testing.assert_array_equal(got.routing, expected.routing)
        np.testing.assert_array_equal(got.alerts, expected.alerts)

    def test_pool_break_surfaces_completed_shard_count(self, fitted):
        """ShardedScorer itself reports how many shards finished before
        the breakdown via ShardPoolUnavailable.n_completed_shards."""
        model, split = fitted
        spec = build_scoring_spec(model, "ed")
        crashy = CrashSpec(layers=spec.layers, m=spec.m, k=spec.k,
                           strategy=spec.strategy)
        X = np.asarray(split.X_test, dtype=np.float64).copy()
        X[-1, 0] = CRASH_MARKER
        with ShardedScorer(crashy, 2) as scorer:
            with pytest.raises(ShardPoolUnavailable) as excinfo:
                scorer.score(X)
        assert excinfo.value.n_completed_shards == 1

    def test_close_is_idempotent(self, fitted):
        model, split = fitted
        _, sharded = make_pipelines(
            model, split, shard_workers=2, min_shard_rows=8
        )
        sharded.process(split.X_test)
        sharded.close()
        sharded.close()


@pytest.fixture(scope="module")
def taxonomy_fitted():
    """A model trained on a taxonomy-injected split (cross-family config)."""
    from repro.data import attach_taxonomy
    from repro.data.splits import build_split
    from tests.conftest import TINY_SPEC, make_tiny_generator

    generator = attach_taxonomy(
        make_tiny_generator(0), ["calculation", "local"],
        target_families=["calculation"], random_state=0,
    )
    split = build_split(
        generator, TINY_SPEC, scale=1.0, random_state=0,
        target_families=["tax:calculation"],
        train_nontarget_families=["tax:local"],
    )
    model = TargAD(TargADConfig(random_state=0, k=2, ae_lr=3e-3, ae_epochs=15,
                                clf_epochs=20))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    return model, split


@pytest.mark.taxonomy
class TestTaxonomySharding:
    def test_taxonomy_rows_route_identically_under_sharding(self, taxonomy_fitted):
        """Regression: taxonomy-injected rows must not expose ordering or
        shard-boundary sensitivity — sharded ``process`` routes every row
        exactly like the single-process pipeline. Raw scores may differ by
        BLAS rounding (GEMM blocking depends on the batch height), so they
        are compared to within float64 round-off, routing bit-for-bit."""
        model, split = taxonomy_fitted
        single, sharded = make_pipelines(
            model, split, shard_workers=2, min_shard_rows=8
        )
        X = split.X_test.copy()
        X[5, 1] = np.nan  # quarantine path rides along
        expected = single.process(X)
        got = sharded.process(X)
        sharded.close()
        assert sharded._last_n_shards == 2
        np.testing.assert_array_equal(np.isnan(got.scores), np.isnan(expected.scores))
        np.testing.assert_allclose(
            got.scores[~np.isnan(got.scores)],
            expected.scores[~np.isnan(expected.scores)],
            rtol=1e-12, atol=0.0,
        )
        np.testing.assert_array_equal(got.routing, expected.routing)
        np.testing.assert_array_equal(got.alerts, expected.alerts)
        np.testing.assert_array_equal(got.deferred, expected.deferred)
        np.testing.assert_array_equal(got.quarantined, expected.quarantined)
        assert not (got.degraded or expected.degraded)
