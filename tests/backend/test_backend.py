"""Backend registry, dtype policy, and autodiff-isolation guarantees."""

import pathlib
import threading

import numpy as np
import pytest

from repro.backend import (
    NumpyBackend,
    TRAINING_DTYPE,
    active_backend,
    backend_names,
    get_backend,
    inference_dtype,
    inference_precision,
    register_backend,
    resolve_dtype,
    set_backend,
    set_inference_dtype,
    training_dtype,
    use_backend,
)
from repro.backend import ops as B


class TestRegistry:
    def test_numpy_backend_registered_and_active(self):
        assert "numpy" in backend_names()
        assert isinstance(active_backend(), NumpyBackend)
        assert get_backend("numpy") is active_backend()

    def test_get_backend_unknown_name_raises(self):
        with pytest.raises(KeyError, match="no backend named"):
            get_backend("tpu")

    def test_set_backend_unknown_name_raises(self):
        with pytest.raises(KeyError, match="no backend named"):
            set_backend("tpu")

    def test_register_and_use_backend_restores_previous(self):
        class Traced(NumpyBackend):
            def __init__(self):
                self.exp_calls = 0

            def exp(self, x):
                self.exp_calls += 1
                return super().exp(x)

        traced = Traced()
        register_backend("traced-test", traced)
        previous = active_backend()
        assert active_backend() is previous  # registering does not activate
        with use_backend("traced-test"):
            assert active_backend() is traced
            B.exp(np.zeros(3))
        assert traced.exp_calls == 1
        assert active_backend() is previous

    def test_use_backend_restores_on_error(self):
        previous = active_backend()
        with pytest.raises(RuntimeError):
            with use_backend("numpy"):
                raise RuntimeError("boom")
        assert active_backend() is previous

    def test_ops_dispatch_through_active_backend(self):
        x = np.array([1.0, 4.0, 9.0])
        np.testing.assert_array_equal(B.sqrt(x), np.sqrt(x))
        out = np.empty((2, 2))
        a = np.eye(2)
        res = B.matmul(a, a, out=out)
        assert res is out


class TestDtypePolicy:
    def test_training_dtype_is_float64(self):
        assert TRAINING_DTYPE == np.dtype(np.float64)
        assert training_dtype() == np.dtype(np.float64)

    def test_default_inference_dtype_is_float64(self):
        assert inference_dtype() == np.dtype(np.float64)
        assert resolve_dtype(None) == np.dtype(np.float64)

    def test_resolve_dtype_whitelist(self):
        assert resolve_dtype(np.float32) == np.dtype(np.float32)
        assert resolve_dtype("float64") == np.dtype(np.float64)
        for bad in (np.float16, np.int32, "complex128"):
            with pytest.raises(ValueError, match="inference precision"):
                resolve_dtype(bad)

    def test_inference_precision_scopes_and_restores(self):
        assert inference_dtype() == np.dtype(np.float64)
        with inference_precision(np.float32):
            assert inference_dtype() == np.dtype(np.float32)
            assert resolve_dtype(None) == np.dtype(np.float32)
        assert inference_dtype() == np.dtype(np.float64)

    def test_set_inference_dtype_rejects_bad_dtype(self):
        with pytest.raises(ValueError):
            set_inference_dtype(np.int64)

    def test_inference_precision_is_thread_local(self):
        entered = threading.Event()
        release = threading.Event()
        seen = {}

        def other_thread():
            seen["before"] = inference_dtype()
            entered.set()
            release.wait(timeout=5)
            seen["after"] = inference_dtype()

        with inference_precision(np.float32):
            t = threading.Thread(target=other_thread)
            t.start()
            assert entered.wait(timeout=5)
            # This thread is float32; the other thread must still see the
            # policy default.
            assert inference_dtype() == np.dtype(np.float32)
            release.set()
            t.join(timeout=5)
        assert seen["before"] == np.dtype(np.float64)
        assert seen["after"] == np.dtype(np.float64)

    def test_asarray_honours_training_dtype_default(self):
        arr = active_backend().asarray([[1, 2], [3, 4]])
        assert arr.dtype == TRAINING_DTYPE


class TestAutodiffIsolation:
    """The tensor module must route every array op through the backend."""

    def test_tensor_module_has_no_direct_numpy_usage(self):
        src_dir = pathlib.Path(__file__).resolve().parents[2] / "src"
        source = (src_dir / "repro" / "autodiff" / "tensor.py").read_text()
        assert "import numpy" not in source
        assert "np." not in source

    def test_tensor_ops_hit_backend(self):
        from repro.autodiff import Tensor

        class Counting(NumpyBackend):
            def __init__(self):
                self.calls = 0

            def matmul(self, a, b, out=None):
                self.calls += 1
                return super().matmul(a, b, out=out)

        counting = Counting()
        register_backend("counting-test", counting)
        with use_backend("counting-test"):
            a = Tensor(np.ones((2, 3)), requires_grad=True)
            b = Tensor(np.ones((3, 2)), requires_grad=True)
            (a @ b).sum().backward()
        # Forward matmul plus the two backward matmuls.
        assert counting.calls == 3
