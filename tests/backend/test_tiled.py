"""TiledBackend kernel unit tests: sparse gather path, fallbacks, caching.

The kernel's safety story is that the per-call count verification makes
every shortcut correctness-neutral: any batch that does not prove the
one-nonzero-per-segment property falls back to the dense kernel, and
the plan cache only ever proposes segment boundaries that the next
batch must re-prove. These tests pin the verified-correct cases (exact
results), the must-fall-back cases, and the buffer/caching contracts.
"""

import numpy as np
import pytest

from repro.backend.numpy_backend import NumpyBackend
from repro.backend.tiled import (
    COL_DENSITY,
    MIN_RUN,
    SPARSE_MIN_ROWS,
    TiledBackend,
    _segment,
)

N_DENSE = 12
BLOCKS = (50, 30)
D = N_DENSE + sum(BLOCKS)
H = 16


def make_batch(rng, rows, value=1.0, missing_every=0, zipf=False):
    X = np.zeros((rows, D))
    X[:, :N_DENSE] = rng.normal(size=(rows, N_DENSE))
    off = N_DENSE
    for b in BLOCKS:
        if zipf:
            p = (1.0 / np.arange(1, b + 1)) ** 1.2
            idx = rng.choice(b, size=rows, p=p / p.sum())
        else:
            idx = rng.integers(0, b, size=rows)
        X[np.arange(rows), off + idx] = value
        off += b
    if missing_every:
        X[::missing_every, N_DENSE:] = 0.0
    return X


@pytest.fixture
def backend():
    b = TiledBackend(n_threads=1)
    b.sparse_min_rows = 64  # small batches keep the tests fast
    return b


def reference(X, W, bias, activation=None):
    out = np.empty((len(X), W.shape[1]))
    NumpyBackend().fused_dense_act(X, W, bias, activation, out)
    return out


def run(backend, X, W, bias, activation=None):
    out = np.empty((len(X), W.shape[1]))
    returned = backend.fused_dense_act(X, W, bias, activation, out)
    assert returned is out  # destination-write contract
    return out


def test_onehot_batch_is_exact_and_takes_sparse_path(backend):
    rng = np.random.default_rng(0)
    X = make_batch(rng, 256)
    W = rng.normal(size=(D, H))
    bias = rng.normal(size=H)
    got = run(backend, X, W, bias, "relu")
    np.testing.assert_allclose(got, reference(X, W, bias, "relu"), atol=1e-9)
    assert backend.sparse_hits == 1


def test_missing_categories_handled(backend):
    """Rows with no category set stay exact on the sparse path.

    Zipf-skewed categories (the SQB regime): the heavy head column keeps
    the greedy cut on the block boundary even when some rows are empty.
    """
    rng = np.random.default_rng(1)
    X = make_batch(rng, 256, missing_every=7, zipf=True)
    W = rng.normal(size=(D, H))
    got = run(backend, X, W, None)
    np.testing.assert_allclose(got, X @ W, atol=1e-9)
    assert backend.sparse_hits == 1


def test_missing_categories_uniform_is_exact_regardless_of_path(backend):
    """Uniform categories + missing rows may defeat the greedy cut; the
    count verification must then force the (exact) dense fallback."""
    rng = np.random.default_rng(1)
    X = make_batch(rng, 256, missing_every=7)
    W = rng.normal(size=(D, H))
    got = run(backend, X, W, None)
    np.testing.assert_allclose(got, X @ W, atol=1e-9)


def test_scaled_category_values_handled(backend):
    """Non-1.0 nonzeros exercise the value-scaling branch."""
    rng = np.random.default_rng(2)
    X = make_batch(rng, 256, value=0.37)
    W = rng.normal(size=(D, H))
    got = run(backend, X, W, None)
    np.testing.assert_allclose(got, X @ W, atol=1e-9)
    assert backend.sparse_hits == 1


def test_multi_nonzero_rows_fall_back_correctly(backend):
    """Two nonzeros inside one segment must not produce a wrong answer."""
    rng = np.random.default_rng(3)
    X = make_batch(rng, 256)
    # Poison many rows so the greedy segmentation cannot separate them.
    cols = rng.integers(N_DENSE, N_DENSE + BLOCKS[0], size=(200, 2))
    X[np.arange(200)[:, None], cols] = 1.0
    W = rng.normal(size=(D, H))
    got = run(backend, X, W, None)
    np.testing.assert_allclose(got, X @ W, atol=1e-9)


def test_dense_random_input_falls_back(backend):
    rng = np.random.default_rng(4)
    X = rng.normal(size=(256, D))
    W = rng.normal(size=(D, H))
    got = run(backend, X, W, None)
    np.testing.assert_array_equal(got, reference(X, W, None))
    assert backend.sparse_hits == 0


def test_small_batches_skip_detection(backend):
    rng = np.random.default_rng(5)
    X = make_batch(rng, backend.sparse_min_rows - 1)
    W = rng.normal(size=(D, H))
    got = run(backend, X, W, None)
    np.testing.assert_array_equal(got, reference(X, W, None))
    assert backend.sparse_hits == 0


def test_non_contiguous_input_falls_back(backend):
    rng = np.random.default_rng(6)
    wide = make_batch(rng, 256)
    X = np.concatenate([wide, wide], axis=1)[:, :D]  # C-contiguous
    X_view = np.asfortranarray(X)  # not C-contiguous: ineligible
    W = rng.normal(size=(D, H))
    got = run(backend, X_view, W, None)
    np.testing.assert_array_equal(got, reference(X, W, None))
    assert backend.sparse_hits == 0


def test_float32_batches_supported(backend):
    rng = np.random.default_rng(7)
    X = make_batch(rng, 256).astype(np.float32)
    W = rng.normal(size=(D, H)).astype(np.float32)
    bias = rng.normal(size=H).astype(np.float32)
    out = np.empty((256, H), dtype=np.float32)
    backend.fused_dense_act(X, W, bias, "relu", out)
    expected = np.maximum(X @ W + bias, 0.0)
    np.testing.assert_allclose(out, expected, atol=1e-4)
    assert backend.sparse_hits == 1


def test_structure_plan_is_cached_per_weight(backend):
    rng = np.random.default_rng(8)
    X = make_batch(rng, 256)
    W = rng.normal(size=(D, H))
    run(backend, X, W, None)
    assert len(backend._plans) == 1
    (entry,) = backend._plans.values()
    run(backend, make_batch(rng, 256), W, None)
    assert backend._plans and next(iter(backend._plans.values())) is entry
    assert backend.sparse_hits == 2


def test_dense_decision_is_cached_and_reprobed(backend):
    """A dense workload stops paying detection after the first call."""
    rng = np.random.default_rng(9)
    X = rng.normal(size=(256, D))
    W = rng.normal(size=(D, H))
    run(backend, X, W, None)
    (entry,) = backend._plans.values()
    assert entry.plan is None
    run(backend, X, W, None)
    assert entry.calls == 1  # skipped detection, counted toward re-probe


def test_structure_change_falls_back_then_recovers(backend):
    """A batch that breaks the cached plan is still exact, via fallback."""
    rng = np.random.default_rng(10)
    X = make_batch(rng, 256)
    W = rng.normal(size=(D, H))
    run(backend, X, W, None)
    assert backend.sparse_hits == 1
    X_dense = rng.normal(size=(256, D))
    got = run(backend, X_dense, W, None)
    np.testing.assert_array_equal(got, reference(X_dense, W, None))
    assert backend.sparse_hits == 1  # fell back, no wrong answer


def test_scratch_is_reused_and_never_aliases_out(backend):
    rng = np.random.default_rng(11)
    X = make_batch(rng, 256)
    W = rng.normal(size=(D, H))
    out1 = np.empty((256, H))
    backend.fused_dense_act(X, W, None, None, out1)
    scratch = backend._tl.bufs[(H, np.dtype(np.float64).char)]
    assert not np.shares_memory(scratch, out1)
    out2 = np.empty((256, H))
    backend.fused_dense_act(X, W, None, None, out2)
    assert backend._tl.bufs[(H, np.dtype(np.float64).char)] is scratch


def test_segment_splits_runs_at_density_boundaries():
    """Greedy cuts keep each segment's density sum at most one."""
    dens = np.zeros(100)
    dens[:10] = 0.9  # dense prefix
    dens[10:] = 1.0 / 45.0  # two adjacent one-hot blocks worth of mass
    segs = _segment(dens, dens < COL_DENSITY)
    assert segs
    for s, e in segs:
        assert e - s >= MIN_RUN
        assert dens[s:e].sum() <= 1.0 + 1e-9
    # Segments tile [10, 100) without overlap.
    assert segs[0][0] == 10
    assert segs[-1][1] == 100
    for (_, e1), (s2, _) in zip(segs, segs[1:]):
        assert e1 == s2


def test_default_sparse_min_rows_gate():
    assert TiledBackend().sparse_min_rows == SPARSE_MIN_ROWS


def test_threaded_matmul_and_fused_are_bitwise():
    backend = TiledBackend(n_threads=2)
    rng = np.random.default_rng(12)
    a = rng.normal(size=(1200, D))
    b = rng.normal(size=(D, H))
    np.testing.assert_array_equal(backend.matmul(a, b), a @ b)
    out = np.empty((1200, H))
    backend.fused_dense_act(a, b, None, "tanh", out)
    np.testing.assert_array_equal(out, reference(a, b, None, "tanh"))


def test_thread_count_env_override(monkeypatch):
    from repro.backend import tiled

    monkeypatch.setenv(tiled.THREADS_ENV, "3")
    assert TiledBackend()._thread_count() == 3
    monkeypatch.setenv(tiled.THREADS_ENV, "not-a-number")
    assert TiledBackend()._thread_count() >= 1
    assert TiledBackend(n_threads=5)._thread_count() == 5
