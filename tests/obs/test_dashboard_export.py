"""Dashboard rendering and JSON export."""

import json

import pytest

from repro.obs import (
    TelemetryRegistry,
    dump_json,
    render_dashboard,
    render_summary,
    snapshot_to_dict,
)


@pytest.fixture
def populated():
    reg = TelemetryRegistry()
    reg.observe("fit.total", 1.5)
    reg.observe("serve.process", 0.01)
    reg.observe("serve.process", 0.02)
    reg.increment("serve.rows", 200)
    reg.set_gauge("train.rows_per_sec", 5000.0)
    for e in range(4):
        reg.record_event("train.epoch", epoch=e, loss=1.0 / (e + 1),
                         weight_mean=0.5, rows_per_sec=5000.0)
    reg.record_event("serve.batch", n=100, n_alerts=3, n_deferred=5,
                     latency_ms=10.0, drifted=False)
    return reg


class TestRenderDashboard:
    def test_sections_present(self, populated):
        out = render_dashboard(populated, title="test run")
        assert "test run" in out
        assert "timers (wall clock)" in out
        assert "counters" in out
        assert "gauges" in out
        assert "events" in out
        assert "fit.total" in out and "serve.process" in out
        assert "serve.rows" in out and "train.rows_per_sec" in out

    def test_trend_sparklines_for_known_series(self, populated):
        out = render_dashboard(populated)
        assert "training loss / epoch" in out
        # Sparkline glyphs from repro.viz conventions.
        assert any(ch in out for ch in "▁▂▃▄▅▆▇█")

    def test_empty_registry(self):
        out = render_dashboard(TelemetryRegistry())
        assert "(registry is empty)" in out

    def test_event_tail_bounded(self, populated):
        out = render_dashboard(populated, max_events=2)
        assert "last 2 of 5" in out

    def test_render_summary_compact(self, populated):
        out = render_summary(populated)
        assert "fit.total" in out and "events=5" in out
        assert "\n" not in out


class TestExport:
    def test_snapshot_round_trips_through_json(self, populated):
        payload = snapshot_to_dict(populated)
        text = json.dumps(payload)          # must be JSON-serializable
        back = json.loads(text)
        assert back["counters"]["serve.rows"] == 200
        assert back["timers"]["serve.process"]["count"] == 2
        assert back["event_counts"]["train.epoch"] == 4
        assert len(back["events"]) == 5
        assert back["format_version"] == 1

    def test_max_events_truncates(self, populated):
        payload = snapshot_to_dict(populated, max_events=2)
        assert len(payload["events"]) == 2
        # Truncation keeps the most recent events.
        assert payload["events"][-1]["name"] == "serve.batch"

    def test_dump_json_writes_file_with_extras(self, populated, tmp_path):
        path = dump_json(populated, tmp_path / "sub" / "tel.json", dataset="tiny")
        data = json.loads(path.read_text())
        assert data["dataset"] == "tiny"
        assert data["gauges"]["train.rows_per_sec"] == 5000.0
