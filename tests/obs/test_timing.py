"""Timing helpers: record_timing, the @timed decorator, PhaseTimer."""

import pytest

from repro.obs import NULL_TELEMETRY, PhaseTimer, TelemetryRegistry, record_timing, timed


class TestRecordTiming:
    def test_records_into_registry(self):
        reg = TelemetryRegistry()
        with record_timing(reg, "block"):
            sum(range(100))
        assert reg.timer_stats("block").count == 1

    def test_none_is_noop(self):
        with record_timing(None, "block"):
            pass  # must not raise nor allocate a registry

    def test_records_even_when_body_raises(self):
        reg = TelemetryRegistry()
        with pytest.raises(RuntimeError):
            with record_timing(reg, "boom"):
                raise RuntimeError("x")
        assert reg.timer_stats("boom").count == 1


class TestTimedDecorator:
    class Instrumented:
        def __init__(self, telemetry=None):
            self.telemetry = telemetry
            self.calls = 0

        @timed("work")
        def work(self, value):
            self.calls += 1
            return value * 2

    def test_records_per_call(self):
        reg = TelemetryRegistry()
        obj = self.Instrumented(reg)
        assert obj.work(3) == 6
        assert obj.work(4) == 8
        assert reg.timer_stats("work").count == 2
        assert obj.calls == 2

    def test_without_telemetry_attribute(self):
        class Bare:
            @timed("w")
            def w(self):
                return 42

        assert Bare().w() == 42

    def test_null_telemetry_passthrough(self):
        obj = self.Instrumented(NULL_TELEMETRY)
        assert obj.work(1) == 2


class TestPhaseTimer:
    def test_phases_accumulate_in_order(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        with timer.phase("a"):
            pass
        phases = timer.as_dict()
        assert list(phases) == ["a", "b"]
        assert timer.total == pytest.approx(sum(phases.values()))

    def test_reentrant_phase_accumulates(self):
        timer = PhaseTimer()
        with timer.phase("p"):
            sum(range(1000))
        first = timer.as_dict()["p"]
        with timer.phase("p"):
            sum(range(1000))
        assert timer.as_dict()["p"] > first

    def test_registry_mirror(self):
        reg = TelemetryRegistry()
        timer = PhaseTimer(reg)
        with timer.phase("fit"):
            pass
        assert reg.timer_stats("phase.fit").count == 1

    def test_summary_empty_and_filled(self):
        timer = PhaseTimer()
        assert timer.summary() == "(no phases)"
        with timer.phase("x"):
            pass
        assert "x=" in timer.summary()
