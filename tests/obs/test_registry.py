"""Unit tests for the telemetry registry, null object, and event log."""

import threading

import numpy as np
import pytest

from repro.obs import (
    NULL_TELEMETRY,
    EventLog,
    NullTelemetry,
    TelemetryRegistry,
    TimerStats,
    ensure_telemetry,
)


class TestCounters:
    def test_increment_accumulates(self):
        reg = TelemetryRegistry()
        reg.increment("a")
        reg.increment("a", 4)
        assert reg.counter("a") == 5
        assert reg.counters == {"a": 5.0}

    def test_missing_counter_default(self):
        assert TelemetryRegistry().counter("nope") == 0.0


class TestGauges:
    def test_last_write_wins(self):
        reg = TelemetryRegistry()
        reg.set_gauge("g", 1.0)
        reg.set_gauge("g", 7.5)
        assert reg.gauge("g") == 7.5


class TestTimers:
    def test_observe_and_stats(self):
        reg = TelemetryRegistry()
        for v in (0.1, 0.2, 0.3, 0.4):
            reg.observe("t", v)
        stats = reg.timer_stats("t")
        assert stats.count == 4
        assert stats.total == pytest.approx(1.0)
        assert stats.mean == pytest.approx(0.25)
        assert stats.max == pytest.approx(0.4)
        assert stats.p50 == pytest.approx(0.25)
        assert 0.3 <= stats.p95 <= 0.4

    def test_timer_context_manager_records_positive_sample(self):
        reg = TelemetryRegistry()
        with reg.timer("cm"):
            sum(range(1000))
        stats = reg.timer_stats("cm")
        assert stats.count == 1
        assert stats.max > 0

    def test_window_truncation_keeps_exact_aggregates(self):
        reg = TelemetryRegistry(timer_window=10)
        for i in range(100):
            reg.observe("t", float(i))
        stats = reg.timer_stats("t")
        assert stats.count == 100            # exact, despite the window
        assert stats.total == pytest.approx(sum(range(100)))
        assert stats.max == 99.0
        # Order statistics come from the retained window (last 10 samples).
        assert 90.0 <= stats.p50 <= 99.0

    def test_unknown_timer_is_empty(self):
        stats = TelemetryRegistry().timer_stats("nothing")
        assert stats.count == 0 and stats.total == 0.0

    def test_all_timer_stats_sorted(self):
        reg = TelemetryRegistry()
        reg.observe("b", 1.0)
        reg.observe("a", 1.0)
        assert [s.name for s in reg.all_timer_stats()] == ["a", "b"]

    def test_thread_safety_counts_everything(self):
        reg = TelemetryRegistry()

        def worker():
            for _ in range(500):
                reg.increment("n")
                reg.observe("t", 0.001)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("n") == 2000
        assert reg.timer_stats("t").count == 2000


class TestEvents:
    def test_record_event_and_series(self):
        reg = TelemetryRegistry()
        for e in range(5):
            reg.record_event("train.epoch", epoch=e, loss=1.0 / (e + 1))
        assert reg.events.counts() == {"train.epoch": 5}
        series = reg.events.series("train.epoch", "loss")
        assert series == pytest.approx([1.0, 0.5, 1 / 3, 0.25, 0.2])

    def test_ring_buffer_eviction(self):
        log = EventLog(capacity=3)
        for i in range(10):
            log.append("e", i=i)
        assert len(log) == 3
        assert log.total_recorded == 10
        assert [e.fields["i"] for e in log.tail(3)] == [7, 8, 9]
        # Lifetime counts survive eviction.
        assert log.counts() == {"e": 10}

    def test_series_skips_non_numeric(self):
        log = EventLog()
        log.append("e", v=1.5)
        log.append("e", v="text")
        log.append("e", other=3)
        log.append("e", v=True)   # bools are not a numeric trajectory
        assert log.series("e", "v") == [1.5]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)


class TestReset:
    def test_reset_clears_everything(self):
        reg = TelemetryRegistry()
        reg.increment("c")
        reg.set_gauge("g", 1.0)
        reg.observe("t", 0.1)
        reg.record_event("e")
        reg.reset()
        assert reg.counters == {} and reg.gauges == {}
        assert reg.timer_names() == []
        assert len(reg.events) == 0 and reg.events.total_recorded == 0


class TestNullTelemetry:
    def test_is_disabled_and_inert(self):
        null = NullTelemetry()
        assert null.enabled is False
        null.increment("a")
        null.set_gauge("g", 1.0)
        null.observe("t", 0.5)
        null.record_event("e", x=1)
        with null.timer("anything"):
            pass
        null.reset()

    def test_timer_returns_shared_instance(self):
        # No per-call allocation in the disabled path.
        assert NULL_TELEMETRY.timer("a") is NULL_TELEMETRY.timer("b")

    def test_ensure_telemetry(self):
        assert ensure_telemetry(None) is NULL_TELEMETRY
        reg = TelemetryRegistry()
        assert ensure_telemetry(reg) is reg
        assert reg.enabled is True


class TestTimerStats:
    def test_from_empty_samples(self):
        stats = TimerStats.from_samples("x", [])
        assert stats.count == 0 and stats.p95 == 0.0

    def test_to_dict_keys(self):
        stats = TimerStats.from_samples("x", [0.5])
        assert set(stats.to_dict()) == {
            "count", "total_s", "mean_s", "p50_s", "p95_s", "p99_s", "max_s",
        }

    def test_p99_tracks_tail(self):
        samples = [0.001] * 99 + [1.0]
        stats = TimerStats.from_samples("x", samples)
        assert stats.p99 > stats.p95
        assert stats.p99 <= stats.max

    def test_overridden_aggregates(self):
        stats = TimerStats.from_samples("x", [1.0, 2.0], count=10, total=30.0, max_value=9.0)
        assert stats.count == 10 and stats.total == 30.0
        assert stats.mean == pytest.approx(3.0)
        assert stats.max == 9.0
