"""The benchmark suite must stay collectible and complete.

Running the benchmarks takes tens of minutes; this fast test catches the
cheap failure modes — import errors, missing pytest-benchmark usage, an
experiment index drifting from the files on disk — in the normal test run.
"""

import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO / "benchmarks"

EXPECTED_BENCHES = {
    "bench_table2_overall.py",
    "bench_table3_ablation.py",
    "bench_table4_ood_strategies.py",
    "bench_fig3_convergence.py",
    "bench_fig4_robustness.py",
    "bench_fig5_weights.py",
    "bench_fig6_alpha_contamination.py",
    "bench_fig7_tradeoffs.py",
    "bench_ablation_design.py",
    "bench_complexity_scaling.py",
    "bench_active_learning.py",
}


def test_one_bench_per_table_and_figure():
    present = {p.name for p in BENCH_DIR.glob("bench_*.py")}
    assert present == EXPECTED_BENCHES


def test_benchmarks_collect_without_errors():
    result = subprocess.run(
        [sys.executable, "-m", "pytest", str(BENCH_DIR), "--collect-only", "-q"],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=REPO,
    )
    assert result.returncode == 0, result.stdout[-2000:] + result.stderr[-2000:]
    # Quiet collection prints "<file>: <count>" lines; 21 items over 11 files.
    counts = [int(c) for c in re.findall(r"bench_\w+\.py: (\d+)", result.stdout)]
    assert len(counts) == len(EXPECTED_BENCHES)
    assert sum(counts) >= 20


def test_every_bench_function_uses_benchmark_fixture():
    for path in BENCH_DIR.glob("bench_*.py"):
        source = path.read_text()
        for signature in re.findall(r"def (test_\w+)\(([^)]*)\)", source):
            name, params = signature
            assert "benchmark" in params, f"{path.name}::{name} lacks the benchmark fixture"


def test_every_bench_asserts_a_shape():
    """Benches must verify the paper's qualitative shape, not just print."""
    for path in BENCH_DIR.glob("bench_*.py"):
        source = path.read_text()
        assert re.search(r"^\s+assert ", source, re.MULTILINE), f"{path.name} has no assertions"
