"""Deterministic fault injection for chaos tests.

A :class:`FaultPlan` is a declarative, seeded description of *what goes
wrong when*: which scoring calls raise, which have a fraction of their
scores NaN-corrupted, how much artificial latency each call pays. Wrapping
a fitted model with :class:`FaultyModel` replays the plan exactly — same
plan, same seed, same faults — so chaos tests and the ``repro resilience``
CLI replay are reproducible down to the corrupted row indices.

The plan is JSON-serializable (``to_dict``/``from_dict``) so fault
scenarios can live in version-controlled fixture files.

::

    plan = FaultPlan(raise_on=(2, 3), nan_fraction=0.5, nan_on=(5,), seed=7)
    chaotic = FaultyModel(model, plan)
    pipeline = ScoringPipeline(chaotic, ...)   # never crashes; breaker trips

:func:`corrupt_rows` is the input-side counterpart: it NaN-corrupts a
fraction of a batch's *rows* to exercise the quarantine path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

import numpy as np

from repro.obs import ensure_telemetry
from repro.resilience.errors import InjectedFault


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of injected scoring faults.

    Attributes
    ----------
    raise_on:
        1-based scoring-call indices that raise :class:`InjectedFault`.
    nan_fraction:
        Fraction of output scores NaN-corrupted on affected calls.
    nan_on:
        Calls affected by NaN corruption; ``None`` = every call (when
        ``nan_fraction > 0``).
    latency:
        Seconds of artificial delay added to every scoring call.
    seed:
        Seed of the corruption RNG; fixes *which* rows get corrupted.
    """

    raise_on: Tuple[int, ...] = ()
    nan_fraction: float = 0.0
    nan_on: Optional[Tuple[int, ...]] = None
    latency: float = 0.0
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "raise_on", tuple(int(c) for c in self.raise_on))
        if self.nan_on is not None:
            object.__setattr__(self, "nan_on", tuple(int(c) for c in self.nan_on))
        if any(c < 1 for c in self.raise_on):
            raise ValueError("raise_on call indices are 1-based and must be >= 1")
        if self.nan_on is not None and any(c < 1 for c in self.nan_on):
            raise ValueError("nan_on call indices are 1-based and must be >= 1")
        if not 0.0 <= self.nan_fraction <= 1.0:
            raise ValueError("nan_fraction must be in [0, 1]")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")

    def to_dict(self) -> dict:
        return {
            "raise_on": list(self.raise_on),
            "nan_fraction": self.nan_fraction,
            "nan_on": None if self.nan_on is None else list(self.nan_on),
            "latency": self.latency,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        """Build a plan from a JSON-decoded dict; unknown keys are rejected."""
        known = {"raise_on", "nan_fraction", "nan_on", "latency", "seed"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown fault-plan keys {sorted(unknown)}; expected {sorted(known)}"
            )
        kwargs = dict(payload)
        if kwargs.get("raise_on") is not None:
            kwargs["raise_on"] = tuple(kwargs["raise_on"])
        if kwargs.get("nan_on") is not None:
            kwargs["nan_on"] = tuple(kwargs["nan_on"])
        return cls(**kwargs)

    def describe(self) -> str:
        parts = []
        if self.raise_on:
            parts.append(f"raise on call(s) {list(self.raise_on)}")
        if self.nan_fraction > 0:
            where = "every call" if self.nan_on is None else f"call(s) {list(self.nan_on)}"
            parts.append(f"NaN-corrupt {self.nan_fraction:.0%} of scores on {where}")
        if self.latency > 0:
            parts.append(f"+{self.latency * 1e3:.0f}ms latency per call")
        return "; ".join(parts) if parts else "no faults"


#: Ordered phases of one lifecycle refit/swap cycle, as fired by
#: :class:`~repro.lifecycle.LifecycleManager` and
#: ``ScoringPipeline.swap_model``. ``assemble``/``label``/``refit``/
#: ``validate`` happen before any serving state is touched; ``stage``
#: (build spec/threshold/fallback), ``push`` (re-push spec to daemon or
#: shard workers) and ``flip`` (pointer swap) happen inside the swap.
SWAP_PHASES = ("assemble", "label", "refit", "validate", "stage", "push", "flip")


@dataclass(frozen=True)
class SwapFaultPlan:
    """Declarative description of injected hot-swap faults.

    Attributes
    ----------
    fail_phases:
        Swap phases (see :data:`SWAP_PHASES`) that raise
        :class:`InjectedFault` when reached.
    on_cycle:
        1-based refit-cycle indices the faults fire on; ``None`` = every
        cycle (so a retry after a rollback fails again).
    """

    fail_phases: Tuple[str, ...] = ()
    on_cycle: Optional[Tuple[int, ...]] = None

    def __post_init__(self):
        object.__setattr__(
            self, "fail_phases", tuple(str(p) for p in self.fail_phases)
        )
        unknown = set(self.fail_phases) - set(SWAP_PHASES)
        if unknown:
            raise ValueError(
                f"unknown swap phase(s) {sorted(unknown)}; "
                f"expected a subset of {list(SWAP_PHASES)}"
            )
        if self.on_cycle is not None:
            object.__setattr__(self, "on_cycle", tuple(int(c) for c in self.on_cycle))
            if any(c < 1 for c in self.on_cycle):
                raise ValueError("on_cycle indices are 1-based and must be >= 1")

    def to_dict(self) -> dict:
        return {
            "fail_phases": list(self.fail_phases),
            "on_cycle": None if self.on_cycle is None else list(self.on_cycle),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SwapFaultPlan":
        known = {"fail_phases", "on_cycle"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown swap-fault-plan keys {sorted(unknown)}; expected {sorted(known)}"
            )
        kwargs = dict(payload)
        if kwargs.get("fail_phases") is not None:
            kwargs["fail_phases"] = tuple(kwargs["fail_phases"])
        if kwargs.get("on_cycle") is not None:
            kwargs["on_cycle"] = tuple(kwargs["on_cycle"])
        return cls(**kwargs)

    def describe(self) -> str:
        if not self.fail_phases:
            return "no swap faults"
        when = "every cycle" if self.on_cycle is None else f"cycle(s) {list(self.on_cycle)}"
        return f"fail phase(s) {list(self.fail_phases)} on {when}"


class SwapFaultInjector:
    """Replays a :class:`SwapFaultPlan` against the lifecycle swap phases.

    The lifecycle manager calls :meth:`begin_cycle` at the start of each
    refit cycle and threads :meth:`fire` through the cycle (including
    into ``ScoringPipeline.swap_model`` as its ``fault_points`` hook);
    each reached phase that the plan marks raises
    :class:`InjectedFault`. ``fired`` records ``(cycle, phase)`` tuples
    for assertions.
    """

    def __init__(self, plan: SwapFaultPlan, telemetry=None):
        self.plan = plan
        self.telemetry = ensure_telemetry(telemetry)
        self.cycle = 0
        self.fired: list = []

    def begin_cycle(self) -> int:
        self.cycle += 1
        return self.cycle

    def fire(self, phase: str) -> None:
        """Raise :class:`InjectedFault` if the plan marks ``phase`` now."""
        if phase not in SWAP_PHASES:
            raise ValueError(f"unknown swap phase {phase!r}")
        plan = self.plan
        if phase not in plan.fail_phases:
            return
        if plan.on_cycle is not None and self.cycle not in plan.on_cycle:
            return
        self.fired.append((self.cycle, phase))
        self.telemetry.increment("resilience.fault.swap")
        self.telemetry.record_event(
            "resilience.fault.injected", kind="swap", phase=phase, cycle=self.cycle
        )
        raise InjectedFault(
            f"injected swap fault in phase {phase!r} (cycle {self.cycle})"
        )


def corrupt_rows(
    X: np.ndarray, fraction: float, rng: np.random.Generator
) -> np.ndarray:
    """Return a copy of ``X`` with a fraction of its *rows* set to NaN.

    At least one row is corrupted whenever ``fraction > 0`` and the batch
    is non-empty — the quarantine path under test should actually fire.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    X = np.array(X, dtype=np.float64, copy=True)
    if fraction == 0.0 or len(X) == 0:
        return X
    n_bad = max(int(round(fraction * len(X))), 1)
    bad = rng.choice(len(X), size=n_bad, replace=False)
    X[bad] = np.nan
    return X


class FaultyModel:
    """Chaos wrapper around a fitted model, driven by a :class:`FaultPlan`.

    The scoring entry points — ``decision_function`` and the fused
    serving call ``score_batch`` — are intercepted (they are the serving
    path's mandatory model calls); every other attribute —
    ``selector_``, ``predict_triclass``, ``m_``, ... — is delegated
    untouched, so the degraded fallback keeps working while the primary
    scorer misbehaves.

    Parameters
    ----------
    model:
        The fitted model to wrap.
    plan:
        The fault plan to replay.
    sleep:
        Injectable sleep function for the latency fault (defaults to
        ``time.sleep``); tests pass a recorder to stay instant.
    telemetry:
        Optional registry; each injected fault emits a
        ``resilience.fault.injected`` event.
    """

    def __init__(
        self,
        model,
        plan: FaultPlan,
        sleep: Callable[[float], None] = time.sleep,
        telemetry=None,
    ):
        self._model = model
        self.plan = plan
        self._sleep = sleep
        self._rng = np.random.default_rng(plan.seed)
        self.telemetry = ensure_telemetry(telemetry)
        self.calls = 0

    def __getattr__(self, name):
        return getattr(self._model, name)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self.calls += 1
        plan = self.plan
        if plan.latency > 0:
            self._sleep(plan.latency)
        if self.calls in plan.raise_on:
            self.telemetry.increment("resilience.fault.raises")
            self.telemetry.record_event(
                "resilience.fault.injected", kind="raise", call=self.calls
            )
            raise InjectedFault(f"injected scoring fault on call {self.calls}")
        scores = self._model.decision_function(X)
        if plan.nan_fraction > 0 and (plan.nan_on is None or self.calls in plan.nan_on):
            scores = np.array(scores, dtype=np.float64, copy=True)
            if len(scores):
                n_bad = max(int(round(plan.nan_fraction * len(scores))), 1)
                bad = self._rng.choice(len(scores), size=n_bad, replace=False)
                scores[bad] = np.nan
                self.telemetry.increment("resilience.fault.nan_scores", n_bad)
                self.telemetry.record_event(
                    "resilience.fault.injected",
                    kind="nan", call=self.calls, n_rows=int(n_bad),
                )
        return scores

    def score_batch(self, X: np.ndarray, strategy: str = "ed"):
        """Fused serving call, with the same fault machinery on the scores.

        Routed through :meth:`decision_function` so injected raises and
        NaN corruption hit the pipeline exactly as they would on the
        unfused path; the tri-class routing is delegated untouched.
        """
        scores = self.decision_function(X)
        routing = self._model.predict_triclass(X, strategy=strategy)
        return scores, routing
