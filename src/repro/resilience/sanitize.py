"""Input sanitization for the serving path.

A live stream feeds the detector whatever upstream produced: rows with
NaN/inf from broken feature joins, rows of the wrong width from schema
drift in a ragged payload. :func:`sanitize_batch` splits one incoming
batch into the clean sub-batch that is safe to score and the quarantined
rows that are not — the two index sets always partition the batch, which
is the invariant the property tests pin down.

The distinction between *row* problems and *batch* problems matters: a
ragged payload with a few short rows is row noise and is quarantined, but
a uniform 2-D batch whose width disagrees with the model is a wiring
mistake and raises a :class:`ValueError` naming both widths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class SanitizedBatch:
    """Outcome of sanitizing one incoming batch.

    ``kept`` and ``quarantined`` are index arrays into the *original*
    batch; together they partition ``range(n_total)``. ``X`` holds the
    kept rows (in original order) as a finite ``(len(kept), n_features)``
    float array.
    """

    X: np.ndarray
    kept: np.ndarray
    quarantined: np.ndarray

    @property
    def n_total(self) -> int:
        return len(self.kept) + len(self.quarantined)


def expected_width(model) -> int:
    """Feature width a fitted TargAD accepts.

    Read from the k-means centroids of the candidate-selection stage
    (always present after ``fit``/``load_model``), falling back to the
    first dense layer of the classifier.
    """
    selector = getattr(model, "selector_", None)
    if selector is not None and getattr(selector, "kmeans_", None) is not None:
        return int(selector.kmeans_.cluster_centers_.shape[1])
    network = getattr(model, "network_", None)
    if network is not None:
        for module in getattr(network, "modules", []):
            in_features = getattr(module, "in_features", None)
            if in_features is not None:
                return int(in_features)
    raise ValueError("cannot infer the model's feature width; is it fitted?")


def _sanitize_ragged(rows: Sequence, n_features: int) -> SanitizedBatch:
    kept, quarantined, clean = [], [], []
    for i, row in enumerate(rows):
        try:
            values = np.asarray(row, dtype=np.float64).ravel()
        except (TypeError, ValueError):
            quarantined.append(i)
            continue
        if values.size != n_features or not np.all(np.isfinite(values)):
            quarantined.append(i)
        else:
            kept.append(i)
            clean.append(values)
    X = (np.vstack(clean) if clean
         else np.empty((0, n_features), dtype=np.float64))
    return SanitizedBatch(
        X=X,
        kept=np.asarray(kept, dtype=np.int64),
        quarantined=np.asarray(quarantined, dtype=np.int64),
    )


def sanitize_batch(X_batch, n_features: int) -> SanitizedBatch:
    """Split a batch into scoreable rows and quarantined rows.

    Parameters
    ----------
    X_batch:
        A 2-D numeric array, or any sequence of row-likes (which may be
        ragged — rows of the wrong length are quarantined individually).
    n_features:
        The feature width the model expects (:func:`expected_width`).

    Raises
    ------
    ValueError
        If the batch is a *uniform* 2-D array whose width differs from
        ``n_features`` (every row is "wrong" the same way — that is a
        schema/wiring error, not row noise), or if the input cannot be
        interpreted as a batch of rows at all.
    """
    if n_features < 1:
        raise ValueError("n_features must be >= 1")
    try:
        arr = np.asarray(X_batch, dtype=np.float64)
    except (TypeError, ValueError):
        arr = None  # ragged / mixed payload: fall through to row-by-row
    if arr is not None and arr.ndim == 2:
        if arr.shape[1] != n_features and arr.shape[0] > 0:
            raise ValueError(
                f"batch has {arr.shape[1]} features, model expects {n_features}"
            )
        finite = np.all(np.isfinite(arr), axis=1)
        kept = np.flatnonzero(finite)
        return SanitizedBatch(
            X=arr[kept] if arr.shape[1] == n_features
            else np.empty((0, n_features), dtype=np.float64),
            kept=kept.astype(np.int64),
            quarantined=np.flatnonzero(~finite).astype(np.int64),
        )
    if arr is not None and arr.ndim == 0:
        raise ValueError("batch must be a sequence of rows, got a scalar")
    if arr is not None and arr.ndim > 2:
        raise ValueError(f"batch must be 2-D, got shape {arr.shape}")
    # 1-D numeric array: a single bare row is ambiguous with a column —
    # treat it as one row only when the width matches, else row-by-row
    # handling quarantines each scalar "row".
    if arr is not None and arr.ndim == 1 and arr.size == n_features and n_features > 1:
        rows: Sequence = [arr]
    else:
        rows = list(X_batch)
    return _sanitize_ragged(rows, n_features)
