"""Resilience layer: checkpoint/resume, circuit breaking, fault injection.

Production serving meets bad data and partial failures as a matter of
course — the paper's own premise is an unlabeled pool polluted by
anomalies nobody labeled. This package makes the pipeline survive them:

- :mod:`~repro.resilience.checkpoint` — periodic training checkpoints for
  ``TargAD.fit(..., checkpoint_dir=..., resume=True)`` with bit-identical
  resume;
- :mod:`~repro.resilience.breaker` — a closed/open/half-open
  :class:`CircuitBreaker` with a deterministic, injectable clock;
- :mod:`~repro.resilience.fallback` — :class:`ReconstructionFallback`,
  the degraded-mode scorer built from the candidate-selection
  autoencoders' Eq. 2 reconstruction error;
- :mod:`~repro.resilience.sanitize` — input sanitization that quarantines
  non-finite / wrong-width rows instead of crashing the batch;
- :mod:`~repro.resilience.faultinject` — declarative, seeded
  :class:`FaultPlan` chaos harness for tests and the ``repro resilience``
  CLI replay.

Everything emits ``resilience.*`` telemetry through the standard
:mod:`repro.obs` registry.
"""

from repro.core.persistence import ModelLoadError
from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    ManualClock,
)
from repro.resilience.checkpoint import (
    TrainingState,
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
    prune_checkpoints,
    save_checkpoint,
)
from repro.resilience.errors import (
    CheckpointError,
    InjectedFault,
    SwapError,
    TrainingDivergenceError,
)
from repro.resilience.fallback import ReconstructionFallback
from repro.resilience.faultinject import (
    SWAP_PHASES,
    FaultPlan,
    FaultyModel,
    SwapFaultInjector,
    SwapFaultPlan,
    corrupt_rows,
)
from repro.resilience.sanitize import SanitizedBatch, expected_width, sanitize_batch

__all__ = [
    "CLOSED",
    "CheckpointError",
    "CircuitBreaker",
    "FaultPlan",
    "FaultyModel",
    "HALF_OPEN",
    "InjectedFault",
    "ManualClock",
    "ModelLoadError",
    "OPEN",
    "ReconstructionFallback",
    "SWAP_PHASES",
    "SanitizedBatch",
    "SwapError",
    "SwapFaultInjector",
    "SwapFaultPlan",
    "TrainingDivergenceError",
    "TrainingState",
    "corrupt_rows",
    "expected_width",
    "latest_checkpoint",
    "list_checkpoints",
    "load_checkpoint",
    "prune_checkpoints",
    "sanitize_batch",
    "save_checkpoint",
]
