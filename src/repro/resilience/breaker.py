"""Circuit breaker for the serving path.

A classic closed → open → half-open state machine guarding the primary
scorer:

- **closed** — traffic flows; ``failure_threshold`` *consecutive* faults
  trip the breaker;
- **open** — the primary is not attempted at all until ``cooldown``
  seconds have elapsed;
- **half-open** — after the cooldown one probe batch at a time is let
  through; ``half_open_successes`` consecutive probe successes close the
  breaker, any probe failure re-opens it (and restarts the cooldown).

Time is injectable: the breaker never calls ``time.monotonic`` directly
but whatever ``clock`` callable it was given, so tests (and the CLI
replay) drive it with a :class:`ManualClock` and stay fully
deterministic. State changes emit ``resilience.breaker.*`` telemetry
events through the :mod:`repro.obs` registry.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.obs import ensure_telemetry

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Numeric encoding used for the ``resilience.breaker.state`` gauge.
STATE_CODES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}


class ManualClock:
    """A deterministic clock for tests and replays: advances only on demand."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        self._now += seconds
        return self._now


class CircuitBreaker:
    """Closed → open → half-open breaker with an injectable clock.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (while closed) that trip the breaker.
    cooldown:
        Seconds the breaker stays open before allowing half-open probes.
    half_open_successes:
        Consecutive successful probes required to close again.
    clock:
        Monotonic-time callable; defaults to ``time.monotonic``. Inject a
        :class:`ManualClock` for deterministic tests.
    telemetry:
        Optional :class:`~repro.obs.TelemetryRegistry` receiving the
        ``resilience.breaker.*`` events/counters. ``None`` = no-op.
    name:
        Label attached to every telemetry event (one registry may watch
        several breakers).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 30.0,
        half_open_successes: int = 1,
        clock: Optional[Callable[[], float]] = None,
        telemetry=None,
        name: str = "serve",
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown <= 0:
            raise ValueError("cooldown must be positive")
        if half_open_successes < 1:
            raise ValueError("half_open_successes must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.half_open_successes = half_open_successes
        self.name = name
        self._clock = clock if clock is not None else time.monotonic
        self.telemetry = ensure_telemetry(telemetry)
        self._state = CLOSED
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._opened_at: Optional[float] = None

    # -- state -----------------------------------------------------------
    def _poll(self) -> None:
        """Open → half-open once the cooldown has elapsed."""
        if self._state == OPEN and self._clock() - self._opened_at >= self.cooldown:
            self._transition(HALF_OPEN)
            self._probe_successes = 0

    @property
    def state(self) -> str:
        """Current state string: ``closed`` / ``open`` / ``half_open``."""
        self._poll()
        return self._state

    def allow(self) -> bool:
        """May the caller attempt the primary path right now?"""
        self._poll()
        return self._state != OPEN

    # -- outcome reporting ----------------------------------------------
    def record_success(self) -> None:
        """Report one successful primary call."""
        self._poll()
        self.telemetry.increment("resilience.breaker.successes")
        if self._state == HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_successes:
                self._consecutive_failures = 0
                self._transition(CLOSED, event="recover")
        elif self._state == CLOSED:
            self._consecutive_failures = 0
        # A success reported while OPEN (caller ignored allow()) is a no-op.

    def record_failure(self) -> None:
        """Report one failed primary call."""
        self._poll()
        self.telemetry.increment("resilience.breaker.failures")
        if self._state == HALF_OPEN:
            self._open(event="reopen")
        elif self._state == CLOSED:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._open(event="trip")
        # Failures while OPEN cannot happen through allow(); ignore them.

    def _open(self, event: str) -> None:
        self._opened_at = self._clock()
        self._probe_successes = 0
        self._transition(OPEN, event=event)

    def _transition(self, new_state: str, event: Optional[str] = None) -> None:
        old = self._state
        self._state = new_state
        self.telemetry.set_gauge("resilience.breaker.state", STATE_CODES[new_state])
        if event is not None:
            self.telemetry.increment(f"resilience.breaker.{event}s")
            self.telemetry.record_event(
                f"resilience.breaker.{event}",
                breaker=self.name,
                from_state=old,
                to_state=new_state,
                consecutive_failures=self._consecutive_failures,
            )

    def snapshot(self) -> dict:
        """Plain-dict view for dashboards and the CLI summary."""
        return {
            "name": self.name,
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "cooldown": self.cooldown,
            "half_open_successes": self.half_open_successes,
        }
