"""Exception types of the resilience layer.

Kept free of heavyweight imports so every other resilience module (and
test) can import them cheaply. :class:`~repro.core.persistence.ModelLoadError`
— the corrupt-artifact error — lives in :mod:`repro.core.persistence`
next to the archive reader and is re-exported from
:mod:`repro.resilience` for discoverability.
"""

from __future__ import annotations


class TrainingDivergenceError(RuntimeError):
    """Training produced non-finite losses and exhausted its retries.

    Raised by ``TargAD.fit`` after the non-finite-loss guard has rolled
    back to the last checkpoint and retried with learning-rate backoff
    the configured number of times without recovering.
    """


class CheckpointError(RuntimeError):
    """A training checkpoint could not be loaded or does not match.

    Covers corrupt/truncated checkpoint archives and checkpoints whose
    recorded workload (pool size, feature width, label count, classifier
    architecture) disagrees with the data passed to ``fit(resume=True)``.
    """


class SwapError(RuntimeError):
    """A model hot-swap failed and the previous generation was restored.

    Raised by ``ScoringPipeline.swap_model`` (and surfaced through the
    lifecycle manager as a rollback event) when staging or flipping the
    candidate model faults. The pipeline guarantees the old generation
    is serving when this propagates.
    """


class InjectedFault(RuntimeError):
    """The deterministic fault raised by a fault-injection plan.

    A distinct type so chaos tests can tell injected faults apart from
    genuine bugs surfacing during the same run.
    """
