"""Periodic training checkpoints for ``TargAD.fit``.

A checkpoint is a complete, self-contained snapshot of training at an
epoch boundary: the candidate-selection artifacts (k-means centroids,
per-cluster SAD autoencoders, the selection itself), the classifier
network, the optimizer's moment buffers, the Eq. 5 instance weights, the
loss/weight histories, the RNG state, and the epoch counter. Resuming
from it replays the remaining epochs *bit-for-bit identically* to an
uninterrupted run — candidate selection is skipped entirely and the
restored RNG continues the exact shuffle stream.

Files are ``ckpt-<epoch>.npz`` in the checkpoint directory, written
atomically through :func:`repro.core.persistence.atomic_savez` (same
JSON-header npz format as saved models); older checkpoints are pruned,
keeping the most recent few. Corrupt or mismatched checkpoints raise
:class:`~repro.resilience.errors.CheckpointError`.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.core import persistence
from repro.nn.train import optimizer_state as snapshot_optimizer_state
from repro.resilience.errors import CheckpointError

_CKPT_RE = re.compile(r"^ckpt-(\d+)\.npz$")


@dataclass
class TrainingState:
    """Everything ``fit(resume=True)`` needs to continue training.

    ``epoch`` counts *completed* classifier epochs; resume starts at that
    epoch index. ``selector``/``selection`` are fully rebuilt fitted
    objects; ``network_state`` stays raw (the model rebuilds its network —
    including any dropout modules — and loads the arrays into it).
    """

    epoch: int
    lr: float
    rollbacks: int
    rng_state: dict
    weights: np.ndarray
    loss_history: List[float]
    weight_history: List[np.ndarray]
    network_state: List[np.ndarray]
    optimizer_state: dict
    m: int
    k: int
    n_unlabeled: int
    n_labeled: int
    n_features: int
    config: dict
    selector: object = field(default=None, repr=False)
    selection: object = field(default=None, repr=False)


def checkpoint_path(directory: Union[str, Path], epoch: int) -> Path:
    return Path(directory) / f"ckpt-{epoch:05d}.npz"


def list_checkpoints(directory: Union[str, Path]) -> List[Path]:
    """Checkpoint files in ``directory``, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for entry in directory.iterdir():
        match = _CKPT_RE.match(entry.name)
        if match is not None:
            found.append((int(match.group(1)), entry))
    return [path for _, path in sorted(found)]


def _checkpoint_readable(path: Path) -> bool:
    """Can this archive actually be resumed from?

    A crash can leave a truncated/corrupt ``ckpt-*.npz`` behind (the
    atomic writer prevents it for the file being written, but not for a
    filesystem that lost blocks or an operator copy that was cut short).
    Continual refits resume unattended, so the newest *readable*
    checkpoint must win over a newer broken one.
    """
    try:
        header, _ = persistence.load_archive(path, kind="checkpoint")
    except (persistence.ModelLoadError, OSError):
        return False
    return header.get("kind") == "checkpoint"


def latest_checkpoint(
    directory: Union[str, Path], skip_corrupt: bool = True
) -> Optional[Path]:
    """Most recent *usable* checkpoint in ``directory``, or ``None``.

    With ``skip_corrupt`` (the default) unreadable or truncated archives
    are skipped, newest-first, so an interrupted write never wedges
    ``fit(resume=True)``; pass ``skip_corrupt=False`` to get the newest
    file regardless (and let :func:`load_checkpoint` raise its
    diagnostic :class:`~repro.resilience.errors.CheckpointError`).
    """
    checkpoints = list_checkpoints(directory)
    if not skip_corrupt:
        return checkpoints[-1] if checkpoints else None
    for path in reversed(checkpoints):
        if _checkpoint_readable(path):
            return path
    return None


def prune_checkpoints(directory: Union[str, Path], keep: int) -> List[Path]:
    """Delete all but the newest ``keep`` checkpoints; returns the removed.

    The continual-learning loop refits indefinitely, so without pruning
    the checkpoint directory grows one archive per refit forever.
    ``keep < 1`` disables pruning (keep everything).
    """
    removed: List[Path] = []
    if keep < 1:
        return removed
    for old in list_checkpoints(directory)[:-keep]:
        try:
            old.unlink()
            removed.append(old)
        except OSError:
            pass
    return removed


def save_checkpoint(
    directory: Union[str, Path],
    model,
    optimizer,
    rng: np.random.Generator,
    epoch: int,
    lr: float,
    rollbacks: int = 0,
    n_unlabeled: int = 0,
    n_labeled: int = 0,
    keep: int = 3,
) -> Path:
    """Write one checkpoint atomically and prune older ones.

    ``model`` is a mid-``fit`` TargAD whose selection stage has completed;
    ``epoch`` is the number of classifier epochs finished so far.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    header = {
        "format_version": persistence._FORMAT_VERSION,
        "kind": "checkpoint",
        "config": dataclasses.asdict(model.config),
        "m": model.m_,
        "k": model.k_,
        "epoch": int(epoch),
        "lr": float(lr),
        "rollbacks": int(rollbacks),
        "rng_state": rng.bit_generator.state,
        "n_unlabeled": int(n_unlabeled),
        "n_labeled": int(n_labeled),
    }
    arrays: dict = {}
    persistence.pack_selector(model, arrays, header)
    persistence.pack_module("classifier", model.network_, arrays)

    opt_state = snapshot_optimizer_state(optimizer)
    header["optimizer"] = {
        "type": type(optimizer).__name__,
        "lr": opt_state["lr"],
        "step_count": opt_state["step_count"],
        "slots": sorted(opt_state["slots"]),
    }
    for name, slot_arrays in opt_state["slots"].items():
        for i, value in enumerate(slot_arrays):
            arrays[f"opt:{name}:{i}"] = value

    weights = model._candidate_weights
    arrays["weights"] = (weights if weights is not None
                         else np.empty(0, dtype=np.float64))
    arrays["loss_history"] = np.asarray(model.loss_history, dtype=np.float64)
    if model.weight_history:
        arrays["weight_history"] = np.vstack(model.weight_history)
    else:
        arrays["weight_history"] = np.empty((0, len(arrays["weights"])))
    arrays["header"] = persistence.encode_header(header)

    path = checkpoint_path(directory, epoch)
    persistence.atomic_savez(path, arrays)

    prune_checkpoints(directory, keep)
    return path


def _unpack_list(prefix: str, archive) -> List[np.ndarray]:
    values = []
    i = 0
    while f"{prefix}:{i}" in archive:
        values.append(archive[f"{prefix}:{i}"])
        i += 1
    return values


def load_checkpoint(path: Union[str, Path]) -> TrainingState:
    """Read a checkpoint back into a :class:`TrainingState`.

    Raises
    ------
    CheckpointError
        On corrupt/truncated archives or archives that are not training
        checkpoints.
    """
    try:
        header, archive = persistence.load_archive(path, kind="checkpoint")
    except persistence.ModelLoadError as exc:
        raise CheckpointError(str(exc)) from exc
    if header.get("kind") != "checkpoint":
        raise CheckpointError(
            f"{path} is not a training checkpoint (kind={header.get('kind')!r}); "
            "did you point --checkpoint-dir at saved models?"
        )
    try:
        config = persistence.config_from_header(header)
        k = header["k"]
        selector, selection = persistence.unpack_selector(header, archive, config, k)

        slots = {
            name: _unpack_list(f"opt:{name}", archive)
            for name in header["optimizer"]["slots"]
        }
        optimizer_state = {
            "lr": header["optimizer"]["lr"],
            "step_count": header["optimizer"]["step_count"],
            "slots": slots,
        }
        weight_history = [row for row in archive["weight_history"]]
        return TrainingState(
            epoch=int(header["epoch"]),
            lr=float(header["lr"]),
            rollbacks=int(header["rollbacks"]),
            rng_state=header["rng_state"],
            weights=archive["weights"],
            loss_history=[float(x) for x in archive["loss_history"]],
            weight_history=weight_history,
            network_state=_unpack_list("classifier", archive),
            optimizer_state=optimizer_state,
            m=int(header["m"]),
            k=int(k),
            n_unlabeled=int(header["n_unlabeled"]),
            n_labeled=int(header["n_labeled"]),
            n_features=int(archive["kmeans_centers"].shape[1]),
            config=header["config"],
            selector=selector,
            selection=selection,
        )
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint {path} (format version {header.get('format_version')}) "
            f"is missing or mangles required entries: {exc}"
        ) from exc
