"""Degraded-mode scorer built from the candidate-selection autoencoders.

When the circuit breaker takes the primary classifier out of rotation,
serving must still produce a ranked alert queue. The candidate-selection
stage of a fitted TargAD already contains one autoencoder per behaviour
cluster trained on the (mostly normal) unlabeled pool, and its per-row
reconstruction error — Eq. (2), ``S^Rec`` — is a classical anomaly
score: normal traffic reconstructs well, anomalies do not.

:class:`ReconstructionFallback` rank-normalizes that error against a
calibration sample so degraded-mode scores live on the same ``[0, 1]``
scale as the primary Eq. (9) score, and sets its alert threshold so the
degraded queue flags (approximately) the same fraction of traffic the
calibrated primary threshold did. The fallback cannot separate target
from non-target anomalies — everything it flags goes to the analyst
queue, which is the conservative failure direction.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class ReconstructionFallback:
    """Eq. 2 reconstruction-error scorer calibrated to an alert fraction.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.TargAD` (only its candidate-selection
        autoencoders are used, so the fallback keeps working when the
        classifier network misbehaves).
    """

    def __init__(self, model):
        selector = getattr(model, "selector_", None)
        if selector is None or selector.selection_ is None:
            raise RuntimeError(
                "fallback scorer needs a fitted TargAD with its "
                "candidate-selection stage; call fit() or load_model() first"
            )
        self._selector = selector
        self._calibration: Optional[np.ndarray] = None
        self.threshold_: Optional[float] = None

    def calibrate(self, X_val: np.ndarray, alert_fraction: float) -> "ReconstructionFallback":
        """Fit the error ECDF on ``X_val`` and place the alert threshold.

        ``alert_fraction`` is the share of validation traffic the primary
        scorer alerts on; the fallback threshold is set so the same share
        of calibration rows would be flagged by reconstruction error.
        """
        if not 0.0 <= alert_fraction <= 1.0:
            raise ValueError("alert_fraction must be in [0, 1]")
        X_val = np.asarray(X_val, dtype=np.float64)
        if X_val.ndim != 2 or len(X_val) == 0:
            raise ValueError("X_val must be a non-empty 2-D array")
        errors = self._selector.reconstruction_error(X_val)
        self._calibration = np.sort(errors[np.isfinite(errors)])
        if len(self._calibration) == 0:
            raise ValueError("calibration reconstruction errors are all non-finite")
        self.threshold_ = 1.0 - alert_fraction
        return self

    def score(self, X: np.ndarray) -> np.ndarray:
        """Rank-normalized reconstruction error in ``[0, 1]``.

        A row's score is the fraction of calibration rows with a smaller
        or equal error, so ``score >= threshold_`` flags the top
        ``alert_fraction`` of the calibration distribution.
        """
        if self._calibration is None:
            raise RuntimeError("fallback is not calibrated; call calibrate() first")
        errors = self._selector.reconstruction_error(np.asarray(X, dtype=np.float64))
        ranks = np.searchsorted(self._calibration, errors, side="right")
        scores = ranks / len(self._calibration)
        # Non-finite reconstruction errors rank as maximally anomalous.
        return np.where(np.isfinite(errors), scores, 1.0)
