"""OOD scoring strategies used by TargAD's tri-class rule.

TargAD treats non-target anomalies as out-of-distribution: after the
Section III-C normality test routes an instance to the "anomalous" side,
one of these strategies decides whether it is a (in-distribution) target
anomaly or an (out-of-distribution) non-target anomaly.

All strategies expose ``ood_score(logits)`` where **higher = more OOD**,
and a calibration step that picks a threshold separating ID scores (from
labeled target anomalies) from OOD scores (from non-target anomaly
candidates) by maximizing balanced accuracy over candidate cut points.

- **MSP** (Hendrycks & Gimpel 2017): ``1 − max_j softmax(z)_j``. Confident
  predictions are ID.
- **ES** (Liu et al. 2020): the energy ``−logsumexp(z)``. ID instances
  have low energy under an OE-trained model.
- **ED** (He et al. 2022, SAFE-STUDENT): the energy *discrepancy*
  ``logsumexp(z_S) − max_{j∈S} z_j`` computed over a designated logit
  subset ``S`` (TargAD passes the first ``m`` target dims) — how much
  energy mass lies beyond the subset's dominant logit. A peaked target
  block gives ≈ 0 (an in-distribution target anomaly); a uniform one gives
  ``log |S|`` (the OE-calibrated signature of a non-target anomaly). Note
  that over *all* dims this statistic is a strictly monotone function of
  MSP (``MSP = 1 − exp(−ED)``) and adds nothing; the subset restriction is
  what lets ED ignore the normal-cluster logits and judge the part of the
  distribution that matters, which is the property the paper credits for
  its Table IV win.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

import numpy as np

from scipy.special import logsumexp


class OODStrategy:
    """Base class: score + threshold calibration."""

    name = "base"

    def __init__(self):
        self.threshold_: Optional[float] = None

    def ood_score(self, logits: np.ndarray) -> np.ndarray:
        """Per-row OOD-ness; higher = more out-of-distribution."""
        raise NotImplementedError

    def fit_threshold(self, id_logits: np.ndarray, ood_logits: np.ndarray) -> float:
        """Calibrate the ID/OOD cut from labeled examples of both sides.

        Maximizes balanced accuracy over midpoints of adjacent distinct
        scores (an exhaustive scan — score arrays here are small).
        """
        id_scores = self.ood_score(np.asarray(id_logits, dtype=np.float64))
        ood_scores = self.ood_score(np.asarray(ood_logits, dtype=np.float64))
        if len(id_scores) == 0 or len(ood_scores) == 0:
            raise ValueError("both ID and OOD calibration sets must be non-empty")
        all_scores = np.unique(np.concatenate([id_scores, ood_scores]))
        if len(all_scores) == 1:
            self.threshold_ = float(all_scores[0])
            return self.threshold_
        cuts = (all_scores[:-1] + all_scores[1:]) / 2.0
        best_cut, best_bal = cuts[0], -1.0
        for cut in cuts:
            tpr = float((ood_scores > cut).mean())   # OOD correctly flagged
            tnr = float((id_scores <= cut).mean())   # ID correctly passed
            balanced = 0.5 * (tpr + tnr)
            if balanced > best_bal:
                best_bal, best_cut = balanced, cut
        self.threshold_ = float(best_cut)
        return self.threshold_

    def is_ood(self, logits: np.ndarray) -> np.ndarray:
        """Boolean OOD mask using the calibrated threshold."""
        if self.threshold_ is None:
            raise RuntimeError("strategy is not calibrated; call fit_threshold() first")
        return self.ood_score(np.asarray(logits, dtype=np.float64)) > self.threshold_


class MaxSoftmaxProbability(OODStrategy):
    """MSP baseline: OOD score = 1 − max softmax probability."""

    name = "msp"

    def ood_score(self, logits: np.ndarray) -> np.ndarray:
        logits = np.asarray(logits, dtype=np.float64)
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        return 1.0 - probs.max(axis=1)


class EnergyScore(OODStrategy):
    """Energy score: OOD score = −logsumexp(logits) (high energy = OOD)."""

    name = "es"

    def __init__(self, temperature: float = 1.0):
        super().__init__()
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = temperature

    def ood_score(self, logits: np.ndarray) -> np.ndarray:
        logits = np.asarray(logits, dtype=np.float64)
        return -self.temperature * logsumexp(logits / self.temperature, axis=1)


class EnergyDiscrepancy(OODStrategy):
    """Energy discrepancy over a logit subset.

    ``OOD score = logsumexp(z_S) − max_{j∈S} z_j`` where ``S`` is the first
    ``n_dims`` logits (all logits when ``n_dims`` is None). TargAD passes
    ``n_dims = m`` so the statistic measures the peakedness of the target
    block only.
    """

    name = "ed"

    def __init__(self, temperature: float = 1.0, n_dims: Optional[int] = None):
        super().__init__()
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        if n_dims is not None and n_dims < 1:
            raise ValueError("n_dims must be >= 1")
        self.temperature = temperature
        self.n_dims = n_dims

    def ood_score(self, logits: np.ndarray) -> np.ndarray:
        logits = np.asarray(logits, dtype=np.float64)
        if self.n_dims is not None:
            if logits.shape[1] < self.n_dims:
                raise ValueError(f"logits have {logits.shape[1]} dims, need >= {self.n_dims}")
            logits = logits[:, : self.n_dims]
        scaled = logits / self.temperature
        return self.temperature * (logsumexp(scaled, axis=1) - scaled.max(axis=1))


STRATEGIES: Dict[str, Type[OODStrategy]] = {
    "msp": MaxSoftmaxProbability,
    "es": EnergyScore,
    "ed": EnergyDiscrepancy,
}


def get_strategy(name: str, **kwargs) -> OODStrategy:
    """Instantiate an OOD strategy by name ("msp", "es", "ed")."""
    key = name.lower()
    if key not in STRATEGIES:
        raise KeyError(f"unknown OOD strategy {name!r}; choices: {sorted(STRATEGIES)}")
    return STRATEGIES[key](**kwargs)
