"""Out-of-distribution strategies for tri-class separation (Section III-C)."""

from repro.ood.strategies import (
    STRATEGIES,
    EnergyDiscrepancy,
    EnergyScore,
    MaxSoftmaxProbability,
    OODStrategy,
    get_strategy,
)

__all__ = [
    "STRATEGIES",
    "EnergyDiscrepancy",
    "EnergyScore",
    "MaxSoftmaxProbability",
    "OODStrategy",
    "get_strategy",
]
