"""Inference-time scoring rules (Eq. 9 and Section III-C)."""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically-stable softmax over the last axis."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def target_anomaly_score(probs: np.ndarray, m: int) -> np.ndarray:
    """Eq. (9): ``S^tar(x) = max_{j <= m} p_j(x)``.

    Higher = more likely a target anomaly.
    """
    probs = np.asarray(probs, dtype=np.float64)
    if probs.ndim != 2 or probs.shape[1] <= m:
        raise ValueError("probs must be (n, m + k) with k >= 1")
    return probs[:, :m].max(axis=1)


def is_normal_rule(probs: np.ndarray, m: int, k: int) -> np.ndarray:
    """Section III-C normality test: ``Σ_{j>m} p_j > k / (m + k)``.

    Returns a boolean mask; True = classified normal, False = anomalous
    (target or non-target, to be separated by an OOD strategy).
    """
    probs = np.asarray(probs, dtype=np.float64)
    if probs.shape[1] != m + k:
        raise ValueError(f"probs must have m + k = {m + k} columns")
    normal_mass = probs[:, m:].sum(axis=1)
    return normal_mass > k / (m + k)
