"""Inference-time scoring rules (Eq. 9 and Section III-C)."""

from __future__ import annotations

import numpy as np

from repro.data.schema import KIND_NONTARGET, KIND_NORMAL, KIND_TARGET


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically-stable softmax over the last axis."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def target_anomaly_score(probs: np.ndarray, m: int) -> np.ndarray:
    """Eq. (9): ``S^tar(x) = max_{j <= m} p_j(x)``.

    Higher = more likely a target anomaly.
    """
    probs = np.asarray(probs, dtype=np.float64)
    if probs.ndim != 2 or probs.shape[1] <= m:
        raise ValueError("probs must be (n, m + k) with k >= 1")
    return probs[:, :m].max(axis=1)


def is_normal_rule(probs: np.ndarray, m: int, k: int) -> np.ndarray:
    """Section III-C normality test: ``Σ_{j>m} p_j > k / (m + k)``.

    Returns a boolean mask; True = classified normal, False = anomalous
    (target or non-target, to be separated by an OOD strategy).
    """
    probs = np.asarray(probs, dtype=np.float64)
    if probs.shape[1] != m + k:
        raise ValueError(f"probs must have m + k = {m + k} columns")
    normal_mass = probs[:, m:].sum(axis=1)
    return normal_mass > k / (m + k)


def route_from_logits(
    logits: np.ndarray,
    probs: np.ndarray,
    m: int,
    k: int,
    strategy,
) -> np.ndarray:
    """Tri-class routing (Section III-C) from precomputed logits/probs.

    Applies :func:`is_normal_rule`, then splits the anomalous side with
    a *calibrated* :class:`~repro.ood.OODStrategy` (OOD = non-target).
    ``strategy`` may also be a zero-argument callable returning one —
    it is invoked only when anomalous rows exist, which lets
    :class:`TargAD` defer strategy calibration until routing actually
    needs it. Shared by :meth:`TargAD.predict_triclass`/``score_batch``
    and the sharded serving workers, which carry the fitted strategy in
    their serialized scoring spec — one definition, identical routing
    on both paths. Returns the kind codes of :mod:`repro.data.schema`
    (0/1/2).
    """
    normal_mask = is_normal_rule(probs, m, k)
    result = np.full(len(logits), KIND_TARGET, dtype=np.int64)
    result[normal_mask] = KIND_NORMAL
    anomalous = ~normal_mask
    if anomalous.any():
        strat = strategy() if callable(strategy) else strategy
        ood_mask = strat.is_ood(logits[anomalous])
        anomalous_idx = np.flatnonzero(anomalous)
        result[anomalous_idx[ood_mask]] = KIND_NONTARGET
    return result
