"""Pseudo-label construction (Section III-B2).

The classifier has ``m + k`` output dimensions: the first ``m`` correspond
to the labeled target anomaly classes, the last ``k`` to the normal
behaviour groups discovered by k-means. Three pseudo-label forms exist:

- ``ỹ^t`` — one-hot in the first ``m`` dims for a labeled target anomaly;
- ``ỹ^n`` — one-hot in the last ``k`` dims for a normal candidate (indexed
  by its cluster);
- ``ỹ^o`` — the paper's modified outlier-exposure label
  ``(1/m, ..., 1/m, 0, ..., 0)`` for non-target anomaly candidates, which
  calibrates their prediction toward a uniform distribution over the target
  dims while asserting they are not normal.

``oe_uniform_pseudo_label`` is the *original* OE label
``(1/(m+k), ..., 1/(m+k))`` (Hendrycks et al. 2019), kept for ablations.
"""

from __future__ import annotations

import numpy as np


def _validate(m: int, k: int) -> None:
    if m < 1:
        raise ValueError("m (number of target classes) must be >= 1")
    if k < 1:
        raise ValueError("k (number of normal clusters) must be >= 1")


def target_pseudo_label(class_index: int, m: int, k: int) -> np.ndarray:
    """``ỹ^t``: one-hot at ``class_index`` within the first ``m`` dims."""
    _validate(m, k)
    if not 0 <= class_index < m:
        raise ValueError(f"class_index {class_index} out of range [0, {m})")
    label = np.zeros(m + k)
    label[class_index] = 1.0
    return label


def normal_pseudo_label(cluster_index: int, m: int, k: int) -> np.ndarray:
    """``ỹ^n``: one-hot at ``m + cluster_index`` (the cluster's own dim)."""
    _validate(m, k)
    if not 0 <= cluster_index < k:
        raise ValueError(f"cluster_index {cluster_index} out of range [0, {k})")
    label = np.zeros(m + k)
    label[m + cluster_index] = 1.0
    return label


def ood_pseudo_label(m: int, k: int) -> np.ndarray:
    """``ỹ^o``: TargAD's modified OE label ``(1/m, ..., 1/m, 0, ..., 0)``."""
    _validate(m, k)
    label = np.zeros(m + k)
    label[:m] = 1.0 / m
    return label


def oe_uniform_pseudo_label(m: int, k: int) -> np.ndarray:
    """Original OE label: uniform ``1/(m+k)`` over all dims (for ablation)."""
    _validate(m, k)
    return np.full(m + k, 1.0 / (m + k))


def target_pseudo_labels(y: np.ndarray, m: int, k: int) -> np.ndarray:
    """Vectorized ``ỹ^t`` for an array of 0-based target class labels."""
    y = np.asarray(y, dtype=np.int64)
    _validate(m, k)
    if len(y) and (y.min() < 0 or y.max() >= m):
        raise ValueError("target class labels out of range")
    labels = np.zeros((len(y), m + k))
    labels[np.arange(len(y)), y] = 1.0
    return labels


def normal_pseudo_labels(clusters: np.ndarray, m: int, k: int) -> np.ndarray:
    """Vectorized ``ỹ^n`` for an array of cluster indices."""
    clusters = np.asarray(clusters, dtype=np.int64)
    _validate(m, k)
    if len(clusters) and (clusters.min() < 0 or clusters.max() >= k):
        raise ValueError("cluster indices out of range")
    labels = np.zeros((len(clusters), m + k))
    labels[np.arange(len(clusters)), m + clusters] = 1.0
    return labels
