"""The weight-updating mechanism for non-target anomaly candidates.

``D_U^A`` is noisy: besides true non-target anomalies it contains target
anomalies and badly-reconstructed normal instances. The paper softens the
OE loss on such noise with per-instance weights:

- **Initialization (Eq. 5)** from reconstruction errors: normal instances
  reconstruct well (low ``S^Rec``) so they start with *high* weight — at
  this point the classifier knows nothing, and the high weight on normals
  is harmless because their OE pull is corrected within an epoch.
- **Update (Eq. 4)** from maximum softmax probability ``ε(x)``: as the
  classifier learns, normals and target anomalies among the candidates are
  predicted confidently (high ``ε``) and get *low* weight, while true
  non-target anomalies stay near-uniform (low ``ε``) and get *high*
  weight — exactly the behaviour Fig. 5 of the paper visualizes.

Both formulas are min-max normalizations of a "smaller is more non-target"
statistic, so weights live in [0, 1].
"""

from __future__ import annotations

import numpy as np


def _minmax_inverted(values: np.ndarray) -> np.ndarray:
    """``(max - v) / (max - min)``, the shared form of Eqs. 4 and 5.

    Degenerate case (all values equal) yields all-ones, i.e. uniform full
    weight — the neutral choice.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if len(values) == 0:
        return values.copy()
    vmax = values.max()
    vmin = values.min()
    span = vmax - vmin
    if span <= 0:
        return np.ones_like(values)
    return (vmax - values) / span


def initial_weights(reconstruction_errors: np.ndarray) -> np.ndarray:
    """Eq. (5): initialize candidate weights from ``S^Rec``."""
    return _minmax_inverted(reconstruction_errors)


def update_weights(candidate_probs: np.ndarray) -> np.ndarray:
    """Eq. (4): update candidate weights from softmax probabilities.

    Parameters
    ----------
    candidate_probs:
        ``(n_candidates, m + k)`` softmax outputs of the classifier on
        ``D_U^A``.
    """
    candidate_probs = np.asarray(candidate_probs, dtype=np.float64)
    if candidate_probs.ndim != 2:
        raise ValueError("candidate_probs must be 2-dimensional")
    epsilon = candidate_probs.max(axis=1)
    return _minmax_inverted(epsilon)
