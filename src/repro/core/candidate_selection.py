"""Candidate selection (Section III-B1, Algorithm 1 lines 1-7).

Partitions the unlabeled pool into ``k`` behaviour groups with k-means,
trains one SAD-regularized autoencoder per group (Eq. 1), scores every
unlabeled instance by reconstruction error (Eq. 2), and splits the pool at
the top-``α%`` error quantile into non-target anomaly candidates ``D_U^A``
and normal candidates ``D_U^N``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.cluster import KMeans, select_k_elbow
from repro.nn.autoencoder import SADAutoencoder
from repro.obs import ensure_telemetry


@dataclass
class CandidateSelection:
    """Output of the candidate-selection stage.

    Attributes
    ----------
    errors:
        Raw ``S^Rec`` per unlabeled instance (cluster-local autoencoder).
    selection_scores:
        The scores actually ranked for the α% cut (per-cluster standardized
        errors when ``normalize_errors`` is on, else identical to
        ``errors``). Also used to initialize the Eq. 5 weights, keeping
        cross-cluster comparability.
    cluster_labels:
        k-means assignment per unlabeled instance.
    candidate_mask:
        True for instances in ``D_U^A`` (top α% by selection score).
    threshold:
        The selection-score value at the α% cut.
    k:
        Number of clusters actually used.
    """

    errors: np.ndarray
    selection_scores: np.ndarray
    cluster_labels: np.ndarray
    candidate_mask: np.ndarray
    threshold: float
    k: int

    @property
    def candidate_indices(self) -> np.ndarray:
        """Indices of ``D_U^A`` within the unlabeled pool."""
        return np.flatnonzero(self.candidate_mask)

    @property
    def normal_indices(self) -> np.ndarray:
        """Indices of ``D_U^N`` within the unlabeled pool."""
        return np.flatnonzero(~self.candidate_mask)


class CandidateSelector:
    """k-means + per-cluster SAD autoencoders + α% thresholding.

    Parameters
    ----------
    k:
        Number of clusters; ``None`` selects it via the elbow method.
    alpha:
        Fraction of the unlabeled pool selected as candidates.
    eta:
        Eq. (1) trade-off for the labeled inverse-error term.
    ae_hidden, ae_lr, ae_batch_size, ae_epochs:
        Per-cluster autoencoder architecture/schedule.
    k_max:
        Elbow-method search bound.
    normalize_errors:
        Standardize reconstruction errors within each cluster before the
        global top-α% cut. Each cluster trains its own autoencoder, so raw
        error *scales* differ across clusters; without standardization the
        worst-fit cluster floods the candidate set with its tail normals.
        (The paper sorts raw errors; this refinement makes the per-AE
        "selection scores" comparable and is on by default.)
    random_state:
        Seed for clustering and autoencoder training.
    telemetry:
        Optional :class:`~repro.obs.TelemetryRegistry`; records the
        ``select.*`` timers/counters/events (per-cluster AE fit time,
        cluster sizes, candidate counts). ``None`` = no-op.
    """

    def __init__(
        self,
        k: Optional[int] = None,
        alpha: float = 0.05,
        eta: float = 1.0,
        ae_hidden: Sequence[int] = (64, 16),
        ae_lr: float = 1e-3,
        ae_batch_size: int = 256,
        ae_epochs: int = 30,
        k_max: int = 8,
        normalize_errors: bool = True,
        random_state: Optional[int] = None,
        telemetry=None,
    ):
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        self.telemetry = ensure_telemetry(telemetry)
        self.k = k
        self.alpha = alpha
        self.eta = eta
        self.ae_hidden = tuple(ae_hidden)
        self.ae_lr = ae_lr
        self.ae_batch_size = ae_batch_size
        self.ae_epochs = ae_epochs
        self.k_max = k_max
        self.normalize_errors = normalize_errors
        self.random_state = random_state

        self.kmeans_: Optional[KMeans] = None
        self.autoencoders_: List[SADAutoencoder] = []
        self.selection_: Optional[CandidateSelection] = None

    def fit(self, X_unlabeled: np.ndarray, X_labeled: Optional[np.ndarray] = None) -> CandidateSelection:
        """Run lines 1-7 of Algorithm 1 and return the selection."""
        with self.telemetry.timer("select.total"):
            return self._fit(X_unlabeled, X_labeled)

    def _fit(self, X_unlabeled: np.ndarray, X_labeled: Optional[np.ndarray]) -> CandidateSelection:
        X_unlabeled = np.asarray(X_unlabeled, dtype=np.float64)
        if X_unlabeled.ndim != 2 or len(X_unlabeled) < 2:
            raise ValueError("X_unlabeled must be a 2-D array with >= 2 rows")
        if X_labeled is not None:
            X_labeled = np.asarray(X_labeled, dtype=np.float64)

        k = self.k
        if k is None:
            k_cap = min(self.k_max, max(len(X_unlabeled) // 10, 1))
            k, _ = select_k_elbow(X_unlabeled, k_min=1, k_max=max(k_cap, 1),
                                  random_state=self.random_state)
        k = min(k, len(X_unlabeled))

        self.kmeans_ = KMeans(n_clusters=k, random_state=self.random_state)
        cluster_labels = self.kmeans_.fit_predict(X_unlabeled)

        errors = np.empty(len(X_unlabeled))
        self.autoencoders_ = []
        for cluster in range(k):
            member_idx = np.flatnonzero(cluster_labels == cluster)
            ae = SADAutoencoder(
                eta=self.eta,
                hidden_sizes=self.ae_hidden,
                lr=self.ae_lr,
                batch_size=self.ae_batch_size,
                epochs=self.ae_epochs,
                random_state=None if self.random_state is None else self.random_state + cluster,
            )
            if len(member_idx) == 0:
                self.autoencoders_.append(ae)
                continue
            start = time.perf_counter()
            ae.fit(X_unlabeled[member_idx], X_labeled)
            errors[member_idx] = ae.reconstruction_error(X_unlabeled[member_idx])
            elapsed = time.perf_counter() - start
            self.autoencoders_.append(ae)
            self.telemetry.observe("select.ae_fit", elapsed)
            if self.telemetry.enabled:
                self.telemetry.record_event(
                    "select.cluster",
                    cluster=cluster,
                    size=int(len(member_idx)),
                    seconds=elapsed,
                )

        selection_scores = self._standardize(errors, cluster_labels, k)
        candidate_mask, threshold = self._alpha_cut(selection_scores)

        self.selection_ = CandidateSelection(
            errors=errors,
            selection_scores=selection_scores,
            cluster_labels=cluster_labels,
            candidate_mask=candidate_mask,
            threshold=threshold,
            k=k,
        )
        n_candidates = int(candidate_mask.sum())
        if self.telemetry.enabled:
            self.telemetry.set_gauge("select.k", k)
            self.telemetry.set_gauge("select.alpha", self.alpha)
            self.telemetry.set_gauge("select.pool_size", len(X_unlabeled))
            self.telemetry.increment("select.candidates", n_candidates)
            self.telemetry.record_event(
                "select.done",
                pool_size=int(len(X_unlabeled)),
                k=int(k),
                alpha=float(self.alpha),
                n_candidates=int(n_candidates),
                threshold=threshold,
            )
        return self.selection_

    def _standardize(self, errors: np.ndarray, cluster_labels: np.ndarray,
                     k: int) -> np.ndarray:
        """Per-cluster standardized selection scores (or raw errors)."""
        if not self.normalize_errors:
            return errors
        selection_scores = errors.copy()
        for cluster in range(k):
            mask = cluster_labels == cluster
            if mask.any():
                mu = selection_scores[mask].mean()
                sd = selection_scores[mask].std()
                selection_scores[mask] = (selection_scores[mask] - mu) / (sd + 1e-12)
        return selection_scores

    def _alpha_cut(self, selection_scores: np.ndarray):
        """Top-α% cut over selection scores → (candidate_mask, threshold)."""
        n_candidates = max(int(round(self.alpha * len(selection_scores))), 1)
        order = np.argsort(-selection_scores, kind="mergesort")
        candidate_mask = np.zeros(len(selection_scores), dtype=bool)
        candidate_mask[order[:n_candidates]] = True
        threshold = float(selection_scores[order[n_candidates - 1]])
        return candidate_mask, threshold

    def select(self, X_unlabeled: np.ndarray) -> CandidateSelection:
        """Apply the *fitted* selector to a new unlabeled pool.

        Reuses the learned k-means partition and per-cluster autoencoders
        (no retraining): assigns each new instance to its cluster, scores
        it with that cluster's autoencoder, and re-applies the per-cluster
        standardization + top-α% cut on the new pool. This is the
        warm-start path for incremental refits — selection structure is
        carried over, only the pool membership changes.
        """
        if self.selection_ is None:
            raise RuntimeError("selector is not fitted; call fit() first")
        X_unlabeled = np.asarray(X_unlabeled, dtype=np.float64)
        if X_unlabeled.ndim != 2 or len(X_unlabeled) < 2:
            raise ValueError("X_unlabeled must be a 2-D array with >= 2 rows")
        k = self.selection_.k
        cluster_labels = self.assign_clusters(X_unlabeled)
        errors = self.reconstruction_error(X_unlabeled)
        selection_scores = self._standardize(errors, cluster_labels, k)
        candidate_mask, threshold = self._alpha_cut(selection_scores)
        return CandidateSelection(
            errors=errors,
            selection_scores=selection_scores,
            cluster_labels=cluster_labels,
            candidate_mask=candidate_mask,
            threshold=threshold,
            k=k,
        )

    def assign_clusters(self, X: np.ndarray) -> np.ndarray:
        """Map new instances to the learned clusters."""
        if self.kmeans_ is None:
            raise RuntimeError("selector is not fitted; call fit() first")
        return self.kmeans_.predict(np.asarray(X, dtype=np.float64))

    def reconstruction_error(self, X: np.ndarray) -> np.ndarray:
        """``S^Rec`` for new instances using their cluster's autoencoder."""
        if self.selection_ is None:
            raise RuntimeError("selector is not fitted; call fit() first")
        X = np.asarray(X, dtype=np.float64)
        clusters = self.assign_clusters(X)
        errors = np.empty(len(X))
        fallback = next((a for a in self.autoencoders_ if a.encoder is not None), None)
        for cluster in range(self.selection_.k):
            mask = clusters == cluster
            if mask.any():
                ae = self.autoencoders_[cluster]
                if ae.encoder is None:
                    # An empty training cluster: fall back to the first
                    # fitted autoencoder.
                    if fallback is None:
                        raise RuntimeError(
                            "no autoencoder was fitted (every training cluster "
                            "was empty); refit the selector before scoring"
                        )
                    ae = fallback
                errors[mask] = ae.reconstruction_error(X[mask])
        return errors
