"""TargAD's composite classifier loss (Eqs. 3, 6, 7, 8).

``L_clf = L_CE + λ1 · L_OE + λ2 · L_RE`` where

- ``L_CE`` (Eq. 3): standard cross-entropy on labeled target anomalies
  (against ``ỹ^t``) and normal candidates (against ``ỹ^n``);
- ``L_OE`` (Eq. 6): weighted cross-entropy of non-target anomaly candidates
  against the modified OE pseudo-label ``ỹ^o``, pulling their prediction
  toward a uniform distribution over the first ``m`` dims;
- ``L_RE`` (Eq. 7): negative entropy of predictions on ``D_L ∪ D_U^N``,
  i.e. an entropy-minimization regularizer that restores confidence eroded
  by the OE term during early epochs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autodiff import Tensor
from repro.nn.layers import Module
from repro.nn.losses import negative_entropy, soft_cross_entropy


def cross_entropy_term(
    logits_labeled: Optional[Tensor],
    targets_labeled: Optional[np.ndarray],
    logits_normal: Optional[Tensor],
    targets_normal: Optional[np.ndarray],
) -> Tensor:
    """Eq. (3): ``L_CE`` summed over the two supervised pools.

    Either pool may be absent in a batch; the term then covers the other.
    """
    terms = []
    if logits_labeled is not None and logits_labeled.shape[0] > 0:
        terms.append(soft_cross_entropy(logits_labeled, targets_labeled))
    if logits_normal is not None and logits_normal.shape[0] > 0:
        terms.append(soft_cross_entropy(logits_normal, targets_normal))
    if not terms:
        raise ValueError("L_CE needs at least one non-empty pool")
    total = terms[0]
    for term in terms[1:]:
        total = total + term
    return total


def outlier_exposure_term(
    logits_candidates: Tensor,
    ood_targets: np.ndarray,
    weights: np.ndarray,
) -> Tensor:
    """Eq. (6): weighted OE cross-entropy on ``D_U^A``."""
    return soft_cross_entropy(logits_candidates, ood_targets, weights=weights)


def entropy_regularizer_term(
    logits_labeled: Optional[Tensor],
    logits_normal: Optional[Tensor],
) -> Tensor:
    """Eq. (7): mean ``Σ p log p`` over ``D_L ∪ D_U^N``.

    The paper averages over the union; we combine the two per-pool means
    weighted by pool size to get the exact union mean per batch.
    """
    parts = []
    counts = []
    if logits_labeled is not None and logits_labeled.shape[0] > 0:
        parts.append(logits_labeled)
        counts.append(logits_labeled.shape[0])
    if logits_normal is not None and logits_normal.shape[0] > 0:
        parts.append(logits_normal)
        counts.append(logits_normal.shape[0])
    if not parts:
        raise ValueError("L_RE needs at least one non-empty pool")
    total_count = sum(counts)
    total = None
    for logits, count in zip(parts, counts):
        term = negative_entropy(logits) * (count / total_count)
        total = term if total is None else total + term
    return total


def classifier_loss(
    network: Module,
    X_labeled: np.ndarray,
    targets_labeled: np.ndarray,
    X_normal: np.ndarray,
    targets_normal: np.ndarray,
    X_candidates: np.ndarray,
    ood_targets: np.ndarray,
    weights: np.ndarray,
    lambda1: float = 0.1,
    lambda2: float = 1.0,
    use_oe: bool = True,
    use_re: bool = True,
) -> Tensor:
    """Eq. (8): the full ``L_clf`` for one batch.

    All ``X_*`` arguments are batch slices; empty slices are tolerated
    everywhere except for a batch that is empty in *all three* pools.
    """
    logits_labeled = network(Tensor(X_labeled)) if len(X_labeled) else None
    logits_normal = network(Tensor(X_normal)) if len(X_normal) else None

    loss = cross_entropy_term(logits_labeled, targets_labeled, logits_normal, targets_normal)
    if use_oe and lambda1 > 0 and len(X_candidates):
        logits_candidates = network(Tensor(X_candidates))
        loss = loss + lambda1 * outlier_exposure_term(logits_candidates, ood_targets, weights)
    if use_re and lambda2 > 0:
        loss = loss + lambda2 * entropy_regularizer_term(logits_labeled, logits_normal)
    return loss
