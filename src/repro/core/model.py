"""The TargAD estimator (Algorithm 1).

Usage::

    model = TargAD(TargADConfig(k=4, random_state=0))
    model.fit(X_unlabeled, X_labeled, y_labeled)
    scores = model.decision_function(X_test)   # Eq. 9, higher = target
    triclass = model.predict_triclass(X_test)  # 0 normal / 1 target / 2 non-target
"""

from __future__ import annotations

import copy
import dataclasses
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from repro.core.candidate_selection import CandidateSelection, CandidateSelector
from repro.core.config import TargADConfig
from repro.core.losses import classifier_loss
from repro.core.pseudo_labels import (
    normal_pseudo_labels,
    oe_uniform_pseudo_label,
    ood_pseudo_label,
    target_pseudo_labels,
)
from repro.core.scoring import route_from_logits, softmax, target_anomaly_score
from repro.core.weighting import initial_weights, update_weights
from repro.nn.layers import Sequential, mlp
from repro.nn.optimizers import Adam
from repro.nn.train import forward_in_batches
from repro.obs import ensure_telemetry
from repro.ood import OODStrategy, get_strategy


def _pool_slices(sizes: List[int], n_batches: int, rng: np.random.Generator) -> List[List[np.ndarray]]:
    """Shuffle each pool and split it into ``n_batches`` contiguous slices.

    Every batch mixes all pools proportionally, so each gradient step sees
    labeled anomalies, normal candidates, and non-target candidates — the
    per-pool means of Eq. (8) are approximated per batch.
    """
    streams = []
    for size in sizes:
        indices = rng.permutation(size)
        streams.append(np.array_split(indices, n_batches))
    return streams


@dataclass
class WarmStart:
    """Donor artifacts for an incremental refit.

    ``selector`` is a *fitted* :class:`CandidateSelector` whose clustering
    and per-cluster autoencoders are reused as-is (only the α% cut is
    re-applied on the new pool via :meth:`CandidateSelector.select`);
    ``network_state`` initializes the classifier instead of random init.
    Built by :meth:`TargAD.incremental_fit` — construct directly only for
    custom refit schemes.
    """

    selector: CandidateSelector
    network_state: List[np.ndarray]


class TargAD:
    """Target-class anomaly detector (the paper's model).

    Parameters
    ----------
    config:
        A :class:`~repro.core.config.TargADConfig`; keyword overrides may
        be passed directly (``TargAD(alpha=0.1, random_state=3)``).
    telemetry:
        Optional :class:`~repro.obs.TelemetryRegistry`; when set, ``fit``
        records the ``fit.*``/``train.*`` timers, per-epoch loss and
        Eq. 4/5 weight-distribution events, and batch throughput, and the
        candidate-selection stage records its ``select.*`` series into the
        same registry. ``None`` (default) is a shared no-op with
        negligible overhead.
    """

    def __init__(self, config: Optional[TargADConfig] = None, telemetry=None, **overrides):
        if config is None:
            config = TargADConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config object or keyword overrides, not both")
        self.config = config
        self.telemetry = ensure_telemetry(telemetry)

        self.network_: Optional[Sequential] = None
        self.selector_: Optional[CandidateSelector] = None
        self.selection_: Optional[CandidateSelection] = None
        self.m_: Optional[int] = None
        self.k_: Optional[int] = None
        self.loss_history: List[float] = []
        self.weight_history: List[np.ndarray] = []
        self._candidate_weights: Optional[np.ndarray] = None
        self._strategies: dict = {}
        self._calibration_logits: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        X_unlabeled: np.ndarray,
        X_labeled: np.ndarray,
        y_labeled: np.ndarray,
        epoch_callback: Optional[Callable[[int, "TargAD"], None]] = None,
        *,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 1,
        resume: bool = False,
        max_rollbacks: int = 3,
        lr_backoff: float = 0.5,
        warm_start: Optional[WarmStart] = None,
    ) -> "TargAD":
        """Train per Algorithm 1, with optional checkpointing and resume.

        Parameters
        ----------
        X_unlabeled:
            ``D_U`` — the unlabeled pool (mostly normal, contaminated).
        X_labeled, y_labeled:
            ``D_L`` — labeled target anomalies with 0-based class labels in
            ``[0, m)``.
        epoch_callback:
            Optional hook called after every classifier epoch (used by the
            convergence experiments, Fig. 3). The finished epoch is already
            checkpointed when the hook runs, so a crash inside it loses
            nothing.
        checkpoint_dir:
            Directory for periodic training checkpoints (see
            :mod:`repro.resilience.checkpoint`). ``None`` disables disk
            checkpoints; the in-memory rollback guard still runs.
        checkpoint_every:
            Epoch interval between checkpoints (both the on-disk files and
            the in-memory rollback snapshot).
        resume:
            Resume from the latest checkpoint in ``checkpoint_dir`` (if one
            exists — otherwise training starts from scratch). Candidate
            selection is skipped and the run continues bit-for-bit where
            it stopped; requires the same data and config.
        max_rollbacks:
            Non-finite-loss guard budget: how many times a diverged epoch
            may be rolled back (with the learning rate multiplied by
            ``lr_backoff``) before ``fit`` raises
            :class:`~repro.resilience.errors.TrainingDivergenceError`.
        lr_backoff:
            Learning-rate multiplier applied on each rollback.
        warm_start:
            Donor artifacts from a previously fitted model (see
            :class:`WarmStart` / :meth:`incremental_fit`). The donor's
            selector is applied to the new pool instead of re-clustering
            and re-training autoencoders, and the classifier starts from
            the donor's weights. A checkpoint restored via ``resume``
            takes precedence over ``warm_start``.
        """
        from repro.resilience.checkpoint import (
            latest_checkpoint,
            load_checkpoint,
            save_checkpoint,
        )
        from repro.resilience.errors import TrainingDivergenceError

        cfg = self.config
        fit_start = time.perf_counter()
        X_unlabeled = np.asarray(X_unlabeled, dtype=np.float64)
        X_labeled = np.asarray(X_labeled, dtype=np.float64)
        y_labeled = np.asarray(y_labeled, dtype=np.int64)
        if len(X_labeled) == 0:
            raise ValueError("TargAD requires at least one labeled target anomaly")
        if len(X_labeled) != len(y_labeled):
            raise ValueError("X_labeled and y_labeled length mismatch")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if max_rollbacks < 0:
            raise ValueError("max_rollbacks must be >= 0")
        if not 0.0 < lr_backoff < 1.0:
            raise ValueError("lr_backoff must be in (0, 1)")
        if resume and checkpoint_dir is None:
            raise ValueError("resume=True requires checkpoint_dir")
        m = int(y_labeled.max()) + 1
        self.m_ = m

        restored = None
        if resume:
            ckpt_path = latest_checkpoint(checkpoint_dir)
            if ckpt_path is not None:
                restored = load_checkpoint(ckpt_path)
                self._validate_checkpoint(restored, X_unlabeled, X_labeled, m)
                self.telemetry.increment("resilience.checkpoint.resumes")
                self.telemetry.record_event(
                    "resilience.checkpoint.resumed",
                    path=str(ckpt_path),
                    epoch=restored.epoch,
                )

        # --- Lines 1-7: candidate selection ----------------------------
        if restored is None and warm_start is not None:
            # Incremental refit: carry the donor's selection structure
            # over and only re-apply the α% cut on the new pool.
            self.selector_ = warm_start.selector
            selection = self.selector_.select(X_unlabeled)
            self.selection_ = selection
            self.telemetry.increment("fit.warm_starts")
            self.telemetry.observe(
                "fit.candidate_selection", time.perf_counter() - fit_start
            )
        elif restored is None:
            self.selector_ = CandidateSelector(
                k=cfg.k,
                alpha=cfg.alpha,
                eta=cfg.eta,
                ae_hidden=cfg.ae_hidden,
                ae_lr=cfg.ae_lr,
                ae_batch_size=cfg.ae_batch_size,
                ae_epochs=cfg.ae_epochs,
                k_max=cfg.k_max,
                random_state=cfg.random_state,
                telemetry=self.telemetry if self.telemetry.enabled else None,
            )
            selection = self.selector_.fit(X_unlabeled, X_labeled)
            self.selection_ = selection
            self.telemetry.observe(
                "fit.candidate_selection", time.perf_counter() - fit_start
            )
        else:
            # The selection stage is restored verbatim from the checkpoint.
            self.selector_ = restored.selector
            selection = restored.selection
            self.selection_ = selection
        k = selection.k
        self.k_ = k

        candidate_idx = selection.candidate_indices
        normal_idx = selection.normal_indices
        X_candidates = X_unlabeled[candidate_idx]
        X_normal = X_unlabeled[normal_idx]

        # --- Pseudo-labels ---------------------------------------------
        targets_labeled = target_pseudo_labels(y_labeled, m, k)
        normal_clusters = selection.cluster_labels[normal_idx]
        targets_normal = normal_pseudo_labels(normal_clusters, m, k)
        if cfg.oe_label_style == "uniform":
            ood_targets_row = oe_uniform_pseudo_label(m, k)
        else:
            ood_targets_row = ood_pseudo_label(m, k)
        ood_targets = np.tile(ood_targets_row, (len(X_candidates), 1))

        # --- Lines 8-17: classifier training ---------------------------
        rng = np.random.default_rng(
            None if cfg.random_state is None else cfg.random_state + 10_000
        )
        self.network_ = mlp(
            [X_unlabeled.shape[1], *cfg.clf_hidden, m + k], activation="relu", rng=rng
        )
        if cfg.clf_dropout > 0.0:
            # Insert Dropout after each hidden Activation (not the output).
            from repro.nn.layers import Activation
            from repro.nn.regularization import Dropout

            with_dropout = []
            for module in self.network_.modules:
                with_dropout.append(module)
                if isinstance(module, Activation):
                    with_dropout.append(Dropout(cfg.clf_dropout, rng=rng))
            self.network_.modules = with_dropout
        if restored is None and warm_start is not None:
            self.network_.load_state_dict(warm_start.network_state)
        optimizer = Adam(self.network_.parameters(), lr=cfg.clf_lr)

        total = len(X_labeled) + len(X_normal) + len(X_candidates)
        n_batches = max(int(np.ceil(total / cfg.clf_batch_size)), 1)

        self.loss_history = []
        self.weight_history = []
        weights = (
            initial_weights(selection.selection_scores[candidate_idx])
            if cfg.use_weighting
            else np.ones(len(X_candidates))
        )
        self._candidate_weights = weights
        self.weight_history.append(weights.copy())

        lr = cfg.clf_lr
        rollbacks = 0
        start_epoch = 0
        if restored is not None:
            from repro.nn.train import load_optimizer_state

            self.network_.load_state_dict(restored.network_state)
            load_optimizer_state(optimizer, restored.optimizer_state)
            rng.bit_generator.state = copy.deepcopy(restored.rng_state)
            weights = np.asarray(restored.weights, dtype=np.float64)
            self._candidate_weights = weights
            self.loss_history = list(restored.loss_history)
            self.weight_history = [
                np.asarray(w, dtype=np.float64) for w in restored.weight_history
            ]
            start_epoch = restored.epoch
            lr = restored.lr
            rollbacks = restored.rollbacks
            optimizer.lr = lr

        from repro.nn.regularization import set_training

        def checkpoint_args():
            return dict(
                n_unlabeled=len(X_unlabeled), n_labeled=len(X_labeled)
            )

        snapshot = self._take_training_snapshot(
            optimizer, rng, weights, lr, rollbacks, start_epoch
        )
        if checkpoint_dir is not None and restored is None:
            save_checkpoint(
                checkpoint_dir, self, optimizer, rng, epoch=start_epoch,
                lr=lr, rollbacks=rollbacks, **checkpoint_args(),
            )
            self.telemetry.increment("resilience.checkpoint.saves")

        train_start = time.perf_counter()
        epoch = start_epoch
        while epoch < cfg.clf_epochs:
            epoch_start = time.perf_counter()
            diverged = False
            if epoch > 0 and cfg.use_weighting and len(X_candidates):
                set_training(self.network_, False)
                probs = softmax(forward_in_batches(self.network_, X_candidates))
                set_training(self.network_, True)
                new_weights = update_weights(probs)
                if not np.all(np.isfinite(new_weights)):
                    diverged = True  # poisoned network; weights are garbage
                else:
                    weights = new_weights
                    self._candidate_weights = weights
                    self.weight_history.append(weights.copy())

            epoch_loss, batches, rows = 0.0, 0, 0
            if not diverged:
                streams = _pool_slices(
                    [len(X_labeled), len(X_normal), len(X_candidates)], n_batches, rng
                )
                # D_L is tiny (a few hundred rows at most); guarantee every
                # batch sees a handful of labeled anomalies by oversampling,
                # the standard practice for semi-supervised AD (cf. DevNet).
                min_labeled = min(8, len(X_labeled))
                for b in range(n_batches):
                    idx_l = streams[0][b]
                    if len(idx_l) < min_labeled:
                        idx_l = rng.integers(0, len(X_labeled), size=min_labeled)
                    idx_n = streams[1][b]
                    idx_a = streams[2][b]
                    if len(idx_l) == 0 and len(idx_n) == 0:
                        continue  # L_CE / L_RE need at least one supervised row
                    optimizer.zero_grad()
                    loss = classifier_loss(
                        self.network_,
                        X_labeled[idx_l],
                        targets_labeled[idx_l],
                        X_normal[idx_n],
                        targets_normal[idx_n],
                        X_candidates[idx_a],
                        ood_targets[idx_a],
                        weights[idx_a],
                        lambda1=cfg.lambda1,
                        lambda2=cfg.lambda2,
                        use_oe=cfg.use_oe_loss,
                        use_re=cfg.use_re_loss,
                    )
                    loss_value = float(loss.data)
                    if not np.isfinite(loss_value):
                        diverged = True  # never step through a NaN/inf loss
                        break
                    loss.backward()
                    optimizer.step()
                    epoch_loss += loss_value
                    batches += 1
                    rows += len(idx_l) + len(idx_n) + len(idx_a)

            if diverged:
                rollbacks += 1
                self.telemetry.increment("resilience.train.rollbacks")
                self.telemetry.record_event(
                    "resilience.train.rollback",
                    epoch=epoch, lr=lr, rollbacks=rollbacks,
                )
                if rollbacks > max_rollbacks:
                    raise TrainingDivergenceError(
                        f"non-finite training loss at epoch {epoch} persisted "
                        f"through {max_rollbacks} rollback(s) with learning-rate "
                        f"backoff (last lr {lr:.3g}); inspect the training data "
                        "for extreme values or lower clf_lr"
                    )
                lr *= lr_backoff
                weights = self._restore_training_snapshot(snapshot, optimizer, rng, lr)
                epoch = snapshot["epoch"]
                continue

            self.loss_history.append(epoch_loss / max(batches, 1))
            if self.telemetry.enabled:
                self._record_epoch_telemetry(
                    epoch, batches, rows, time.perf_counter() - epoch_start
                )
            epoch += 1
            if epoch % checkpoint_every == 0 or epoch == cfg.clf_epochs:
                snapshot = self._take_training_snapshot(
                    optimizer, rng, weights, lr, rollbacks, epoch
                )
                if checkpoint_dir is not None:
                    save_checkpoint(
                        checkpoint_dir, self, optimizer, rng, epoch=epoch,
                        lr=lr, rollbacks=rollbacks, **checkpoint_args(),
                    )
                    self.telemetry.increment("resilience.checkpoint.saves")
            if epoch_callback is not None:
                epoch_callback(epoch - 1, self)
        self.telemetry.observe("fit.classifier", time.perf_counter() - train_start)

        # Training done: dropout (if any) stays off for all inference.
        set_training(self.network_, False)
        calibration_start = time.perf_counter()

        # Calibration material for the tri-class OOD strategies: labeled
        # target anomalies are ID; for OOD we use only the *high-weight*
        # candidates — the weight mechanism (Eq. 4) concentrates weight on
        # true non-target anomalies, so filtering at the median weight
        # removes most of the target/normal noise from the OOD side.
        id_logits = forward_in_batches(self.network_, X_labeled)
        if len(X_candidates):
            reliable = weights >= np.median(weights) if len(X_candidates) > 1 else np.ones(1, bool)
            ood_logits = forward_in_batches(self.network_, X_candidates[reliable])
        else:
            ood_logits = np.empty((0, m + k))
        self._calibration_logits = (id_logits, ood_logits)
        self._strategies = {}
        self.telemetry.observe("fit.calibration", time.perf_counter() - calibration_start)
        self.telemetry.observe("fit.total", time.perf_counter() - fit_start)
        return self

    def incremental_fit(
        self,
        X_unlabeled: np.ndarray,
        X_labeled: np.ndarray,
        y_labeled: np.ndarray,
        *,
        donor: "TargAD",
        epochs: Optional[int] = None,
        **fit_kwargs,
    ) -> "TargAD":
        """Warm-started refit from a fitted ``donor`` model.

        The continual-learning entry point: reuses the donor's candidate
        selector (k-means partition + per-cluster autoencoders are *not*
        retrained; the α% cut is re-applied to the new pool) and starts
        the classifier from the donor's weights, training for ``epochs``
        classifier epochs (default: this model's configured
        ``clf_epochs``). All other ``fit`` keywords (``checkpoint_dir``,
        ``resume``, rollback knobs, ...) pass through unchanged.

        The donor must have been trained on the same feature width and
        the refit labels must cover the same ``m`` target classes — a
        changed label space invalidates the donor's output head, so that
        case raises ``ValueError`` and callers should retrain from
        scratch.
        """
        from repro.resilience.sanitize import expected_width

        if donor.network_ is None or donor.selector_ is None:
            raise RuntimeError("donor model is not fitted; call fit() first")
        y_labeled = np.asarray(y_labeled, dtype=np.int64)
        if len(y_labeled) == 0:
            raise ValueError("incremental_fit requires at least one labeled target anomaly")
        m = int(y_labeled.max()) + 1
        if m != donor.m_:
            raise ValueError(
                f"refit labels cover {m} target classes but the donor was "
                f"trained with {donor.m_}; a changed label space needs a "
                "from-scratch fit()"
            )
        X_unlabeled = np.asarray(X_unlabeled, dtype=np.float64)
        width = expected_width(donor)
        if X_unlabeled.ndim != 2 or X_unlabeled.shape[1] != width:
            raise ValueError(
                f"refit pool has width {X_unlabeled.shape[1] if X_unlabeled.ndim == 2 else '?'} "
                f"but the donor expects {width} features"
            )
        if epochs is not None:
            if epochs < 1:
                raise ValueError("epochs must be >= 1")
            self.config = dataclasses.replace(self.config, clf_epochs=int(epochs))
        warm = WarmStart(
            selector=donor.selector_,
            network_state=donor.network_.state_dict(),
        )
        return self.fit(
            X_unlabeled, X_labeled, y_labeled, warm_start=warm, **fit_kwargs
        )

    # ------------------------------------------------------------------
    # Resilience plumbing (checkpoint/resume + non-finite-loss rollback)
    # ------------------------------------------------------------------
    def _take_training_snapshot(
        self, optimizer, rng, weights, lr, rollbacks, epoch
    ) -> dict:
        """In-memory epoch-boundary snapshot for the rollback guard."""
        from repro.nn.train import optimizer_state

        return {
            "epoch": epoch,
            "lr": lr,
            "rollbacks": rollbacks,
            "network": self.network_.state_dict(),
            "optimizer": optimizer_state(optimizer),
            "rng": copy.deepcopy(rng.bit_generator.state),
            "weights": weights.copy(),
            "n_loss": len(self.loss_history),
            "n_weight_history": len(self.weight_history),
        }

    def _restore_training_snapshot(self, snapshot, optimizer, rng, lr) -> np.ndarray:
        """Rewind training to ``snapshot``; returns the restored weights.

        ``lr`` (the backed-off learning rate) overrides the snapshot's —
        retrying at the rate that just diverged would diverge again.
        """
        from repro.nn.train import load_optimizer_state

        self.network_.load_state_dict(snapshot["network"])
        load_optimizer_state(optimizer, snapshot["optimizer"])
        optimizer.lr = lr
        rng.bit_generator.state = copy.deepcopy(snapshot["rng"])
        del self.loss_history[snapshot["n_loss"]:]
        del self.weight_history[snapshot["n_weight_history"]:]
        weights = snapshot["weights"].copy()
        self._candidate_weights = weights
        return weights

    def _validate_checkpoint(self, state, X_unlabeled, X_labeled, m) -> None:
        """A checkpoint must match the workload it is resumed against."""
        from repro.resilience.errors import CheckpointError

        import dataclasses as _dc

        problems = []
        if state.n_unlabeled != len(X_unlabeled):
            problems.append(
                f"unlabeled pool size {len(X_unlabeled)} != checkpoint {state.n_unlabeled}"
            )
        if state.n_features != X_unlabeled.shape[1]:
            problems.append(
                f"feature width {X_unlabeled.shape[1]} != checkpoint {state.n_features}"
            )
        if state.n_labeled != len(X_labeled):
            problems.append(
                f"labeled set size {len(X_labeled)} != checkpoint {state.n_labeled}"
            )
        if state.m != m:
            problems.append(f"target-class count {m} != checkpoint {state.m}")
        current = _dc.asdict(self.config)
        saved = {
            key: tuple(value) if isinstance(value, list) else value
            for key, value in state.config.items()
        }
        current = {
            key: tuple(value) if isinstance(value, list) else value
            for key, value in current.items()
        }
        differing = sorted(
            key for key in set(current) | set(saved)
            if current.get(key) != saved.get(key)
        )
        if differing:
            problems.append(f"config fields differ: {differing}")
        if problems:
            raise CheckpointError(
                "checkpoint does not match this fit() call — "
                + "; ".join(problems)
            )

    def _record_epoch_telemetry(self, epoch: int, batches: int, rows: int, seconds: float) -> None:
        """One ``train.epoch`` timer sample + structured event per epoch.

        The event carries the Eq. 4/5 weight-distribution summary the
        operator needs to judge whether pseudo-label noise is being
        down-weighted: mean/std and the fraction of candidates sitting
        strictly above the median weight.
        """
        weights = self._candidate_weights
        rows_per_sec = rows / seconds if seconds > 0 else 0.0
        self.telemetry.observe("train.epoch", seconds)
        self.telemetry.increment("train.epochs")
        self.telemetry.increment("train.batches", batches)
        self.telemetry.increment("train.rows", rows)
        self.telemetry.set_gauge("train.rows_per_sec", rows_per_sec)
        fields = {
            "epoch": epoch,
            "loss": self.loss_history[-1],
            "batches": batches,
            "rows": rows,
            "rows_per_sec": rows_per_sec,
        }
        if weights is not None and len(weights):
            median = float(np.median(weights))
            fields.update(
                weight_mean=float(weights.mean()),
                weight_std=float(weights.std()),
                weight_frac_above_median=float((weights > median).mean()),
            )
        self.telemetry.record_event("train.epoch", **fields)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if self.network_ is None:
            raise RuntimeError("TargAD is not fitted; call fit() first")

    def logits(self, X: np.ndarray) -> np.ndarray:
        """Raw classifier outputs, shape ``(n, m + k)``."""
        self._check_fitted()
        return forward_in_batches(self.network_, np.asarray(X, dtype=np.float64))

    def predict_proba_full(self, X: np.ndarray) -> np.ndarray:
        """Full ``(m + k)``-way softmax distribution per instance."""
        return softmax(self.logits(X))

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Eq. (9): target-anomaly score; higher = more likely target."""
        return target_anomaly_score(self.predict_proba_full(X), self.m_)

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Binary prediction: 1 = target anomaly, 0 = not."""
        return (self.decision_function(X) >= threshold).astype(np.int64)

    def _get_strategy(self, name: str) -> OODStrategy:
        self._check_fitted()
        key = name.lower()
        if key not in self._strategies:
            # ED judges the peakedness of the target-dim block only. With a
            # single target class that statistic is identically zero, so ED
            # widens to the target block plus one (the full discrepancy
            # between the target logit and the rest still matters there).
            if key == "ed":
                kwargs = {"n_dims": self.m_ if self.m_ > 1 else None}
            else:
                kwargs = {}
            strategy = get_strategy(key, **kwargs)
            id_logits, ood_logits = self._calibration_logits
            if len(ood_logits) == 0:
                raise RuntimeError("no candidates were selected; tri-class prediction unavailable")
            strategy.fit_threshold(id_logits, ood_logits)
            self._strategies[key] = strategy
        return self._strategies[key]

    def _route_from_logits(
        self, logits: np.ndarray, probs: np.ndarray, strategy: str
    ) -> np.ndarray:
        """Tri-class routing (Section III-C) from precomputed logits/probs.

        Delegates to :func:`repro.core.scoring.route_from_logits`, passing
        the strategy lazily so calibration only happens when some row is
        actually anomalous (the calibration set may be empty otherwise).
        """
        return route_from_logits(
            logits, probs, self.m_, self.k_, lambda: self._get_strategy(strategy)
        )

    def predict_triclass(self, X: np.ndarray, strategy: str = "ed") -> np.ndarray:
        """Section III-C: classify into normal / target / non-target.

        First applies the normality rule (normal-mass > k/(m+k)); instances
        on the anomalous side are split by the chosen OOD strategy ("msp",
        "es", or "ed"): OOD = non-target anomaly, ID = target anomaly.

        Returns the kind codes of :mod:`repro.data.schema` (0/1/2).
        """
        logits = self.logits(X)
        return self._route_from_logits(logits, softmax(logits), strategy)

    def score_batch(
        self, X: np.ndarray, strategy: str = "ed"
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Serving fast path: Eq. 9 scores and tri-class routing together.

        Runs the classifier **once** over ``X`` (on the compiled
        graph-free inference path) and derives both the
        :meth:`decision_function` scores and the
        :meth:`predict_triclass` routing from the same logits — exactly
        half the forward work of calling the two methods separately,
        with identical results.
        """
        logits = self.logits(X)
        probs = softmax(logits)
        scores = target_anomaly_score(probs, self.m_)
        routing = self._route_from_logits(logits, probs, strategy)
        return scores, routing

    def predict_target_class(self, X: np.ndarray) -> np.ndarray:
        """Most probable target-anomaly class (argmax over the first m dims)."""
        probs = self.predict_proba_full(X)
        return probs[:, : self.m_].argmax(axis=1)
