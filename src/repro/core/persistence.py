"""Save/load trained TargAD models.

A fitted TargAD is a classifier network plus candidate-selection artifacts
(k-means centroids and per-cluster autoencoders) plus calibration state.
Everything is numpy, so a single ``.npz`` archive with a JSON header holds
the complete model.
"""

from __future__ import annotations

import dataclasses
import io
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.config import TargADConfig
from repro.core.model import TargAD

_FORMAT_VERSION = 1


def _pack_module(prefix: str, module, arrays: dict) -> None:
    for i, value in enumerate(module.state_dict()):
        arrays[f"{prefix}:{i}"] = value


def _unpack_module(prefix: str, module, archive) -> None:
    state = []
    i = 0
    while f"{prefix}:{i}" in archive:
        state.append(archive[f"{prefix}:{i}"])
        i += 1
    module.load_state_dict(state)


def save_model(model: TargAD, path: Union[str, Path]) -> None:
    """Serialize a fitted TargAD to ``path`` (``.npz``)."""
    model._check_fitted()
    path = Path(path)

    header = {
        "format_version": _FORMAT_VERSION,
        "config": dataclasses.asdict(model.config),
        "m": model.m_,
        "k": model.k_,
        "n_autoencoders": len(model.selector_.autoencoders_),
        "ae_fitted": [ae.encoder is not None for ae in model.selector_.autoencoders_],
    }

    arrays: dict = {
        "header": np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        "kmeans_centers": model.selector_.kmeans_.cluster_centers_,
        "calibration_id": model._calibration_logits[0],
        "calibration_ood": model._calibration_logits[1],
        "sel_errors": model.selection_.errors,
        "sel_scores": model.selection_.selection_scores,
        "sel_clusters": model.selection_.cluster_labels,
        "sel_mask": model.selection_.candidate_mask,
        "sel_threshold": np.array(model.selection_.threshold),
    }
    _pack_module("classifier", model.network_, arrays)
    for idx, ae in enumerate(model.selector_.autoencoders_):
        if ae.encoder is not None:
            _pack_module(f"ae{idx}:enc", ae.encoder, arrays)
            _pack_module(f"ae{idx}:dec", ae.decoder, arrays)

    with open(path, "wb") as fh:
        np.savez_compressed(fh, **arrays)


def load_model(path: Union[str, Path]) -> TargAD:
    """Reconstruct a fitted TargAD saved by :func:`save_model`."""
    from repro.cluster import KMeans
    from repro.core.candidate_selection import CandidateSelection, CandidateSelector
    from repro.nn.autoencoder import SADAutoencoder
    from repro.nn.layers import mlp

    archive = np.load(Path(path), allow_pickle=False)
    header = json.loads(bytes(archive["header"]).decode("utf-8"))
    if header["format_version"] != _FORMAT_VERSION:
        raise ValueError(f"unsupported model format version {header['format_version']}")

    config = TargADConfig(**{
        key: tuple(value) if isinstance(value, list) else value
        for key, value in header["config"].items()
    })
    model = TargAD(config)
    model.m_ = header["m"]
    model.k_ = header["k"]

    centers = archive["kmeans_centers"]
    n_features = centers.shape[1]
    rng = np.random.default_rng(0)

    # Classifier network.
    model.network_ = mlp(
        [n_features, *config.clf_hidden, model.m_ + model.k_], activation="relu", rng=rng
    )
    _unpack_module("classifier", model.network_, archive)

    # Candidate selector: k-means + autoencoders.
    selector = CandidateSelector(
        k=model.k_, alpha=config.alpha, eta=config.eta, ae_hidden=config.ae_hidden,
        random_state=config.random_state,
    )
    kmeans = KMeans(n_clusters=model.k_)
    kmeans.cluster_centers_ = centers
    selector.kmeans_ = kmeans
    selector.autoencoders_ = []
    for idx in range(header["n_autoencoders"]):
        ae = SADAutoencoder(eta=config.eta, hidden_sizes=config.ae_hidden)
        if header["ae_fitted"][idx]:
            ae._build(n_features, rng)
            _unpack_module(f"ae{idx}:enc", ae.encoder, archive)
            _unpack_module(f"ae{idx}:dec", ae.decoder, archive)
        selector.autoencoders_.append(ae)
    model.selector_ = selector

    model.selection_ = CandidateSelection(
        errors=archive["sel_errors"],
        selection_scores=archive["sel_scores"],
        cluster_labels=archive["sel_clusters"],
        candidate_mask=archive["sel_mask"],
        threshold=float(archive["sel_threshold"]),
        k=model.k_,
    )
    selector.selection_ = model.selection_

    model._calibration_logits = (archive["calibration_id"], archive["calibration_ood"])
    model._strategies = {}
    return model
