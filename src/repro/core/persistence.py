"""Save/load trained TargAD models.

A fitted TargAD is a classifier network plus candidate-selection artifacts
(k-means centroids and per-cluster autoencoders) plus calibration state.
Everything is numpy, so a single ``.npz`` archive with a JSON header holds
the complete model.

Writes are crash-safe: :func:`save_model` (and the lower-level
:func:`atomic_savez`) writes to a temporary file in the destination
directory and ``os.replace``\\ s it into place, so an interrupted save never
leaves a truncated archive behind. Reads are defensive: a corrupt or
truncated archive raises :class:`ModelLoadError` with the format-version
detail instead of a raw numpy/JSON traceback. The same header + packed-array
format is reused by :mod:`repro.resilience.checkpoint` for training
checkpoints.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Tuple, Union

import numpy as np

from repro.core.config import TargADConfig
from repro.core.model import TargAD

_FORMAT_VERSION = 1


class ModelLoadError(ValueError):
    """A model/checkpoint archive could not be read.

    Raised on truncated files, invalid zip containers, undecodable JSON
    headers, missing arrays, and unsupported format versions — anything
    where the archive on disk is not a well-formed artifact of the current
    :data:`_FORMAT_VERSION`.
    """


def pack_module(prefix: str, module, arrays: dict) -> None:
    """Pack ``module.state_dict()`` into ``arrays`` under ``prefix:<i>`` keys."""
    for i, value in enumerate(module.state_dict()):
        arrays[f"{prefix}:{i}"] = value


def unpack_module(prefix: str, module, archive) -> None:
    """Inverse of :func:`pack_module` against a loaded archive/dict."""
    state = []
    i = 0
    while f"{prefix}:{i}" in archive:
        state.append(archive[f"{prefix}:{i}"])
        i += 1
    module.load_state_dict(state)


def encode_header(header: dict) -> np.ndarray:
    """JSON-encode a header dict as a uint8 array for npz storage."""
    return np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8)


def atomic_savez(path: Union[str, Path], arrays: Dict[str, np.ndarray]) -> None:
    """Write ``arrays`` as a compressed npz, atomically.

    The archive is written to a temporary file in the destination directory
    (same filesystem, so the final ``os.replace`` is atomic); on any error
    the partial temp file is removed and the previous file at ``path`` — if
    any — is left untouched.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_archive(path: Union[str, Path], kind: str = "model") -> Tuple[dict, Dict[str, np.ndarray]]:
    """Read an npz archive written by this module; returns (header, arrays).

    Arrays are loaded eagerly so truncation inside any member surfaces here
    (as :class:`ModelLoadError`) rather than at first lazy access. A missing
    file still raises ``FileNotFoundError`` — that is an addressing mistake,
    not a corrupt artifact.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such {kind} archive: {path}")
    try:
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
    except FileNotFoundError:
        raise
    except Exception as exc:  # zipfile.BadZipFile, OSError, ValueError, ...
        raise ModelLoadError(
            f"corrupt or truncated {kind} archive {path} "
            f"(expected format version {_FORMAT_VERSION}): {exc}"
        ) from exc
    if "header" not in arrays:
        raise ModelLoadError(
            f"{kind} archive {path} has no header "
            f"(expected format version {_FORMAT_VERSION})"
        )
    try:
        header = json.loads(bytes(arrays["header"]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ModelLoadError(
            f"{kind} archive {path} has an undecodable JSON header "
            f"(expected format version {_FORMAT_VERSION}): {exc}"
        ) from exc
    version = header.get("format_version")
    if version != _FORMAT_VERSION:
        raise ModelLoadError(
            f"unsupported {kind} format version {version!r} in {path} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
    return header, arrays


def pack_selector(model: TargAD, arrays: dict, header: dict) -> None:
    """Pack the candidate-selection stage (k-means + AEs + selection)."""
    header["n_autoencoders"] = len(model.selector_.autoencoders_)
    header["ae_fitted"] = [ae.encoder is not None for ae in model.selector_.autoencoders_]
    arrays["kmeans_centers"] = model.selector_.kmeans_.cluster_centers_
    arrays["sel_errors"] = model.selection_.errors
    arrays["sel_scores"] = model.selection_.selection_scores
    arrays["sel_clusters"] = model.selection_.cluster_labels
    arrays["sel_mask"] = model.selection_.candidate_mask
    arrays["sel_threshold"] = np.array(model.selection_.threshold)
    for idx, ae in enumerate(model.selector_.autoencoders_):
        if ae.encoder is not None:
            pack_module(f"ae{idx}:enc", ae.encoder, arrays)
            pack_module(f"ae{idx}:dec", ae.decoder, arrays)


def unpack_selector(header: dict, archive, config: TargADConfig, k: int):
    """Rebuild the fitted :class:`CandidateSelector` + its selection."""
    from repro.cluster import KMeans
    from repro.core.candidate_selection import CandidateSelection, CandidateSelector
    from repro.nn.autoencoder import SADAutoencoder

    centers = archive["kmeans_centers"]
    n_features = centers.shape[1]
    rng = np.random.default_rng(0)

    selector = CandidateSelector(
        k=k, alpha=config.alpha, eta=config.eta, ae_hidden=config.ae_hidden,
        random_state=config.random_state,
    )
    kmeans = KMeans(n_clusters=k)
    kmeans.cluster_centers_ = centers
    selector.kmeans_ = kmeans
    selector.autoencoders_ = []
    for idx in range(header["n_autoencoders"]):
        ae = SADAutoencoder(eta=config.eta, hidden_sizes=config.ae_hidden)
        if header["ae_fitted"][idx]:
            ae._build(n_features, rng)
            unpack_module(f"ae{idx}:enc", ae.encoder, archive)
            unpack_module(f"ae{idx}:dec", ae.decoder, archive)
        selector.autoencoders_.append(ae)

    selection = CandidateSelection(
        errors=archive["sel_errors"],
        selection_scores=archive["sel_scores"],
        cluster_labels=archive["sel_clusters"],
        candidate_mask=archive["sel_mask"],
        threshold=float(archive["sel_threshold"]),
        k=k,
    )
    selector.selection_ = selection
    return selector, selection


def config_from_header(header: dict) -> TargADConfig:
    """Reconstruct the :class:`TargADConfig` stored in an archive header."""
    return TargADConfig(**{
        key: tuple(value) if isinstance(value, list) else value
        for key, value in header["config"].items()
    })


def save_model(model: TargAD, path: Union[str, Path]) -> None:
    """Serialize a fitted TargAD to ``path`` (``.npz``), atomically."""
    model._check_fitted()

    header = {
        "format_version": _FORMAT_VERSION,
        "config": dataclasses.asdict(model.config),
        "m": model.m_,
        "k": model.k_,
    }
    arrays: dict = {
        "calibration_id": model._calibration_logits[0],
        "calibration_ood": model._calibration_logits[1],
    }
    pack_selector(model, arrays, header)
    pack_module("classifier", model.network_, arrays)
    arrays["header"] = encode_header(header)
    atomic_savez(path, arrays)


def load_model(path: Union[str, Path]) -> TargAD:
    """Reconstruct a fitted TargAD saved by :func:`save_model`.

    Raises
    ------
    ModelLoadError
        If the archive is corrupt, truncated, missing required arrays, or
        written by an unsupported format version.
    """
    from repro.nn.layers import mlp

    header, archive = load_archive(path, kind="model")
    try:
        config = config_from_header(header)
        model = TargAD(config)
        model.m_ = header["m"]
        model.k_ = header["k"]

        n_features = archive["kmeans_centers"].shape[1]
        model.network_ = mlp(
            [n_features, *config.clf_hidden, model.m_ + model.k_],
            activation="relu", rng=np.random.default_rng(0),
        )
        unpack_module("classifier", model.network_, archive)

        model.selector_, model.selection_ = unpack_selector(
            header, archive, config, model.k_
        )
        model._calibration_logits = (archive["calibration_id"], archive["calibration_ood"])
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise ModelLoadError(
            f"model archive {path} (format version {header.get('format_version')}) "
            f"is missing or mangles required entries: {exc}"
        ) from exc
    model._strategies = {}
    return model
