"""Active label acquisition for TargAD.

A practical extension of the paper's setting: labeled target anomalies are
expensive (analyst time), so after an initial fit the system should spend
its labeling budget on the unlabeled instances whose labels would help
most. :class:`ActiveTargAD` implements the loop:

1. fit TargAD on the current labeled set,
2. select a query batch from the unlabeled pool by an acquisition
   strategy,
3. receive labels from an oracle (0 = not a target anomaly of any class,
   1..m = target class), move newly-confirmed target anomalies into
   ``D_L``, and refit.

Acquisition strategies:

- ``"uncertainty"`` — instances whose target-anomaly score is nearest the
  decision boundary (|S_tar − 1/(m+1)| small among anomalous-looking rows);
- ``"score"`` — highest S_tar (verify the top of the queue, the common
  operational policy);
- ``"candidate"`` — highest-weight non-target anomaly candidates (confirm
  the OE supervision the model relies on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.core.config import TargADConfig
from repro.core.model import TargAD

Oracle = Callable[[np.ndarray], np.ndarray]
"""Maps queried rows to labels: 0 = not target, 1..m = target class (1-based)."""


def rank_for_labeling(
    model: TargAD, X_pool: np.ndarray, strategy: str = "uncertainty"
) -> np.ndarray:
    """Rank pool indices by expected labeling value under ``strategy``.

    The strategy semantics of :class:`ActiveTargAD` (module docstring),
    factored out so one-shot consumers — the lifecycle refit loop spends
    its label budget through this — share the exact ranking the active
    loop uses. Ties break deterministically (stable mergesort).

    ``"candidate"`` needs the model's own selection over this pool, so it
    falls back to ``"score"`` when ``X_pool`` is not the pool the model
    was fitted on (detected by length mismatch).
    """
    X_pool = np.asarray(X_pool, dtype=np.float64)
    if strategy not in ("uncertainty", "score", "candidate"):
        raise ValueError('strategy must be "uncertainty", "score", or "candidate"')

    if strategy == "candidate":
        selection = model.selection_
        weights = model._candidate_weights
        if (
            selection is not None
            and weights is not None
            and len(selection.candidate_mask) == len(X_pool)
        ):
            full = np.zeros(len(X_pool))
            full[selection.candidate_indices] = weights
            return np.argsort(-full, kind="mergesort")
        strategy = "score"

    scores = model.decision_function(X_pool)
    if strategy == "score":
        return np.argsort(-scores, kind="mergesort")
    boundary = 0.5 * (1.0 / model.m_ + 1.0) if model.m_ > 1 else 0.5
    return np.argsort(np.abs(scores - boundary), kind="mergesort")


@dataclass
class ActiveRound:
    """Record of one acquisition round."""

    round_index: int
    queried: np.ndarray
    oracle_labels: np.ndarray
    n_targets_found: int
    labeled_pool_size: int


class ActiveTargAD:
    """Budgeted active-learning loop around TargAD.

    Parameters
    ----------
    config:
        TargAD configuration used for every refit.
    strategy:
        Acquisition strategy (see module docstring).
    batch_size:
        Queries per round.
    """

    def __init__(
        self,
        config: Optional[TargADConfig] = None,
        strategy: str = "uncertainty",
        batch_size: int = 10,
    ):
        if strategy not in ("uncertainty", "score", "candidate"):
            raise ValueError('strategy must be "uncertainty", "score", or "candidate"')
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.config = config if config is not None else TargADConfig()
        self.strategy = strategy
        self.batch_size = batch_size
        self.model_: Optional[TargAD] = None
        self.history: List[ActiveRound] = []
        self._queried_mask: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _acquire(self, X_unlabeled: np.ndarray) -> np.ndarray:
        """Pick the next query batch (indices into the unlabeled pool)."""
        available = np.flatnonzero(~self._queried_mask)
        if len(available) == 0:
            return available

        if self.strategy == "candidate":
            # Candidate weights are defined over the full fitted pool, so
            # rank globally and drop already-queried rows (stable, so tie
            # order matches ranking the available subset directly).
            full = rank_for_labeling(self.model_, X_unlabeled, "candidate")
            ranking = full[np.isin(full, available)]
        else:
            order = rank_for_labeling(
                self.model_, X_unlabeled[available], self.strategy
            )
            ranking = available[order]
        return ranking[: self.batch_size]

    # ------------------------------------------------------------------
    def run(
        self,
        X_unlabeled: np.ndarray,
        X_labeled: np.ndarray,
        y_labeled: np.ndarray,
        oracle: Oracle,
        n_rounds: int = 5,
    ) -> TargAD:
        """Run the acquisition loop; returns the final fitted model.

        ``oracle(X_queried)`` must return an integer array: 0 for "not a
        target anomaly", or the 1-based target class. Confirmed targets
        move into the labeled pool before each refit (non-target answers
        stay unlabeled — the paper's setting has no labeled non-targets).
        """
        X_unlabeled = np.asarray(X_unlabeled, dtype=np.float64)
        X_labeled = np.asarray(X_labeled, dtype=np.float64)
        y_labeled = np.asarray(y_labeled, dtype=np.int64)
        self._queried_mask = np.zeros(len(X_unlabeled), dtype=bool)
        self.history = []

        self.model_ = TargAD(self.config)
        self.model_.fit(X_unlabeled, X_labeled, y_labeled)

        for round_index in range(n_rounds):
            queried = self._acquire(X_unlabeled)
            if len(queried) == 0:
                break
            self._queried_mask[queried] = True
            answers = np.asarray(oracle(X_unlabeled[queried]), dtype=np.int64)
            if answers.shape != (len(queried),):
                raise ValueError("oracle must return one label per queried row")

            confirmed = answers > 0
            n_found = int(confirmed.sum())
            if n_found:
                X_labeled = np.concatenate([X_labeled, X_unlabeled[queried[confirmed]]])
                y_labeled = np.concatenate([y_labeled, answers[confirmed] - 1])
                keep = np.ones(len(X_unlabeled), dtype=bool)
                keep[queried[confirmed]] = False
                X_unlabeled = X_unlabeled[keep]
                self._queried_mask = self._queried_mask[keep]

                self.model_ = TargAD(self.config)
                self.model_.fit(X_unlabeled, X_labeled, y_labeled)

            self.history.append(ActiveRound(
                round_index=round_index,
                queried=queried,
                oracle_labels=answers,
                n_targets_found=n_found,
                labeled_pool_size=len(X_labeled),
            ))
        return self.model_

    @property
    def total_targets_found(self) -> int:
        return sum(r.n_targets_found for r in self.history)
