"""TargAD — the paper's primary contribution.

Implements Algorithm 1 end-to-end: candidate selection (k-means + one
SAD-regularized autoencoder per cluster, Eqs. 1-2), pseudo-label design,
the composite classifier loss ``L_clf = L_CE + λ1·L_OE + λ2·L_RE``
(Eqs. 3, 6, 7, 8), the noise-mitigating weight-updating mechanism
(Eqs. 4-5), target-anomaly scoring (Eq. 9), and the tri-class
normal/target/non-target rule of Section III-C.
"""

from repro.core.candidate_selection import CandidateSelection, CandidateSelector
from repro.core.config import TargADConfig
from repro.core.model import TargAD
from repro.core.persistence import ModelLoadError, load_model, save_model
from repro.core.pseudo_labels import (
    normal_pseudo_label,
    ood_pseudo_label,
    oe_uniform_pseudo_label,
    target_pseudo_label,
)
from repro.core.scoring import is_normal_rule, target_anomaly_score
from repro.core.weighting import initial_weights, update_weights

__all__ = [
    "CandidateSelection",
    "CandidateSelector",
    "ModelLoadError",
    "TargAD",
    "TargADConfig",
    "initial_weights",
    "is_normal_rule",
    "load_model",
    "save_model",
    "normal_pseudo_label",
    "oe_uniform_pseudo_label",
    "ood_pseudo_label",
    "target_anomaly_score",
    "target_pseudo_label",
    "update_weights",
]
