"""TargAD hyperparameter configuration.

Defaults follow Section IV-C of the paper: α = 5%, η = 1, λ1 = 0.1,
λ2 = 1, Adam, 30 epochs for both stages, AE batch 256, classifier batch
128. Deviation: the paper's learning rates (1e-4 for the autoencoders,
1e-5 for the classifier) are tuned for paper-scale data; our default
splits are ~1/8 scale (fewer gradient steps per epoch), so both default
rates here are 1e-3 to converge within the same 30 epochs. Both are
configurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple


@dataclass
class TargADConfig:
    """All knobs of Algorithm 1.

    Attributes
    ----------
    k:
        Number of k-means clusters over the unlabeled pool. ``None``
        selects k with the elbow method (paper's choice).
    alpha:
        Candidate-selection threshold: the top ``alpha`` fraction of
        unlabeled instances by reconstruction error become non-target
        anomaly candidates ``D_U^A``.
    eta:
        Trade-off of the inverse-error term in the autoencoder loss (Eq. 1).
    lambda1, lambda2:
        Trade-offs of ``L_OE`` and ``L_RE`` in the classifier loss (Eq. 8).
    use_oe_loss, use_re_loss:
        Ablation switches for Table III (``TargAD_-O``, ``TargAD_-R``,
        ``TargAD_-O-R``).
    use_weighting:
        Ablation switch for the Eq. 4/5 weight mechanism; when off, all
        candidate weights are 1.
    oe_label_style:
        "targad" (default) uses the paper's modified OE pseudo-label
        ``(1/m, ..., 1/m, 0, ..., 0)``; "uniform" uses the original OE
        label ``(1/(m+k), ..., 1/(m+k))`` of Hendrycks et al. (2019) —
        the design alternative Section III-B2 argues against.
    ae_hidden, ae_lr, ae_batch_size, ae_epochs:
        Autoencoder architecture/schedule (bottleneck sizes are the encoder
        half; the decoder mirrors them).
    clf_hidden, clf_lr, clf_batch_size, clf_epochs:
        Classifier MLP architecture/schedule.
    clf_dropout:
        Dropout probability applied after each hidden activation of the
        classifier (0 = off, the paper's setting). An opt-in regularizer
        for noisier deployments.
    k_max:
        Upper bound scanned by the elbow method when ``k`` is None.
    random_state:
        Master seed; every internal component derives from it.
    """

    k: Optional[int] = None
    alpha: float = 0.05
    eta: float = 1.0
    lambda1: float = 0.1
    lambda2: float = 1.0

    use_oe_loss: bool = True
    use_re_loss: bool = True
    use_weighting: bool = True
    oe_label_style: str = "targad"

    ae_hidden: Tuple[int, ...] = (64, 16)
    ae_lr: float = 1e-3
    ae_batch_size: int = 256
    ae_epochs: int = 30

    clf_hidden: Tuple[int, ...] = (64, 32)
    clf_lr: float = 5e-4
    clf_batch_size: int = 128
    clf_epochs: int = 60
    clf_dropout: float = 0.0

    k_max: int = 8
    random_state: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if self.eta < 0 or self.lambda1 < 0 or self.lambda2 < 0:
            raise ValueError("trade-off parameters must be non-negative")
        if self.k is not None and self.k < 1:
            raise ValueError("k must be >= 1")
        if self.k_max < 1:
            raise ValueError("k_max must be >= 1")
        if self.oe_label_style not in ("targad", "uniform"):
            raise ValueError('oe_label_style must be "targad" or "uniform"')
        if not 0.0 <= self.clf_dropout < 1.0:
            raise ValueError("clf_dropout must be in [0, 1)")
