"""Unicode chart renderers for terminal output.

All functions return strings (no printing) so callers can compose and
tests can assert on structure. Rendering conventions:

- charts auto-scale to the data range and annotate min/max;
- multiple series in a line chart get distinct glyphs and a legend;
- heatmaps use a 9-step block ramp from light to dark.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

_SPARK_RAMP = "▁▂▃▄▅▆▇█"
_HEAT_RAMP = " ░▒▓█"
_SERIES_GLYPHS = "●○■□▲△◆◇"


def _scale(values: np.ndarray, low: float, high: float, steps: int) -> np.ndarray:
    span = high - low
    if span <= 0:
        return np.zeros(len(values), dtype=int)
    scaled = (values - low) / span * (steps - 1)
    return np.clip(np.round(scaled), 0, steps - 1).astype(int)


def sparkline(values: Sequence[float]) -> str:
    """One-line trace: ``sparkline([1,5,3]) -> '▁█▄'``."""
    values = np.asarray(list(values), dtype=np.float64)
    if len(values) == 0:
        return ""
    levels = _scale(values, float(values.min()), float(values.max()), len(_SPARK_RAMP))
    return "".join(_SPARK_RAMP[level] for level in levels)


def line_chart(
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    title: Optional[str] = None,
    y_label: str = "",
) -> str:
    """Multi-series line chart on a character grid.

    Series are resampled to ``width`` columns; each series plots with its
    own glyph, listed in the legend. The y-axis is annotated with the data
    min and max.
    """
    if not series:
        raise ValueError("need at least one series")
    arrays = {name: np.asarray(list(vals), dtype=np.float64) for name, vals in series.items()}
    if any(len(a) == 0 for a in arrays.values()):
        raise ValueError("series must be non-empty")
    lo = min(float(a.min()) for a in arrays.values())
    hi = max(float(a.max()) for a in arrays.values())

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, values) in enumerate(arrays.items()):
        glyph = _SERIES_GLYPHS[idx % len(_SERIES_GLYPHS)]
        # Resample to the chart width.
        positions = np.linspace(0, len(values) - 1, width)
        resampled = np.interp(positions, np.arange(len(values)), values)
        rows = _scale(resampled, lo, hi, height)
        for col, row in enumerate(rows):
            grid[height - 1 - row][col] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    hi_label = f"{hi:.3f}"
    lo_label = f"{lo:.3f}"
    pad = max(len(hi_label), len(lo_label), len(y_label))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = hi_label.rjust(pad)
        elif i == height - 1:
            prefix = lo_label.rjust(pad)
        elif i == height // 2 and y_label:
            prefix = y_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} │{''.join(row)}")
    lines.append(" " * pad + " └" + "─" * width)
    legend = "   ".join(
        f"{_SERIES_GLYPHS[i % len(_SERIES_GLYPHS)]} {name}" for i, name in enumerate(arrays)
    )
    lines.append(" " * pad + "  " + legend)
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Horizontal bar chart with value annotations."""
    labels = list(labels)
    values = np.asarray(list(values), dtype=np.float64)
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if len(values) == 0:
        raise ValueError("need at least one bar")
    vmax = float(values.max())
    label_pad = max(len(l) for l in labels)
    lines: List[str] = [title] if title else []
    for label, value in zip(labels, values):
        bar_len = 0 if vmax <= 0 else int(round(value / vmax * width))
        lines.append(f"{label.rjust(label_pad)} │{'█' * bar_len}{' ' * (width - bar_len)} {value:.3f}")
    return "\n".join(lines)


def heatmap(
    matrix: np.ndarray,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    title: Optional[str] = None,
    cell_width: int = 6,
) -> str:
    """Shaded heatmap with numeric cells.

    Each cell shows its value plus a background shade proportional to its
    rank in the matrix range.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.shape != (len(row_labels), len(col_labels)):
        raise ValueError("matrix shape must match label lengths")
    lo, hi = float(matrix.min()), float(matrix.max())
    levels = _scale(matrix.ravel(), lo, hi, len(_HEAT_RAMP)).reshape(matrix.shape)

    label_pad = max(len(l) for l in row_labels)
    lines: List[str] = [title] if title else []
    header = " " * label_pad + " " + "".join(c.center(cell_width + 1) for c in col_labels)
    lines.append(header)
    for i, row_label in enumerate(row_labels):
        cells = []
        for j in range(len(col_labels)):
            shade = _HEAT_RAMP[levels[i, j]]
            cells.append(f"{shade}{matrix[i, j]:{cell_width}.3f}")
        lines.append(f"{row_label.rjust(label_pad)} " + " ".join(cells))
    lines.append(f"(shade ramp: {lo:.3f} '{_HEAT_RAMP[0]}' … {hi:.3f} '{_HEAT_RAMP[-1]}')")
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 30,
    title: Optional[str] = None,
    value_range: Optional[tuple] = None,
) -> str:
    """Vertical-bin histogram printed as horizontal bars."""
    values = np.asarray(list(values), dtype=np.float64)
    if len(values) == 0:
        raise ValueError("need at least one value")
    counts, edges = np.histogram(values, bins=bins, range=value_range)
    cmax = counts.max()
    lines: List[str] = [title] if title else []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar_len = 0 if cmax == 0 else int(round(count / cmax * width))
        lines.append(f"[{lo:6.2f}, {hi:6.2f}) │{'█' * bar_len}{' ' * (width - bar_len)} {count}")
    return "\n".join(lines)
