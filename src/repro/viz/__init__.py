"""Terminal-friendly visualization (no plotting backend required).

The paper's figures are reproduced as Unicode/ASCII charts printed by the
benchmark harness: line charts for convergence and sweeps, bar charts for
comparisons, heatmaps for parameter matrices, histograms for weight
densities, and sparklines for compact epoch traces.
"""

from repro.viz.ascii import bar_chart, heatmap, histogram, line_chart, sparkline

__all__ = ["bar_chart", "heatmap", "histogram", "line_chart", "sparkline"]
