"""Local Outlier Factor (Breunig et al., SIGMOD 2000).

Density-based unsupervised detector cited in the paper's related work
(reference [22]). The LOF of an instance compares its local reachability
density to that of its k nearest neighbours; values ≫ 1 indicate an
instance lying in a sparser region than its neighbourhood.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import BaseDetector

_EPS = 1e-12


def _pairwise_distances(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    d2 = (A**2).sum(axis=1)[:, None] - 2.0 * A @ B.T + (B**2).sum(axis=1)[None, :]
    return np.sqrt(np.maximum(d2, 0.0))


class LocalOutlierFactor(BaseDetector):
    """LOF with brute-force neighbour search.

    Parameters
    ----------
    n_neighbors:
        Neighbourhood size ``k`` (MinPts in the original paper).
    max_train:
        Reference-set cap; larger training pools are subsampled (LOF is
        O(n²) in the reference size).
    """

    name = "LOF"
    supervision = "unsupervised"

    def __init__(self, n_neighbors: int = 20, max_train: int = 2000,
                 random_state: Optional[int] = None):
        super().__init__(random_state)
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        self.n_neighbors = n_neighbors
        self.max_train = max_train
        self._X_ref: Optional[np.ndarray] = None
        self._k_dist: Optional[np.ndarray] = None
        self._lrd: Optional[np.ndarray] = None

    def _fit(self, X_unlabeled, X_labeled, y_labeled, epoch_callback) -> None:
        del X_labeled, y_labeled, epoch_callback
        rng = np.random.default_rng(self.random_state)
        X = X_unlabeled
        if len(X) > self.max_train:
            X = X[rng.choice(len(X), size=self.max_train, replace=False)]
        k = min(self.n_neighbors, len(X) - 1)
        self._k = k

        dists = _pairwise_distances(X, X)
        np.fill_diagonal(dists, np.inf)
        neighbor_idx = np.argsort(dists, axis=1)[:, :k]
        neighbor_dists = np.take_along_axis(dists, neighbor_idx, axis=1)
        k_dist = neighbor_dists[:, -1]

        # Reachability distance of p from o: max(k_dist(o), d(p, o)).
        reach = np.maximum(k_dist[neighbor_idx], neighbor_dists)
        lrd = 1.0 / (reach.mean(axis=1) + _EPS)

        self._X_ref = X
        self._k_dist = k_dist
        self._lrd = lrd

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        scores = np.empty(len(X))
        # Batch to bound the distance-matrix memory.
        for start in range(0, len(X), 1024):
            chunk = X[start : start + 1024]
            dists = _pairwise_distances(chunk, self._X_ref)
            neighbor_idx = np.argsort(dists, axis=1)[:, : self._k]
            neighbor_dists = np.take_along_axis(dists, neighbor_idx, axis=1)
            reach = np.maximum(self._k_dist[neighbor_idx], neighbor_dists)
            lrd_query = 1.0 / (reach.mean(axis=1) + _EPS)
            lof = self._lrd[neighbor_idx].mean(axis=1) / (lrd_query + _EPS)
            scores[start : start + 1024] = lof
        return scores
