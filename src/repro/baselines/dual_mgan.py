"""Dual-MGAN (Li et al., TKDD 2022) — dual multiple-GAN framework for
semi-supervised outlier detection with few identified anomalies.

Mechanism (simplified to its performance-driving core): an *augmentation*
sub-GAN expands the scarce labeled anomalies — its generator learns to
produce instances indistinguishable (to its discriminator) from the real
labeled anomalies; a *detection* sub-GAN's discriminator is then trained
to separate unlabeled (mostly normal) data from the *generated* anomalies.
The anomaly score is that discriminator's output. The real labeled
anomalies participate only through the augmentation GAN — the detection
module sees synthetic positives, so detection quality is bounded by
generation quality, which is the published method's characteristic
behaviour (mid-pack on UNSW-NB15 in the paper's Table II).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.autodiff import Tensor
from repro.baselines.base import BaseDetector
from repro.nn.layers import mlp
from repro.nn.losses import binary_cross_entropy
from repro.nn.optimizers import Adam
from repro.nn.train import forward_in_batches, iterate_minibatches


class DualMGAN(BaseDetector):
    """Dual sub-GAN detector: anomaly augmentation + detection discriminator.

    Parameters
    ----------
    noise_dim:
        Augmentation-generator input dimensionality.
    aug_epochs, det_epochs:
        Schedules for the two sub-GANs.
    n_augmented:
        Synthetic anomalies generated for the detection stage.
    """

    name = "Dual-MGAN"

    def __init__(
        self,
        noise_dim: int = 16,
        gen_hidden: Sequence[int] = (32,),
        disc_hidden: Sequence[int] = (64, 32),
        aug_epochs: int = 30,
        det_epochs: int = 30,
        n_augmented: int = 256,
        lr: float = 1e-3,
        batch_size: int = 128,
        random_state: Optional[int] = None,
    ):
        super().__init__(random_state)
        self.noise_dim = noise_dim
        self.gen_hidden = tuple(gen_hidden)
        self.disc_hidden = tuple(disc_hidden)
        self.aug_epochs = aug_epochs
        self.det_epochs = det_epochs
        self.n_augmented = n_augmented
        self.lr = lr
        self.batch_size = batch_size
        self._detector = None

    def _fit(self, X_unlabeled, X_labeled, y_labeled, epoch_callback) -> None:
        del y_labeled
        if X_labeled is None or len(X_labeled) == 0:
            raise ValueError("Dual-MGAN requires labeled anomalies")
        rng = np.random.default_rng(self.random_state)
        D = X_unlabeled.shape[1]

        # --- Augmentation sub-GAN over the labeled anomalies -------------
        generator = mlp([self.noise_dim, *self.gen_hidden, D],
                        activation="relu", output_activation="sigmoid", rng=rng)
        aug_disc = mlp([D, *self.gen_hidden, 1],
                       activation="relu", output_activation="sigmoid", rng=rng)
        g_opt = Adam(generator.parameters(), lr=self.lr)
        d_opt = Adam(aug_disc.parameters(), lr=self.lr)
        batch = min(self.batch_size, max(len(X_labeled), 8))
        for _ in range(self.aug_epochs):
            idx = rng.integers(0, len(X_labeled), size=batch)
            real = X_labeled[idx]
            noise = rng.standard_normal((batch, self.noise_dim))

            d_opt.zero_grad()
            fake = generator(Tensor(noise)).detach()
            d_real = aug_disc(Tensor(real)).reshape(-1)
            d_fake = aug_disc(fake).reshape(-1)
            d_loss = binary_cross_entropy(d_real, np.ones(batch)) + \
                binary_cross_entropy(d_fake, np.zeros(batch))
            d_loss.backward()
            d_opt.step()

            g_opt.zero_grad()
            noise = rng.standard_normal((batch, self.noise_dim))
            fake = generator(Tensor(noise))
            d_fake = aug_disc(fake).reshape(-1)
            g_loss = binary_cross_entropy(d_fake, np.ones(batch))
            g_loss.backward()
            g_opt.step()

        noise = rng.standard_normal((self.n_augmented, self.noise_dim))
        augmented = forward_in_batches(generator, noise)
        anomalies = augmented

        # --- Detection discriminator: unlabeled vs generated anomalies
        self._detector = mlp([D, *self.disc_hidden, 1],
                             activation="relu", output_activation="sigmoid", rng=rng)
        det_opt = Adam(self._detector.parameters(), lr=self.lr)
        half = max(self.batch_size // 2, 1)
        for epoch in range(self.det_epochs):
            for idx_u in iterate_minibatches(len(X_unlabeled), half, rng=rng):
                idx_a = rng.integers(0, len(anomalies), size=min(half, len(idx_u)))
                X_batch = np.concatenate([X_unlabeled[idx_u], anomalies[idx_a]])
                y_batch = np.concatenate([np.zeros(len(idx_u)), np.ones(len(idx_a))])
                det_opt.zero_grad()
                preds = self._detector(Tensor(X_batch)).reshape(-1)
                loss = binary_cross_entropy(preds, y_batch)
                loss.backward()
                det_opt.step()
            if epoch_callback is not None:
                self._fitted = True
                epoch_callback(epoch, self)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return self._forward(self._detector, X).ravel()
