"""REPEN (Pang et al., KDD 2018) — representation learning for
random-distance-based outlier detection.

REPEN learns a low-dimensional representation tailored for the LeSiNN/Sp
random nearest-neighbour detector via a triplet hinge loss. Triplets
(anchor-from-inliers, positive-from-inliers, negative-from-outlier-
candidates) are mined from the *unsupervised* score distribution of the
original space; the loss demands the negative be farther from the anchor
than the positive by a margin. Scoring runs LeSiNN in the learned space:
the average distance to the nearest neighbour over random subsamples.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autodiff import Tensor
from repro.baselines.base import BaseDetector
from repro.nn.layers import mlp
from repro.nn.optimizers import Adam
from repro.nn.train import forward_in_batches


def lesinn_scores(
    X: np.ndarray,
    X_ref: np.ndarray,
    n_ensembles: int = 50,
    subsample: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """LeSiNN / Sp: mean nearest-neighbour distance over random subsamples."""
    rng = rng if rng is not None else np.random.default_rng(0)
    subsample = min(subsample, len(X_ref))
    total = np.zeros(len(X))
    for _ in range(n_ensembles):
        idx = rng.choice(len(X_ref), size=subsample, replace=False)
        ref = X_ref[idx]
        d = np.sqrt(
            np.maximum(
                (X**2).sum(axis=1)[:, None] - 2.0 * X @ ref.T + (ref**2).sum(axis=1)[None, :],
                0.0,
            )
        )
        total += d.min(axis=1)
    return total / n_ensembles


class REPEN(BaseDetector):
    """Representation learner + random-distance outlier detector.

    Parameters
    ----------
    embedding_dim:
        Output representation dimensionality (paper uses 20).
    n_triplets:
        Triplet budget per epoch.
    margin:
        Hinge margin of the triplet loss.
    """

    name = "REPEN"
    supervision = "unsupervised"

    def __init__(
        self,
        embedding_dim: int = 20,
        n_triplets: int = 1000,
        margin: float = 1.0,
        lr: float = 1e-3,
        epochs: int = 20,
        batch_size: int = 128,
        random_state: Optional[int] = None,
    ):
        super().__init__(random_state)
        self.embedding_dim = embedding_dim
        self.n_triplets = n_triplets
        self.margin = margin
        self.lr = lr
        self.epochs = epochs
        self.batch_size = batch_size
        self._network = None
        self._X_ref: Optional[np.ndarray] = None

    def _fit(self, X_unlabeled, X_labeled, y_labeled, epoch_callback) -> None:
        del X_labeled, y_labeled  # unsupervised variant, as in the paper's Table II
        rng = np.random.default_rng(self.random_state)

        # Prior scores in the input space mark likely inliers / outliers.
        prior = lesinn_scores(X_unlabeled, X_unlabeled, rng=rng)
        order = np.argsort(prior)
        n = len(X_unlabeled)
        inlier_pool = order[: max(int(0.5 * n), 2)]
        outlier_pool = order[-max(int(0.1 * n), 1):]

        self._network = mlp([X_unlabeled.shape[1], self.embedding_dim], activation="linear", rng=rng)
        optimizer = Adam(self._network.parameters(), lr=self.lr)

        for epoch in range(self.epochs):
            for start in range(0, self.n_triplets, self.batch_size):
                count = min(self.batch_size, self.n_triplets - start)
                anchors = X_unlabeled[rng.choice(inlier_pool, size=count)]
                positives = X_unlabeled[rng.choice(inlier_pool, size=count)]
                negatives = X_unlabeled[rng.choice(outlier_pool, size=count)]
                optimizer.zero_grad()
                za = self._network(Tensor(anchors))
                zp = self._network(Tensor(positives))
                zn = self._network(Tensor(negatives))
                d_pos = ((za - zp) ** 2.0).sum(axis=1)
                d_neg = ((za - zn) ** 2.0).sum(axis=1)
                loss = (d_pos - d_neg + self.margin).relu().mean()
                loss.backward()
                optimizer.step()
            if epoch_callback is not None:
                self._fitted = True
                self._X_ref = forward_in_batches(self._network, X_unlabeled)
                epoch_callback(epoch, self)

        self._X_ref = forward_in_batches(self._network, X_unlabeled)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        Z = self._forward(self._network, X)
        rng = np.random.default_rng(self.random_state)
        return lesinn_scores(Z, self._X_ref, rng=rng)
