"""DevNet (Pang, Shen & van den Hengel, KDD 2019) — deviation networks.

An end-to-end scalar anomaly scorer trained with the *deviation loss*: the
score of unlabeled (assumed-normal) data is pulled toward the mean of a
standard-normal reference prior, while scores of labeled anomalies must
deviate at least ``margin`` reference standard deviations above it. Each
batch oversamples the labeled anomalies 1:1 with unlabeled data, as in the
original paper.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.autodiff import Tensor
from repro.baselines.base import BaseDetector
from repro.nn.layers import mlp
from repro.nn.losses import deviation_loss
from repro.nn.optimizers import Adam
from repro.nn.train import iterate_minibatches


class DevNet(BaseDetector):
    """Deviation network anomaly scorer.

    Parameters
    ----------
    hidden_sizes:
        Widths of the scorer MLP's hidden layers.
    margin:
        Deviation margin ``a`` (the paper uses 5).
    """

    name = "DevNet"

    def __init__(
        self,
        hidden_sizes: Sequence[int] = (64, 32),
        margin: float = 5.0,
        lr: float = 1e-3,
        batch_size: int = 128,
        epochs: int = 30,
        random_state: Optional[int] = None,
    ):
        super().__init__(random_state)
        self.hidden_sizes = tuple(hidden_sizes)
        self.margin = margin
        self.lr = lr
        self.batch_size = batch_size
        self.epochs = epochs
        self._network = None

    def _fit(self, X_unlabeled, X_labeled, y_labeled, epoch_callback) -> None:
        del y_labeled
        if X_labeled is None or len(X_labeled) == 0:
            raise ValueError("DevNet requires labeled anomalies")
        rng = np.random.default_rng(self.random_state)
        self._network = mlp(
            [X_unlabeled.shape[1], *self.hidden_sizes, 1], activation="relu", rng=rng
        )
        optimizer = Adam(self._network.parameters(), lr=self.lr)
        half = max(self.batch_size // 2, 1)
        loss_rng = np.random.default_rng(
            None if self.random_state is None else self.random_state + 1
        )
        for epoch in range(self.epochs):
            for idx_u in iterate_minibatches(len(X_unlabeled), half, rng=rng):
                # Oversample the labeled anomalies to half the batch.
                idx_a = rng.integers(0, len(X_labeled), size=min(half, len(idx_u)))
                batch = np.concatenate([X_unlabeled[idx_u], X_labeled[idx_a]])
                labels = np.concatenate([np.zeros(len(idx_u)), np.ones(len(idx_a))])
                optimizer.zero_grad()
                scores = self._network(Tensor(batch)).reshape(-1)
                loss = deviation_loss(scores, labels, margin=self.margin, rng=loss_rng)
                loss.backward()
                optimizer.step()
            if epoch_callback is not None:
                self._fitted = True
                epoch_callback(epoch, self)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return self._forward(self._network, X).ravel()
