"""k-nearest-neighbour distance detector.

The classical distance-based unsupervised baseline (the paper's related
work bucket "distance-based [23]"): the anomaly score of an instance is
its (mean) distance to the k nearest training instances.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import BaseDetector
from repro.baselines.lof import _pairwise_distances


class KNNDetector(BaseDetector):
    """Mean k-NN distance anomaly score.

    Parameters
    ----------
    n_neighbors:
        Number of neighbours averaged into the score.
    aggregation:
        "mean" over the k distances or "max" (= distance to the k-th
        neighbour, the classical "kth-NN" variant).
    max_train:
        Reference-set cap (scoring is O(n·|ref|)).
    """

    name = "kNN"
    supervision = "unsupervised"

    def __init__(self, n_neighbors: int = 10, aggregation: str = "mean",
                 max_train: int = 4000, random_state: Optional[int] = None):
        super().__init__(random_state)
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if aggregation not in ("mean", "max"):
            raise ValueError('aggregation must be "mean" or "max"')
        self.n_neighbors = n_neighbors
        self.aggregation = aggregation
        self.max_train = max_train
        self._X_ref: Optional[np.ndarray] = None

    def _fit(self, X_unlabeled, X_labeled, y_labeled, epoch_callback) -> None:
        del X_labeled, y_labeled, epoch_callback
        rng = np.random.default_rng(self.random_state)
        X = X_unlabeled
        if len(X) > self.max_train:
            X = X[rng.choice(len(X), size=self.max_train, replace=False)]
        self._X_ref = X

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        k = min(self.n_neighbors, len(self._X_ref))
        scores = np.empty(len(X))
        for start in range(0, len(X), 1024):
            chunk = X[start : start + 1024]
            dists = _pairwise_distances(chunk, self._X_ref)
            nearest = np.partition(dists, k - 1, axis=1)[:, :k]
            if self.aggregation == "mean":
                scores[start : start + 1024] = nearest.mean(axis=1)
            else:
                scores[start : start + 1024] = nearest.max(axis=1)
        return scores
