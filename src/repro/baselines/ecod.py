"""ECOD (Li et al., TKDE 2022) — unsupervised outlier detection using
empirical cumulative distribution functions.

Cited in the paper's related work (reference [24]). ECOD estimates each
feature's empirical CDF on the training data and scores an instance by
aggregating per-dimension tail probabilities: for each feature, take the
more extreme of the left and right tails, sum the negative log tail
probabilities across dimensions. Parameter-free and embarrassingly simple,
yet a strong tabular baseline.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import BaseDetector

_EPS = 1e-12


class ECOD(BaseDetector):
    """ECDF-based outlier detection."""

    name = "ECOD"
    supervision = "unsupervised"

    def __init__(self, random_state: Optional[int] = None):
        super().__init__(random_state)
        self._X_sorted: Optional[np.ndarray] = None
        self._n: int = 0

    def _fit(self, X_unlabeled, X_labeled, y_labeled, epoch_callback) -> None:
        del X_labeled, y_labeled, epoch_callback
        self._X_sorted = np.sort(X_unlabeled, axis=0)
        self._n = len(X_unlabeled)

    def _tail_probs(self, X: np.ndarray) -> np.ndarray:
        """Per-dimension two-sided tail probability, shape (n, D)."""
        n = self._n
        left = np.empty_like(X)
        for j in range(X.shape[1]):
            # P(feature <= x): rank via binary search on the sorted column.
            ranks = np.searchsorted(self._X_sorted[:, j], X[:, j], side="right")
            left[:, j] = ranks / n
        right = 1.0 - left + 1.0 / n  # right-tail with continuity correction
        left = np.clip(left, 1.0 / n, 1.0)
        right = np.clip(right, 1.0 / n, 1.0)
        return np.minimum(left, right)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        tails = self._tail_probs(X)
        return -np.log(tails + _EPS).sum(axis=1)
