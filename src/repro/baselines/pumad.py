"""PUMAD (Ju et al., Information Sciences 2020) — PU Metric learning for
Anomaly Detection.

Mechanism: (1) *distance hashing* — random-hyperplane LSH buckets the
unlabeled data together with the labeled anomalies; unlabeled instances
that never share a bucket with an anomaly become reliable normals, the
rest are set aside as borderline; (2) *deep metric learning* — a triplet
network embeds reliable normals close together and labeled anomalies away;
(3) the anomaly score of an instance is its embedding distance to the
reliable-normal centroid.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set

import numpy as np

from repro.autodiff import Tensor
from repro.baselines.base import BaseDetector
from repro.nn.layers import mlp
from repro.nn.optimizers import Adam
from repro.nn.train import forward_in_batches


def lsh_reliable_normals(
    X_unlabeled: np.ndarray,
    X_anomalies: np.ndarray,
    n_tables: int = 8,
    n_bits: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Random-hyperplane LSH filter; returns a reliable-normal mask.

    An unlabeled instance is *unreliable* if it collides with any labeled
    anomaly in any hash table.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    D = X_unlabeled.shape[1]
    unreliable = np.zeros(len(X_unlabeled), dtype=bool)
    powers = 1 << np.arange(n_bits)
    for _ in range(n_tables):
        planes = rng.standard_normal((D, n_bits))
        offset = X_unlabeled.mean(axis=0)  # center hyperplanes on the data
        codes_u = ((X_unlabeled - offset) @ planes > 0) @ powers
        codes_a = ((X_anomalies - offset) @ planes > 0) @ powers
        anomaly_buckets: Set[int] = set(codes_a.tolist())
        unreliable |= np.isin(codes_u, list(anomaly_buckets))
    return ~unreliable


class PUMAD(BaseDetector):
    """PU metric learning with LSH filtering.

    Parameters
    ----------
    embedding_dim:
        Triplet-network output dimensionality.
    margin:
        Triplet hinge margin.
    n_triplets:
        Triplet budget per epoch.
    """

    name = "PUMAD"

    def __init__(
        self,
        embedding_dim: int = 20,
        hidden_sizes: Sequence[int] = (64,),
        margin: float = 1.0,
        n_triplets: int = 1000,
        lr: float = 1e-3,
        batch_size: int = 128,
        epochs: int = 20,
        n_tables: int = 8,
        n_bits: int = 8,
        random_state: Optional[int] = None,
    ):
        super().__init__(random_state)
        self.embedding_dim = embedding_dim
        self.hidden_sizes = tuple(hidden_sizes)
        self.margin = margin
        self.n_triplets = n_triplets
        self.lr = lr
        self.batch_size = batch_size
        self.epochs = epochs
        self.n_tables = n_tables
        self.n_bits = n_bits
        self._network = None
        self._centroid: Optional[np.ndarray] = None
        self.reliable_mask_: Optional[np.ndarray] = None

    def _fit(self, X_unlabeled, X_labeled, y_labeled, epoch_callback) -> None:
        del y_labeled
        if X_labeled is None or len(X_labeled) == 0:
            raise ValueError("PUMAD requires labeled anomalies")
        rng = np.random.default_rng(self.random_state)

        reliable = lsh_reliable_normals(
            X_unlabeled, X_labeled, n_tables=self.n_tables, n_bits=self.n_bits, rng=rng
        )
        if not reliable.any():
            # Degenerate hashing (everything collides): keep the farthest
            # half from the anomaly centroid as reliable normals.
            d = ((X_unlabeled - X_labeled.mean(axis=0)) ** 2).sum(axis=1)
            reliable = d >= np.median(d)
        self.reliable_mask_ = reliable
        normals = X_unlabeled[reliable]

        self._network = mlp(
            [X_unlabeled.shape[1], *self.hidden_sizes, self.embedding_dim],
            activation="relu", rng=rng,
        )
        optimizer = Adam(self._network.parameters(), lr=self.lr)
        for epoch in range(self.epochs):
            for start in range(0, self.n_triplets, self.batch_size):
                count = min(self.batch_size, self.n_triplets - start)
                anchors = normals[rng.integers(0, len(normals), size=count)]
                positives = normals[rng.integers(0, len(normals), size=count)]
                negatives = X_labeled[rng.integers(0, len(X_labeled), size=count)]
                optimizer.zero_grad()
                za = self._network(Tensor(anchors))
                zp = self._network(Tensor(positives))
                zn = self._network(Tensor(negatives))
                d_pos = ((za - zp) ** 2.0).sum(axis=1)
                d_neg = ((za - zn) ** 2.0).sum(axis=1)
                loss = (d_pos - d_neg + self.margin).relu().mean()
                loss.backward()
                optimizer.step()
            if epoch_callback is not None:
                self._fitted = True
                self._centroid = forward_in_batches(self._network, normals).mean(axis=0)
                epoch_callback(epoch, self)

        self._centroid = forward_in_batches(self._network, normals).mean(axis=0)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        Z = self._forward(self._network, X)
        return ((Z - self._centroid) ** 2).sum(axis=1)
