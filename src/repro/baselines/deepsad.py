"""DeepSAD (Ruff et al., ICLR 2020) — deep semi-supervised one-class model.

Pipeline: (1) pretrain an autoencoder on the unlabeled data; (2) set the
hypersphere center ``c`` to the mean latent code; (3) train the encoder so
unlabeled data maps close to ``c`` while labeled anomalies are pushed away
by penalizing the *inverse* squared distance. The anomaly score is the
squared latent distance to ``c``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.autodiff import Tensor
from repro.baselines.base import BaseDetector
from repro.nn.autoencoder import Autoencoder
from repro.nn.optimizers import Adam
from repro.nn.train import iterate_minibatches

_EPS = 1e-6


class DeepSAD(BaseDetector):
    """Deep semi-supervised anomaly detection.

    Parameters
    ----------
    hidden_sizes:
        Encoder layer widths (latent dim is the last entry).
    eta:
        Weight of the labeled-anomaly inverse-distance term.
    pretrain_epochs, epochs:
        Autoencoder pretraining and SAD fine-tuning schedules.
    """

    name = "DeepSAD"

    def __init__(
        self,
        hidden_sizes: Sequence[int] = (64, 16),
        eta: float = 1.0,
        lr: float = 1e-3,
        batch_size: int = 128,
        pretrain_epochs: int = 10,
        epochs: int = 30,
        random_state: Optional[int] = None,
    ):
        super().__init__(random_state)
        self.hidden_sizes = tuple(hidden_sizes)
        self.eta = eta
        self.lr = lr
        self.batch_size = batch_size
        self.pretrain_epochs = pretrain_epochs
        self.epochs = epochs
        self._encoder = None
        self._center: Optional[np.ndarray] = None

    def _fit(self, X_unlabeled, X_labeled, y_labeled, epoch_callback) -> None:
        del y_labeled  # classes collapse into one "anomaly" label
        ae = Autoencoder(
            hidden_sizes=self.hidden_sizes,
            lr=self.lr,
            batch_size=self.batch_size,
            epochs=self.pretrain_epochs,
            random_state=self.random_state,
        )
        ae.fit(X_unlabeled)
        self._encoder = ae.encoder

        latent = ae.encode(X_unlabeled)
        center = latent.mean(axis=0)
        # Avoid trivial collapse: keep the center away from exact zeros.
        center[np.abs(center) < 0.01] = 0.01
        self._center = center

        rng = np.random.default_rng(self.random_state)
        optimizer = Adam(self._encoder.parameters(), lr=self.lr)
        has_labeled = X_labeled is not None and len(X_labeled) > 0
        c = Tensor(self._center)
        for epoch in range(self.epochs):
            for idx in iterate_minibatches(len(X_unlabeled), self.batch_size, rng=rng):
                optimizer.zero_grad()
                z = self._encoder(Tensor(X_unlabeled[idx]))
                dist = ((z - c) ** 2.0).sum(axis=1)
                loss = dist.mean()
                if has_labeled:
                    z_lab = self._encoder(Tensor(X_labeled))
                    dist_lab = ((z_lab - c) ** 2.0).sum(axis=1)
                    loss = loss + self.eta * ((dist_lab + _EPS) ** -1.0).mean()
                loss.backward()
                optimizer.step()
            if epoch_callback is not None:
                self._fitted = True  # allow scoring from inside the callback
                epoch_callback(epoch, self)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        latent = self._forward(self._encoder, X)
        return ((latent - self._center) ** 2).sum(axis=1)
