"""DPLAN (Pang et al., KDD 2021) — deep reinforcement learning for anomaly
detection with partially labeled data.

An agent observes one instance per step and decides "anomaly" (1) or
"normal" (0). Rewards combine an *external* signal on labeled anomalies
(+1 for flagging, −1 for missing) with an *intrinsic* unsupervised signal
(an isolation-forest score) on unlabeled data, so the agent extends the
labeled anomaly patterns to unknown anomalies. The policy is a DQN with an
experience-replay buffer and a periodically-synced target network; the
anomaly score of an instance is ``Q(s, anomaly)``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Sequence, Tuple

import numpy as np

from repro.autodiff import Tensor
from repro.baselines.base import BaseDetector
from repro.baselines.iforest import IsolationForest
from repro.nn.layers import mlp
from repro.nn.optimizers import Adam
from repro.nn.train import forward_in_batches


class DPLAN(BaseDetector):
    """Simplified DQN anomaly-detection agent.

    Parameters
    ----------
    n_steps:
        Total environment steps (one instance observed per step).
    anomaly_sample_prob:
        Probability that the next observation is a labeled anomaly (the
        original paper's sampling alternates between the two pools).
    buffer_size, train_batch, sync_every:
        Replay-buffer capacity, DQN batch size, target-network sync period.
    epsilon_start, epsilon_end:
        Linear ε-greedy exploration schedule.
    """

    name = "DPLAN"

    def __init__(
        self,
        hidden_sizes: Sequence[int] = (64, 32),
        n_steps: int = 2000,
        anomaly_sample_prob: float = 0.5,
        gamma: float = 0.1,
        lr: float = 1e-3,
        buffer_size: int = 1024,
        train_batch: int = 64,
        sync_every: int = 200,
        epsilon_start: float = 1.0,
        epsilon_end: float = 0.1,
        random_state: Optional[int] = None,
    ):
        super().__init__(random_state)
        self.hidden_sizes = tuple(hidden_sizes)
        self.n_steps = n_steps
        self.anomaly_sample_prob = anomaly_sample_prob
        self.gamma = gamma
        self.lr = lr
        self.buffer_size = buffer_size
        self.train_batch = train_batch
        self.sync_every = sync_every
        self.epsilon_start = epsilon_start
        self.epsilon_end = epsilon_end
        self._q_network = None

    def _fit(self, X_unlabeled, X_labeled, y_labeled, epoch_callback) -> None:
        del y_labeled
        if X_labeled is None or len(X_labeled) == 0:
            raise ValueError("DPLAN requires labeled anomalies")
        rng = np.random.default_rng(self.random_state)
        D = X_unlabeled.shape[1]

        # Intrinsic reward: normalized isolation-forest score on unlabeled data.
        iforest = IsolationForest(n_estimators=50, random_state=self.random_state)
        iforest.fit(X_unlabeled)
        intrinsic = iforest.decision_function(X_unlabeled)
        intrinsic = (intrinsic - intrinsic.min()) / max(intrinsic.max() - intrinsic.min(), 1e-12)

        self._q_network = mlp([D, *self.hidden_sizes, 2], activation="relu", rng=rng)
        target_network = mlp([D, *self.hidden_sizes, 2], activation="relu", rng=rng)
        target_network.load_state_dict(self._q_network.state_dict())
        optimizer = Adam(self._q_network.parameters(), lr=self.lr)

        buffer: Deque[Tuple[np.ndarray, int, float, np.ndarray]] = deque(maxlen=self.buffer_size)

        def sample_observation() -> Tuple[np.ndarray, bool, float]:
            if rng.random() < self.anomaly_sample_prob:
                return X_labeled[rng.integers(len(X_labeled))], True, 0.0
            idx = int(rng.integers(len(X_unlabeled)))
            return X_unlabeled[idx], False, float(intrinsic[idx])

        state, is_anom, intr = sample_observation()
        callback_every = max(self.n_steps // 30, 1)
        for step in range(self.n_steps):
            epsilon = self.epsilon_start + (self.epsilon_end - self.epsilon_start) * (
                step / max(self.n_steps - 1, 1)
            )
            if rng.random() < epsilon:
                action = int(rng.integers(2))
            else:
                q = forward_in_batches(self._q_network, state[None, :])[0]
                action = int(q.argmax())

            if is_anom:
                reward = 1.0 if action == 1 else -1.0
            else:
                reward = intr if action == 1 else 0.0

            next_state, next_is_anom, next_intr = sample_observation()
            buffer.append((state, action, reward, next_state))
            state, is_anom, intr = next_state, next_is_anom, next_intr

            if len(buffer) >= self.train_batch:
                batch_idx = rng.choice(len(buffer), size=self.train_batch, replace=False)
                states = np.stack([buffer[i][0] for i in batch_idx])
                actions = np.array([buffer[i][1] for i in batch_idx])
                rewards = np.array([buffer[i][2] for i in batch_idx])
                next_states = np.stack([buffer[i][3] for i in batch_idx])

                next_q = forward_in_batches(target_network, next_states)
                targets = rewards + self.gamma * next_q.max(axis=1)

                optimizer.zero_grad()
                q_values = self._q_network(Tensor(states))
                chosen = q_values[np.arange(len(actions)), actions]
                loss = ((chosen - Tensor(targets)) ** 2.0).mean()
                loss.backward()
                optimizer.step()

            if (step + 1) % self.sync_every == 0:
                target_network.load_state_dict(self._q_network.state_dict())
            if epoch_callback is not None and (step + 1) % callback_every == 0:
                self._fitted = True
                epoch_callback((step + 1) // callback_every - 1, self)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        q = self._forward(self._q_network, X)
        return q[:, 1]
