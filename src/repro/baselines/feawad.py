"""FEAWAD (Zhou et al., TNNLS 2021) — Feature Encoding with AutoencoderS
for Weakly-supervised Anomaly Detection.

Mechanism: an autoencoder is pretrained on the unlabeled data; each
instance is then re-represented as ``[hidden code, normalized residual
direction, reconstruction error]`` and a scorer network maps that
representation to a scalar anomaly score trained with a deviation-style
loss (unlabeled → 0 margin, labeled anomalies → above margin), with the
reconstruction error itself anchoring the score scale.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.autodiff import Tensor
from repro.baselines.base import BaseDetector
from repro.nn.autoencoder import Autoencoder
from repro.nn.layers import mlp
from repro.nn.optimizers import Adam
from repro.nn.train import iterate_minibatches

_EPS = 1e-12


class FEAWAD(BaseDetector):
    """Autoencoder feature encoding + weakly-supervised anomaly scorer.

    Parameters
    ----------
    ae_hidden:
        Autoencoder bottleneck architecture.
    margin:
        Score margin demanded for labeled anomalies.
    """

    name = "FEAWAD"

    def __init__(
        self,
        ae_hidden: Sequence[int] = (64, 16),
        scorer_hidden: Sequence[int] = (32,),
        margin: float = 5.0,
        lr: float = 1e-3,
        batch_size: int = 128,
        ae_epochs: int = 20,
        epochs: int = 30,
        random_state: Optional[int] = None,
    ):
        super().__init__(random_state)
        self.ae_hidden = tuple(ae_hidden)
        self.scorer_hidden = tuple(scorer_hidden)
        self.margin = margin
        self.lr = lr
        self.batch_size = batch_size
        self.ae_epochs = ae_epochs
        self.epochs = epochs
        self._ae: Optional[Autoencoder] = None
        self._scorer = None

    def _encode_features(self, X: np.ndarray) -> np.ndarray:
        """Build FEAWAD's composite representation for each row."""
        hidden = self._ae.encode(X)
        recon = self._ae.reconstruct(X)
        residual = X - recon
        err = np.sqrt((residual**2).sum(axis=1, keepdims=True))
        direction = residual / (err + _EPS)
        return np.concatenate([hidden, direction, err], axis=1)

    def _fit(self, X_unlabeled, X_labeled, y_labeled, epoch_callback) -> None:
        del y_labeled
        if X_labeled is None or len(X_labeled) == 0:
            raise ValueError("FEAWAD requires labeled anomalies")
        self._ae = Autoencoder(
            hidden_sizes=self.ae_hidden,
            lr=self.lr,
            batch_size=self.batch_size,
            epochs=self.ae_epochs,
            random_state=self.random_state,
        )
        self._ae.fit(X_unlabeled)

        F_unlab = self._encode_features(X_unlabeled)
        F_lab = self._encode_features(X_labeled)
        rng = np.random.default_rng(self.random_state)
        self._scorer = mlp([F_unlab.shape[1], *self.scorer_hidden, 1], activation="relu", rng=rng)
        optimizer = Adam(self._scorer.parameters(), lr=self.lr)
        half = max(self.batch_size // 2, 1)
        for epoch in range(self.epochs):
            for idx_u in iterate_minibatches(len(F_unlab), half, rng=rng):
                idx_a = rng.integers(0, len(F_lab), size=min(half, len(idx_u)))
                optimizer.zero_grad()
                s_u = self._scorer(Tensor(F_unlab[idx_u])).reshape(-1)
                s_a = self._scorer(Tensor(F_lab[idx_a])).reshape(-1)
                # Unlabeled scores shrink to zero; anomalies exceed margin.
                loss = s_u.abs().mean() + (self.margin - s_a).relu().mean()
                loss.backward()
                optimizer.step()
            if epoch_callback is not None:
                self._fitted = True
                epoch_callback(epoch, self)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        features = self._encode_features(np.asarray(X, dtype=np.float64))
        return self._forward(self._scorer, features).ravel()
