"""PIA-WAL (Zong et al., DASFAA 2022) — Peripheral Instance Augmentation
with Weighted Adversarial Learning.

Mechanism: peripheral normal instances (normals near the decision
boundary) are under-represented, so semi-supervised detectors misjudge
them. PIA-WAL trains a generator adversarially against a discriminator on
the unlabeled data, with a *weighting* scheme that emphasizes generated
instances lying on the data's periphery (discriminator output near the
real/fake boundary). The generated peripherals augment the normal side of
a deviation-style scorer that is guided by the labeled anomalies.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.autodiff import Tensor
from repro.baselines.base import BaseDetector
from repro.nn.layers import mlp
from repro.nn.losses import binary_cross_entropy
from repro.nn.optimizers import Adam
from repro.nn.train import forward_in_batches, iterate_minibatches


class PIAWAL(BaseDetector):
    """Weighted adversarial peripheral augmentation + anomaly scorer.

    Parameters
    ----------
    noise_dim:
        Generator input dimensionality.
    gan_epochs, epochs:
        Adversarial pretraining and scorer training schedules.
    n_generated:
        Number of peripheral instances synthesized for augmentation.
    margin:
        Scorer margin for labeled anomalies.
    """

    name = "PIA-WAL"

    def __init__(
        self,
        noise_dim: int = 16,
        gen_hidden: Sequence[int] = (32,),
        disc_hidden: Sequence[int] = (32,),
        scorer_hidden: Sequence[int] = (64, 32),
        gan_epochs: int = 10,
        epochs: int = 30,
        n_generated: int = 256,
        margin: float = 5.0,
        lr: float = 1e-3,
        batch_size: int = 128,
        random_state: Optional[int] = None,
    ):
        super().__init__(random_state)
        self.noise_dim = noise_dim
        self.gen_hidden = tuple(gen_hidden)
        self.disc_hidden = tuple(disc_hidden)
        self.scorer_hidden = tuple(scorer_hidden)
        self.gan_epochs = gan_epochs
        self.epochs = epochs
        self.n_generated = n_generated
        self.margin = margin
        self.lr = lr
        self.batch_size = batch_size
        self._scorer = None

    def _fit(self, X_unlabeled, X_labeled, y_labeled, epoch_callback) -> None:
        del y_labeled
        if X_labeled is None or len(X_labeled) == 0:
            raise ValueError("PIA-WAL requires labeled anomalies")
        rng = np.random.default_rng(self.random_state)
        D = X_unlabeled.shape[1]

        # --- Stage 1: adversarial generator over the normal manifold ----
        generator = mlp([self.noise_dim, *self.gen_hidden, D],
                        activation="relu", output_activation="sigmoid", rng=rng)
        discriminator = mlp([D, *self.disc_hidden, 1],
                            activation="relu", output_activation="sigmoid", rng=rng)
        g_opt = Adam(generator.parameters(), lr=self.lr)
        d_opt = Adam(discriminator.parameters(), lr=self.lr)

        for _ in range(self.gan_epochs):
            for idx in iterate_minibatches(len(X_unlabeled), self.batch_size, rng=rng):
                real = X_unlabeled[idx]
                noise = rng.standard_normal((len(idx), self.noise_dim))

                # Discriminator: real -> 1, fake -> 0.
                d_opt.zero_grad()
                fake = generator(Tensor(noise)).detach()
                d_real = discriminator(Tensor(real)).reshape(-1)
                d_fake = discriminator(fake).reshape(-1)
                d_loss = binary_cross_entropy(d_real, np.ones(len(idx))) + \
                    binary_cross_entropy(d_fake, np.zeros(len(idx)))
                d_loss.backward()
                d_opt.step()

                # Generator: fool the discriminator.
                g_opt.zero_grad()
                noise = rng.standard_normal((len(idx), self.noise_dim))
                fake = generator(Tensor(noise))
                d_fake = discriminator(fake).reshape(-1)
                g_loss = binary_cross_entropy(d_fake, np.ones(len(idx)))
                g_loss.backward()
                g_opt.step()

        # --- Stage 2: synthesize and weight peripheral instances --------
        noise = rng.standard_normal((self.n_generated, self.noise_dim))
        generated = forward_in_batches(generator, noise)
        d_out = forward_in_batches(discriminator, generated).ravel()
        # Peripheral = the discriminator is uncertain (output near 0.5);
        # the weight peaks there and vanishes at confident real/fake.
        peripheral_weight = 1.0 - 2.0 * np.abs(d_out - 0.5)

        # --- Stage 3: weighted deviation-style scorer --------------------
        self._scorer = mlp([D, *self.scorer_hidden, 1], activation="relu", rng=rng)
        s_opt = Adam(self._scorer.parameters(), lr=self.lr)
        half = max(self.batch_size // 2, 1)
        for epoch in range(self.epochs):
            for idx_u in iterate_minibatches(len(X_unlabeled), half, rng=rng):
                idx_a = rng.integers(0, len(X_labeled), size=min(half, len(idx_u)))
                idx_g = rng.integers(0, len(generated), size=min(half, len(idx_u)))
                s_opt.zero_grad()
                s_u = self._scorer(Tensor(X_unlabeled[idx_u])).reshape(-1)
                s_a = self._scorer(Tensor(X_labeled[idx_a])).reshape(-1)
                s_g = self._scorer(Tensor(generated[idx_g])).reshape(-1)
                w_g = Tensor(peripheral_weight[idx_g])
                loss = (
                    s_u.abs().mean()
                    + (self.margin - s_a).relu().mean()
                    + (w_g * s_g.abs()).mean()
                )
                loss.backward()
                s_opt.step()
            if epoch_callback is not None:
                self._fitted = True
                epoch_callback(epoch, self)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return self._forward(self._scorer, X).ravel()
