"""DeepSVDD (Ruff et al., ICML 2018) — unsupervised deep one-class model.

The fully-unsupervised ancestor of DeepSAD (the paper's reference [23]):
pretrain an autoencoder, fix the hypersphere center ``c`` at the mean
latent code, then train the encoder to contract all (unlabeled) data
toward ``c``. Anomaly score = squared latent distance to ``c``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.baselines.deepsad import DeepSAD


class DeepSVDD(DeepSAD):
    """One-class DeepSVDD (DeepSAD with the labeled term disabled).

    Implemented as DeepSAD with ``eta = 0`` and labels ignored, which is
    exactly the relationship between the two published methods.
    """

    name = "DeepSVDD"
    supervision = "unsupervised"

    def __init__(
        self,
        hidden_sizes: Sequence[int] = (64, 16),
        lr: float = 1e-3,
        batch_size: int = 128,
        pretrain_epochs: int = 10,
        epochs: int = 30,
        random_state: Optional[int] = None,
    ):
        super().__init__(
            hidden_sizes=hidden_sizes,
            eta=0.0,
            lr=lr,
            batch_size=batch_size,
            pretrain_epochs=pretrain_epochs,
            epochs=epochs,
            random_state=random_state,
        )

    def _fit(self, X_unlabeled, X_labeled, y_labeled, epoch_callback) -> None:
        # One-class: discard any labels the caller passes.
        super()._fit(X_unlabeled, None, None, epoch_callback)
