"""Isolation Forest (Liu, Ting & Zhou, 2012) — unsupervised baseline.

Anomalies are "few and different", so random axis-aligned splits isolate
them in short paths. The anomaly score is ``2^(−E[h(x)] / c(ψ))`` where
``E[h(x)]`` is the mean path length over the ensemble and ``c(ψ)`` the
expected path length of an unsuccessful BST search on ``ψ`` points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.base import BaseDetector


@dataclass
class _Node:
    """Internal tree node; ``feature is None`` marks a leaf."""

    feature: Optional[int] = None
    split: float = 0.0
    size: int = 0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None


def average_path_length(n: np.ndarray) -> np.ndarray:
    """``c(n)``: expected path length of unsuccessful BST search on n points."""
    n = np.asarray(n, dtype=np.float64)
    result = np.zeros_like(n)
    mask = n > 2
    harmonic = np.log(n[mask] - 1.0) + np.euler_gamma
    result[mask] = 2.0 * harmonic - 2.0 * (n[mask] - 1.0) / n[mask]
    result[n == 2] = 1.0
    return result


class IsolationForest(BaseDetector):
    """Isolation forest over random subsamples.

    Parameters
    ----------
    n_estimators:
        Number of isolation trees.
    max_samples:
        Subsample size ψ per tree (capped at the dataset size).
    random_state:
        Ensemble seed.
    """

    name = "iForest"
    supervision = "unsupervised"

    def __init__(self, n_estimators: int = 100, max_samples: int = 256,
                 random_state: Optional[int] = None):
        super().__init__(random_state)
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if max_samples < 2:
            raise ValueError("max_samples must be >= 2")
        self.n_estimators = n_estimators
        self.max_samples = max_samples
        self._trees: list = []
        self._psi: int = 0

    # ------------------------------------------------------------------
    def _build_tree(self, X: np.ndarray, depth: int, max_depth: int,
                    rng: np.random.Generator) -> _Node:
        n = len(X)
        if depth >= max_depth or n <= 1:
            return _Node(size=n)
        # Choose a feature with spread; bail to a leaf if all are constant.
        spans = X.max(axis=0) - X.min(axis=0)
        candidates = np.flatnonzero(spans > 0)
        if len(candidates) == 0:
            return _Node(size=n)
        feature = int(rng.choice(candidates))
        low, high = X[:, feature].min(), X[:, feature].max()
        split = float(rng.uniform(low, high))
        mask = X[:, feature] < split
        return _Node(
            feature=feature,
            split=split,
            size=n,
            left=self._build_tree(X[mask], depth + 1, max_depth, rng),
            right=self._build_tree(X[~mask], depth + 1, max_depth, rng),
        )

    def _fit(self, X_unlabeled, X_labeled, y_labeled, epoch_callback) -> None:
        del X_labeled, y_labeled, epoch_callback  # unsupervised
        rng = np.random.default_rng(self.random_state)
        n = len(X_unlabeled)
        self._psi = min(self.max_samples, n)
        max_depth = int(np.ceil(np.log2(max(self._psi, 2))))
        self._trees = []
        for _ in range(self.n_estimators):
            sample_idx = rng.choice(n, size=self._psi, replace=False)
            self._trees.append(self._build_tree(X_unlabeled[sample_idx], 0, max_depth, rng))

    # ------------------------------------------------------------------
    def _path_lengths(self, tree: _Node, X: np.ndarray, idx: np.ndarray,
                      depth: int, out: np.ndarray) -> None:
        if tree.feature is None or len(idx) == 0:
            # Leaf: add the depth plus the BST correction for leaf size.
            correction = float(average_path_length(np.array([max(tree.size, 1)]))[0])
            out[idx] = depth + correction
            return
        mask = X[idx, tree.feature] < tree.split
        self._path_lengths(tree.left, X, idx[mask], depth + 1, out)
        self._path_lengths(tree.right, X, idx[~mask], depth + 1, out)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        total = np.zeros(len(X))
        buffer = np.empty(len(X))
        all_idx = np.arange(len(X))
        for tree in self._trees:
            self._path_lengths(tree, X, all_idx, 0, buffer)
            total += buffer
        mean_depth = total / self.n_estimators
        c = float(average_path_length(np.array([self._psi]))[0])
        return np.power(2.0, -mean_depth / max(c, 1e-12))
