"""Shared detector interface for the baselines."""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np


class BaseDetector:
    """Anomaly detector with a unified semi-supervised interface.

    Subclasses implement :meth:`_fit` and :meth:`decision_function`.
    Anomaly scores follow the convention *higher = more anomalous*.

    Attributes
    ----------
    name:
        Registry/display name of the method.
    supervision:
        "unsupervised" or "semi-supervised" — documentation metadata used
        by the evaluation tables.
    """

    name = "base"
    supervision = "semi-supervised"

    #: Inference precision for :meth:`_forward` (``None`` = backend policy
    #: default, normally float64). Training always stays float64.
    inference_dtype = None

    def __init__(self, random_state: Optional[int] = None):
        self.random_state = random_state
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(
        self,
        X_unlabeled: np.ndarray,
        X_labeled: Optional[np.ndarray] = None,
        y_labeled: Optional[np.ndarray] = None,
        epoch_callback: Optional[Callable[[int, "BaseDetector"], None]] = None,
    ) -> "BaseDetector":
        """Train the detector.

        Parameters
        ----------
        X_unlabeled:
            The unlabeled (contaminated) pool.
        X_labeled, y_labeled:
            Labeled target anomalies and their class labels. Baselines all
            collapse the classes into a single "anomaly" label; the class
            information is accepted for interface uniformity.
        epoch_callback:
            Optional per-epoch hook for neural detectors.
        """
        X_unlabeled = np.asarray(X_unlabeled, dtype=np.float64)
        if X_unlabeled.ndim != 2 or len(X_unlabeled) == 0:
            raise ValueError("X_unlabeled must be a non-empty 2-D array")
        if X_labeled is not None:
            X_labeled = np.asarray(X_labeled, dtype=np.float64)
            if X_labeled.ndim != 2:
                raise ValueError("X_labeled must be 2-dimensional")
        self._fit(X_unlabeled, X_labeled, y_labeled, epoch_callback)
        self._fitted = True
        return self

    def _fit(self, X_unlabeled, X_labeled, y_labeled, epoch_callback) -> None:
        raise NotImplementedError

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Anomaly scores; higher = more anomalous."""
        raise NotImplementedError

    def _forward(self, network, X: np.ndarray) -> np.ndarray:
        """Shared batched read-path forward for neural subclasses.

        Routes through :func:`repro.nn.train.forward_in_batches`, i.e.
        the compiled graph-free inference path (with automatic graph
        fallback), honouring the detector's ``inference_dtype``. All
        neural baselines score through this helper so a backend or
        precision change lands in one place.
        """
        from repro.nn.train import forward_in_batches

        return forward_in_batches(
            network, np.asarray(X, dtype=np.float64), dtype=self.inference_dtype
        )

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(f"{self.name} is not fitted; call fit() first")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(random_state={self.random_state})"
