"""ADOA (Zhang et al., WWW 2018) — Anomaly Detection with partially
Observed Anomalies.

Mechanism: (1) cluster the observed (labeled) anomalies into ``k``
clusters; (2) score every unlabeled instance by a convex combination of an
*isolation* score (from an isolation forest) and a *similarity* score (max
similarity to an anomaly-cluster center); (3) instances with a high total
score become reliable anomalies (assigned to their nearest anomaly
cluster), those with a low score reliable normals, each carrying a
confidence weight; (4) train a weighted (k+1)-class classifier; the
anomaly score of a new instance is its total anomaly-cluster probability
mass.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.autodiff import Tensor
from repro.baselines.base import BaseDetector
from repro.baselines.iforest import IsolationForest
from repro.cluster import KMeans
from repro.nn.layers import mlp
from repro.nn.losses import soft_cross_entropy
from repro.nn.optimizers import Adam
from repro.nn.train import iterate_minibatches


class ADOA(BaseDetector):
    """ADOA with an MLP as the weighted multi-class learner.

    Parameters
    ----------
    n_anomaly_clusters:
        ``k``: number of clusters among the observed anomalies.
    theta:
        Convex weight between isolation and similarity scores.
    anomaly_quantile, normal_quantile:
        Total-score quantiles above/below which unlabeled instances become
        reliable anomalies / normals.
    """

    name = "ADOA"

    def __init__(
        self,
        n_anomaly_clusters: int = 2,
        theta: float = 0.5,
        anomaly_quantile: float = 0.95,
        normal_quantile: float = 0.5,
        hidden_sizes: Sequence[int] = (64, 32),
        lr: float = 1e-3,
        batch_size: int = 128,
        epochs: int = 20,
        random_state: Optional[int] = None,
    ):
        super().__init__(random_state)
        if not 0.0 <= theta <= 1.0:
            raise ValueError("theta must be in [0, 1]")
        self.n_anomaly_clusters = n_anomaly_clusters
        self.theta = theta
        self.anomaly_quantile = anomaly_quantile
        self.normal_quantile = normal_quantile
        self.hidden_sizes = tuple(hidden_sizes)
        self.lr = lr
        self.batch_size = batch_size
        self.epochs = epochs
        self._network = None
        self._k: int = 0

    def _fit(self, X_unlabeled, X_labeled, y_labeled, epoch_callback) -> None:
        del y_labeled
        if X_labeled is None or len(X_labeled) == 0:
            raise ValueError("ADOA requires observed anomalies")
        rng = np.random.default_rng(self.random_state)

        k = min(self.n_anomaly_clusters, len(X_labeled))
        self._k = k
        kmeans = KMeans(n_clusters=k, random_state=self.random_state)
        anomaly_clusters = kmeans.fit_predict(X_labeled)
        centers = kmeans.cluster_centers_

        # Isolation score, normalized to [0, 1].
        iforest = IsolationForest(n_estimators=50, random_state=self.random_state)
        iforest.fit(X_unlabeled)
        iso = iforest.decision_function(X_unlabeled)
        iso = (iso - iso.min()) / max(iso.max() - iso.min(), 1e-12)

        # Similarity score: Gaussian kernel to the nearest anomaly center.
        d2 = ((X_unlabeled[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        bandwidth = np.median(d2) + 1e-12
        sim = np.exp(-d2 / bandwidth).max(axis=1)
        nearest = d2.argmin(axis=1)

        total = self.theta * iso + (1.0 - self.theta) * sim
        hi = np.quantile(total, self.anomaly_quantile)
        lo = np.quantile(total, self.normal_quantile)
        reliable_anom = total >= hi
        reliable_norm = total <= lo

        # Assemble the weighted training set: labeled anomalies (weight 1,
        # their own cluster), reliable unlabeled anomalies (weight = total
        # score), reliable normals (weight = 1 - total score), class k.
        X_parts = [X_labeled, X_unlabeled[reliable_anom], X_unlabeled[reliable_norm]]
        y_parts = [anomaly_clusters, nearest[reliable_anom],
                   np.full(int(reliable_norm.sum()), k)]
        w_parts = [np.ones(len(X_labeled)), total[reliable_anom], 1.0 - total[reliable_norm]]
        X_train = np.concatenate(X_parts)
        y_train = np.concatenate(y_parts).astype(np.int64)
        weights = np.concatenate(w_parts)

        n_classes = k + 1
        targets = np.zeros((len(y_train), n_classes))
        targets[np.arange(len(y_train)), y_train] = 1.0

        self._network = mlp([X_unlabeled.shape[1], *self.hidden_sizes, n_classes],
                            activation="relu", rng=rng)
        optimizer = Adam(self._network.parameters(), lr=self.lr)
        for epoch in range(self.epochs):
            for idx in iterate_minibatches(len(X_train), self.batch_size, rng=rng):
                optimizer.zero_grad()
                logits = self._network(Tensor(X_train[idx]))
                loss = soft_cross_entropy(logits, targets[idx], weights=weights[idx])
                loss.backward()
                optimizer.step()
            if epoch_callback is not None:
                self._fitted = True
                epoch_callback(epoch, self)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        logits = self._forward(self._network, X)
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        return probs[:, : self._k].sum(axis=1)
