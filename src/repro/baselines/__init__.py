"""The paper's eleven baseline detectors (Section IV-B), from scratch.

All share the :class:`~repro.baselines.base.BaseDetector` interface:
``fit(X_unlabeled, X_labeled=None, y_labeled=None)`` then
``decision_function(X)`` returning an anomaly score (higher = more
anomalous). iForest and REPEN are unsupervised; the rest consume the
labeled target anomalies as a single "anomaly" class — which is exactly
why they confuse non-target anomalies with targets, the failure mode the
paper measures.
"""

from repro.baselines.adoa import ADOA
from repro.baselines.base import BaseDetector
from repro.baselines.deep_svdd import DeepSVDD
from repro.baselines.deepsad import DeepSAD
from repro.baselines.devnet import DevNet
from repro.baselines.dplan import DPLAN
from repro.baselines.dual_mgan import DualMGAN
from repro.baselines.ecod import ECOD
from repro.baselines.feawad import FEAWAD
from repro.baselines.iforest import IsolationForest
from repro.baselines.knn import KNNDetector
from repro.baselines.lof import LocalOutlierFactor
from repro.baselines.piawal import PIAWAL
from repro.baselines.prenet import PReNet
from repro.baselines.pumad import PUMAD
from repro.baselines.repen import REPEN

__all__ = [
    "ADOA",
    "BaseDetector",
    "DPLAN",
    "DeepSAD",
    "DeepSVDD",
    "DevNet",
    "DualMGAN",
    "ECOD",
    "FEAWAD",
    "IsolationForest",
    "KNNDetector",
    "LocalOutlierFactor",
    "PIAWAL",
    "PReNet",
    "PUMAD",
    "REPEN",
]
