"""PReNet (Pang et al., KDD 2023) — pairwise relation networks.

Mechanism: sample instance pairs from the training data and regress an
ordinal relation score: (anomaly, anomaly) → 8, (anomaly, unlabeled) → 4,
(unlabeled, unlabeled) → 0. The network consumes the concatenated pair
features. At inference, an instance is paired with random labeled
anomalies and random unlabeled instances; its anomaly score is the mean
predicted relation over those pairs (instances that relate strongly to
known anomalies score high).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.autodiff import Tensor
from repro.baselines.base import BaseDetector
from repro.nn.layers import mlp
from repro.nn.optimizers import Adam

SCORE_AA = 8.0
SCORE_AU = 4.0
SCORE_UU = 0.0


class PReNet(BaseDetector):
    """Pairwise relation network.

    Parameters
    ----------
    pairs_per_epoch:
        Number of training pairs sampled per epoch (split equally across
        the aa / au / uu pair types).
    n_score_pairs:
        Pairs per instance used at scoring time.
    """

    name = "PReNet"

    def __init__(
        self,
        hidden_sizes: Sequence[int] = (64, 32),
        pairs_per_epoch: int = 1536,
        n_score_pairs: int = 30,
        lr: float = 1e-3,
        batch_size: int = 128,
        epochs: int = 30,
        random_state: Optional[int] = None,
    ):
        super().__init__(random_state)
        self.hidden_sizes = tuple(hidden_sizes)
        self.pairs_per_epoch = pairs_per_epoch
        self.n_score_pairs = n_score_pairs
        self.lr = lr
        self.batch_size = batch_size
        self.epochs = epochs
        self._network = None
        self._X_anom: Optional[np.ndarray] = None
        self._X_unlab_ref: Optional[np.ndarray] = None

    def _sample_pairs(self, X_u: np.ndarray, X_a: np.ndarray, count: int,
                      rng: np.random.Generator):
        """Sample a balanced batch of aa / au / uu pairs with targets."""
        third = max(count // 3, 1)
        aa_left = X_a[rng.integers(0, len(X_a), size=third)]
        aa_right = X_a[rng.integers(0, len(X_a), size=third)]
        au_left = X_a[rng.integers(0, len(X_a), size=third)]
        au_right = X_u[rng.integers(0, len(X_u), size=third)]
        uu_left = X_u[rng.integers(0, len(X_u), size=third)]
        uu_right = X_u[rng.integers(0, len(X_u), size=third)]
        pairs = np.concatenate([
            np.concatenate([aa_left, aa_right], axis=1),
            np.concatenate([au_left, au_right], axis=1),
            np.concatenate([uu_left, uu_right], axis=1),
        ])
        targets = np.concatenate([
            np.full(third, SCORE_AA), np.full(third, SCORE_AU), np.full(third, SCORE_UU),
        ])
        perm = rng.permutation(len(pairs))
        return pairs[perm], targets[perm]

    def _fit(self, X_unlabeled, X_labeled, y_labeled, epoch_callback) -> None:
        del y_labeled
        if X_labeled is None or len(X_labeled) == 0:
            raise ValueError("PReNet requires labeled anomalies")
        rng = np.random.default_rng(self.random_state)
        D = X_unlabeled.shape[1]
        self._network = mlp([2 * D, *self.hidden_sizes, 1], activation="relu", rng=rng)
        optimizer = Adam(self._network.parameters(), lr=self.lr)
        self._X_anom = X_labeled
        # A fixed reference subsample keeps scoring cost bounded.
        ref_size = min(len(X_unlabeled), 256)
        self._X_unlab_ref = X_unlabeled[rng.choice(len(X_unlabeled), size=ref_size, replace=False)]

        for epoch in range(self.epochs):
            pairs, targets = self._sample_pairs(X_unlabeled, X_labeled,
                                                self.pairs_per_epoch, rng)
            for start in range(0, len(pairs), self.batch_size):
                sl = slice(start, start + self.batch_size)
                optimizer.zero_grad()
                preds = self._network(Tensor(pairs[sl])).reshape(-1)
                loss = ((preds - Tensor(targets[sl])) ** 2.0).mean()
                loss.backward()
                optimizer.step()
            if epoch_callback is not None:
                self._fitted = True
                epoch_callback(epoch, self)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        rng = np.random.default_rng(self.random_state)
        n_pairs = self.n_score_pairs
        half = max(n_pairs // 2, 1)
        scores = np.zeros(len(X))
        # Mean relation to labeled anomalies + mean relation to unlabeled.
        for ref, count in ((self._X_anom, half), (self._X_unlab_ref, half)):
            partners = ref[rng.integers(0, len(ref), size=count)]
            for partner in partners:
                pairs = np.concatenate([X, np.tile(partner, (len(X), 1))], axis=1)
                scores += self._forward(self._network, pairs).ravel()
        return scores / (2 * half)
