"""Pluggable numeric backend with an explicit dtype policy.

This package is the execution substrate underneath :mod:`repro.autodiff`
(and, by extension, every model in the repository). It separates *what*
array math is performed from *how*:

- :mod:`repro.backend.ops` — the backend-agnostic op surface the
  autodiff engine calls (``from repro.backend import ops as B``);
- :mod:`repro.backend.registry` — named backends, one active at a time
  (:func:`register_backend`, :func:`set_backend`, :func:`use_backend`);
- :mod:`repro.backend.numpy_backend` — the reference implementation;
- :mod:`repro.backend.tiled` — a cache-blocked, sparsity-aware backend
  (threaded row tiles, one-hot gather kernel) registered as ``"tiled"``;
- :mod:`repro.backend.policy` — the dtype policy: training/grad checks
  are pinned to ``float64``, inference may opt into ``float32``
  (:func:`inference_precision`, or the ``dtype=`` argument on the
  compiled-inference entry points in :mod:`repro.nn`).
"""

from repro.backend.numpy_backend import NumpyBackend
from repro.backend.policy import (
    TRAINING_DTYPE,
    inference_dtype,
    inference_precision,
    resolve_dtype,
    set_inference_dtype,
    training_dtype,
)
from repro.backend.registry import (
    active_backend,
    backend_names,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from repro.backend.tiled import TiledBackend

register_backend("tiled", TiledBackend())

__all__ = [
    "NumpyBackend",
    "TiledBackend",
    "TRAINING_DTYPE",
    "active_backend",
    "backend_names",
    "get_backend",
    "inference_dtype",
    "inference_precision",
    "register_backend",
    "resolve_dtype",
    "set_backend",
    "set_inference_dtype",
    "training_dtype",
    "use_backend",
]
