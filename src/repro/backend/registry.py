"""Backend registry: named backends, one active at a time.

The registry keeps the numeric backend pluggable without threading a
backend handle through every call site: :mod:`repro.autodiff` and the
compiled-inference machinery always dispatch through
:func:`active_backend`. Swapping the backend (globally with
:func:`set_backend` or lexically with :func:`use_backend`) redirects all
subsequent array math.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator, Optional

from repro.backend.numpy_backend import NumpyBackend

_BACKENDS: Dict[str, object] = {}
_ACTIVE: object = None  # set at import bottom


def register_backend(name: str, backend, *, activate: bool = False) -> None:
    """Register ``backend`` under ``name`` (optionally activating it).

    ``backend`` must expose the :class:`~repro.backend.numpy_backend.
    NumpyBackend` op surface; re-registering a name replaces it.
    """
    _BACKENDS[name] = backend
    if activate:
        set_backend(name)


def backend_names() -> list:
    """Sorted names of all registered backends."""
    return sorted(_BACKENDS)


def get_backend(name: Optional[str] = None):
    """Return the backend registered under ``name`` (default: active)."""
    if name is None:
        return _ACTIVE
    try:
        return _BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"no backend named {name!r}; registered: {backend_names()}"
        ) from None


def set_backend(name: str) -> None:
    """Make the named backend the process-wide active backend."""
    global _ACTIVE
    _ACTIVE = get_backend(name)


def active_backend():
    """The backend all backend-agnostic array math dispatches to."""
    return _ACTIVE


@contextlib.contextmanager
def use_backend(name: str) -> Iterator[object]:
    """Temporarily activate the named backend within a ``with`` block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = get_backend(name)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


register_backend("numpy", NumpyBackend(), activate=True)
