"""Cache-blocked, sparsity-aware tiled execution backend.

:class:`TiledBackend` extends the reference numpy backend with two
serving-oriented execution strategies:

- **Row-tiled threading.** ``matmul`` and the dense fallback of
  ``fused_dense_act`` partition the batch into row tiles and drive the
  tiles through a process-wide worker threadpool. Row partitioning never
  changes a per-row dot product, so the threaded paths stay bitwise
  identical to the reference backend. The pool is created lazily (safe
  across ``fork``-based worker pools), sized from ``REPRO_TILED_THREADS``
  or the CPU count, and skipped entirely on single-core hosts or small
  batches — threading assumes BLAS itself is pinned to one thread, which
  is how the serving benchmarks run.

- **Sparse-aware fused first layer.** Batches in the SQB one-hot regime
  are mostly-zero over the categorical column blocks. The fused kernel
  detects contiguous runs of low-density columns, greedily segments each
  run so the expected nonzeros per row per segment is at most one, and
  replaces the matmul over those columns with one weight-row gather per
  segment (``W[s + argmax(nz)] * value``). The remaining dense columns go
  through a narrow matmul. A per-call count identity makes the shortcut
  airtight: the nonzeros per row over the sparse region must equal the
  number of segments holding a nonzero for that row — true iff every
  segment has at most one nonzero per row, in which case gather == GEMM
  mathematically. Any batch failing the check falls back to the dense
  path, so structure detection and the per-weight plan cache can only
  ever cost performance, never correctness.

The sparse path accumulates per-segment partial sums in a different
order than a dense GEMM, so results agree with the reference backend to
``parity_atol`` (1e-9 in float64) rather than bitwise; the dense paths
remain bitwise. Scratch buffers are preallocated per thread and reused
across calls, preserving the compiled-plan destination-write contract
(``out`` is written, never reallocated).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

import numpy as np

from repro.backend.numpy_backend import (
    FUSE_TILE_ROWS,
    INPLACE_ACTIVATIONS,
    NumpyBackend,
)

#: A column counts as sparse when fewer than this fraction of batch rows
#: are nonzero in it. One-hot blocks sit far below (1/cardinality); dense
#: numeric features sit near 1.0.
COL_DENSITY = 0.5

#: Minimum contiguous sparse-column run worth gathering; shorter runs are
#: cheaper inside the dense matmul.
MIN_RUN = 8

#: Minimum batch rows before structure detection can amortise; smaller
#: batches go straight to the dense kernel.
SPARSE_MIN_ROWS = 256

#: A weight whose batches previously looked dense is re-probed every this
#: many calls, so a workload drifting into the one-hot regime is found.
DENSE_RECHECK_EVERY = 128

#: Environment override for the worker-thread count (0/1 disables).
THREADS_ENV = "REPRO_TILED_THREADS"


def _segment(dens: np.ndarray, sparse_col: np.ndarray) -> List[Tuple[int, int]]:
    """Greedy density segmentation of contiguous sparse-column runs.

    Cuts each run so the cumulative column density inside a segment stays
    at most 1.0 — i.e. each segment is expected to hold at most one
    nonzero per row, which is exactly the one-hot-block shape. Segments
    shorter than :data:`MIN_RUN` are dropped back to the dense matmul.
    """
    edges = np.flatnonzero(np.diff(sparse_col.astype(np.int8), prepend=0, append=0))
    segs: List[Tuple[int, int]] = []
    for i in range(0, len(edges), 2):
        s, e = int(edges[i]), int(edges[i + 1])
        if e - s < MIN_RUN:
            continue
        cut, acc = s, 0.0
        for j in range(s, e):
            if acc + dens[j] > 1.0 + 1e-12 and j > cut:
                if j - cut >= MIN_RUN:
                    segs.append((cut, j))
                cut, acc = j, 0.0
            acc += dens[j]
        if e - cut >= MIN_RUN:
            segs.append((cut, e))
    return segs


class _Plan:
    """Input-structure plan for one (weight, shape) serving site."""

    __slots__ = ("segs", "dcols", "lo", "hi", "gap")

    def __init__(self, segs, dcols, lo, hi, gap):
        self.segs = segs  # tuple of (start, end) sparse segments
        self.dcols = dcols  # dense column indices (matmul path)
        self.lo = lo  # first sparse column
        self.hi = hi  # one past the last sparse column
        self.gap = gap  # dense columns inside [lo, hi)


class _PlanEntry:
    """Cache slot: a plan, or ``None`` meaning "decided dense"."""

    __slots__ = ("plan", "calls")

    def __init__(self, plan: Optional[_Plan]):
        self.plan = plan
        self.calls = 0


class TiledBackend(NumpyBackend):
    """Numpy backend with threaded row tiles and a sparse fused kernel."""

    name = "tiled"

    #: Tolerance contract versus the reference backend: the sparse fused
    #: path reorders partial-sum accumulation, so compiled-vs-graph
    #: parity holds to this atol (dense paths remain bitwise).
    parity_atol = 1e-9

    def __init__(self, n_threads: Optional[int] = None):
        self._n_threads = n_threads
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._plans: dict = {}
        self._tl = threading.local()
        self.sparse_min_rows = SPARSE_MIN_ROWS
        #: Calls served by the sparse gather path / by any fused call.
        self.sparse_hits = 0
        self.fused_calls = 0

    # -- worker threadpool ------------------------------------------------
    def _thread_count(self) -> int:
        if self._n_threads is not None:
            return max(1, int(self._n_threads))
        env = os.environ.get(THREADS_ENV)
        if env:
            try:
                return max(1, int(env))
            except ValueError:
                pass
        return os.cpu_count() or 1

    def _get_pool(self) -> Optional[ThreadPoolExecutor]:
        """Lazily-built process-wide tile pool (``None`` on 1 thread)."""
        n = self._thread_count()
        if n <= 1:
            return None
        if self._pool is None:
            with self._pool_lock:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=n, thread_name_prefix="repro-tiled"
                    )
        return self._pool

    # -- threaded row-tiled matmul ---------------------------------------
    def matmul(self, a, b, out: Optional[np.ndarray] = None) -> np.ndarray:
        pool = self._get_pool()
        if (
            pool is None
            or getattr(a, "ndim", 0) != 2
            or getattr(b, "ndim", 0) != 2
            or a.shape[0] < 2 * FUSE_TILE_ROWS
        ):
            return np.matmul(a, b, out=out)
        if out is None:
            out = np.empty((a.shape[0], b.shape[1]), dtype=np.result_type(a, b))

        def run_tile(start: int) -> None:
            stop = start + FUSE_TILE_ROWS
            np.matmul(a[start:stop], b, out=out[start:stop])

        list(pool.map(run_tile, range(0, a.shape[0], FUSE_TILE_ROWS)))
        return out

    # -- fused Dense+activation ------------------------------------------
    def fused_dense_act(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        activation: Optional[str],
        out: np.ndarray,
    ) -> np.ndarray:
        """``act(x @ weight + bias)`` with a sparse-aware first-layer path.

        Tries the segment-gather kernel when the batch looks like the
        one-hot regime; otherwise (or whenever the per-call verification
        fails) runs the dense row-tiled kernel, threaded across the tile
        pool when one exists.
        """
        self.fused_calls += 1
        if self._sparse_eligible(x, weight, out):
            kernel = INPLACE_ACTIVATIONS[activation] if activation is not None else None
            result = self._sparse_path(x, weight, bias, kernel, out)
            if result is not None:
                self.sparse_hits += 1
                return result
        return self._dense_fused(x, weight, bias, activation, out)

    def _dense_fused(self, x, weight, bias, activation, out) -> np.ndarray:
        pool = self._get_pool()
        n = x.shape[0]
        if pool is None or n <= 2 * FUSE_TILE_ROWS:
            return NumpyBackend.fused_dense_act(self, x, weight, bias, activation, out)
        kernel = INPLACE_ACTIVATIONS[activation] if activation is not None else None

        def run_tile(start: int) -> None:
            stop = start + FUSE_TILE_ROWS
            tile = out[start:stop]
            np.matmul(x[start:stop], weight, out=tile)
            if bias is not None:
                tile += bias
            if kernel is not None:
                kernel(tile)

        list(pool.map(run_tile, range(0, n, FUSE_TILE_ROWS)))
        return out

    # -- sparse path ------------------------------------------------------
    def _sparse_eligible(self, x, weight, out) -> bool:
        return (
            isinstance(x, np.ndarray)
            and x.ndim == 2
            and x.flags.c_contiguous
            and x.dtype.kind == "f"
            and x.shape[0] >= self.sparse_min_rows
            and x.shape[1] >= 4 * MIN_RUN
            and getattr(weight, "ndim", 0) == 2
            and x.dtype == weight.dtype == out.dtype
        )

    def _sparse_path(self, x, weight, bias, kernel, out) -> Optional[np.ndarray]:
        """Run the gather kernel, or return ``None`` to use the dense path.

        The plan cache is keyed by weight identity and shapes; a stale or
        recycled entry is harmless because the plan only proposes segment
        boundaries — the count verification inside :meth:`_apply_plan`
        re-proves the one-nonzero-per-segment property on every batch.
        """
        key = (id(weight), x.shape[1], weight.shape[1], x.dtype.char)
        entry = self._plans.get(key)
        if entry is not None and entry.plan is None:
            entry.calls += 1
            if entry.calls % DENSE_RECHECK_EVERY:
                return None
            entry = None  # periodic re-probe of a dense-decided site
        nz = np.not_equal(x, 0)
        if entry is None:
            plan = self._detect(nz)
            if len(self._plans) > 64:
                self._plans.clear()
            self._plans[key] = entry = _PlanEntry(plan)
            if plan is None:
                return None
        result = self._apply_plan(entry.plan, nz, x, weight, bias, kernel, out)
        if result is None:
            # The batch no longer matches the cached structure: re-detect
            # once, retry if the segmentation changed, else decide dense.
            plan = self._detect(nz)
            if plan is not None and plan.segs != entry.plan.segs:
                result = self._apply_plan(plan, nz, x, weight, bias, kernel, out)
            entry.plan = plan if result is not None else None
            entry.calls = 0
        return result

    def _detect(self, nz: np.ndarray) -> Optional[_Plan]:
        n, d = nz.shape
        dens = nz.sum(axis=0) / n
        segs = _segment(dens, dens < COL_DENSITY)
        if not segs:
            return None
        covered = np.zeros(d, dtype=bool)
        for s, e in segs:
            covered[s:e] = True
        if int(covered.sum()) * 2 < d:
            return None  # too few gatherable columns to beat the GEMM
        lo, hi = segs[0][0], segs[-1][1]
        gap = np.flatnonzero(~covered[lo:hi]) + lo
        dcols = np.flatnonzero(~covered)
        return _Plan(tuple(segs), dcols, lo, hi, gap)

    def _apply_plan(
        self, plan, nz, x, weight, bias, kernel, out
    ) -> Optional[np.ndarray]:
        n, d = x.shape
        # Count identity: nonzeros per row over the sparse region ...
        cnt = nz[:, plan.lo : plan.hi].sum(axis=1)
        if plan.gap.size:
            cnt -= nz[:, plan.gap].sum(axis=1)
        # ... must equal the number of segments holding a nonzero, which
        # is true iff every segment has <= 1 nonzero per row.
        flat = x.ravel()  # view: eligibility requires C-contiguity
        base = np.arange(n) * d
        found = np.zeros(n, dtype=cnt.dtype)
        gathers = []
        for s, e in plan.segs:
            fwd = nz[:, s:e].argmax(axis=1)
            vals = flat.take(base + (s + fwd))
            found += vals != 0.0
            gathers.append((s + fwd, vals))
        if not np.array_equal(cnt, found):
            return None
        # Verified: narrow GEMM over the dense columns (also initialises
        # ``out`` when there are none), then one gather per segment.
        np.matmul(x[:, plan.dcols], weight[plan.dcols], out=out)
        scratch = self._scratch(n, weight.shape[1], out.dtype)
        for rows, vals in gathers:
            np.take(weight, rows, axis=0, out=scratch, mode="clip")
            if not np.all(vals == 1.0):
                scratch *= vals[:, None]
            out += scratch
        if bias is not None:
            out += bias
        if kernel is not None:
            kernel(out)
        return out

    def _scratch(self, n: int, h: int, dtype: np.dtype) -> np.ndarray:
        """Per-thread (rows, h) scratch, grown as needed, reused across calls."""
        bufs = getattr(self._tl, "bufs", None)
        if bufs is None:
            bufs = self._tl.bufs = {}
        key = (h, dtype.char)
        buf = bufs.get(key)
        if buf is None or buf.shape[0] < n:
            if len(bufs) > 8:
                bufs.clear()
            buf = bufs[key] = np.empty((n, h), dtype=dtype)
        return buf[:n]
