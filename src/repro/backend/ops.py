"""Backend-dispatching array ops.

These thin wrappers are what backend-agnostic code imports (``from
repro.backend import ops as B``); each call forwards to the currently
active backend from :mod:`repro.backend.registry`. The indirection is a
single attribute lookup per op — negligible against the array math it
dispatches — and is what makes the numeric backend swappable without
touching any call site.
"""

from __future__ import annotations

import numpy as np

from repro.backend import registry as _registry

#: Array type of the reference backend, for annotations/isinstance use.
ndarray = np.ndarray


def asarray(value, dtype=None):
    return _registry._ACTIVE.asarray(value, dtype)


def as_float(value):
    return _registry._ACTIVE.as_float(value)


def as_bool(value):
    return _registry._ACTIVE.as_bool(value)


def zeros_like(x):
    return _registry._ACTIVE.zeros_like(x)


def ones_like(x):
    return _registry._ACTIVE.ones_like(x)


def empty(shape, dtype=None):
    return _registry._ACTIVE.empty(shape, dtype)


def exp(x):
    return _registry._ACTIVE.exp(x)


def log(x):
    return _registry._ACTIVE.log(x)


def sqrt(x):
    return _registry._ACTIVE.sqrt(x)


def abs(x):  # noqa: A001 - mirrors the numpy name on purpose
    return _registry._ACTIVE.abs(x)


def sign(x):
    return _registry._ACTIVE.sign(x)


def tanh(x):
    return _registry._ACTIVE.tanh(x)


def sigmoid(x):
    return _registry._ACTIVE.sigmoid(x)


def softplus(x):
    return _registry._ACTIVE.softplus(x)


def power(x, exponent):
    return _registry._ACTIVE.power(x, exponent)


def clip(x, low, high):
    return _registry._ACTIVE.clip(x, low, high)


def where(condition, a, b):
    return _registry._ACTIVE.where(condition, a, b)


def maximum(a, b):
    return _registry._ACTIVE.maximum(a, b)


def minimum(a, b):
    return _registry._ACTIVE.minimum(a, b)


def matmul(a, b, out=None):
    return _registry._ACTIVE.matmul(a, b, out=out)


def outer(a, b):
    return _registry._ACTIVE.outer(a, b)


def amax(x, axis=None, keepdims=False):
    return _registry._ACTIVE.amax(x, axis=axis, keepdims=keepdims)


def amin(x, axis=None, keepdims=False):
    return _registry._ACTIVE.amin(x, axis=axis, keepdims=keepdims)


def prod(values):
    return _registry._ACTIVE.prod(values)


def expand_dims(x, axis):
    return _registry._ACTIVE.expand_dims(x, axis)


def squeeze(x, axis):
    return _registry._ACTIVE.squeeze(x, axis)


def broadcast_to(x, shape):
    return _registry._ACTIVE.broadcast_to(x, shape)


def concatenate(arrays, axis=0):
    return _registry._ACTIVE.concatenate(arrays, axis=axis)


def stack(arrays, axis=0):
    return _registry._ACTIVE.stack(arrays, axis=axis)


def take(x, index, axis):
    return _registry._ACTIVE.take(x, index, axis)


def index_add(target, index, values):
    return _registry._ACTIVE.index_add(target, index, values)


class BackendKernelError(RuntimeError):
    """A backend kernel raised during dispatch; names the backend at fault."""


def fused_dense_act(x, weight, bias, activation, out):
    """One fused ``act(x @ weight + bias)`` step into ``out``.

    Serving-plan kernel (see :meth:`NumpyBackend.fused_dense_act`); a
    backend opts out by exposing the attribute as ``None``, in which
    case the compiled plan falls back to the unfused op sequence. A
    kernel that raises is rewrapped as :class:`BackendKernelError`
    naming the backend, so serving-path failures point at the kernel
    implementation rather than at the compiled plan.
    """
    backend = _registry._ACTIVE
    try:
        return backend.fused_dense_act(x, weight, bias, activation, out)
    except Exception as exc:
        name = getattr(backend, "name", type(backend).__name__)
        raise BackendKernelError(
            f"fused_dense_act kernel of backend {name!r} failed "
            f"(x {getattr(x, 'shape', '?')} @ weight "
            f"{getattr(weight, 'shape', '?')}, activation={activation!r}): {exc}"
        ) from exc


def supports_fused_dense_act() -> bool:
    """Whether the active backend provides a fused Dense+activation kernel."""
    return callable(getattr(_registry._ACTIVE, "fused_dense_act", None))
