"""The repository's explicit dtype policy.

Training and gradient checking always run in ``float64``: the models are
small tabular MLPs, and double precision is what makes the finite-
difference gradient checks in :mod:`repro.autodiff.grad_check` exact to
~1e-9. Inference carries no such obligation — a forward pass through a
few dense layers loses nothing of consequence at ``float32`` while
roughly doubling effective memory bandwidth — so serving may *opt in* to
single precision, either per call (the ``dtype=`` argument of
:func:`repro.nn.train.forward_in_batches` /
:func:`repro.nn.inference.compile_inference`) or lexically via
:func:`inference_precision`.

The two halves of the policy:

- :func:`training_dtype` — fixed ``float64``; this is what every
  :class:`~repro.autodiff.Tensor` stores.
- :func:`inference_dtype` — ``float64`` by default (bit-identical
  serving and training scores), overridable per thread.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator, Optional, Union

import numpy as np

DtypeLike = Union[str, np.dtype, type, None]

#: The fixed training/grad-check precision. Not configurable by design:
#: every gradient rule and tolerance in the test suite assumes it.
TRAINING_DTYPE = np.dtype(np.float64)

_ALLOWED_INFERENCE = {
    np.dtype(np.float64): np.dtype(np.float64),
    np.dtype(np.float32): np.dtype(np.float32),
}


class _InferencePolicy(threading.local):
    dtype = np.dtype(np.float64)


_POLICY = _InferencePolicy()


def training_dtype() -> np.dtype:
    """The dtype all trainable tensors and gradients use (``float64``)."""
    return TRAINING_DTYPE


def resolve_dtype(dtype: DtypeLike) -> np.dtype:
    """Normalize a user-facing dtype spec to an allowed inference dtype.

    Accepts ``None`` (the current thread's inference default),
    ``"float64"``/``"float32"``, numpy dtypes, or the scalar types.
    Anything else raises ``ValueError`` — the policy deliberately
    whitelists the two float precisions rather than passing arbitrary
    dtypes through to the kernels.
    """
    if dtype is None:
        return _POLICY.dtype
    try:
        resolved = np.dtype(dtype)
    except TypeError as exc:
        raise ValueError(f"unrecognized dtype spec {dtype!r}") from exc
    if resolved not in _ALLOWED_INFERENCE:
        raise ValueError(
            f"dtype {resolved} is not an allowed inference precision; "
            "use float64 or float32"
        )
    return _ALLOWED_INFERENCE[resolved]


def inference_dtype() -> np.dtype:
    """The current thread's default inference precision."""
    return _POLICY.dtype


def set_inference_dtype(dtype: DtypeLike) -> None:
    """Set this thread's default inference precision (``None`` = float64)."""
    _POLICY.dtype = (
        np.dtype(np.float64) if dtype is None else resolve_dtype(dtype)
    )


@contextlib.contextmanager
def inference_precision(dtype: DtypeLike) -> Iterator[np.dtype]:
    """Temporarily switch this thread's inference precision.

    ``with inference_precision("float32"): pipeline.process(batch)``
    runs every compiled forward inside the block in single precision.
    """
    previous = _POLICY.dtype
    _POLICY.dtype = resolve_dtype(dtype)
    try:
        yield _POLICY.dtype
    finally:
        _POLICY.dtype = previous
