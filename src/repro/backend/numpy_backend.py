"""The reference numpy execution backend.

A backend is a plain object exposing the array-op surface that
:mod:`repro.autodiff` (and anything else that wants backend-agnostic
array math) calls instead of touching numpy directly. The numpy backend
is the default and the only one shipped; alternative backends (e.g. a
GPU array library with a numpy-compatible API) register themselves via
:func:`repro.backend.register_backend` and only need to provide this
same surface.

Every method follows numpy semantics exactly — the autodiff engine's
gradient rules are written against them.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

# -- in-place activation kernels ----------------------------------------
# Used by the compiled inference path and the fused Dense+activation
# kernel below. Each kernel owns its argument (works in place) and must
# return the result array. The float64 op sequences mirror the autodiff
# graph ops exactly, which is what gives the unfused compiled path its
# bitwise parity with the graph forward.


def relu_(x: np.ndarray) -> np.ndarray:
    np.maximum(x, 0.0, out=x)
    return x


def leaky_relu_(x: np.ndarray) -> np.ndarray:
    np.multiply(x, np.where(x > 0, x.dtype.type(1.0), x.dtype.type(0.01)), out=x)
    return x


def tanh_(x: np.ndarray) -> np.ndarray:
    np.tanh(x, out=x)
    return x


def sigmoid_(x: np.ndarray) -> np.ndarray:
    # 1 / (1 + exp(-clip(x))), the same guarded form as Tensor.sigmoid.
    np.clip(x, -500, 500, out=x)
    np.negative(x, out=x)
    np.exp(x, out=x)
    x += x.dtype.type(1.0)
    np.reciprocal(x, out=x)
    return x


def softplus_(x: np.ndarray) -> np.ndarray:
    np.logaddexp(x.dtype.type(0.0), x, out=x)
    return x


#: name -> in-place kernel; "linear" is the identity (no kernel).
INPLACE_ACTIVATIONS: dict = {
    "relu": relu_,
    "leaky_relu": leaky_relu_,
    "tanh": tanh_,
    "sigmoid": sigmoid_,
    "softplus": softplus_,
    "linear": None,
}

#: Row-tile size for the fused Dense+activation kernel. Tiling keeps the
#: matmul output resident in cache for the bias/activation passes; on
#: row-independent GEMMs the per-row dot products are unchanged, so the
#: result stays within 1e-12 of the untiled op sequence (bitwise on the
#: BLAS builds we test against).
FUSE_TILE_ROWS = 256


class NumpyBackend:
    """Array ops implemented on numpy ``float64``/``float32`` arrays."""

    name = "numpy"

    #: Compiled-vs-graph parity tolerance this backend guarantees. The
    #: reference backend computes the exact op sequence of the autodiff
    #: graph, so parity is bitwise; backends that reorder summation
    #: (e.g. the tiled backend's sparse path) publish a nonzero atol.
    parity_atol = 0.0

    #: Array type produced by this backend (used for isinstance checks and
    #: type annotations by backend-agnostic callers).
    ndarray = np.ndarray

    float64 = np.dtype(np.float64)
    float32 = np.dtype(np.float32)
    bool_ = np.dtype(bool)

    # -- construction / casting ----------------------------------------
    def asarray(self, value, dtype=None) -> np.ndarray:
        from repro.backend.policy import training_dtype

        return np.asarray(value, dtype=training_dtype() if dtype is None else dtype)

    def as_float(self, value) -> np.ndarray:
        """Cast to the training float dtype (masks -> 0.0/1.0)."""
        from repro.backend.policy import training_dtype

        return np.asarray(value).astype(training_dtype())

    def as_bool(self, value) -> np.ndarray:
        return np.asarray(value, dtype=bool)

    def zeros_like(self, x) -> np.ndarray:
        return np.zeros_like(x)

    def ones_like(self, x) -> np.ndarray:
        return np.ones_like(x)

    def empty(self, shape, dtype=None) -> np.ndarray:
        from repro.backend.policy import training_dtype

        return np.empty(shape, dtype=training_dtype() if dtype is None else dtype)

    # -- elementwise ----------------------------------------------------
    def exp(self, x) -> np.ndarray:
        return np.exp(x)

    def log(self, x) -> np.ndarray:
        return np.log(x)

    def sqrt(self, x) -> np.ndarray:
        return np.sqrt(x)

    def abs(self, x) -> np.ndarray:
        return np.abs(x)

    def sign(self, x) -> np.ndarray:
        return np.sign(x)

    def tanh(self, x) -> np.ndarray:
        return np.tanh(x)

    def sigmoid(self, x) -> np.ndarray:
        """Numerically-guarded logistic ``1 / (1 + exp(-x))``."""
        return 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))

    def softplus(self, x) -> np.ndarray:
        """``log(1 + exp(x))`` via ``logaddexp`` for stability."""
        return np.logaddexp(0.0, x)

    def power(self, x, exponent) -> np.ndarray:
        return np.power(x, exponent)

    def clip(self, x, low, high) -> np.ndarray:
        return np.clip(x, low, high)

    def where(self, condition, a, b) -> np.ndarray:
        return np.where(condition, a, b)

    def maximum(self, a, b) -> np.ndarray:
        return np.maximum(a, b)

    def minimum(self, a, b) -> np.ndarray:
        return np.minimum(a, b)

    # -- linear algebra --------------------------------------------------
    def matmul(self, a, b, out: Optional[np.ndarray] = None) -> np.ndarray:
        return np.matmul(a, b, out=out)

    def outer(self, a, b) -> np.ndarray:
        return np.outer(a, b)

    # -- reductions ------------------------------------------------------
    def amax(self, x, axis=None, keepdims: bool = False) -> np.ndarray:
        return np.max(x, axis=axis, keepdims=keepdims)

    def amin(self, x, axis=None, keepdims: bool = False) -> np.ndarray:
        return np.min(x, axis=axis, keepdims=keepdims)

    def prod(self, values) -> float:
        return np.prod(values)

    # -- shape manipulation ---------------------------------------------
    def expand_dims(self, x, axis) -> np.ndarray:
        return np.expand_dims(x, axis=axis)

    def squeeze(self, x, axis) -> np.ndarray:
        return np.squeeze(x, axis=axis)

    def broadcast_to(self, x, shape) -> np.ndarray:
        return np.broadcast_to(x, shape)

    def concatenate(self, arrays, axis: int = 0) -> np.ndarray:
        return np.concatenate(arrays, axis=axis)

    def stack(self, arrays, axis: int = 0) -> np.ndarray:
        return np.stack(arrays, axis=axis)

    def take(self, x, index, axis) -> np.ndarray:
        return np.take(x, index, axis=axis)

    # -- scatter ---------------------------------------------------------
    def index_add(self, target, index, values) -> None:
        """In-place unbuffered scatter-add: ``target[index] += values``."""
        np.add.at(target, index, values)

    # -- fused serving kernels -------------------------------------------
    def fused_dense_act(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        activation: Optional[str],
        out: np.ndarray,
    ) -> np.ndarray:
        """One Dense+activation step: ``act(x @ weight + bias)`` into ``out``.

        The fused serving kernel of the compiled inference plan: matmul,
        bias add, and the nonlinearity execute per row tile so the matmul
        output is still cache-resident when the elementwise passes touch
        it — the memory-traffic saving that matters on the BLAS-bound
        autoencoder shapes. ``activation`` is a name from
        :data:`INPLACE_ACTIVATIONS` (``None``/"linear" = identity);
        backends that override this method may substitute their own
        fused implementation, which is why the compiled plan dispatches
        it through :mod:`repro.backend.ops`.

        Numeric contract: each output row is the same dot product the
        unfused sequence computes, so results agree with the unfused
        path to atol 1e-12 (bitwise on BLAS builds whose GEMM is
        row-blocked, which the fused parity suite asserts with a
        tolerance rather than relying on).
        """
        kernel = INPLACE_ACTIVATIONS[activation] if activation is not None else None
        n = x.shape[0]
        if n <= 2 * FUSE_TILE_ROWS:
            np.matmul(x, weight, out=out)
            if bias is not None:
                out += bias
            if kernel is not None:
                kernel(out)
            return out
        for start in range(0, n, FUSE_TILE_ROWS):
            tile = out[start : start + FUSE_TILE_ROWS]
            np.matmul(x[start : start + FUSE_TILE_ROWS], weight, out=tile)
            if bias is not None:
                tile += bias
            if kernel is not None:
                kernel(tile)
        return out
