"""The reference numpy execution backend.

A backend is a plain object exposing the array-op surface that
:mod:`repro.autodiff` (and anything else that wants backend-agnostic
array math) calls instead of touching numpy directly. The numpy backend
is the default and the only one shipped; alternative backends (e.g. a
GPU array library with a numpy-compatible API) register themselves via
:func:`repro.backend.register_backend` and only need to provide this
same surface.

Every method follows numpy semantics exactly — the autodiff engine's
gradient rules are written against them.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class NumpyBackend:
    """Array ops implemented on numpy ``float64``/``float32`` arrays."""

    name = "numpy"

    #: Array type produced by this backend (used for isinstance checks and
    #: type annotations by backend-agnostic callers).
    ndarray = np.ndarray

    float64 = np.dtype(np.float64)
    float32 = np.dtype(np.float32)
    bool_ = np.dtype(bool)

    # -- construction / casting ----------------------------------------
    def asarray(self, value, dtype=None) -> np.ndarray:
        from repro.backend.policy import training_dtype

        return np.asarray(value, dtype=training_dtype() if dtype is None else dtype)

    def as_float(self, value) -> np.ndarray:
        """Cast to the training float dtype (masks -> 0.0/1.0)."""
        from repro.backend.policy import training_dtype

        return np.asarray(value).astype(training_dtype())

    def as_bool(self, value) -> np.ndarray:
        return np.asarray(value, dtype=bool)

    def zeros_like(self, x) -> np.ndarray:
        return np.zeros_like(x)

    def ones_like(self, x) -> np.ndarray:
        return np.ones_like(x)

    def empty(self, shape, dtype=None) -> np.ndarray:
        from repro.backend.policy import training_dtype

        return np.empty(shape, dtype=training_dtype() if dtype is None else dtype)

    # -- elementwise ----------------------------------------------------
    def exp(self, x) -> np.ndarray:
        return np.exp(x)

    def log(self, x) -> np.ndarray:
        return np.log(x)

    def sqrt(self, x) -> np.ndarray:
        return np.sqrt(x)

    def abs(self, x) -> np.ndarray:
        return np.abs(x)

    def sign(self, x) -> np.ndarray:
        return np.sign(x)

    def tanh(self, x) -> np.ndarray:
        return np.tanh(x)

    def sigmoid(self, x) -> np.ndarray:
        """Numerically-guarded logistic ``1 / (1 + exp(-x))``."""
        return 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))

    def softplus(self, x) -> np.ndarray:
        """``log(1 + exp(x))`` via ``logaddexp`` for stability."""
        return np.logaddexp(0.0, x)

    def power(self, x, exponent) -> np.ndarray:
        return np.power(x, exponent)

    def clip(self, x, low, high) -> np.ndarray:
        return np.clip(x, low, high)

    def where(self, condition, a, b) -> np.ndarray:
        return np.where(condition, a, b)

    def maximum(self, a, b) -> np.ndarray:
        return np.maximum(a, b)

    def minimum(self, a, b) -> np.ndarray:
        return np.minimum(a, b)

    # -- linear algebra --------------------------------------------------
    def matmul(self, a, b, out: Optional[np.ndarray] = None) -> np.ndarray:
        return np.matmul(a, b, out=out)

    def outer(self, a, b) -> np.ndarray:
        return np.outer(a, b)

    # -- reductions ------------------------------------------------------
    def amax(self, x, axis=None, keepdims: bool = False) -> np.ndarray:
        return np.max(x, axis=axis, keepdims=keepdims)

    def amin(self, x, axis=None, keepdims: bool = False) -> np.ndarray:
        return np.min(x, axis=axis, keepdims=keepdims)

    def prod(self, values) -> float:
        return np.prod(values)

    # -- shape manipulation ---------------------------------------------
    def expand_dims(self, x, axis) -> np.ndarray:
        return np.expand_dims(x, axis=axis)

    def squeeze(self, x, axis) -> np.ndarray:
        return np.squeeze(x, axis=axis)

    def broadcast_to(self, x, shape) -> np.ndarray:
        return np.broadcast_to(x, shape)

    def concatenate(self, arrays, axis: int = 0) -> np.ndarray:
        return np.concatenate(arrays, axis=axis)

    def stack(self, arrays, axis: int = 0) -> np.ndarray:
        return np.stack(arrays, axis=axis)

    def take(self, x, index, axis) -> np.ndarray:
        return np.take(x, index, axis=axis)

    # -- scatter ---------------------------------------------------------
    def index_add(self, target, index, values) -> None:
        """In-place unbuffered scatter-add: ``target[index] += values``."""
        np.add.at(target, index, values)
