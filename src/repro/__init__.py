"""TargAD reproduction — robust prioritized (target-class) anomaly detection.

Reproduces Lu et al., "A Robust Prioritized Anomaly Detection when Not All
Anomalies are of Primary Interest" (ICDE 2024), including the TargAD model,
all eleven baselines, the four (synthetic-analog) datasets, and every
table/figure experiment. See DESIGN.md for the system inventory.

Quick start::

    from repro import TargAD, TargADConfig, load_dataset, auprc

    split = load_dataset("unsw_nb15", random_state=0, scale=0.05)
    model = TargAD(TargADConfig(k=4, random_state=0))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    scores = model.decision_function(split.X_test)
    print(auprc(split.y_test_binary, scores))
"""

from repro.core import TargAD, TargADConfig
from repro.data import DATASET_NAMES, DatasetSplit, load_dataset
from repro.metrics import auprc, auroc, classification_report

__version__ = "1.0.0"

__all__ = [
    "DATASET_NAMES",
    "DatasetSplit",
    "TargAD",
    "TargADConfig",
    "__version__",
    "auprc",
    "auroc",
    "classification_report",
    "load_dataset",
]
