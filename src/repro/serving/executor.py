"""Unified execution layer behind :class:`~repro.serving.pipeline.ScoringPipeline`.

Serving grew three execution paths — inline ``score_batch``, the
per-batch :class:`~repro.serving.sharding.ShardedScorer` pool, and the
always-on :class:`~repro.serving.daemon.ServingDaemon` — and the
pipeline used to hand-roll eligibility, fallback, and spec-update logic
for each. This module extracts the seam:

- :class:`Executor` — the protocol every execution path implements:
  ``score(X) -> (scores, routing)``, ``update_spec(spec)`` for model
  hot-swaps, ``reset()`` for swap rollback, ``alive``/``eligible`` for
  chain selection, ``close()``, and ``telemetry_tags()``.
- :class:`InlineExecutor`, :class:`ShardedExecutor`,
  :class:`DaemonExecutor` — adapters wrapping the existing engines;
  each owns its engine's lifecycle, disable logic, and telemetry.
- :class:`StripedDaemonExecutor` — the payoff of the seam: sharding
  *composed with* the daemon. One large batch is split into contiguous
  row stripes (the sharding split) submitted as pinned (non-coalescing)
  requests across the daemon's idle workers, and merged back in input
  order — the deterministic merge guarantee, now over shared-memory
  rings instead of pickle pipes.
- :class:`FallbackChain` — the infra-failure matrix, encoded once: an
  :class:`~repro.serving.errors.ExecutorUnavailable` raised by any
  executor demotes the batch to the next executor in the chain without
  touching the circuit breaker, while *model* faults propagate raw so
  the pipeline's breaker/degraded-fallback guardrails treat every
  executor identically.

Every executor scores through the same :class:`ScoringSpec` forward
functions the inline path uses, so on identical float64 inputs scores
and routing are bitwise-identical across the whole chain — the
conformance suite (``tests/serving/test_executor_conformance.py``)
pins that, including across hot swaps.
"""

from __future__ import annotations

import abc
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import ensure_telemetry
from repro.serving.daemon import DaemonUnavailable, ServingDaemon
from repro.serving.errors import ExecutorUnavailable
from repro.serving.sharding import (
    ScoringSpec,
    ShardedScorer,
    ShardPoolUnavailable,
)

__all__ = [
    "DaemonExecutor",
    "Executor",
    "ExecutorUnavailable",
    "FallbackChain",
    "InlineExecutor",
    "ShardedExecutor",
    "StripedDaemonExecutor",
]

#: A zero-argument callable producing a fresh :class:`ScoringSpec` from
#: the pipeline's *current* model — evaluated lazily so executors built
#: before a hot swap still pick up the live generation.
SpecFactory = Callable[[], ScoringSpec]


class Executor(abc.ABC):
    """One serving execution path with a uniform control surface.

    The contract the :class:`FallbackChain` (and through it the
    pipeline's hot-swap machinery) depends on:

    - :meth:`score` returns ``(scores, routing)`` bitwise-identical to
      the inline ``model.score_batch`` on the same rows. Infrastructure
      problems raise :class:`ExecutorUnavailable`; model faults raise
      with their original type.
    - :attr:`alive` is ``False`` once the executor has permanently
      disabled itself; the chain then skips it without trying.
    - :meth:`eligible` lets an executor decline individual batches
      (e.g. sharding below its minimum row count) without going down.
    - :meth:`update_spec` pushes a new model generation into any worker
      surface; :meth:`needs_spec` reports whether one exists (so the
      swap only builds a spec when somebody will consume it).
    - :meth:`reset` restores workers to the pipeline's current model
      after a failed swap (the pipeline has already restored its own
      pointers when this is called).
    - :meth:`close` is idempotent.
    """

    #: Telemetry tag naming this execution path (e.g. ``"daemon"``).
    name: str = "executor"

    @property
    def alive(self) -> bool:
        return True

    def eligible(self, n_rows: int) -> bool:
        return True

    @abc.abstractmethod
    def score(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Score sanitized rows; see the class docstring for the contract."""

    def needs_spec(self) -> bool:
        """Whether a live worker surface would consume ``update_spec``."""
        return False

    def update_spec(self, spec: ScoringSpec) -> None:
        """Push a new generation's spec into the worker surface."""

    def reset(self) -> None:
        """Rollback hook: re-point workers at the pipeline's current model."""

    def close(self) -> None:
        """Release worker resources. Idempotent."""

    def telemetry_tags(self) -> dict:
        """Per-batch tags merged into the pipeline's ``serve.batch`` event."""
        return {}


class InlineExecutor(Executor):
    """Single-process scoring on the live model — the terminal executor.

    Reads the model through ``model_ref`` on every call, so a hot swap
    is visible the moment the pipeline flips its pointer; ``update_spec``
    and ``reset`` are therefore no-ops. Never raises
    :class:`ExecutorUnavailable` — anything it raises is a model fault.
    """

    name = "inline"

    def __init__(self, model_ref: Callable[[], object], strategy: str):
        self._model_ref = model_ref
        self._strategy = strategy

    def score(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        # score_batch runs the classifier once on the compiled
        # graph-free path and yields scores + routing together —
        # no Tensor objects are constructed at serve time.
        return self._model_ref().score_batch(X, strategy=self._strategy)


class ShardedExecutor(Executor):
    """Per-batch row sharding over a lazily built process pool.

    Declines batches below ``min_rows`` (per-shard IPC cost dominates
    there). A pool-infrastructure failure disables the executor for its
    lifetime — one ``serve.sharding_disabled`` event, aborted-shard
    accounting in ``serve.shards.aborted`` — and demotes the batch;
    model faults raised inside a worker propagate raw.
    """

    name = "sharded"

    def __init__(
        self,
        spec_factory: SpecFactory,
        n_workers: int,
        min_rows: int = 8192,
        start_method: Optional[str] = None,
        telemetry=None,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if min_rows < 1:
            raise ValueError("min_rows must be >= 1")
        self._spec_factory = spec_factory
        self.n_workers = int(n_workers)
        self.min_rows = int(min_rows)
        self.start_method = start_method
        self.telemetry = ensure_telemetry(telemetry)
        self._sharder: Optional[ShardedScorer] = None
        self._disabled = False
        self._last_n_shards = 0

    @property
    def alive(self) -> bool:
        return not self._disabled

    def eligible(self, n_rows: int) -> bool:
        return n_rows >= self.min_rows

    def _ensure_sharder(self) -> ShardedScorer:
        if self._sharder is None:
            try:
                spec = self._spec_factory()
            except Exception as exc:
                # Spec extraction failed (e.g. strategy cannot calibrate):
                # the single-process path keeps its lazier semantics, so
                # treat this as "sharding unavailable", not a model fault.
                raise ShardPoolUnavailable(
                    f"cannot build scoring spec: {exc}"
                ) from exc
            self._sharder = ShardedScorer(
                spec, self.n_workers, start_method=self.start_method
            )
        return self._sharder

    def score(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        self._last_n_shards = 0
        try:
            result = self._ensure_sharder().score(X)
        except ShardPoolUnavailable as exc:
            self._disable(exc)
            raise
        self._last_n_shards = result.n_shards
        if self.telemetry.enabled:
            self.telemetry.increment("serve.shards", result.n_shards)
            for seconds in result.shard_seconds:
                self.telemetry.observe("serve.shard", seconds)
        return result.scores, result.routing

    def _disable(self, exc: Exception) -> None:
        self._disabled = True
        if self._sharder is not None:
            self._sharder.close()
            self._sharder = None
        # A pool that broke *mid-batch* had already scored some shards;
        # those rows are about to be scored again further down the
        # chain. Record the aborted shards so the serve.shards ledger
        # explains the double-scoring instead of hiding it.
        aborted = getattr(exc, "n_completed_shards", 0)
        if aborted:
            self.telemetry.increment("serve.shards.aborted", aborted)
        self.telemetry.increment("serve.sharding_disabled")
        self.telemetry.record_event(
            "serve.sharding_disabled",
            error=type(exc).__name__,
            detail=str(exc)[:200],
            n_aborted_shards=int(aborted),
        )

    def needs_spec(self) -> bool:
        return self._sharder is not None

    def update_spec(self, spec: ScoringSpec) -> None:
        if self._sharder is not None:
            self._sharder.update_spec(spec)

    def reset(self) -> None:
        # Drop the pool; the next score lazily rebuilds it through the
        # spec factory, which reads the pipeline's (restored) model.
        if self._sharder is not None:
            self._sharder.close()
            self._sharder = None

    def close(self) -> None:
        if self._sharder is not None:
            self._sharder.close()
            self._sharder = None

    def telemetry_tags(self) -> dict:
        return {"n_shards": int(self._last_n_shards)}


class DaemonExecutor(Executor):
    """Always-on serving daemon behind the executor protocol.

    Wraps a caller-owned :class:`ServingDaemon` (not closed by
    :meth:`close` — the caller keeps its lifecycle) or lazily builds an
    owned one from the spec factory on first score. A daemon that cannot
    start — or dies and cannot respawn — disables the executor for its
    lifetime (``serve.daemon.disabled``); a transiently unavailable
    daemon (worker crash mid-respawn) demotes that batch only
    (``serve.daemon.fallbacks``). Worker *model* faults propagate raw.
    """

    name = "daemon"

    def __init__(
        self,
        spec_factory: SpecFactory,
        daemon: Optional[ServingDaemon] = None,
        n_workers: int = 1,
        batch_rows: int = 8192,
        adaptive_batch: bool = False,
        min_batch_rows: int = 64,
        telemetry=None,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self._spec_factory = spec_factory
        self.n_workers = int(n_workers)
        self.batch_rows = int(batch_rows)
        self.adaptive_batch = bool(adaptive_batch)
        self.min_batch_rows = int(min_batch_rows)
        self.telemetry = ensure_telemetry(telemetry)
        self._daemon = daemon
        self._owned = False
        self._disabled = False

    @property
    def alive(self) -> bool:
        return not self._disabled

    @property
    def daemon(self) -> Optional[ServingDaemon]:
        return self._daemon

    def _ensure(self) -> ServingDaemon:
        """Build/start the daemon on first use; disable on hard failure."""
        try:
            if self._daemon is None:
                try:
                    spec = self._spec_factory()
                except Exception as exc:
                    # A spec that cannot be extracted is "daemon
                    # unavailable", not a model fault (same reasoning as
                    # the sharded adapter).
                    raise DaemonUnavailable(
                        f"cannot build scoring spec: {exc}"
                    ) from exc
                self._daemon = ServingDaemon(
                    spec,
                    n_workers=self.n_workers,
                    max_batch_rows=self.batch_rows,
                    adaptive_batch=self.adaptive_batch,
                    min_batch_rows=self.min_batch_rows,
                    telemetry=self.telemetry,
                )
                self._owned = True
            if not self._daemon.alive:
                self._daemon.start()
        except DaemonUnavailable as exc:
            self._disable(exc)
            raise
        return self._daemon

    def _score_on(self, daemon: ServingDaemon, X: np.ndarray):
        return daemon.score(X)

    def score(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        daemon = self._ensure()
        try:
            return self._score_on(daemon, X)
        except DaemonUnavailable as exc:
            # Transient (worker died mid-respawn): the chain rescores
            # this batch further down; a dead daemon stays disabled.
            self.telemetry.increment("serve.daemon.fallbacks")
            self.telemetry.record_event(
                "serve.daemon.fallback",
                error=type(exc).__name__,
                detail=str(exc)[:200],
            )
            if not daemon.alive:
                self._disable(exc)
            raise

    def _disable(self, exc: Exception) -> None:
        self._disabled = True
        if self._daemon is not None and self._owned:
            self._daemon.close()
            self._daemon = None
        self.telemetry.increment("serve.daemon.disabled")
        self.telemetry.record_event(
            "serve.daemon.disabled",
            error=type(exc).__name__,
            detail=str(exc)[:200],
        )

    def needs_spec(self) -> bool:
        return (
            self._daemon is not None
            and not self._disabled
            and self._daemon.alive
        )

    def update_spec(self, spec: ScoringSpec) -> None:
        if self.needs_spec():
            self._daemon.update_spec(spec)

    def reset(self) -> None:
        """Put the daemon back on the pipeline's (restored) model.

        An owned daemon is simply closed — the lazy build path
        reconstructs it from the spec factory, which reads the restored
        model. A caller-owned daemon cannot be rebuilt here, so its spec
        is re-pushed; if even that fails the executor is disabled and
        the chain serves without it.
        """
        if self._daemon is None:
            return
        if self._owned:
            self._daemon.close()
            self._daemon = None
            return
        try:
            self._daemon.update_spec(self._spec_factory())
        except Exception as exc:
            self._disable(exc)

    def close(self) -> None:
        if self._daemon is not None and self._owned:
            self._daemon.close()
            self._daemon = None


class _StripedHandle:
    """Completion handle over one batch's per-worker stripe submissions."""

    __slots__ = ("handles",)

    def __init__(self, handles: List):
        self.handles = handles

    def result(self, timeout: Optional[float] = None):
        parts = [h.result(timeout) for h in self.handles]
        if len(parts) == 1:
            return parts[0]
        # Stripes are contiguous input slices submitted in order, so a
        # plain concatenation is the deterministic in-order merge.
        return (
            np.concatenate([s for s, _ in parts]),
            np.concatenate([r for _, r in parts]),
        )

    @property
    def t_done(self) -> float:
        """Completion time of the slowest stripe (replay-bench clock)."""
        return max(h.t_done for h in self.handles)


class StripedDaemonExecutor(DaemonExecutor):
    """Row striping *inside* the daemon: sharding composed with residency.

    Batches of at least ``stripe_min_rows`` rows are split into
    contiguous stripes (:meth:`ShardedScorer.shard_slices` — the same
    split the shard pool uses) and submitted as pinned, non-coalescing
    requests so the dispatcher hands each stripe to a different idle
    worker; results merge back in input order. Smaller batches and
    single-worker daemons take the plain daemon path unchanged. One
    stripe's infrastructure failure demotes the whole batch (the chain
    rescores it further down); one stripe's model fault propagates raw.
    """

    name = "striped_daemon"

    def __init__(self, *args, stripe_min_rows: int = 1024, **kwargs):
        super().__init__(*args, **kwargs)
        if stripe_min_rows < 2:
            raise ValueError("stripe_min_rows must be >= 2")
        self.stripe_min_rows = int(stripe_min_rows)
        self._last_n_stripes = 0

    def submit(self, X: np.ndarray) -> _StripedHandle:
        """Async entry point (replay bench): stripe + submit, no wait."""
        daemon = self._ensure()
        X = np.ascontiguousarray(X, dtype=np.float64)
        if daemon.n_workers < 2 or len(X) < self.stripe_min_rows:
            return _StripedHandle([daemon.submit(X)])
        slices = ShardedScorer.shard_slices(len(X), daemon.n_workers)
        handles = [daemon.submit(X[s], coalesce=False) for s in slices]
        if self.telemetry.enabled:
            self.telemetry.increment("serve.daemon.striped_batches")
            self.telemetry.increment("serve.daemon.stripes", len(handles))
        return _StripedHandle(handles)

    def _score_on(self, daemon: ServingDaemon, X: np.ndarray):
        self._last_n_stripes = 0
        if len(np.asarray(X)) == 0 or daemon.n_workers < 2 or (
            len(X) < self.stripe_min_rows
        ):
            return daemon.score(X)
        slices = ShardedScorer.shard_slices(len(X), daemon.n_workers)
        X = np.ascontiguousarray(X, dtype=np.float64)
        handles = [daemon.submit(X[s], coalesce=False) for s in slices]
        if self.telemetry.enabled:
            self.telemetry.increment("serve.daemon.striped_batches")
            self.telemetry.increment("serve.daemon.stripes", len(handles))
        result = _StripedHandle(handles).result(timeout=60.0)
        self._last_n_stripes = len(handles)
        return result

    def telemetry_tags(self) -> dict:
        return {"n_stripes": int(self._last_n_stripes)}


class FallbackChain:
    """Ordered executors plus the infra-failure matrix, encoded once.

    :meth:`score` walks the chain: the first executor that is alive and
    eligible serves the batch. An :class:`ExecutorUnavailable` demotes
    the batch to the next executor — one ``serve.executor.demotions``
    count and a ``serve.executor.demoted`` event, never a circuit-
    breaker fault (whether the failure was permanent is the executor's
    own bookkeeping, observed through ``alive`` next batch). Any other
    exception is a model fault and propagates to the caller's
    guardrails exactly as the inline path would raise it.

    The chain also forwards the uniform control surface the pipeline's
    swap machinery calls: :meth:`push_spec` (swap push phase),
    :meth:`reset` (swap rollback), :meth:`close`.
    """

    def __init__(self, executors: Sequence[Executor], telemetry=None):
        if not executors:
            raise ValueError("FallbackChain needs at least one executor")
        self.executors: List[Executor] = list(executors)
        self.telemetry = ensure_telemetry(telemetry)
        self.last_executor: Optional[str] = None
        self.last_tags: dict = {}

    def __iter__(self):
        return iter(self.executors)

    def find(self, cls) -> Optional[Executor]:
        """First executor of (a subclass of) ``cls``, or ``None``."""
        for executor in self.executors:
            if isinstance(executor, cls):
                return executor
        return None

    def begin_batch(self) -> None:
        """Clear per-batch state before a new pipeline batch."""
        self.last_executor = None
        self.last_tags = {}

    def score(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        last_exc: Optional[ExecutorUnavailable] = None
        for executor in self.executors:
            if not executor.alive or not executor.eligible(len(X)):
                continue
            try:
                result = executor.score(X)
            except ExecutorUnavailable as exc:
                last_exc = exc
                self._record_demotion(executor, exc)
                continue
            self.last_executor = executor.name
            self.last_tags = executor.telemetry_tags()
            return result
        raise last_exc if last_exc is not None else ExecutorUnavailable(
            "no executor in the chain is alive and eligible"
        )

    def _record_demotion(self, executor: Executor, exc: Exception) -> None:
        if self.telemetry.enabled:
            self.telemetry.increment("serve.executor.demotions")
            self.telemetry.record_event(
                "serve.executor.demoted",
                executor=executor.name,
                error=type(exc).__name__,
                detail=str(exc)[:200],
            )

    def needs_spec(self) -> bool:
        return any(executor.needs_spec() for executor in self.executors)

    def push_spec(
        self, spec: Optional[ScoringSpec], spec_factory: SpecFactory
    ) -> None:
        """Push a staged generation into every live worker surface.

        ``spec`` may be ``None`` when staging found no worker surface;
        if one has appeared since (lazy build on a concurrent batch),
        the factory builds it now. Raises whatever an executor's
        ``update_spec`` raises — the caller treats that as a failed swap
        push and rolls back via :meth:`reset`.
        """
        targets = [ex for ex in self.executors if ex.needs_spec()]
        if not targets:
            return
        if spec is None:
            spec = spec_factory()
        for executor in targets:
            executor.update_spec(spec)

    def reset(self) -> None:
        """Swap rollback: re-point every executor at the restored model."""
        for executor in self.executors:
            executor.reset()

    def close(self) -> None:
        """Close every executor. Idempotent."""
        for executor in self.executors:
            executor.close()
