"""Covariate-drift monitoring for deployed detectors.

A detector trained on last month's traffic silently degrades when the
feature distribution moves. :class:`DriftMonitor` keeps a reference sample
of the training features and compares every incoming batch against it with
the two-sample Kolmogorov-Smirnov statistic per feature; a drift report
lists features whose statistic exceeds the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np


def ks_statistic(sample_a: np.ndarray, sample_b: np.ndarray) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (sup-norm of ECDF difference)."""
    sample_a = np.sort(np.asarray(sample_a, dtype=np.float64))
    sample_b = np.sort(np.asarray(sample_b, dtype=np.float64))
    if len(sample_a) == 0 or len(sample_b) == 0:
        raise ValueError("both samples must be non-empty")
    grid = np.concatenate([sample_a, sample_b])
    cdf_a = np.searchsorted(sample_a, grid, side="right") / len(sample_a)
    cdf_b = np.searchsorted(sample_b, grid, side="right") / len(sample_b)
    return float(np.abs(cdf_a - cdf_b).max())


@dataclass
class DriftReport:
    """Outcome of one drift check."""

    statistics: np.ndarray
    threshold: float
    drifted_features: List[int] = field(default_factory=list)

    @property
    def drifted(self) -> bool:
        return len(self.drifted_features) > 0

    @property
    def max_statistic(self) -> float:
        return float(self.statistics.max())

    def summary(self) -> str:
        if not self.drifted:
            return f"no drift (max KS {self.max_statistic:.3f} <= {self.threshold})"
        return (f"DRIFT on {len(self.drifted_features)} feature(s) "
                f"{self.drifted_features[:8]} (max KS {self.max_statistic:.3f})")


class DriftMonitor:
    """Per-feature KS drift detector against a training reference.

    Parameters
    ----------
    threshold:
        KS statistic above which a feature counts as drifted. With
        reference/batch sizes in the hundreds, 0.15-0.25 is a practical
        band (the asymptotic 95% critical value is ``1.36·sqrt(1/na+1/nb)``).
    max_reference:
        Reference subsample size kept per feature.
    """

    def __init__(self, threshold: float = 0.2, max_reference: int = 2000,
                 random_state: Optional[int] = None):
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.threshold = threshold
        self.max_reference = max_reference
        self.random_state = random_state
        self._reference: Optional[np.ndarray] = None

    def fit(self, X_reference: np.ndarray) -> "DriftMonitor":
        """Store (a subsample of) the training features."""
        X_reference = np.asarray(X_reference, dtype=np.float64)
        if X_reference.ndim != 2 or len(X_reference) == 0:
            raise ValueError("X_reference must be a non-empty 2-D array")
        if len(X_reference) > self.max_reference:
            rng = np.random.default_rng(self.random_state)
            idx = rng.choice(len(X_reference), size=self.max_reference, replace=False)
            X_reference = X_reference[idx]
        self._reference = X_reference
        return self

    def check(self, X_batch: np.ndarray) -> DriftReport:
        """Compare a live batch against the reference."""
        if self._reference is None:
            raise RuntimeError("monitor is not fitted; call fit() first")
        X_batch = np.asarray(X_batch, dtype=np.float64)
        if X_batch.ndim != 2:
            raise ValueError(f"batch must be 2-D, got shape {X_batch.shape}")
        if X_batch.shape[1] != self._reference.shape[1]:
            raise ValueError(
                f"batch has {X_batch.shape[1]} features but the drift "
                f"reference has {self._reference.shape[1]}"
            )
        stats = np.array([
            ks_statistic(self._reference[:, j], X_batch[:, j])
            for j in range(X_batch.shape[1])
        ])
        drifted = np.flatnonzero(stats > self.threshold).tolist()
        return DriftReport(statistics=stats, threshold=self.threshold,
                           drifted_features=drifted)
