"""Covariate-drift monitoring for deployed detectors.

A detector trained on last month's traffic silently degrades when the
feature distribution moves. :class:`DriftMonitor` keeps a reference sample
of the training features and compares every incoming batch against it with
the two-sample Kolmogorov-Smirnov statistic per feature; a drift report
lists features whose statistic exceeds the threshold.

Served traffic is messier than a validation split, so the monitor is
hardened for the pipeline's call order (the drift check may see rows that
sanitization would quarantine, and real feature matrices contain one-hot
or padding columns that never vary):

- **Non-finite values** (NaN/inf from broken upstream joins) are excluded
  per feature before the KS statistic; a feature whose batch column has
  no finite values contributes statistic 0.0 (no evidence) instead of
  raising or polluting the sup-norm.
- **Constant reference features** get an exact-mass comparison instead of
  the degenerate two-sample KS: the statistic is the fraction of batch
  values that differ from the reference constant (within float
  tolerance), so float noise on a frozen column cannot manufacture a
  spurious KS = 1.0 drift event, while a genuinely moved constant still
  reports full drift.

The reference columns are sorted once at :meth:`~DriftMonitor.fit`, so a
check is one ``searchsorted`` per feature rather than a re-sort of the
reference on every served batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

#: Tolerances for "the batch value equals the constant reference value";
#: tight enough that any real shift registers, loose enough that float32
#: round-tripping or serialization noise does not.
_CONST_RTOL = 1e-9
_CONST_ATOL = 1e-12


def _finite(values: np.ndarray) -> np.ndarray:
    """The finite entries of a 1-D array (may be empty)."""
    return values[np.isfinite(values)]


def _ks_from_sorted(sorted_a: np.ndarray, sorted_b: np.ndarray) -> float:
    """Two-sample KS statistic given two *sorted, finite* samples."""
    grid = np.concatenate([sorted_a, sorted_b])
    cdf_a = np.searchsorted(sorted_a, grid, side="right") / len(sorted_a)
    cdf_b = np.searchsorted(sorted_b, grid, side="right") / len(sorted_b)
    return float(np.abs(cdf_a - cdf_b).max())


def ks_statistic(sample_a: np.ndarray, sample_b: np.ndarray) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (sup-norm of ECDF difference).

    Non-finite values carry no distributional evidence and are excluded
    before the comparison; a sample with no finite values raises
    ``ValueError`` (same contract as an empty sample).
    """
    sample_a = _finite(np.asarray(sample_a, dtype=np.float64).ravel())
    sample_b = _finite(np.asarray(sample_b, dtype=np.float64).ravel())
    if len(sample_a) == 0 or len(sample_b) == 0:
        raise ValueError("both samples must contain at least one finite value")
    return _ks_from_sorted(np.sort(sample_a), np.sort(sample_b))


@dataclass
class DriftReport:
    """Outcome of one drift check."""

    statistics: np.ndarray
    threshold: float
    drifted_features: List[int] = field(default_factory=list)
    #: Features whose batch column had no finite values — unchecked, not
    #: drifted (their ``statistics`` entry is 0.0).
    skipped_features: List[int] = field(default_factory=list)

    @property
    def drifted(self) -> bool:
        return len(self.drifted_features) > 0

    @property
    def max_statistic(self) -> float:
        return float(self.statistics.max())

    def to_dict(self) -> dict:
        """Plain-JSON view for structured events and reports."""
        return {
            "drifted": self.drifted,
            "max_ks": self.max_statistic,
            "threshold": float(self.threshold),
            "n_drifted": len(self.drifted_features),
            "drifted_features": [int(j) for j in self.drifted_features[:16]],
            "n_skipped": len(self.skipped_features),
        }

    def summary(self) -> str:
        if not self.drifted:
            return f"no drift (max KS {self.max_statistic:.3f} <= {self.threshold})"
        return (f"DRIFT on {len(self.drifted_features)} feature(s) "
                f"{self.drifted_features[:8]} (max KS {self.max_statistic:.3f})")


class DriftMonitor:
    """Per-feature KS drift detector against a training reference.

    Parameters
    ----------
    threshold:
        KS statistic above which a feature counts as drifted. With
        reference/batch sizes in the hundreds, 0.15-0.25 is a practical
        band (the asymptotic 95% critical value is ``1.36·sqrt(1/na+1/nb)``).
    max_reference:
        Reference subsample size kept per feature.
    """

    def __init__(self, threshold: float = 0.2, max_reference: int = 2000,
                 random_state: Optional[int] = None):
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.threshold = threshold
        self.max_reference = max_reference
        self.random_state = random_state
        self._reference: Optional[np.ndarray] = None
        self._sorted_cols: Optional[List[np.ndarray]] = None
        self._const_values: Optional[List[Optional[float]]] = None

    def fit(self, X_reference: np.ndarray) -> "DriftMonitor":
        """Store (a subsample of) the training features."""
        X_reference = np.asarray(X_reference, dtype=np.float64)
        if X_reference.ndim != 2 or len(X_reference) == 0:
            raise ValueError("X_reference must be a non-empty 2-D array")
        if len(X_reference) > self.max_reference:
            rng = np.random.default_rng(self.random_state)
            idx = rng.choice(len(X_reference), size=self.max_reference, replace=False)
            X_reference = X_reference[idx]
        self._reference = X_reference
        self._sorted_cols = []
        self._const_values = []
        for j in range(X_reference.shape[1]):
            col = np.sort(_finite(X_reference[:, j]))
            self._sorted_cols.append(col)
            if len(col) and col[0] == col[-1]:
                self._const_values.append(float(col[0]))
            else:
                self._const_values.append(None)
        return self

    def _feature_statistic(self, j: int, column: np.ndarray) -> Optional[float]:
        """KS-style statistic for one feature; ``None`` = no evidence."""
        reference = self._sorted_cols[j]
        values = _finite(column)
        if len(reference) == 0 or len(values) == 0:
            return None
        const = self._const_values[j]
        if const is not None:
            # Degenerate reference: the two-sample KS collapses to 0-or-1
            # on float noise. Compare mass at the constant instead — the
            # fraction of batch values that actually moved.
            moved = ~np.isclose(values, const, rtol=_CONST_RTOL, atol=_CONST_ATOL)
            return float(moved.mean())
        return _ks_from_sorted(reference, np.sort(values))

    def check(self, X_batch: np.ndarray) -> DriftReport:
        """Compare a live batch against the reference.

        Never raises on bad *values*: non-finite entries are excluded
        feature-wise, and features with no checkable values are reported
        as skipped with statistic 0.0.
        """
        if self._reference is None:
            raise RuntimeError("monitor is not fitted; call fit() first")
        X_batch = np.asarray(X_batch, dtype=np.float64)
        if X_batch.ndim != 2:
            raise ValueError(f"batch must be 2-D, got shape {X_batch.shape}")
        if X_batch.shape[1] != self._reference.shape[1]:
            raise ValueError(
                f"batch has {X_batch.shape[1]} features but the drift "
                f"reference has {self._reference.shape[1]}"
            )
        n_features = X_batch.shape[1]
        stats = np.zeros(n_features, dtype=np.float64)
        skipped: List[int] = []
        for j in range(n_features):
            statistic = self._feature_statistic(j, X_batch[:, j])
            if statistic is None:
                skipped.append(j)
            else:
                stats[j] = statistic
        drifted = np.flatnonzero(stats > self.threshold).tolist()
        return DriftReport(statistics=stats, threshold=self.threshold,
                           drifted_features=drifted, skipped_features=skipped)
