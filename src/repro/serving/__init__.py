"""Deployment utilities: scoring pipelines, drift monitoring, alert routing.

The paper's motivating systems run continuously (payment platforms, SOC
pipelines). This package wraps a fitted TargAD for that setting:

- :class:`~repro.serving.pipeline.ScoringPipeline` — batch scoring with
  thresholds calibrated on a validation split and tri-class routing;
- :class:`~repro.serving.drift.DriftMonitor` — per-feature ECDF distance
  between live batches and the training reference, flagging covariate
  drift that would silently invalidate the detector;
- :class:`~repro.serving.pipeline.AlertBatch` — the structured result a
  downstream queue consumes.

The pipeline is hardened through :mod:`repro.resilience`: incoming rows
are sanitized (bad rows quarantined, marked :data:`ROUTE_QUARANTINED` in
the routing), and the primary scorer is guarded by a circuit breaker
with a reconstruction-error fallback for degraded operation.

Large batches can additionally be sharded row-wise across a process
pool (:mod:`repro.serving.sharding`): a picklable
:class:`~repro.serving.sharding.ScoringSpec` snapshot of the fitted
model is shipped to each worker, shards are merged deterministically in
input order, and pool failures degrade to single-process scoring.

For always-on deployments, :class:`~repro.serving.daemon.ServingDaemon`
keeps that spec *resident* in a pool of long-lived workers and moves
rows and results through :class:`~repro.serving.shm_ring.ShmRing`
shared-memory ring buffers (zero pickling on the hot path), coalescing
concurrent small requests into fused scoring calls. The replay harness
(:mod:`repro.serving.replay`) measures its latency under open-loop load.
"""

from repro.serving.daemon import DaemonUnavailable, ServingDaemon
from repro.serving.drift import DriftMonitor, DriftReport
from repro.serving.pipeline import ROUTE_QUARANTINED, AlertBatch, ScoringPipeline
from repro.serving.sharding import (
    ScoringSpec,
    ShardedScorer,
    ShardPoolUnavailable,
    ShardResult,
    build_scoring_spec,
)
from repro.serving.shm_ring import ShmRing

__all__ = [
    "AlertBatch",
    "DaemonUnavailable",
    "DriftMonitor",
    "DriftReport",
    "ROUTE_QUARANTINED",
    "ScoringPipeline",
    "ScoringSpec",
    "ServingDaemon",
    "ShardedScorer",
    "ShardPoolUnavailable",
    "ShardResult",
    "ShmRing",
    "build_scoring_spec",
]
