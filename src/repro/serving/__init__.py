"""Deployment utilities: scoring pipelines, drift monitoring, alert routing.

The paper's motivating systems run continuously (payment platforms, SOC
pipelines). This package wraps a fitted TargAD for that setting:

- :class:`~repro.serving.pipeline.ScoringPipeline` — batch scoring with
  thresholds calibrated on a validation split and tri-class routing;
- :class:`~repro.serving.drift.DriftMonitor` — per-feature ECDF distance
  between live batches and the training reference, flagging covariate
  drift that would silently invalidate the detector;
- :class:`~repro.serving.pipeline.AlertBatch` — the structured result a
  downstream queue consumes.

The pipeline is hardened through :mod:`repro.resilience`: incoming rows
are sanitized (bad rows quarantined, marked :data:`ROUTE_QUARANTINED` in
the routing), and the primary scorer is guarded by a circuit breaker
with a reconstruction-error fallback for degraded operation.

Execution runs through the unified executor layer
(:mod:`repro.serving.executor`): a
:class:`~repro.serving.executor.FallbackChain` of
:class:`~repro.serving.executor.Executor` adapters — always-on daemon
(optionally striping large batches across its idle workers), per-batch
shard pool, inline — where infrastructure failures demote a batch down
the chain and model faults propagate to the circuit breaker uniformly.

The underlying engines: :mod:`repro.serving.sharding` ships a picklable
:class:`~repro.serving.sharding.ScoringSpec` snapshot of the fitted
model to a process pool and merges contiguous row shards
deterministically in input order;
:class:`~repro.serving.daemon.ServingDaemon` keeps that spec *resident*
in long-lived workers and moves rows and results through
:class:`~repro.serving.shm_ring.ShmRing` shared-memory ring buffers
(zero pickling on the hot path, zero-copy result reads), coalescing
concurrent small requests into fused scoring calls. The replay harness
(:mod:`repro.serving.replay`) measures latency under open-loop load.
"""

from repro.serving.daemon import DaemonUnavailable, ServingDaemon
from repro.serving.drift import DriftMonitor, DriftReport
from repro.serving.errors import ExecutorUnavailable
from repro.serving.executor import (
    DaemonExecutor,
    Executor,
    FallbackChain,
    InlineExecutor,
    ShardedExecutor,
    StripedDaemonExecutor,
)
from repro.serving.pipeline import (
    EXECUTOR_PRESETS,
    ROUTE_QUARANTINED,
    AlertBatch,
    ScoringPipeline,
)
from repro.serving.sharding import (
    ScoringSpec,
    ShardedScorer,
    ShardPoolUnavailable,
    ShardResult,
    build_scoring_spec,
)
from repro.serving.shm_ring import ShmRing

__all__ = [
    "AlertBatch",
    "DaemonExecutor",
    "DaemonUnavailable",
    "DriftMonitor",
    "DriftReport",
    "EXECUTOR_PRESETS",
    "Executor",
    "ExecutorUnavailable",
    "FallbackChain",
    "InlineExecutor",
    "ROUTE_QUARANTINED",
    "ScoringPipeline",
    "ScoringSpec",
    "ServingDaemon",
    "ShardedExecutor",
    "ShardPoolUnavailable",
    "ShardResult",
    "ShardedScorer",
    "ShmRing",
    "StripedDaemonExecutor",
    "build_scoring_spec",
]
