"""Multi-process batch sharding for the serving fast path.

Large serving batches are BLAS-bound single-threaded work; this module
shards them row-wise across a worker pool. Each worker receives a
:class:`ScoringSpec` — a picklable snapshot of the fitted TargAD's dense
weights, activation names, the (m, k) head split, and the *calibrated*
OOD strategy — rebuilds the network once at pool start, and scores its
contiguous row slice on the same compiled inference path the parent
uses (:func:`repro.nn.train.forward_in_batches` +
:func:`repro.core.scoring.route_from_logits`). Because workers execute
the exact functions the single-process path executes, on identical
float64 inputs the merged scores and routing are identical to
``model.score_batch`` — sharding changes *where* rows are scored, never
*how*.

Shards are contiguous row slices merged back in input order, so results
are deterministic regardless of worker scheduling.

Failure taxonomy (the pipeline depends on this split):

- **Pool infrastructure failures** — the start method is unavailable,
  the spec cannot be pickled, a worker process dies — raise
  :class:`ShardPoolUnavailable`. The pipeline catches it, disables
  sharding, and rescores single-process: an infrastructure problem must
  never look like a model fault to the circuit breaker.
- **Model faults inside a worker** (an exception raised while scoring)
  propagate as the original exception type, exactly as they would from
  a single-process ``score_batch`` call — the pipeline's guardrails
  then report the fault to the breaker and fall back to the degraded
  scorer, same as ever.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.scoring import route_from_logits, softmax, target_anomaly_score
from repro.nn.layers import Activation, Dense, Sequential
from repro.nn.train import forward_in_batches
from repro.serving.errors import ExecutorUnavailable


class ShardPoolUnavailable(ExecutorUnavailable):
    """The shard worker pool cannot be created or has broken down.

    Signals an *infrastructure* problem (start method, pickling, dead
    worker processes) as opposed to a model fault; callers should fall
    back to single-process scoring rather than tripping the circuit
    breaker.

    ``n_completed_shards`` counts shards whose results had already
    arrived when the pool broke mid-batch. Those rows get scored *again*
    on the single-process rescore path — callers use the count to record
    the aborted work (``serve.shards.aborted``) so the telemetry ledger
    explains the double-scoring instead of silently dropping it.
    """

    def __init__(self, message: str, n_completed_shards: int = 0):
        super().__init__(message)
        self.n_completed_shards = int(n_completed_shards)


@dataclass
class ScoringSpec:
    """Picklable snapshot of everything a shard worker needs.

    ``layers`` is the flattened network: ``("dense", weight, bias)``
    entries (float64 arrays; ``bias`` may be ``None``) interleaved with
    ``("act", name)`` entries, in execution order. ``strategy`` is the
    already-calibrated OOD strategy object (plain picklable floats
    inside), so workers never need calibration data. ``backend`` names
    the execution backend the spec was built under; workers activate it
    by name around scoring, so a parent running ``use_backend("tiled")``
    gets tiled kernels in every worker process too.
    """

    layers: List[tuple]
    m: int
    k: int
    strategy: object
    batch_size: int = 4096
    backend: str = "numpy"

    def build_network(self) -> Sequential:
        """Reconstruct the module tree; weights are rebound, not copied."""
        modules = []
        for entry in self.layers:
            if entry[0] == "dense":
                _, weight, bias = entry
                layer = Dense(
                    int(weight.shape[0]), int(weight.shape[1]), bias=bias is not None
                )
                layer.weight.data = np.asarray(weight, dtype=np.float64)
                if bias is not None:
                    layer.bias.data = np.asarray(bias, dtype=np.float64)
                modules.append(layer)
            else:
                modules.append(Activation(entry[1]))
        return Sequential(*modules)

    def score(self, network: Sequential, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Score rows exactly like ``TargAD.score_batch`` does.

        Same forward path (compiled, cached), same softmax / Eq. 9 /
        tri-class routing functions — float64-identical to the parent
        when the spec's backend matches (the backend's published
        ``parity_atol`` otherwise bounds the difference).
        """
        from repro.backend import use_backend

        with use_backend(self.backend):
            logits = forward_in_batches(network, X, batch_size=self.batch_size)
            probs = softmax(logits)
            scores = target_anomaly_score(probs, self.m)
            routing = route_from_logits(logits, probs, self.m, self.k, self.strategy)
        return scores, routing


def build_scoring_spec(model, strategy: str = "ed") -> ScoringSpec:
    """Extract a :class:`ScoringSpec` from a fitted TargAD.

    Calibrates the named OOD strategy eagerly (the parent process holds
    the calibration logits; workers only get the fitted result) and
    deep-copies it so later refits in the parent cannot race the pool.
    Raises whatever ``model._get_strategy`` raises when calibration is
    impossible (e.g. no candidates) — callers treat that as "sharding
    unavailable", since the single-process path defers that failure
    until an anomalous row actually appears.
    """
    from repro.backend import active_backend
    from repro.nn.inference import NotCompilableError, _collect

    model._check_fitted()
    fitted = copy.deepcopy(model._get_strategy(strategy))
    leaves: List = []
    _collect(model.network_, leaves, [], [])
    layers: List[tuple] = []
    for leaf in leaves:
        if isinstance(leaf, Dense):
            bias = None if leaf.bias is None else np.asarray(leaf.bias.data)
            layers.append(("dense", np.asarray(leaf.weight.data), bias))
        elif isinstance(leaf, Activation):
            layers.append(("act", leaf.name))
        else:
            raise NotCompilableError(
                f"module {type(leaf).__name__} cannot be serialized into a "
                "scoring spec"
            )
    return ScoringSpec(
        layers=layers,
        m=model.m_,
        k=model.k_,
        strategy=fitted,
        backend=getattr(active_backend(), "name", "numpy"),
    )


# -- worker side --------------------------------------------------------
# One spec + rebuilt network per worker process, installed by the pool
# initializer. The network is built once; the compiled plan it implies
# is cached by the weight-keyed plan cache across shard calls.
_WORKER_SPEC: Optional[ScoringSpec] = None
_WORKER_NETWORK: Optional[Sequential] = None


def _init_worker(spec: ScoringSpec) -> None:
    global _WORKER_SPEC, _WORKER_NETWORK
    _WORKER_SPEC = spec
    _WORKER_NETWORK = spec.build_network()


def _score_shard(X: np.ndarray) -> Tuple[np.ndarray, np.ndarray, float]:
    """Score one shard; returns ``(scores, routing, seconds)``."""
    start = time.perf_counter()
    scores, routing = _WORKER_SPEC.score(_WORKER_NETWORK, X)
    return scores, routing, time.perf_counter() - start


@dataclass
class ShardResult:
    """Merged scoring output plus per-shard wall times (telemetry)."""

    scores: np.ndarray
    routing: np.ndarray
    shard_seconds: List[float] = field(default_factory=list)

    @property
    def n_shards(self) -> int:
        return len(self.shard_seconds)


class ShardedScorer:
    """Row-sharded scoring over a lazily created process pool.

    Parameters
    ----------
    spec:
        The :class:`ScoringSpec` every worker is initialized with.
    n_workers:
        Pool size; batches are split into at most this many contiguous
        shards.
    start_method:
        Multiprocessing start method. ``None`` prefers ``"fork"`` when
        available (workers inherit loaded modules; spec transfer is
        cheap) and otherwise uses the platform default.
    """

    def __init__(
        self,
        spec: ScoringSpec,
        n_workers: int,
        start_method: Optional[str] = None,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.spec = spec
        self.n_workers = int(n_workers)
        self.start_method = start_method
        self._pool = None

    def _ensure_pool(self):
        if self._pool is not None:
            return self._pool
        try:
            import multiprocessing as mp
            from concurrent.futures import ProcessPoolExecutor

            method = self.start_method
            if method is None and "fork" in mp.get_all_start_methods():
                method = "fork"
            context = mp.get_context(method)
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(self.spec,),
            )
        except Exception as exc:
            raise ShardPoolUnavailable(
                f"cannot create shard worker pool: {exc}"
            ) from exc
        return self._pool

    @staticmethod
    def shard_slices(n: int, n_shards: int) -> List[slice]:
        """Contiguous row slices covering ``range(n)``; no empty shards."""
        n_shards = max(min(n_shards, n), 1)
        bounds = np.linspace(0, n, n_shards + 1, dtype=np.int64)
        return [
            slice(int(bounds[i]), int(bounds[i + 1]))
            for i in range(n_shards)
            if bounds[i + 1] > bounds[i]
        ]

    def score(self, X: np.ndarray) -> ShardResult:
        """Shard ``X`` across the pool; merge results in input order.

        Raises :class:`ShardPoolUnavailable` for pool-infrastructure
        failures; worker-side scoring exceptions propagate with their
        original type (a model fault, handled by the caller's
        guardrails).
        """
        from concurrent.futures.process import BrokenProcessPool

        X = np.asarray(X, dtype=np.float64)
        if len(X) == 0:
            return ShardResult(
                np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
            )
        pool = self._ensure_pool()
        slices = self.shard_slices(len(X), self.n_workers)
        results = []
        try:
            futures = [pool.submit(_score_shard, X[s]) for s in slices]
            for future in futures:
                results.append(future.result())
        except BrokenProcessPool as exc:
            self.close()
            # results collected so far are discarded — the caller rescores
            # the whole batch single-process; n_completed_shards lets it
            # account for the aborted (now double-scored) work.
            raise ShardPoolUnavailable(
                f"shard worker pool broke down after {len(results)} of "
                f"{len(slices)} shard(s): {exc}",
                n_completed_shards=len(results),
            ) from exc
        scores = np.concatenate([r[0] for r in results])
        routing = np.concatenate([r[1] for r in results])
        return ShardResult(scores, routing, [float(r[2]) for r in results])

    def update_spec(self, new_spec: ScoringSpec) -> None:
        """Swap the spec; the pool is rebuilt lazily on the next score.

        Workers are initialized with the spec at pool-start, so a hot
        model swap closes the current pool (after in-flight batches —
        ``score`` is synchronous, so by the time a swap runs under the
        pipeline's swap lock nothing is mid-flight) and lets
        ``_ensure_pool`` recreate it from ``new_spec`` on demand.
        """
        self.spec = new_spec
        self.close()

    def close(self) -> None:
        """Shut the pool down; a later :meth:`score` recreates it."""
        pool, self._pool = self._pool, None
        if pool is not None:
            # wait=True: tearing the pipes down mid-flight leaves the
            # executor's management thread to die noisily at interpreter
            # exit; a clean join is near-instant here.
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ShardedScorer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
