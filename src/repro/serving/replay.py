"""Open-loop traffic replay: latency under load, not peak throughput.

A peak-rows/sec microbench answers "how fast can the scorer go when fed
perfectly"; production asks "what latency do requests see at *this*
arrival rate" — the millions-of-users number. This module replays a
seeded open-loop workload (Poisson arrivals, mixed batch sizes) against
either a synchronous scorer or a :class:`~repro.serving.daemon.ServingDaemon`
and reports the latency distribution **measured against the scheduled
arrival time**, so queueing delay counts: an open-loop client does not
slow down because the server is behind (closed-loop benches hide
saturation by self-throttling — the coordinated-omission trap).

Determinism: the schedule (arrival offsets, batch sizes, row indices
into the caller's row pool) is fully derived from the spec's seed, so
two modes replay byte-identical traffic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ReplaySpec",
    "ReplayRequest",
    "ReplayResult",
    "build_schedule",
    "replay_sync",
    "replay_daemon",
]


@dataclass(frozen=True)
class ReplaySpec:
    """One replay workload: an arrival process over a batch-size mix.

    ``rate_rps`` is the *offered* request rate (Poisson, so bursts
    happen); ``batch_mix`` maps batch sizes (rows) to sampling weights.
    A rate above the scorer's capacity is legitimate — that is exactly
    the regime where micro-batching pays and tail latency is decided.
    """

    name: str
    rate_rps: float
    n_requests: int
    batch_mix: Tuple[Tuple[int, float], ...] = ((32, 1.0),)
    seed: int = 0

    def __post_init__(self):
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if not self.batch_mix or any(r < 1 or w <= 0 for r, w in self.batch_mix):
            raise ValueError("batch_mix needs (rows >= 1, weight > 0) entries")


@dataclass
class ReplayRequest:
    """One scheduled request: when it arrives and which rows it carries."""

    arrival_s: float
    rows: np.ndarray  # row indices into the replay's row pool


def build_schedule(spec: ReplaySpec, n_pool_rows: int) -> List[ReplayRequest]:
    """Materialize the seeded arrival schedule for a given row pool.

    Inter-arrival gaps are exponential (Poisson process at
    ``spec.rate_rps``); batch sizes are drawn from ``spec.batch_mix``;
    each request's rows are drawn with replacement from the pool so a
    small pool can back an arbitrarily long replay.
    """
    if n_pool_rows < 1:
        raise ValueError("need at least one pool row")
    rng = np.random.default_rng(spec.seed)
    gaps = rng.exponential(1.0 / spec.rate_rps, size=spec.n_requests)
    arrivals = np.cumsum(gaps)
    sizes = np.array([r for r, _ in spec.batch_mix], dtype=np.int64)
    weights = np.array([w for _, w in spec.batch_mix], dtype=np.float64)
    picks = rng.choice(len(sizes), size=spec.n_requests, p=weights / weights.sum())
    return [
        ReplayRequest(
            arrival_s=float(arrivals[i]),
            rows=rng.integers(0, n_pool_rows, size=int(sizes[picks[i]])),
        )
        for i in range(spec.n_requests)
    ]


@dataclass
class ReplayResult:
    """Latency-under-load summary for one (workload, mode) replay."""

    workload: str
    mode: str
    n_requests: int
    n_rows: int
    offered_rps: float
    makespan_s: float
    latencies_s: np.ndarray = field(repr=False)

    @property
    def rows_per_sec(self) -> float:
        return self.n_rows / self.makespan_s if self.makespan_s > 0 else 0.0

    def percentile_ms(self, q: float) -> float:
        return float(np.percentile(self.latencies_s, q) * 1e3)

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "mode": self.mode,
            "n_requests": self.n_requests,
            "rows": self.n_rows,
            "offered_rps": round(self.offered_rps, 1),
            "achieved_rps": round(self.n_requests / self.makespan_s, 1)
            if self.makespan_s > 0 else 0.0,
            "rows_per_sec": round(self.rows_per_sec, 1),
            "makespan_s": round(self.makespan_s, 4),
            "latency_p50_ms": round(self.percentile_ms(50), 3),
            "latency_p95_ms": round(self.percentile_ms(95), 3),
            "latency_p99_ms": round(self.percentile_ms(99), 3),
            "latency_max_ms": round(float(self.latencies_s.max() * 1e3), 3),
        }

    def summary(self) -> str:
        d = self.to_dict()
        return (
            f"{self.workload}/{self.mode}: {self.n_requests} req "
            f"({self.n_rows} rows) in {d['makespan_s']}s — "
            f"p50={d['latency_p50_ms']}ms p95={d['latency_p95_ms']}ms "
            f"p99={d['latency_p99_ms']}ms, {d['rows_per_sec']:,.0f} rows/s"
        )


def _pace(t0: float, arrival_s: float) -> None:
    """Sleep until the scheduled arrival (no-op when already behind)."""
    remaining = (t0 + arrival_s) - time.perf_counter()
    if remaining > 0:
        time.sleep(remaining)


def replay_sync(
    spec: ReplaySpec,
    schedule: Sequence[ReplayRequest],
    X_pool: np.ndarray,
    score: Callable[[np.ndarray], object],
) -> ReplayResult:
    """Replay against a synchronous scorer (the single-process baseline).

    Requests are served in arrival order, one at a time — exactly what a
    call-per-batch ``score_batch`` deployment does. Latency for each
    request = completion time − *scheduled* arrival, so time spent
    waiting behind earlier requests is charged to the server.
    """
    latencies = np.empty(len(schedule), dtype=np.float64)
    n_rows = 0
    t0 = time.perf_counter()
    for i, request in enumerate(schedule):
        _pace(t0, request.arrival_s)
        score(X_pool[request.rows])
        latencies[i] = (time.perf_counter() - t0) - request.arrival_s
        n_rows += len(request.rows)
    makespan = time.perf_counter() - t0
    return ReplayResult(
        workload=spec.name, mode="single", n_requests=len(schedule),
        n_rows=n_rows, offered_rps=spec.rate_rps, makespan_s=makespan,
        latencies_s=latencies,
    )


def replay_daemon(
    spec: ReplaySpec,
    schedule: Sequence[ReplayRequest],
    X_pool: np.ndarray,
    daemon,
    mode: Optional[str] = None,
    timeout: float = 120.0,
) -> ReplayResult:
    """Replay against a :class:`ServingDaemon` via async ``submit``.

    The submitting loop never blocks on results, so arrivals keep their
    schedule even when the daemon is saturated — queued requests pile
    into the admission queue where micro-batching coalesces them.
    Completion timestamps are recorded by the daemon's collector thread
    (each handle's ``t_done``), keeping the measurement free of
    client-thread scheduling noise.
    """
    handles = []
    n_rows = 0
    t0 = time.perf_counter()
    for request in schedule:
        _pace(t0, request.arrival_s)
        handles.append((request, daemon.submit(X_pool[request.rows])))
        n_rows += len(request.rows)
    latencies = np.empty(len(schedule), dtype=np.float64)
    t_last = t0
    for i, (request, handle) in enumerate(handles):
        handle.result(timeout)
        latencies[i] = (handle.t_done - t0) - request.arrival_s
        t_last = max(t_last, handle.t_done)
    return ReplayResult(
        workload=spec.name, mode=mode or "daemon", n_requests=len(schedule),
        n_rows=n_rows, offered_rps=spec.rate_rps, makespan_s=t_last - t0,
        latencies_s=latencies,
    )
