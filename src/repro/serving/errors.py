"""Shared exception taxonomy for the serving execution layer.

The serving stack distinguishes two failure families, and every
execution path must sort its errors into exactly one of them:

- :class:`ExecutorUnavailable` — an *infrastructure* problem: shared
  memory missing, a worker process dead, a pool that cannot start. The
  :class:`~repro.serving.executor.FallbackChain` demotes the batch to
  the next executor and the circuit breaker is never involved.
- Everything else raised while scoring is a *model fault*: it
  propagates to the pipeline's guardrails with its original type, where
  the breaker/degraded-fallback machinery treats it exactly like a
  single-process scoring fault.

:class:`~repro.serving.daemon.DaemonUnavailable` and
:class:`~repro.serving.sharding.ShardPoolUnavailable` subclass
:class:`ExecutorUnavailable`, so the chain encodes the infra-failure
matrix once instead of catching per-engine exception types.
"""

from __future__ import annotations

__all__ = ["ExecutorUnavailable"]


class ExecutorUnavailable(RuntimeError):
    """An executor cannot serve for infrastructure reasons.

    Callers (the :class:`~repro.serving.executor.FallbackChain`) demote
    the batch to the next executor in the chain; the circuit breaker is
    never involved. Whether the executor stays down permanently is the
    executor's own call — the chain just checks ``alive`` next batch.
    """
