"""Always-on serving daemon: resident workers over shared-memory rings.

:class:`ServingDaemon` is the persistent counterpart to the per-batch
:class:`~repro.serving.sharding.ShardedScorer`. Instead of shipping rows
and results through the executor's pickle pipes on every call, it

- holds the picklable :class:`~repro.serving.sharding.ScoringSpec`
  *resident* in each long-lived worker process (the network is rebuilt
  once, its compiled plan cached for the worker's lifetime),
- moves rows and results through per-worker
  :class:`~repro.serving.shm_ring.ShmRing` shared-memory ring buffers —
  raw float64 bytes with slot framing and sequence numbers, no pickling
  on the hot path, explicit backpressure when a ring is full — and
- runs an **admission queue with micro-batching**: concurrent small
  requests are coalesced into one fused ``score_batch``-equivalent call
  per worker dispatch, amortizing the per-call fixed costs (plan lookup,
  softmax/routing setup, Python dispatch) that dominate small batches.

Failure taxonomy mirrors :mod:`repro.serving.sharding`:

- **Infrastructure failures** — shared memory unavailable, a worker
  process dying — surface as :class:`DaemonUnavailable`. The pipeline
  rescsores the affected batch single-process and never reports them to
  the circuit breaker. Dead workers are detected and respawned (counter
  ``serve.daemon.respawns``); only a daemon that cannot be (re)started
  at all stays down.
- **Model faults** raised while scoring inside a worker are pickled
  back and re-raised in the caller with their original type, so the
  pipeline's breaker/fallback guardrails treat them exactly like
  single-process or sharded faults.

Telemetry (``serve.daemon.*`` through :mod:`repro.obs`): request/row/
dispatch/fault/respawn/fallback counters, a ``serve.daemon.request``
latency timer, and p50/p95/p99 latency SLO gauges
(``serve.daemon.latency_p50_ms`` etc.) refreshed from a bounded window
of completed-request latencies.

Lifecycle: ``start()`` / ``close()`` (or a ``with`` block). ``close()``
is idempotent, joins workers (escalating to terminate/kill), unlinks
every shared-memory segment, and fails any in-flight requests; a
pid-guarded finalizer backstops segment cleanup if a daemon is dropped
without ``close()``.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import time
from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.obs import ensure_telemetry
from repro.serving.errors import ExecutorUnavailable
from repro.serving.shm_ring import (
    KIND_DATA,
    KIND_ERROR,
    KIND_RESULT,
    KIND_SHUTDOWN,
    RingClosed,
    RingEmpty,
    ShmRing,
)

__all__ = ["DaemonUnavailable", "ServingDaemon"]

#: Request frame header: dispatch id, n_rows, n_cols (payload = float64 rows).
_REQ_HEADER = struct.Struct("<QII")
#: Result frame header: dispatch id, n_rows (payload = f8 scores + i8 routing).
_RES_HEADER = struct.Struct("<QI")

#: How long a collector waits on the response ring before polling worker
#: liveness. Short enough to catch crashes promptly, long enough to stay
#: off the CPU while idle.
_POLL_SECONDS = 0.05

#: Window of completed-request latencies feeding the SLO gauges.
_SLO_WINDOW = 1024


class DaemonUnavailable(ExecutorUnavailable):
    """The daemon cannot serve: shared memory missing, workers dead, or
    the daemon closed. An infrastructure signal — callers fall back to
    single-process scoring and keep the circuit breaker out of it."""


class _Request:
    """One submitted batch: rows in, completion event + results out."""

    __slots__ = ("X", "event", "scores", "routing", "error",
                 "t_submit", "t_done", "coalesce")

    def __init__(self, X: np.ndarray, coalesce: bool = True):
        self.X = X
        #: ``False`` pins this request to its own dispatch — the striped
        #: executor relies on it to spread one batch across idle workers
        #: instead of having the dispatcher fuse the stripes back together.
        self.coalesce = coalesce
        self.event = threading.Event()
        self.scores: Optional[np.ndarray] = None
        self.routing: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None
        self.t_submit = time.perf_counter()
        self.t_done: Optional[float] = None

    def finish(self, scores=None, routing=None, error=None) -> None:
        self.scores = scores
        self.routing = routing
        self.error = error
        self.t_done = time.perf_counter()
        self.event.set()

    def result(self, timeout: Optional[float] = None) -> Tuple[np.ndarray, np.ndarray]:
        if not self.event.wait(timeout):
            raise TimeoutError("daemon request did not complete in time")
        if self.error is not None:
            raise self.error
        return self.scores, self.routing

    @property
    def latency(self) -> float:
        return (self.t_done or time.perf_counter()) - self.t_submit


class _Dispatch:
    """One fused worker call: the coalesced requests and their row splits."""

    __slots__ = ("dispatch_id", "requests", "splits", "n_rows", "t_sent")

    def __init__(self, dispatch_id: int, requests: List[_Request]):
        self.dispatch_id = dispatch_id
        self.requests = requests
        lengths = [len(r.X) for r in requests]
        self.splits = np.cumsum(lengths)[:-1]
        self.n_rows = int(sum(lengths))
        self.t_sent = time.perf_counter()


class _WorkerSlot:
    """One worker process plus its two rings and in-flight dispatches."""

    __slots__ = ("index", "process", "req_ring", "resp_ring", "inflight",
                 "busy", "updating", "generation")

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.req_ring: Optional[ShmRing] = None
        self.resp_ring: Optional[ShmRing] = None
        self.inflight: Deque[_Dispatch] = deque()
        self.busy = False
        #: True while ``update_spec`` is swapping this slot's worker; the
        #: collector parks instead of exiting and crash handling defers.
        self.updating = False
        #: Bumped by each completed spec update; lets the collector tell a
        #: deliberate ring replacement from a shutdown race.
        self.generation = 0


def _daemon_worker(spec, req_name: str, resp_name: str, capacity: int) -> None:
    """Worker main loop: read row frames, score, write result frames.

    Module-level so both fork and spawn start methods can target it. The
    spec travels once through the process-spawn pickle; every batch after
    that moves through shared memory only. Exits when the request ring
    closes, a shutdown frame arrives, or the parent process dies.
    """
    import multiprocessing as mp

    req = ShmRing.attach(req_name, capacity)
    resp = ShmRing.attach(resp_name, capacity)
    network = spec.build_network()
    parent = mp.parent_process()
    try:
        while True:
            try:
                kind, payload = req.read(timeout=_POLL_SECONDS * 5)
            except RingEmpty:
                if parent is not None and not parent.is_alive():
                    return  # orphaned: parent died without closing
                continue
            except RingClosed:
                return
            if kind == KIND_SHUTDOWN:
                return
            dispatch_id, n_rows, n_cols = _REQ_HEADER.unpack_from(payload)
            X = np.frombuffer(
                payload, dtype=np.float64, count=n_rows * n_cols,
                offset=_REQ_HEADER.size,
            ).reshape(n_rows, n_cols)
            try:
                scores, routing = spec.score(network, X)
                out = (
                    _RES_HEADER.pack(dispatch_id, n_rows)
                    + np.ascontiguousarray(scores, dtype=np.float64).tobytes()
                    + np.ascontiguousarray(routing, dtype=np.int64).tobytes()
                )
                resp.write(out, kind=KIND_RESULT)
            except Exception as exc:  # model fault: ship it back typed
                try:
                    blob = pickle.dumps(exc)
                except Exception:
                    blob = pickle.dumps(RuntimeError(repr(exc)))
                resp.write(_RES_HEADER.pack(dispatch_id, 0) + blob,
                           kind=KIND_ERROR)
    except RingClosed:
        return
    finally:
        req.release()
        resp.release()


class ServingDaemon:
    """Long-lived scoring service over a shared-memory worker pool.

    Parameters
    ----------
    spec:
        The :class:`~repro.serving.sharding.ScoringSpec` each worker
        holds resident (build one with
        :func:`~repro.serving.sharding.build_scoring_spec`).
    n_workers:
        Worker processes. On one-CPU hosts one worker is usually right;
        the win comes from residency and micro-batching, not fan-out.
    ring_bytes:
        Capacity of each ring buffer. Must fit one maximally coalesced
        frame (``max_batch_rows`` rows); validated at :meth:`start`.
    max_batch_rows:
        Micro-batching ceiling: the dispatcher coalesces queued requests
        until the fused batch would exceed this many rows. A single
        larger request still dispatches alone.
    adaptive_batch:
        Tune the coalescing ceiling per dispatch from the admission
        queue instead of always fusing up to ``max_batch_rows``: the
        effective ceiling is the rows currently queued divided by the
        idle workers (clamped to ``[min_batch_rows, max_batch_rows]``),
        so a deep queue fuses aggressively while a multi-worker daemon
        under moderate load spreads work across workers instead of
        piling everything onto the first idle one. The live ceiling is
        published as the ``serve.daemon.batch_ceiling`` gauge.
    min_batch_rows:
        Adaptive-mode floor for the coalescing ceiling.
    start_method:
        Multiprocessing start method (``None`` prefers ``"fork"``).
    telemetry:
        Optional :class:`~repro.obs.TelemetryRegistry` for the
        ``serve.daemon.*`` series. ``None`` = no-op.
    """

    def __init__(
        self,
        spec,
        n_workers: int = 1,
        ring_bytes: int = 8 << 20,
        max_batch_rows: int = 8192,
        adaptive_batch: bool = False,
        min_batch_rows: int = 64,
        start_method: Optional[str] = None,
        telemetry=None,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if max_batch_rows < 1:
            raise ValueError("max_batch_rows must be >= 1")
        if not 1 <= min_batch_rows <= max_batch_rows:
            raise ValueError(
                "min_batch_rows must be in [1, max_batch_rows]; got "
                f"{min_batch_rows} with max_batch_rows={max_batch_rows}"
            )
        self.spec = spec
        self.n_workers = int(n_workers)
        self.ring_bytes = int(ring_bytes)
        self.max_batch_rows = int(max_batch_rows)
        self.adaptive_batch = bool(adaptive_batch)
        self.min_batch_rows = int(min_batch_rows)
        self.telemetry = ensure_telemetry(telemetry)
        self.start_method = start_method
        self._n_cols = int(spec.layers[0][1].shape[0])
        self._lock = threading.Lock()
        self._work_cv = threading.Condition(self._lock)
        self._pending: Deque[_Request] = deque()
        self._pending_rows = 0  # incremental sum(len(r.X) for r in _pending)
        self._slots: List[_WorkerSlot] = []
        self._threads: List[threading.Thread] = []
        self._next_dispatch = 0
        self._started = False
        self._closing = False
        self._latency_window: Deque[float] = deque(maxlen=_SLO_WINDOW)

    # -- lifecycle ------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._started and not self._closing

    def start(self) -> "ServingDaemon":
        """Create rings and workers; raises :class:`DaemonUnavailable`."""
        if self._started:
            return self
        max_frame = _REQ_HEADER.size + self.max_batch_rows * self._n_cols * 8
        if self.ring_bytes < max_frame + 64:
            raise DaemonUnavailable(
                f"ring_bytes={self.ring_bytes} cannot hold one coalesced "
                f"frame of {max_frame} bytes (max_batch_rows="
                f"{self.max_batch_rows} x {self._n_cols} features); raise "
                "ring_bytes or lower max_batch_rows"
            )
        try:
            import multiprocessing as mp

            method = self.start_method
            if method is None and "fork" in mp.get_all_start_methods():
                method = "fork"
            self._ctx = mp.get_context(method)
            for index in range(self.n_workers):
                slot = _WorkerSlot(index)
                self._spawn_worker(slot)
                self._slots.append(slot)
        except Exception as exc:
            self._teardown()
            raise DaemonUnavailable(
                f"cannot start serving daemon: {exc}"
            ) from exc
        self._started = True
        dispatcher = threading.Thread(
            target=self._dispatch_loop, name="daemon-dispatch", daemon=True
        )
        dispatcher.start()
        self._threads.append(dispatcher)
        for slot in self._slots:
            collector = threading.Thread(
                target=self._collect_loop, args=(slot,),
                name=f"daemon-collect-{slot.index}", daemon=True,
            )
            collector.start()
            self._threads.append(collector)
        return self

    def _spawn_worker(self, slot: _WorkerSlot) -> None:
        """(Re)create one worker and its rings; caller handles errors."""
        slot.req_ring = ShmRing.create(self.ring_bytes)
        slot.resp_ring = ShmRing.create(self.ring_bytes)
        slot.process = self._ctx.Process(
            target=_daemon_worker,
            args=(self.spec, slot.req_ring.name, slot.resp_ring.name,
                  self.ring_bytes),
            name=f"serving-daemon-{slot.index}",
            daemon=True,
        )
        slot.process.start()
        slot.busy = False

    def update_spec(self, new_spec, timeout: float = 60.0) -> None:
        """Hot-swap the resident :class:`ScoringSpec` with zero drops.

        Rolling per-worker replacement: each slot is reserved (the
        dispatcher stops assigning it new work), drained of in-flight
        dispatches, its worker shut down gracefully, and a fresh worker
        spawned holding ``new_spec`` — while queued requests simply wait
        in the admission queue (and, with more than one worker, the
        other slots keep serving). Requests dispatched before a slot's
        swap are scored by the old spec, requests dispatched after by
        the new one; nothing is dropped or reordered within a handle.

        ``self.spec`` is republished first, so a worker that crashes and
        respawns mid-update also comes back on the new spec.

        Raises :class:`DaemonUnavailable` if the daemon is not running
        or a replacement worker cannot be spawned (the daemon is then
        closing and the caller should fall back to single-process
        scoring).
        """
        if not self._started or self._closing:
            raise DaemonUnavailable("daemon is not running")
        n_cols = int(new_spec.layers[0][1].shape[0])
        if n_cols != self._n_cols:
            raise ValueError(
                f"new spec expects {n_cols} features but the daemon was "
                f"started with {self._n_cols}"
            )
        with self._lock:
            self.spec = new_spec
        for slot in self._slots:
            self._replace_worker(slot, timeout)
        self.telemetry.increment("serve.daemon.spec_updates")
        self.telemetry.record_event(
            "serve.daemon.spec_update", n_workers=len(self._slots)
        )

    def _replace_worker(self, slot: _WorkerSlot, timeout: float) -> None:
        """Drain one slot and respawn its worker on the current spec."""
        deadline = time.monotonic() + timeout
        with self._lock:
            while not self._closing and (slot.busy or slot.inflight):
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._work_cv.wait(timeout=remaining):
                    raise DaemonUnavailable(
                        f"worker {slot.index} did not drain within {timeout}s"
                    )
            if self._closing:
                raise DaemonUnavailable("daemon closed during spec update")
            slot.busy = True       # reserve: dispatcher skips this slot
            slot.updating = True   # collector parks, crash handling defers
        old_process = slot.process
        old_req, old_resp = slot.req_ring, slot.resp_ring
        try:
            if old_req is not None:
                try:
                    old_req.try_write(b"", kind=KIND_SHUTDOWN)
                except (RingClosed, ValueError):
                    pass
            if old_process is not None:
                old_process.join(timeout=5.0)
                if old_process.is_alive():
                    old_process.terminate()
                    old_process.join(timeout=2.0)
                if old_process.is_alive():
                    old_process.kill()
                    old_process.join(timeout=1.0)
            for ring in (old_req, old_resp):
                if ring is not None:
                    ring.close()
                    ring.release()
            with self._lock:
                slot.req_ring = slot.resp_ring = None
                self._spawn_worker(slot)   # uses the republished self.spec
                slot.generation += 1
        except Exception as exc:
            with self._lock:
                self._closing = True
                slot.updating = False
                self._work_cv.notify_all()
            raise DaemonUnavailable(
                f"cannot respawn worker {slot.index} on the new spec: {exc}"
            ) from exc
        finally:
            with self._lock:
                slot.updating = False
                self._work_cv.notify_all()

    def close(self) -> None:
        """Stop workers, unlink shared memory, fail pending requests."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            pending = list(self._pending)
            self._pending.clear()
            self._pending_rows = 0
            inflight = [d for slot in self._slots for d in slot.inflight]
            self._work_cv.notify_all()
        for dispatch in inflight:
            for request in dispatch.requests:
                request.finish(error=DaemonUnavailable("daemon closed"))
        for request in pending:
            request.finish(error=DaemonUnavailable("daemon closed"))
        for slot in self._slots:
            if slot.req_ring is not None:
                try:
                    slot.req_ring.try_write(b"", kind=KIND_SHUTDOWN)
                except (RingClosed, ValueError):
                    pass
                slot.req_ring.close()
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=2.0)
        for slot in self._slots:
            process = slot.process
            if process is not None:
                process.join(timeout=2.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=1.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=1.0)
        self._teardown()

    def _teardown(self) -> None:
        for slot in self._slots:
            for ring in (slot.req_ring, slot.resp_ring):
                if ring is not None:
                    ring.close()
                    ring.release()
            slot.req_ring = slot.resp_ring = None

    def __enter__(self) -> "ServingDaemon":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- client side ----------------------------------------------------
    def submit(self, X: np.ndarray, coalesce: bool = True) -> _Request:
        """Enqueue one batch; returns a handle with ``result(timeout)``.

        ``coalesce=False`` pins the request to its own dispatch — the
        dispatcher never fuses it with neighbours. Striped executors use
        this to spread one batch's slices across idle workers.
        """
        if not self._started or self._closing:
            raise DaemonUnavailable("daemon is not running")
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self._n_cols:
            raise ValueError(
                f"daemon expects (n, {self._n_cols}) batches; got {X.shape}"
            )
        request = _Request(X, coalesce=coalesce)
        with self._lock:
            if self._closing:
                raise DaemonUnavailable("daemon is closing")
            self._pending.append(request)
            self._pending_rows += len(X)
            if self.telemetry.enabled:
                self.telemetry.increment("serve.daemon.requests")
                self.telemetry.increment("serve.daemon.rows", len(X))
                self.telemetry.set_gauge(
                    "serve.daemon.queue_depth", len(self._pending)
                )
            self._work_cv.notify()
        return request

    def score(self, X: np.ndarray,
              timeout: Optional[float] = 60.0) -> Tuple[np.ndarray, np.ndarray]:
        """Synchronous :meth:`submit` + wait; the pipeline's entry point."""
        if len(np.asarray(X)) == 0:
            return (np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64))
        return self.submit(X).result(timeout)

    # -- dispatcher -----------------------------------------------------
    def _idle_slot(self) -> Optional[_WorkerSlot]:
        for slot in self._slots:
            if not slot.busy:
                return slot
        return None

    def _effective_ceiling(self) -> int:
        """Coalescing ceiling for the next dispatch (caller holds the lock).

        Fixed ``max_batch_rows`` unless ``adaptive_batch`` is on, in
        which case the queued rows are spread over the currently idle
        workers: ``ceil(pending_rows / idle)`` clamped to
        ``[min_batch_rows, max_batch_rows]``. Deep single-worker queues
        therefore still fuse up to the maximum, while a multi-worker
        daemon under moderate load hands each idle worker a share
        instead of fusing the whole queue into one dispatch.
        """
        if not self.adaptive_batch:
            return self.max_batch_rows
        n_idle = sum(1 for slot in self._slots if not slot.busy)
        target = -(-self._pending_rows // max(n_idle, 1))  # ceil division
        ceiling = max(self.min_batch_rows, min(self.max_batch_rows, target))
        if self.telemetry.enabled:
            self.telemetry.set_gauge("serve.daemon.batch_ceiling", float(ceiling))
        return ceiling

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while not self._closing and (
                    not self._pending or self._idle_slot() is None
                ):
                    self._work_cv.wait()
                if self._closing:
                    return
                slot = self._idle_slot()
                ceiling = self._effective_ceiling()
                requests = [self._pending.popleft()]
                rows = len(requests[0].X)
                while (
                    requests[0].coalesce
                    and self._pending
                    and self._pending[0].coalesce
                    and rows + len(self._pending[0].X) <= ceiling
                ):
                    request = self._pending.popleft()
                    rows += len(request.X)
                    requests.append(request)
                self._pending_rows -= rows
                dispatch = _Dispatch(self._next_dispatch, requests)
                self._next_dispatch += 1
                slot.busy = True
                slot.inflight.append(dispatch)
            self._send(slot, dispatch)

    def _send(self, slot: _WorkerSlot, dispatch: _Dispatch) -> None:
        requests = dispatch.requests
        if len(requests) == 1:
            X = requests[0].X
        else:
            X = np.concatenate([r.X for r in requests])
        payload = _REQ_HEADER.pack(dispatch.dispatch_id, len(X), self._n_cols)
        try:
            slot.req_ring.write(payload + X.tobytes(), kind=KIND_DATA,
                                timeout=30.0)
        except Exception as exc:
            with self._lock:
                if dispatch in slot.inflight:
                    slot.inflight.remove(dispatch)
                slot.busy = False
                self._work_cv.notify_all()
            for request in requests:
                request.finish(error=DaemonUnavailable(
                    f"cannot write to worker ring: {exc}"
                ))
            return
        if self.telemetry.enabled:
            self.telemetry.increment("serve.daemon.dispatches")
            if len(requests) > 1:
                self.telemetry.increment(
                    "serve.daemon.coalesced", len(requests) - 1
                )

    # -- collectors -----------------------------------------------------
    def _collect_loop(self, slot: _WorkerSlot) -> None:
        generation = slot.generation
        while True:
            ring = slot.resp_ring
            if self._closing:
                return
            if ring is None or slot.generation != generation:
                generation = self._await_update(slot, generation)
                if generation is None:
                    return
                continue
            try:
                # Zero-copy result read: the frame is parsed directly
                # from the ring's exported memoryview inside the
                # read_view block; only the final per-request arrays are
                # copied out before the frame slot is recycled.
                with ring.read_view(timeout=_POLL_SECONDS) as (kind, payload):
                    self._complete(slot, kind, payload)
            except RingEmpty:
                if self._closing:
                    return
                process = slot.process
                if (not slot.updating and process is not None
                        and not process.is_alive()):
                    self._handle_crash(slot)
                    if self._closing:
                        return
                continue
            except (RingClosed, ValueError):
                # The ring died under us: either close()/_handle_crash
                # released it (shutdown race, not corruption) or
                # update_spec is replacing this slot's worker. Park for
                # the update; exit on shutdown.
                generation = self._await_update(slot, generation)
                if generation is None:
                    return
                continue

    def _await_update(self, slot: _WorkerSlot, generation: int) -> Optional[int]:
        """Wait out an in-progress spec update on ``slot``.

        Returns the slot's new generation when the update produced a
        fresh ring to collect from, or ``None`` when the collector
        should exit (daemon closing, ring gone, or the ring died without
        a spec update — i.e. an ordinary shutdown race).
        """
        with self._lock:
            while slot.updating and not self._closing:
                self._work_cv.wait()
            if self._closing or slot.resp_ring is None:
                return None
            if slot.generation == generation:
                return None
            return slot.generation

    def _complete(self, slot: _WorkerSlot, kind: int, payload) -> None:
        """Parse one result frame and finish its dispatch's requests.

        ``payload`` is normally a :class:`memoryview` directly into the
        response ring (no intermediate copy — the zero-copy result
        path); only when the frame wraps the physical end of the ring is
        it a copied ``bytes``. Either way the per-request score/routing
        arrays handed to waiters are materialized here, because the ring
        slot is recycled the moment the caller's ``read_view`` exits.
        """
        dispatch_id, n_rows = _RES_HEADER.unpack_from(payload)
        with self._lock:
            dispatch = slot.inflight.popleft() if slot.inflight else None
            slot.busy = False
            self._work_cv.notify_all()
        if dispatch is None or dispatch.dispatch_id != dispatch_id:
            # Protocol desync — should be impossible on an SPSC ring.
            self.telemetry.increment("serve.daemon.desyncs")
            return
        if self.telemetry.enabled:
            self.telemetry.increment(
                "serve.daemon.zero_copy_reads"
                if isinstance(payload, memoryview)
                else "serve.daemon.copied_reads"
            )
        if kind == KIND_ERROR:
            try:
                error = pickle.loads(payload[_RES_HEADER.size:])
            except Exception:
                error = RuntimeError("worker fault (unpicklable exception)")
            self.telemetry.increment("serve.daemon.faults")
            for request in dispatch.requests:
                request.finish(error=error)
            return
        offset = _RES_HEADER.size
        scores = np.frombuffer(payload, dtype=np.float64, count=n_rows,
                               offset=offset)
        routing = np.frombuffer(payload, dtype=np.int64, count=n_rows,
                                offset=offset + n_rows * 8)
        if len(dispatch.requests) == 1:
            parts = [(scores, routing)]
        else:
            parts = list(zip(np.split(scores, dispatch.splits),
                             np.split(routing, dispatch.splits)))
        for request, (s, r) in zip(dispatch.requests, parts):
            # Copy out of the ring-backed buffer before the frame slot
            # is recycled; these arrays are the caller's to keep.
            request.finish(scores=s.copy(), routing=r.copy())
        if self.telemetry.enabled:
            self._record_latencies(dispatch)

    def _record_latencies(self, dispatch: _Dispatch) -> None:
        with self._lock:  # collectors of several workers share the window
            for request in dispatch.requests:
                latency = request.latency
                self.telemetry.observe("serve.daemon.request", latency)
                self._latency_window.append(latency)
            window = np.fromiter(self._latency_window, dtype=np.float64)
        p50, p95, p99 = np.percentile(window, (50, 95, 99)) * 1e3
        self.telemetry.set_gauge("serve.daemon.latency_p50_ms", float(p50))
        self.telemetry.set_gauge("serve.daemon.latency_p95_ms", float(p95))
        self.telemetry.set_gauge("serve.daemon.latency_p99_ms", float(p99))

    # -- crash handling -------------------------------------------------
    def _handle_crash(self, slot: _WorkerSlot) -> None:
        """A worker died: fail its in-flight work, respawn it once."""
        with self._lock:
            if self._closing or slot.updating:
                return  # update_spec owns this slot right now
            failed = list(slot.inflight)
            slot.inflight.clear()
            slot.busy = False
            exitcode = slot.process.exitcode if slot.process else None
            for ring in (slot.req_ring, slot.resp_ring):
                if ring is not None:
                    ring.close()
                    ring.release()
            slot.req_ring = slot.resp_ring = None
            try:
                self._spawn_worker(slot)
                self.telemetry.increment("serve.daemon.respawns")
                self.telemetry.record_event(
                    "serve.daemon.respawn",
                    worker=slot.index,
                    exitcode=exitcode,
                    n_failed_dispatches=len(failed),
                )
            except Exception as exc:
                # Cannot respawn: the whole daemon is unavailable.
                self._closing = True
                self._work_cv.notify_all()
                self.telemetry.record_event(
                    "serve.daemon.dead", worker=slot.index,
                    error=type(exc).__name__,
                )
            self._work_cv.notify_all()
        for dispatch in failed:
            for request in dispatch.requests:
                request.finish(error=DaemonUnavailable(
                    f"worker {slot.index} died (exit {exitcode}) mid-batch"
                ))

    # -- introspection --------------------------------------------------
    def slo_snapshot(self) -> dict:
        """Current latency SLO gauges (ms) plus request/dispatch counts."""
        gauges = self.telemetry.gauges if self.telemetry.enabled else {}
        counters = self.telemetry.counters if self.telemetry.enabled else {}
        return {
            "p50_ms": gauges.get("serve.daemon.latency_p50_ms", 0.0),
            "p95_ms": gauges.get("serve.daemon.latency_p95_ms", 0.0),
            "p99_ms": gauges.get("serve.daemon.latency_p99_ms", 0.0),
            "requests": counters.get("serve.daemon.requests", 0.0),
            "dispatches": counters.get("serve.daemon.dispatches", 0.0),
            "coalesced": counters.get("serve.daemon.coalesced", 0.0),
            "respawns": counters.get("serve.daemon.respawns", 0.0),
        }
