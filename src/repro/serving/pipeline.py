"""Batch scoring pipeline around a fitted TargAD.

Calibrates an operating threshold on a validation split (best-F1, target-
recall, or review-budget policy), then processes live batches: sanitize,
score, route into normal / target / non-target via the tri-class rule,
check for covariate drift, and emit a structured :class:`AlertBatch` for
the downstream queue.

The pipeline is guarded for production: rows that cannot be scored
(non-finite values, wrong width in a ragged payload) are quarantined
instead of crashing the batch, and the primary scorer sits behind a
:class:`~repro.resilience.breaker.CircuitBreaker`. When the primary
faults repeatedly — raises, or emits non-finite scores — the breaker
trips and batches are scored by the degraded
:class:`~repro.resilience.fallback.ReconstructionFallback` until a
half-open probe succeeds. Degraded results are annotated as such; the
queue never silently mixes primary and fallback scores.

Execution is delegated to a
:class:`~repro.serving.executor.FallbackChain` of
:class:`~repro.serving.executor.Executor` adapters (daemon → sharded →
inline). The chain owns per-path eligibility, infrastructure-failure
demotion, and the spec-push/rollback surface for model hot-swaps, so
this module contains no executor-type-specific branches: ``process``
scores through ``chain.score`` and ``swap_model`` pushes and rolls back
through ``chain.push_spec`` / ``chain.reset`` regardless of which
execution paths are configured.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

import numpy as np

from repro.core.model import TargAD
from repro.data.schema import KIND_NONTARGET, KIND_NORMAL, KIND_TARGET
from repro.nn.inference import evict_plan, plan_cache_stats
from repro.eval.thresholds import best_f1_threshold, budget_threshold, recall_threshold
from repro.obs import ensure_telemetry
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.errors import SwapError
from repro.resilience.fallback import ReconstructionFallback
from repro.resilience.sanitize import expected_width, sanitize_batch
from repro.serving.daemon import ServingDaemon
from repro.serving.drift import DriftMonitor, DriftReport
from repro.serving.executor import (
    DaemonExecutor,
    FallbackChain,
    InlineExecutor,
    ShardedExecutor,
    StripedDaemonExecutor,
)
from repro.serving.sharding import ScoringSpec, build_scoring_spec

#: Routing code for rows that were quarantined before scoring.
ROUTE_QUARANTINED = -1

#: Named chain presets accepted by the ``executor=`` knob.
EXECUTOR_PRESETS = ("inline", "sharded", "daemon", "striped_daemon")


@dataclass
class _StagedGeneration:
    """Everything a new model generation needs, computed off the hot path.

    Built by ``swap_model`` *before* any live state is touched, so a
    staging failure (bad candidate, injected fault) leaves the serving
    generation byte-for-byte untouched.
    """

    model: TargAD
    threshold: float
    monitor: Optional[DriftMonitor]
    fallback: ReconstructionFallback
    spec: Optional[ScoringSpec]


@dataclass
class AlertBatch:
    """Structured scoring result for one batch.

    ``alerts`` indexes rows whose score crossed the calibrated threshold,
    ordered by decreasing score (the analyst queue order). ``routing``
    carries the tri-class decision per row, with
    :data:`ROUTE_QUARANTINED` marking rows that were never scored; their
    ``scores`` entry is NaN. All index arrays refer to positions in the
    *original* incoming batch.
    """

    scores: np.ndarray
    alerts: np.ndarray
    routing: np.ndarray
    threshold: float
    drift: Optional[DriftReport] = None
    deferred: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    quarantined: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    degraded: bool = False

    @property
    def n_alerts(self) -> int:
        return len(self.alerts)

    @property
    def scored(self) -> np.ndarray:
        """Indices of rows that were actually scored (not quarantined)."""
        return np.flatnonzero(self.routing != ROUTE_QUARANTINED)

    def summary(self) -> str:
        parts = [
            f"{len(self.scored)} scored",
            f"{self.n_alerts} alert(s) >= {self.threshold:.3f}",
            f"{len(self.deferred)} deferred (non-target)",
        ]
        if len(self.quarantined):
            parts.append(f"{len(self.quarantined)} quarantined")
        if self.degraded:
            parts.append("DEGRADED (fallback scorer)")
        if self.drift is not None:
            parts.append(self.drift.summary())
        return "; ".join(parts)


class ScoringPipeline:
    """Operational wrapper: calibrated thresholding + routing + drift.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.TargAD`.
    policy:
        Threshold policy: "f1" (best validation F1), "recall" (loosest
        threshold reaching ``target_recall``), or "budget" (top
        ``review_budget`` instances per calibration batch).
    strategy:
        OOD strategy for the tri-class routing ("msp" / "es" / "ed").
    monitor_drift:
        Attach a :class:`DriftMonitor` over the training features.
    circuit_breaker:
        Breaker guarding the primary scorer; defaults to a
        :class:`~repro.resilience.breaker.CircuitBreaker` wired to this
        pipeline's telemetry. Pass one explicitly to control thresholds,
        cooldown, or the clock (tests use a ``ManualClock``).
    fallback:
        Degraded-mode scorer used while the breaker is open. Defaults to
        a :class:`~repro.resilience.fallback.ReconstructionFallback`
        calibrated during :meth:`calibrate` to alert on the same traffic
        fraction as the primary threshold.
    telemetry:
        Optional :class:`~repro.obs.TelemetryRegistry`; records the
        ``serve.*`` series — per-batch process latency, alert/deferred
        counts, and a drift-event counter — plus the ``resilience.*``
        series (quarantine counts, scoring faults, breaker transitions,
        degraded batches). Executors additionally record their own
        series (``serve.shard``/``serve.shards``, ``serve.daemon.*``,
        ``serve.executor.demotions``) and the pipeline mirrors the
        ``serve.plan_cache.*`` hit/miss/invalidation deltas observed
        around each batch. ``None`` = no-op.
    executor:
        Named chain preset, the front door to the execution layer:
        ``"inline"`` (single-process only), ``"sharded"`` (per-batch
        shard pool, ``shard_workers`` or 2), ``"daemon"`` (always-on
        worker daemon), or ``"striped_daemon"`` (daemon with large
        batches striped across idle workers). ``None`` (default) derives
        the chain from the ``daemon``/``shard_workers`` knobs below.
        Whatever the preset, the chain always ends in the inline
        executor, so scoring survives any infrastructure failure.
    shard_workers:
        Number of worker processes for row-sharded scoring; ``0``
        (default) keeps scoring single-process. Batches with at least
        ``min_shard_rows`` sanitized rows are split into contiguous
        shards scored in parallel (see :mod:`repro.serving.sharding`)
        and merged in input order — output is identical to the
        single-process path. If the pool cannot be created or breaks
        down, its executor disables itself for the pipeline's lifetime
        and the batch demotes down the chain (never counted as a scorer
        fault by the circuit breaker).
    min_shard_rows:
        Smallest batch worth sharding; below it the per-shard IPC cost
        dominates and the single-process fast path wins.
    shard_start_method:
        Multiprocessing start method for the pool (``None`` prefers
        ``"fork"`` when available).
    daemon:
        Opt-in always-on serving daemon
        (:class:`~repro.serving.daemon.ServingDaemon`). ``True`` builds
        one lazily from this pipeline's model (``daemon_workers``
        workers, shared-memory ring transport, micro-batching); a
        pre-started instance is used as-is (and then *not* closed by
        :meth:`close` — the caller owns its lifecycle, e.g. when several
        pipelines share one daemon). When the daemon cannot start
        (shared memory unavailable) its executor disables itself and the
        chain serves without it; a transiently unavailable daemon
        (worker crash mid-respawn) demotes that batch only. Neither
        counts as a scorer fault to the circuit breaker — worker *model*
        faults do, exactly like sharded faults.
    daemon_workers:
        Worker processes for an auto-built daemon.
    daemon_batch_rows:
        Micro-batching ceiling for the auto-built daemon.
    adaptive_batch:
        Tune the daemon's coalescing ceiling per dispatch from its
        admission queue (rows queued / idle workers, clamped to
        ``[daemon_min_batch_rows, daemon_batch_rows]``) instead of
        always fusing up to the fixed ceiling.
    daemon_min_batch_rows:
        Adaptive-mode floor for the coalescing ceiling.
    stripe_min_rows:
        ``executor="striped_daemon"`` only: smallest batch worth
        splitting across idle daemon workers; smaller batches take the
        plain daemon path.
    """

    def __init__(
        self,
        model: TargAD,
        policy: str = "f1",
        target_recall: float = 0.9,
        review_budget: int = 100,
        strategy: str = "ed",
        monitor_drift: bool = True,
        drift_threshold: float = 0.2,
        circuit_breaker: Optional[CircuitBreaker] = None,
        fallback: Optional[ReconstructionFallback] = None,
        telemetry=None,
        executor: Optional[str] = None,
        shard_workers: int = 0,
        min_shard_rows: int = 8192,
        shard_start_method: Optional[str] = None,
        daemon=None,
        daemon_workers: int = 1,
        daemon_batch_rows: int = 8192,
        adaptive_batch: bool = False,
        daemon_min_batch_rows: int = 64,
        stripe_min_rows: int = 1024,
    ):
        if policy not in ("f1", "recall", "budget"):
            raise ValueError('policy must be "f1", "recall", or "budget"')
        if policy == "budget" and review_budget < 1:
            raise ValueError(
                f'policy "budget" needs a positive review capacity; got '
                f"review_budget={review_budget}. Set review_budget >= 1 (the "
                "number of instances analysts can review per batch)."
            )
        model._check_fitted()
        self.model = model
        self.telemetry = ensure_telemetry(telemetry)
        self.policy = policy
        self.target_recall = target_recall
        self.review_budget = review_budget
        self.strategy = strategy
        self.threshold_: Optional[float] = None
        self._monitor: Optional[DriftMonitor] = None
        self._monitor_enabled = monitor_drift
        self._drift_threshold = drift_threshold
        self._n_features = expected_width(model)
        self.circuit_breaker = (
            circuit_breaker
            if circuit_breaker is not None
            else CircuitBreaker(telemetry=self.telemetry, name="serve")
        )
        self.fallback = fallback
        if executor is not None and executor not in EXECUTOR_PRESETS:
            raise ValueError(
                f"executor must be one of {EXECUTOR_PRESETS}; got {executor!r}"
            )
        if shard_workers < 0:
            raise ValueError("shard_workers must be >= 0")
        if min_shard_rows < 1:
            raise ValueError("min_shard_rows must be >= 1")
        if daemon_workers < 1:
            raise ValueError("daemon_workers must be >= 1")
        self.executor = executor
        self.shard_workers = int(shard_workers)
        self.min_shard_rows = int(min_shard_rows)
        self.shard_start_method = shard_start_method
        self.daemon_workers = int(daemon_workers)
        self.daemon_batch_rows = int(daemon_batch_rows)
        self.adaptive_batch = bool(adaptive_batch)
        self.daemon_min_batch_rows = int(daemon_min_batch_rows)
        self.stripe_min_rows = int(stripe_min_rows)
        self.chain = self._build_chain(daemon, executor)
        #: Model-generation counter; bumped by each successful hot swap.
        self.generation = 0
        # Serializes process() against swap_model(): a batch always sees
        # one coherent (model, threshold, monitor, fallback, workers)
        # generation. Re-entrant so the swap can call helpers that also
        # take it.
        self._swap_lock = threading.RLock()

    # -- execution chain --------------------------------------------------
    def _spec_factory(self) -> ScoringSpec:
        """Spec for worker executors, always from the *current* model."""
        return build_scoring_spec(self.model, self.strategy)

    def _build_chain(self, daemon, preset: Optional[str]) -> FallbackChain:
        """Assemble the executor chain: daemon → sharded → inline.

        With ``preset=None`` the chain is derived from the legacy
        ``daemon``/``shard_workers`` knobs; a named preset pins the top
        of the chain explicitly (``"sharded"`` defaults to two workers
        when ``shard_workers`` was left at 0). The inline executor is
        always the terminal member.
        """
        want_daemon = bool(daemon) or preset in ("daemon", "striped_daemon")
        shard_workers = self.shard_workers
        if preset == "sharded" and shard_workers == 0:
            shard_workers = self.shard_workers = 2
        if preset == "inline":
            want_daemon = False
            shard_workers = 0
        executors = []
        if want_daemon:
            daemon_cls = (
                StripedDaemonExecutor
                if preset == "striped_daemon"
                else DaemonExecutor
            )
            kwargs = dict(
                daemon=daemon if isinstance(daemon, ServingDaemon) else None,
                n_workers=self.daemon_workers,
                batch_rows=self.daemon_batch_rows,
                adaptive_batch=self.adaptive_batch,
                min_batch_rows=self.daemon_min_batch_rows,
                telemetry=self.telemetry,
            )
            if daemon_cls is StripedDaemonExecutor:
                kwargs["stripe_min_rows"] = self.stripe_min_rows
            executors.append(daemon_cls(self._spec_factory, **kwargs))
        if shard_workers > 0:
            executors.append(
                ShardedExecutor(
                    self._spec_factory,
                    shard_workers,
                    min_rows=self.min_shard_rows,
                    start_method=self.shard_start_method,
                    telemetry=self.telemetry,
                )
            )
        executors.append(InlineExecutor(lambda: self.model, self.strategy))
        return FallbackChain(executors, telemetry=self.telemetry)

    # -- executor-internals compatibility surface -------------------------
    # Long-standing private attributes, kept as properties over the chain
    # so operational tooling (and the serving test-suite) that pokes at
    # daemon/sharder internals keeps working after the executor refactor.
    @property
    def _daemon_exec(self) -> Optional[DaemonExecutor]:
        return self.chain.find(DaemonExecutor)

    @property
    def _shard_exec(self) -> Optional[ShardedExecutor]:
        return self.chain.find(ShardedExecutor)

    @property
    def _daemon(self) -> Optional[ServingDaemon]:
        ex = self._daemon_exec
        return ex.daemon if ex is not None else None

    @_daemon.setter
    def _daemon(self, value: Optional[ServingDaemon]) -> None:
        ex = self._daemon_exec
        if ex is None:
            ex = DaemonExecutor(
                self._spec_factory,
                daemon=value,
                n_workers=self.daemon_workers,
                batch_rows=self.daemon_batch_rows,
                telemetry=self.telemetry,
            )
            self.chain.executors.insert(0, ex)
            return
        if ex._owned and ex._daemon is not None and ex._daemon is not value:
            ex._daemon.close()
        ex._daemon = value
        ex._owned = False

    @property
    def _daemon_owned(self) -> bool:
        ex = self._daemon_exec
        return ex is not None and ex._owned

    @_daemon_owned.setter
    def _daemon_owned(self, value: bool) -> None:
        ex = self._daemon_exec
        if ex is not None:
            ex._owned = bool(value)

    @property
    def _daemon_enabled(self) -> bool:
        return self._daemon_exec is not None

    @property
    def _daemon_disabled(self) -> bool:
        ex = self._daemon_exec
        return ex is not None and not ex.alive

    @property
    def _sharder(self):
        ex = self._shard_exec
        return ex._sharder if ex is not None else None

    @_sharder.setter
    def _sharder(self, value) -> None:
        ex = self._shard_exec
        if ex is None:
            ex = ShardedExecutor(
                self._spec_factory,
                getattr(value, "n_workers", 1) or 1,
                min_rows=self.min_shard_rows,
                start_method=self.shard_start_method,
                telemetry=self.telemetry,
            )
            self.chain.executors.insert(len(self.chain.executors) - 1, ex)
        elif ex._sharder is not None and ex._sharder is not value:
            ex._sharder.close()
        ex._sharder = value

    @property
    def _sharding_disabled(self) -> bool:
        ex = self._shard_exec
        return ex is not None and not ex.alive

    @property
    def _last_n_shards(self) -> int:
        return int(self.chain.last_tags.get("n_shards", 0))

    def calibrate(
        self,
        X_val: np.ndarray,
        y_val: Optional[np.ndarray] = None,
        X_reference: Optional[np.ndarray] = None,
    ) -> "ScoringPipeline":
        """Pick the operating threshold (and fit drift + fallback scorers).

        ``y_val`` (binary target-anomaly labels) is required for the "f1"
        and "recall" policies and must contain at least one positive;
        "budget" only needs scores.
        """
        scores = self.model.decision_function(X_val)
        self.threshold_ = self._threshold_from_scores(scores, y_val)
        if self._monitor_enabled:
            reference = X_reference if X_reference is not None else X_val
            self._monitor = DriftMonitor(threshold=self._drift_threshold).fit(reference)
        if self.fallback is None or self.fallback.threshold_ is None:
            alert_fraction = float(np.mean(scores >= self.threshold_))
            fallback = self.fallback if self.fallback is not None else (
                ReconstructionFallback(self.model)
            )
            self.fallback = fallback.calibrate(X_val, alert_fraction)
        if self.telemetry.enabled:
            self.telemetry.set_gauge("serve.threshold", float(self.threshold_))
            self.telemetry.record_event(
                "serve.calibrated",
                policy=self.policy,
                threshold=float(self.threshold_),
                n_val=int(len(scores)),
            )
        return self

    def _threshold_from_scores(
        self, scores: np.ndarray, y_val: Optional[np.ndarray]
    ) -> float:
        """Apply the configured threshold policy to validation scores."""
        if self.policy == "budget":
            budget = min(self.review_budget, len(scores))
            return budget_threshold(scores, budget)
        if y_val is None:
            raise ValueError(f'policy "{self.policy}" needs y_val')
        y_val = np.asarray(y_val).ravel()
        if len(y_val) != len(scores):
            raise ValueError(
                f"y_val has {len(y_val)} labels for {len(scores)} validation rows"
            )
        if not np.any(y_val == 1):
            raise ValueError(
                f'policy "{self.policy}" cannot calibrate on a validation '
                "split with zero positive (target-anomaly) labels: every "
                "threshold has undefined recall. Provide a split containing "
                'target anomalies, or use the "budget" policy which needs '
                "no labels."
            )
        if self.policy == "f1":
            threshold, _ = best_f1_threshold(y_val, scores)
            return threshold
        return recall_threshold(y_val, scores, self.target_recall)

    # -- model hot-swap ---------------------------------------------------
    def swap_model(
        self,
        model: TargAD,
        X_val: np.ndarray,
        y_val: Optional[np.ndarray] = None,
        X_reference: Optional[np.ndarray] = None,
        fault_points: Optional[Callable[[str], None]] = None,
    ) -> "ScoringPipeline":
        """Atomically replace the serving model with a new generation.

        Two phases:

        1. **Stage** (off the hot path, old generation keeps serving):
           score the validation split with the candidate, re-apply the
           threshold policy, fit a fresh drift monitor on
           ``X_reference``/``X_val``, calibrate a fresh reconstruction
           fallback at the candidate's alert fraction, and — when any
           executor has a live worker surface — build the candidate's
           :class:`~repro.serving.sharding.ScoringSpec`.
        2. **Flip** (under the swap lock, so no batch ever sees a
           half-swapped pipeline): push the new spec through the
           executor chain into every live worker surface (the daemon's
           rolling respawn, the shard pool's lazy rebuild), then swap
           the model / threshold / monitor / fallback pointers and bump
           ``generation``. The retired network's cached inference plan
           is evicted.

        Any failure — staging, the spec push, or the flip itself —
        restores the previous generation completely (workers included,
        via the chain's uniform ``reset``) and raises
        :class:`~repro.resilience.errors.SwapError`; the circuit breaker
        is never involved, because a swap failure is a control-plane
        problem, not a scoring fault.

        ``fault_points`` is the chaos hook: a callable invoked with the
        phase names ``"stage"``, ``"push"``, ``"flip"`` (see
        :data:`repro.resilience.faultinject.SWAP_PHASES`); whatever it
        raises is handled exactly like a genuine fault in that phase.
        """
        fire = fault_points if fault_points is not None else (lambda phase: None)
        try:
            model._check_fitted()
            width = expected_width(model)
            if width != self._n_features:
                raise ValueError(
                    f"candidate model expects {width} features but the "
                    f"pipeline serves {self._n_features}"
                )
            fire("stage")
            staged = self._stage_generation(model, X_val, y_val, X_reference)
        except Exception as exc:
            self._record_swap_failure("stage", exc)
            raise SwapError(f"swap staging failed: {exc}") from exc

        with self._swap_lock:
            old_model = self.model
            old_state = (self.model, self.threshold_, self._monitor, self.fallback)
            phase = "push"
            try:
                fire("push")
                self.chain.push_spec(
                    staged.spec,
                    lambda: build_scoring_spec(staged.model, self.strategy),
                )
                phase = "flip"
                fire("flip")
                self.model = staged.model
                self.threshold_ = staged.threshold
                self._monitor = staged.monitor
                self.fallback = staged.fallback
                self.generation += 1
            except Exception as exc:
                (self.model, self.threshold_, self._monitor, self.fallback) = old_state
                self.chain.reset()
                self._record_swap_failure(phase, exc)
                raise SwapError(
                    f"swap failed during {phase}; previous generation restored: {exc}"
                ) from exc

        # The retired network will never be scored again on this thread:
        # drop its cached plan (and the strong array refs the cache holds).
        if old_model.network_ is not None:
            evict_plan(old_model.network_)
        if self.telemetry.enabled:
            self.telemetry.increment("serve.swap.success")
            self.telemetry.set_gauge("serve.generation", float(self.generation))
            self.telemetry.set_gauge("serve.threshold", float(self.threshold_))
            self.telemetry.record_event(
                "serve.swap",
                generation=int(self.generation),
                threshold=float(self.threshold_),
            )
        return self

    def _stage_generation(
        self,
        model: TargAD,
        X_val: np.ndarray,
        y_val: Optional[np.ndarray],
        X_reference: Optional[np.ndarray],
    ) -> _StagedGeneration:
        """Compute a candidate generation without touching live state.

        Mirrors :meth:`calibrate` exactly, so a swapped-in generation is
        indistinguishable from a freshly calibrated pipeline on the same
        model and validation split.
        """
        scores = model.decision_function(X_val)
        threshold = self._threshold_from_scores(scores, y_val)
        monitor = None
        if self._monitor_enabled:
            reference = X_reference if X_reference is not None else X_val
            monitor = DriftMonitor(threshold=self._drift_threshold).fit(reference)
        alert_fraction = float(np.mean(scores >= threshold))
        fallback = ReconstructionFallback(model).calibrate(X_val, alert_fraction)
        spec = None
        if self.chain.needs_spec():
            spec = build_scoring_spec(model, self.strategy)
        return _StagedGeneration(
            model=model, threshold=float(threshold), monitor=monitor,
            fallback=fallback, spec=spec,
        )

    def _record_swap_failure(self, phase: str, exc: Exception) -> None:
        self.telemetry.increment("serve.swap.failed")
        self.telemetry.record_event(
            "serve.swap_failed",
            phase=phase,
            error=type(exc).__name__,
            detail=str(exc)[:200],
        )

    def process(self, X_batch: np.ndarray) -> AlertBatch:
        """Score one live batch and build the alert payload.

        Never raises on bad *rows*: non-finite or wrong-length rows are
        quarantined (``routing == ROUTE_QUARANTINED``, ``score == NaN``)
        and the rest of the batch proceeds. A uniform 2-D batch of the
        wrong width still raises — that is a wiring error, not row noise.
        When the primary scorer faults, the circuit breaker routes the
        batch to the degraded fallback scorer instead of propagating the
        exception.

        Thread-safe against :meth:`swap_model`: the batch is scored by
        exactly one model generation (a concurrent swap waits for the
        batch, then the batch after it sees the new generation).
        """
        with self._swap_lock:
            return self._process_one(X_batch)

    def _process_one(self, X_batch: np.ndarray) -> AlertBatch:
        if self.threshold_ is None:
            raise RuntimeError("pipeline is not calibrated; call calibrate() first")
        start = time.perf_counter()
        sanitized = sanitize_batch(X_batch, self._n_features)
        n_total = sanitized.n_total

        scores = np.full(n_total, np.nan, dtype=np.float64)
        routing = np.full(n_total, ROUTE_QUARANTINED, dtype=np.int64)
        degraded = False
        self.chain.begin_batch()
        cache_before = plan_cache_stats() if self.telemetry.enabled else None
        if len(sanitized.kept):
            clean_scores, clean_routing, degraded = self._score_with_guardrails(
                sanitized.X
            )
            scores[sanitized.kept] = clean_scores
            routing[sanitized.kept] = clean_routing
        if cache_before is not None:
            self._record_plan_cache_telemetry(cache_before)

        threshold = (
            float(self.fallback.threshold_) if degraded else float(self.threshold_)
        )
        flagged = np.flatnonzero(
            np.isfinite(scores) & (scores >= threshold) & (routing == KIND_TARGET)
        )
        alerts = flagged[np.argsort(-scores[flagged])]
        deferred = np.flatnonzero(routing == KIND_NONTARGET)

        drift = None
        if self._monitor is not None and len(sanitized.kept):
            drift = self._monitor.check(sanitized.X)
        result = AlertBatch(
            scores=scores,
            alerts=alerts,
            routing=routing,
            threshold=threshold,
            drift=drift,
            deferred=deferred,
            quarantined=sanitized.quarantined,
            degraded=degraded,
        )
        if self.telemetry.enabled:
            self._record_batch_telemetry(result, n_total, time.perf_counter() - start)
        return result

    # -- guarded scoring --------------------------------------------------
    def _score_with_guardrails(
        self, X: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, bool]:
        """Score sanitized rows via the executor chain if the breaker allows.

        Returns ``(scores, routing, degraded)``. The chain handles
        infrastructure demotion internally (never a breaker event); a
        model fault — an exception or non-finite scores — is reported to
        the breaker and the batch falls through to the degraded scorer.
        """
        breaker = self.circuit_breaker
        if breaker.allow():
            try:
                raw_scores, raw_routing = self.chain.score(X)
                scores = np.asarray(raw_scores, dtype=np.float64)
                if scores.shape != (len(X),) or not np.all(np.isfinite(scores)):
                    raise RuntimeError(
                        "primary scorer produced non-finite or misshapen scores"
                    )
                routing = np.asarray(raw_routing, dtype=np.int64)
            except Exception as exc:
                breaker.record_failure()
                self.telemetry.increment("resilience.scoring_faults")
                self.telemetry.record_event(
                    "resilience.scoring_fault",
                    error=type(exc).__name__,
                    detail=str(exc)[:200],
                )
                return self._degraded_scores(X)
            breaker.record_success()
            return scores, routing, False
        return self._degraded_scores(X)

    def close(self) -> None:
        """Release every executor's worker resources. Idempotent.

        Caller-owned daemons are left running — their executor never
        assumed their lifecycle.
        """
        self.chain.close()

    def _degraded_scores(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray, bool]:
        """Score via the reconstruction fallback while the primary is out.

        The fallback cannot tell target from non-target anomalies, so
        everything it flags routes to the analyst queue (``KIND_TARGET``)
        — the conservative failure direction.
        """
        if self.fallback is None or self.fallback.threshold_ is None:
            raise RuntimeError(
                "degraded path needs a calibrated fallback scorer; call "
                "calibrate() first or pass a calibrated fallback="
            )
        scores = self.fallback.score(X)
        routing = np.where(
            scores >= self.fallback.threshold_, KIND_TARGET, KIND_NORMAL
        ).astype(np.int64)
        self.telemetry.increment("resilience.degraded_batches")
        return scores, routing, True

    def _record_plan_cache_telemetry(self, before: dict) -> None:
        """Mirror this batch's plan-cache deltas into ``serve.*`` counters.

        The process-wide cache counters (from
        :func:`repro.nn.inference.plan_cache_stats`) also move under
        training and other pipelines; diffing around the scoring call
        attributes to *this* pipeline only what it caused.
        """
        after = plan_cache_stats()
        for key in ("hits", "misses", "invalidations"):
            delta = after[key] - before[key]
            if delta > 0:
                self.telemetry.increment(f"serve.plan_cache.{key}", delta)

    def _record_batch_telemetry(self, batch: AlertBatch, n_rows: int, seconds: float) -> None:
        """One ``serve.process`` latency sample + counters per batch."""
        self.telemetry.observe("serve.process", seconds)
        self.telemetry.increment("serve.batches")
        self.telemetry.increment("serve.rows", n_rows)
        self.telemetry.increment("serve.alerts", batch.n_alerts)
        self.telemetry.increment("serve.deferred", len(batch.deferred))
        if len(batch.quarantined):
            self.telemetry.increment("resilience.quarantine", len(batch.quarantined))
            self.telemetry.record_event(
                "resilience.quarantined",
                n_rows=int(len(batch.quarantined)),
                n_total=n_rows,
            )
        drifted = batch.drift is not None and batch.drift.drifted
        if batch.drift is not None:
            self.telemetry.increment("drift.checks")
            self.telemetry.set_gauge("drift.max_ks", batch.drift.max_statistic)
        if drifted:
            self.telemetry.increment("drift.events")
            self.telemetry.increment("serve.drift_events")
            self.telemetry.record_event(
                "serve.drift",
                n_features=len(batch.drift.drifted_features),
                max_ks=batch.drift.max_statistic,
            )
        event_fields = dict(
            n=n_rows,
            n_alerts=batch.n_alerts,
            n_deferred=len(batch.deferred),
            n_quarantined=int(len(batch.quarantined)),
            executor=self.chain.last_executor or "none",
            n_shards=int(self.chain.last_tags.get("n_shards", 0)),
            degraded=batch.degraded,
            latency_ms=seconds * 1e3,
            drifted=drifted,
        )
        n_stripes = int(self.chain.last_tags.get("n_stripes", 0))
        if n_stripes:
            event_fields["n_stripes"] = n_stripes
        if drifted:
            event_fields["drift"] = batch.drift.to_dict()
        self.telemetry.record_event("serve.batch", **event_fields)
