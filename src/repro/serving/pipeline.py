"""Batch scoring pipeline around a fitted TargAD.

Calibrates an operating threshold on a validation split (best-F1, target-
recall, or review-budget policy), then processes live batches: score,
route into normal / target / non-target via the tri-class rule, check for
covariate drift, and emit a structured :class:`AlertBatch` for the
downstream queue.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.model import TargAD
from repro.data.schema import KIND_NONTARGET, KIND_NORMAL, KIND_TARGET
from repro.eval.thresholds import best_f1_threshold, budget_threshold, recall_threshold
from repro.obs import ensure_telemetry
from repro.serving.drift import DriftMonitor, DriftReport


@dataclass
class AlertBatch:
    """Structured scoring result for one batch.

    ``alerts`` indexes rows whose score crossed the calibrated threshold,
    ordered by decreasing score (the analyst queue order). ``routing``
    carries the tri-class decision per row.
    """

    scores: np.ndarray
    alerts: np.ndarray
    routing: np.ndarray
    threshold: float
    drift: Optional[DriftReport] = None
    deferred: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    @property
    def n_alerts(self) -> int:
        return len(self.alerts)

    def summary(self) -> str:
        parts = [
            f"{len(self.scores)} scored",
            f"{self.n_alerts} alert(s) >= {self.threshold:.3f}",
            f"{len(self.deferred)} deferred (non-target)",
        ]
        if self.drift is not None:
            parts.append(self.drift.summary())
        return "; ".join(parts)


class ScoringPipeline:
    """Operational wrapper: calibrated thresholding + routing + drift.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.TargAD`.
    policy:
        Threshold policy: "f1" (best validation F1), "recall" (loosest
        threshold reaching ``target_recall``), or "budget" (top
        ``review_budget`` instances per calibration batch).
    strategy:
        OOD strategy for the tri-class routing ("msp" / "es" / "ed").
    monitor_drift:
        Attach a :class:`DriftMonitor` over the training features.
    telemetry:
        Optional :class:`~repro.obs.TelemetryRegistry`; records the
        ``serve.*`` series — per-batch process latency, alert/deferred
        counts, and a drift-event counter. ``None`` = no-op.
    """

    def __init__(
        self,
        model: TargAD,
        policy: str = "f1",
        target_recall: float = 0.9,
        review_budget: int = 100,
        strategy: str = "ed",
        monitor_drift: bool = True,
        drift_threshold: float = 0.2,
        telemetry=None,
    ):
        if policy not in ("f1", "recall", "budget"):
            raise ValueError('policy must be "f1", "recall", or "budget"')
        model._check_fitted()
        self.model = model
        self.telemetry = ensure_telemetry(telemetry)
        self.policy = policy
        self.target_recall = target_recall
        self.review_budget = review_budget
        self.strategy = strategy
        self.threshold_: Optional[float] = None
        self._monitor: Optional[DriftMonitor] = None
        self._monitor_enabled = monitor_drift
        self._drift_threshold = drift_threshold

    def calibrate(
        self,
        X_val: np.ndarray,
        y_val: Optional[np.ndarray] = None,
        X_reference: Optional[np.ndarray] = None,
    ) -> "ScoringPipeline":
        """Pick the operating threshold (and fit the drift reference).

        ``y_val`` (binary target-anomaly labels) is required for the "f1"
        and "recall" policies; "budget" only needs scores.
        """
        scores = self.model.decision_function(X_val)
        if self.policy == "budget":
            budget = min(self.review_budget, len(scores))
            self.threshold_ = budget_threshold(scores, budget)
        else:
            if y_val is None:
                raise ValueError(f'policy "{self.policy}" needs y_val')
            if self.policy == "f1":
                self.threshold_, _ = best_f1_threshold(y_val, scores)
            else:
                self.threshold_ = recall_threshold(y_val, scores, self.target_recall)
        if self._monitor_enabled:
            reference = X_reference if X_reference is not None else X_val
            self._monitor = DriftMonitor(threshold=self._drift_threshold).fit(reference)
        if self.telemetry.enabled:
            self.telemetry.set_gauge("serve.threshold", float(self.threshold_))
            self.telemetry.record_event(
                "serve.calibrated",
                policy=self.policy,
                threshold=float(self.threshold_),
                n_val=int(len(scores)),
            )
        return self

    def process(self, X_batch: np.ndarray) -> AlertBatch:
        """Score one live batch and build the alert payload."""
        if self.threshold_ is None:
            raise RuntimeError("pipeline is not calibrated; call calibrate() first")
        start = time.perf_counter()
        X_batch = np.asarray(X_batch, dtype=np.float64)
        scores = self.model.decision_function(X_batch)
        routing = self.model.predict_triclass(X_batch, strategy=self.strategy)

        flagged = np.flatnonzero((scores >= self.threshold_) & (routing == KIND_TARGET))
        alerts = flagged[np.argsort(-scores[flagged])]
        deferred = np.flatnonzero(routing == KIND_NONTARGET)

        drift = self._monitor.check(X_batch) if self._monitor is not None else None
        result = AlertBatch(
            scores=scores,
            alerts=alerts,
            routing=routing,
            threshold=float(self.threshold_),
            drift=drift,
            deferred=deferred,
        )
        if self.telemetry.enabled:
            self._record_batch_telemetry(result, len(X_batch), time.perf_counter() - start)
        return result

    def _record_batch_telemetry(self, batch: AlertBatch, n_rows: int, seconds: float) -> None:
        """One ``serve.process`` latency sample + counters per batch."""
        self.telemetry.observe("serve.process", seconds)
        self.telemetry.increment("serve.batches")
        self.telemetry.increment("serve.rows", n_rows)
        self.telemetry.increment("serve.alerts", batch.n_alerts)
        self.telemetry.increment("serve.deferred", len(batch.deferred))
        drifted = batch.drift is not None and batch.drift.drifted
        if drifted:
            self.telemetry.increment("serve.drift_events")
            self.telemetry.record_event(
                "serve.drift",
                n_features=len(batch.drift.drifted_features),
                max_ks=batch.drift.max_statistic,
            )
        self.telemetry.record_event(
            "serve.batch",
            n=n_rows,
            n_alerts=batch.n_alerts,
            n_deferred=len(batch.deferred),
            latency_ms=seconds * 1e3,
            drifted=drifted,
        )
