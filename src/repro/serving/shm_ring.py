"""Shared-memory SPSC ring buffer for the serving daemon's transport.

One :class:`ShmRing` is a single-producer / single-consumer byte ring
over a ``multiprocessing.shared_memory`` segment. The daemon uses two
per worker — requests flow parent → worker, results worker → parent —
so each ring always has exactly one writer process and one reader
process, which is what makes the lock-free counter protocol sound.

Layout of the segment::

    offset 0   u64  write counter   (monotonic bytes published; writer-owned)
    offset 8   u64  read counter    (monotonic bytes consumed; reader-owned)
    offset 16  u8   closed flag     (either side may set it)
    offset 24  ...  data region of ``capacity`` bytes (frames wrap freely)

Frames are slot-framed with sequence numbers::

    u32 magic  (0x52494E47, "RING")   u32 seq   u32 length   u32 kind
    <length payload bytes>

The counters never wrap: a position in the data region is ``counter %
capacity``, free space is ``capacity - (write - read)``. The writer
copies the frame (possibly split across the physical end of the region)
*before* publishing the new write counter, so the reader never observes
a half-written frame; the reader consumes the payload before publishing
the new read counter, so the writer never overwrites unread bytes.
Sequence numbers increase by one per frame on the writer side and are
verified on the reader side — a gap or a bad magic word raises
:class:`RingCorruption` instead of silently mis-framing.

Backpressure is explicit: :meth:`ShmRing.write` on a full ring and
:meth:`ShmRing.read` on an empty one spin-wait (escalating short
sleeps), honouring ``timeout`` and the closed flag, and the ``try_``
variants never block at all — the property tests drive those through
arbitrary interleavings.

Lifecycle: the *creating* process owns the segment and is the only one
that may :meth:`unlink` it (a pid-guarded ``weakref.finalize`` backstops
leaks even on unclean teardown — a forked child inheriting the object
will not unlink the parent's segment). Attaching workers are children of
the creator and share its ``resource_tracker``, so their attach-side
registration dedupes into the creator's entry and the creator's single
``unlink`` settles the books — no per-attach deregistration needed.
"""

from __future__ import annotations

import contextlib
import os
import struct
import time
import weakref
from typing import Iterator, Optional, Tuple

_U64 = struct.Struct("<Q")
_HEADER = struct.Struct("<IIII")  # magic, seq, length, kind
HEADER_BYTES = _HEADER.size
MAGIC = 0x52494E47  # "RING"

#: Start of the data region (counters + closed flag, padded to 8 bytes).
_DATA_OFFSET = 24
_WRITE_OFFSET = 0
_READ_OFFSET = 8
_CLOSED_OFFSET = 16

#: Frame kinds used by the daemon protocol (callers may define more).
KIND_DATA = 0
KIND_RESULT = 1
KIND_ERROR = 2
KIND_SHUTDOWN = 3

#: Spin-wait schedule: yield first (latency), then escalate (CPU).
_BACKOFF_FAST = 64
_BACKOFF_SLEEP = 200e-6


class RingClosed(RuntimeError):
    """The ring was closed by the peer (and, for reads, fully drained)."""


class RingFull(RuntimeError):
    """A bounded-wait write timed out against full-ring backpressure."""


class RingEmpty(RuntimeError):
    """A bounded-wait read timed out on an empty ring."""


class RingCorruption(RuntimeError):
    """Frame framing broke: bad magic, impossible length, or a seq gap."""


class ShmRing:
    """One direction of shared-memory transport. See the module docstring.

    Use :meth:`create` in the owning process and :meth:`attach` (with the
    creator's ``name`` and ``capacity``) in the peer; the constructor is
    internal.
    """

    def __init__(self, shm, capacity: int, owner: bool):
        self._shm = shm
        self.capacity = int(capacity)
        self.name = shm.name
        self._owner = owner
        self._buf = shm.buf
        self._data = shm.buf[_DATA_OFFSET:_DATA_OFFSET + self.capacity]
        self._next_seq = 0        # writer-side state
        self._expected_seq = 0    # reader-side state
        self._released = False
        # Backstop cleanup guarded by pid: a forked child inheriting this
        # object must never unlink the parent's live segment. The data
        # view rides along so a ring dropped without release() has its
        # exported memoryview released before SharedMemory.close() runs
        # (otherwise __del__ raises BufferError on the exported pointer).
        self._finalizer = weakref.finalize(
            self, _finalize_segment, shm, self._data,
            os.getpid() if owner else None,
        )

    # -- construction ---------------------------------------------------
    @classmethod
    def create(cls, capacity: int) -> "ShmRing":
        """Allocate a fresh ring; the calling process owns the segment."""
        from multiprocessing import shared_memory

        if capacity < HEADER_BYTES + 1:
            raise ValueError(f"capacity must exceed one frame header; got {capacity}")
        shm = shared_memory.SharedMemory(create=True, size=_DATA_OFFSET + capacity)
        shm.buf[:_DATA_OFFSET] = bytes(_DATA_OFFSET)
        return cls(shm, capacity, owner=True)

    @classmethod
    def attach(cls, name: str, capacity: int) -> "ShmRing":
        """Attach to a ring created elsewhere (workers call this).

        Daemon workers are children of the creator, so they share its
        ``resource_tracker`` process: the attach-side ``register`` call
        inside ``SharedMemory`` dedupes into the same tracker entry the
        creator made, and the creator's ``unlink`` clears it exactly
        once. (Explicitly unregistering here would *remove* the
        creator's entry and leave the tracker confused at unlink time.)
        """
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, capacity, owner=False)

    # -- counters -------------------------------------------------------
    def _load(self, offset: int) -> int:
        return _U64.unpack_from(self._buf, offset)[0]

    def _store(self, offset: int, value: int) -> None:
        _U64.pack_into(self._buf, offset, value)

    @property
    def closed(self) -> bool:
        return self._buf[_CLOSED_OFFSET] != 0

    def close(self) -> None:
        """Mark the ring closed (both sides observe it). Idempotent."""
        if not self._released:
            self._buf[_CLOSED_OFFSET] = 1

    def pending(self) -> int:
        """Bytes currently published but not yet consumed."""
        return self._load(_WRITE_OFFSET) - self._load(_READ_OFFSET)

    def free_bytes(self) -> int:
        return self.capacity - self.pending()

    # -- byte movement (wrap-aware) -------------------------------------
    def _put(self, pos: int, payload) -> None:
        pos %= self.capacity
        first = min(len(payload), self.capacity - pos)
        self._data[pos:pos + first] = payload[:first]
        if first < len(payload):
            self._data[:len(payload) - first] = payload[first:]

    def _get(self, pos: int, length: int) -> bytes:
        pos %= self.capacity
        first = min(length, self.capacity - pos)
        chunk = bytes(self._data[pos:pos + first])
        if first < length:
            chunk += bytes(self._data[:length - first])
        return chunk

    # -- write side -----------------------------------------------------
    def try_write(self, payload, kind: int = KIND_DATA) -> bool:
        """Publish one frame if it fits; never blocks.

        Returns ``True`` on success, ``False`` under backpressure.
        Raises :class:`RingClosed` if the peer closed the ring and
        :class:`ValueError` for frames that can never fit.
        """
        need = HEADER_BYTES + len(payload)
        if need > self.capacity:
            raise ValueError(
                f"frame of {need} bytes exceeds ring capacity {self.capacity}"
            )
        if self.closed:
            raise RingClosed(f"ring {self.name} is closed")
        write = self._load(_WRITE_OFFSET)
        if self.capacity - (write - self._load(_READ_OFFSET)) < need:
            return False
        header = _HEADER.pack(MAGIC, self._next_seq & 0xFFFFFFFF, len(payload), kind)
        self._put(write, header)
        if len(payload):
            self._put(write + HEADER_BYTES, payload)
        # Publish only after the full frame is in place.
        self._store(_WRITE_OFFSET, write + need)
        self._next_seq += 1
        return True

    def write(self, payload, kind: int = KIND_DATA,
              timeout: Optional[float] = None) -> None:
        """Blocking :meth:`try_write` with backpressure spin-wait."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        spins = 0
        while not self.try_write(payload, kind):
            if deadline is not None and time.perf_counter() >= deadline:
                raise RingFull(
                    f"ring {self.name} full for {timeout:.3f}s "
                    f"({self.pending()} bytes pending)"
                )
            spins += 1
            time.sleep(0 if spins < _BACKOFF_FAST else _BACKOFF_SLEEP)

    # -- read side ------------------------------------------------------
    def try_read(self) -> Optional[Tuple[int, bytes]]:
        """Consume one frame if available; never blocks.

        Returns ``(kind, payload)``, or ``None`` when the ring is empty.
        Raises :class:`RingClosed` once the ring is closed *and* drained,
        and :class:`RingCorruption` on framing damage.
        """
        read = self._load(_READ_OFFSET)
        if self._load(_WRITE_OFFSET) == read:
            if self.closed:
                raise RingClosed(f"ring {self.name} is closed and drained")
            return None
        header = self._get(read, HEADER_BYTES)
        magic, seq, length, kind = _HEADER.unpack(header)
        if magic != MAGIC:
            raise RingCorruption(
                f"ring {self.name}: bad frame magic 0x{magic:08x} at {read}"
            )
        if length > self.capacity - HEADER_BYTES:
            raise RingCorruption(
                f"ring {self.name}: frame length {length} exceeds capacity"
            )
        if seq != self._expected_seq & 0xFFFFFFFF:
            raise RingCorruption(
                f"ring {self.name}: sequence gap (expected "
                f"{self._expected_seq & 0xFFFFFFFF}, got {seq})"
            )
        payload = self._get(read + HEADER_BYTES, length)
        # Publish consumption only after the payload has been copied out.
        self._store(_READ_OFFSET, read + HEADER_BYTES + length)
        self._expected_seq += 1
        return kind, payload

    def read(self, timeout: Optional[float] = None) -> Tuple[int, bytes]:
        """Blocking :meth:`try_read`; raises :class:`RingEmpty` on timeout."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        spins = 0
        while True:
            frame = self.try_read()
            if frame is not None:
                return frame
            if deadline is not None and time.perf_counter() >= deadline:
                raise RingEmpty(f"ring {self.name} empty for {timeout:.3f}s")
            spins += 1
            time.sleep(0 if spins < _BACKOFF_FAST else _BACKOFF_SLEEP)

    # -- zero-copy read side --------------------------------------------
    def _peek_header(self, read: int) -> Tuple[int, int]:
        """Validate the frame header at ``read``; returns (kind, length)."""
        header = self._get(read, HEADER_BYTES)
        magic, seq, length, kind = _HEADER.unpack(header)
        if magic != MAGIC:
            raise RingCorruption(
                f"ring {self.name}: bad frame magic 0x{magic:08x} at {read}"
            )
        if length > self.capacity - HEADER_BYTES:
            raise RingCorruption(
                f"ring {self.name}: frame length {length} exceeds capacity"
            )
        if seq != self._expected_seq & 0xFFFFFFFF:
            raise RingCorruption(
                f"ring {self.name}: sequence gap (expected "
                f"{self._expected_seq & 0xFFFFFFFF}, got {seq})"
            )
        return kind, length

    @contextlib.contextmanager
    def read_view(self, timeout: Optional[float] = None) -> Iterator[Tuple[int, object]]:
        """Zero-copy blocking read: yield ``(kind, payload)`` without
        copying the payload out of the ring first.

        When the frame lies contiguously in the data region (the common
        case — frames only wrap when a write straddles the physical end
        of the region), ``payload`` is a :class:`memoryview` directly
        into the shared-memory segment; when the frame wraps it falls
        back to the copied-``bytes`` path. Consumption is published only
        when the ``with`` block exits cleanly, so the writer cannot
        overwrite the viewed bytes while the caller is parsing them —
        which also means the caller MUST copy out anything it keeps
        beyond the block.

        Raises :class:`RingEmpty` on timeout, :class:`RingClosed` once
        closed and drained, :class:`RingCorruption` on framing damage.
        """
        deadline = None if timeout is None else time.perf_counter() + timeout
        spins = 0
        while True:
            read = self._load(_READ_OFFSET)
            if self._load(_WRITE_OFFSET) != read:
                break
            if self.closed:
                raise RingClosed(f"ring {self.name} is closed and drained")
            if deadline is not None and time.perf_counter() >= deadline:
                raise RingEmpty(f"ring {self.name} empty for {timeout:.3f}s")
            spins += 1
            time.sleep(0 if spins < _BACKOFF_FAST else _BACKOFF_SLEEP)
        kind, length = self._peek_header(read)
        pos = (read + HEADER_BYTES) % self.capacity
        view: Optional[memoryview] = None
        if pos + length <= self.capacity:
            view = self._data[pos:pos + length]
            payload: object = view
        else:  # wrapped frame: fall back to the copying path
            payload = self._get(read + HEADER_BYTES, length)
        try:
            yield kind, payload
        finally:
            if view is not None:
                view.release()
        # Publish consumption only after the caller is done with the view.
        self._store(_READ_OFFSET, read + HEADER_BYTES + length)
        self._expected_seq += 1

    # -- lifecycle ------------------------------------------------------
    def release(self) -> None:
        """Drop this process's mapping (and unlink if it is the owner)."""
        if self._released:
            return
        self._released = True
        self._finalizer()  # release view + unlink (owner) + close, once

    # Owner-side alias used by the daemon teardown for clarity.
    unlink = release

    def __enter__(self) -> "ShmRing":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        self.release()


def _finalize_segment(shm, data_view, owner_pid: Optional[int]) -> None:
    """Release the data view, unlink (owner process only), then close.

    The view is released first so ``close`` does not trip over an
    exported pointer. Unlink precedes close: it removes the ``/dev/shm``
    name (what the soak test checks for) and cannot fail on exported
    buffers, while ``close`` may still raise :class:`BufferError` if
    *other* slices are alive during interpreter shutdown — in which case
    the mapping dies with the process anyway. ``owner_pid`` is ``None``
    for attach-side rings, which must never unlink.
    """
    try:
        data_view.release()
    except BufferError:  # pragma: no cover - another exported sub-view
        pass
    if owner_pid is not None and os.getpid() == owner_pid:
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass
    try:
        shm.close()
    except (BufferError, OSError):
        pass
