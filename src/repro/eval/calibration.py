"""Score calibration and detector ensembling.

Anomaly scores from different detectors live on incompatible scales
(reconstruction errors, energies, probabilities). These utilities make
them comparable and combinable:

- :func:`rank_normalize` — map scores to their normalized ranks in [0, 1];
- :func:`unify_scores` — rank-average ensemble over several detectors;
- :class:`BinnedCalibrator` — monotone binned calibration of scores into
  target-anomaly probabilities using a labeled calibration split (a simple
  isotonic-style estimator with guaranteed monotonicity).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def rank_normalize(scores: np.ndarray) -> np.ndarray:
    """Normalized ranks in [0, 1]; ties get their average rank."""
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if len(scores) == 0:
        raise ValueError("empty scores")
    if len(scores) == 1:
        return np.array([0.5])
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores))
    ranks[order] = np.arange(len(scores), dtype=np.float64)
    # Average ranks over ties.
    sorted_scores = scores[order]
    start = 0
    for i in range(1, len(scores) + 1):
        if i == len(scores) or sorted_scores[i] != sorted_scores[start]:
            mean_rank = (start + i - 1) / 2.0
            ranks[order[start:i]] = mean_rank
            start = i
    return ranks / (len(scores) - 1)


def unify_scores(score_lists: Sequence[np.ndarray],
                 weights: Optional[Sequence[float]] = None) -> np.ndarray:
    """Rank-average ensemble of several detectors' scores.

    Each score vector is rank-normalized, then combined by a (weighted)
    mean — the standard scale-free way to ensemble heterogeneous anomaly
    detectors.
    """
    score_lists = [np.asarray(s, dtype=np.float64).ravel() for s in score_lists]
    if not score_lists:
        raise ValueError("need at least one score vector")
    length = len(score_lists[0])
    if any(len(s) != length for s in score_lists):
        raise ValueError("all score vectors must have equal length")
    if weights is None:
        weights = np.ones(len(score_lists))
    weights = np.asarray(weights, dtype=np.float64)
    if len(weights) != len(score_lists) or weights.sum() <= 0:
        raise ValueError("weights must match the score vectors and sum > 0")
    weights = weights / weights.sum()
    combined = np.zeros(length)
    for w, scores in zip(weights, score_lists):
        combined += w * rank_normalize(scores)
    return combined


class BinnedCalibrator:
    """Monotone binned probability calibration.

    Fits on (scores, binary labels): partitions the score range into
    equal-frequency bins, computes the positive rate per bin, then enforces
    monotonicity with a pool-adjacent-violators pass. ``predict_proba``
    interpolates between bin centers.
    """

    def __init__(self, n_bins: int = 10):
        if n_bins < 2:
            raise ValueError("n_bins must be >= 2")
        self.n_bins = n_bins
        self.bin_centers_: Optional[np.ndarray] = None
        self.bin_probs_: Optional[np.ndarray] = None

    def fit(self, scores: np.ndarray, y_true: np.ndarray) -> "BinnedCalibrator":
        scores = np.asarray(scores, dtype=np.float64).ravel()
        y_true = np.asarray(y_true, dtype=np.float64).ravel()
        if scores.shape != y_true.shape:
            raise ValueError("scores and y_true must have the same shape")
        if len(scores) < self.n_bins:
            raise ValueError("need at least n_bins calibration points")

        order = np.argsort(scores)
        splits = np.array_split(order, self.n_bins)
        centers, probs, sizes = [], [], []
        for idx in splits:
            if len(idx) == 0:
                continue
            centers.append(scores[idx].mean())
            probs.append(y_true[idx].mean())
            sizes.append(len(idx))
        centers = np.asarray(centers)
        probs = np.asarray(probs)
        sizes = np.asarray(sizes, dtype=np.float64)

        # Pool adjacent violators: enforce non-decreasing bin probabilities.
        probs = probs.copy()
        i = 0
        while i < len(probs) - 1:
            if probs[i] > probs[i + 1] + 1e-12:
                pooled = (probs[i] * sizes[i] + probs[i + 1] * sizes[i + 1]) / (
                    sizes[i] + sizes[i + 1]
                )
                probs[i] = probs[i + 1] = pooled
                sizes[i] = sizes[i + 1] = sizes[i] + sizes[i + 1]
                i = max(i - 1, 0)
            else:
                i += 1

        self.bin_centers_ = centers
        self.bin_probs_ = probs
        return self

    def predict_proba(self, scores: np.ndarray) -> np.ndarray:
        """Calibrated P(target anomaly) per score."""
        if self.bin_centers_ is None:
            raise RuntimeError("calibrator is not fitted; call fit() first")
        scores = np.asarray(scores, dtype=np.float64).ravel()
        return np.interp(scores, self.bin_centers_, self.bin_probs_)
