"""Multi-seed evaluation protocol (Section IV-C of the paper).

Each (dataset, detector) pair is run over independent seeds — a fresh
split draw and a fresh detector initialization per seed, as the paper's
"average values obtained from 5 independent runs" — and AUPRC/AUROC on the
test split are aggregated to mean ± std.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data import load_dataset
from repro.eval.registry import make_detector
from repro.metrics import auprc, auroc


@dataclass
class EvalResult:
    """Aggregated metrics for one (dataset, detector) pair."""

    dataset: str
    detector: str
    auprc_values: List[float] = field(default_factory=list)
    auroc_values: List[float] = field(default_factory=list)

    @property
    def auprc_mean(self) -> float:
        return float(np.mean(self.auprc_values))

    @property
    def auprc_std(self) -> float:
        return float(np.std(self.auprc_values))

    @property
    def auroc_mean(self) -> float:
        return float(np.mean(self.auroc_values))

    @property
    def auroc_std(self) -> float:
        return float(np.std(self.auroc_values))


def fit_on_split(detector, split, epoch_callback=None):
    """Fit any registry detector on a :class:`DatasetSplit` uniformly.

    TargAD and the baselines share the ``fit(X_unlabeled, X_labeled,
    y_labeled, epoch_callback=...)`` signature by design, so this is a thin
    convenience wrapper.
    """
    return detector.fit(
        split.X_unlabeled, split.X_labeled, split.y_labeled, epoch_callback=epoch_callback
    )


def evaluate_detector(
    detector_name: str,
    dataset: str,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    scale: Optional[float] = None,
    split_kwargs: Optional[Dict] = None,
    detector_kwargs: Optional[Dict] = None,
) -> EvalResult:
    """Run one detector over several seeds of one dataset.

    Parameters
    ----------
    detector_name:
        Registry name (see :data:`~repro.eval.registry.DETECTOR_NAMES`).
    dataset:
        Dataset registry name.
    seeds:
        One independent run per seed (split resample + re-init).
    scale, split_kwargs:
        Forwarded to :func:`repro.data.load_dataset`.
    detector_kwargs:
        Forwarded to the detector factory.
    """
    result = EvalResult(dataset=dataset, detector=detector_name)
    split_kwargs = dict(split_kwargs or {})
    if scale is not None:
        split_kwargs["scale"] = scale
    for seed in seeds:
        split = load_dataset(dataset, random_state=seed, **split_kwargs)
        detector = make_detector(
            detector_name, random_state=seed, dataset=dataset, **(detector_kwargs or {})
        )
        fit_on_split(detector, split)
        scores = detector.decision_function(split.X_test)
        result.auprc_values.append(auprc(split.y_test_binary, scores))
        result.auroc_values.append(auroc(split.y_test_binary, scores))
    return result


def run_comparison(
    detectors: Sequence[str],
    datasets: Sequence[str],
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    scale: Optional[float] = None,
    split_kwargs: Optional[Dict] = None,
) -> List[EvalResult]:
    """Full cartesian comparison (the Table II experiment)."""
    results = []
    for dataset in datasets:
        for detector_name in detectors:
            results.append(
                evaluate_detector(
                    detector_name, dataset, seeds=seeds, scale=scale, split_kwargs=split_kwargs
                )
            )
    return results
