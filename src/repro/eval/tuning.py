"""Validation-based hyperparameter search.

The paper selects TargAD's trade-off parameters "based on the model's
performance on a separate validation set" (Section IV-C). This module
implements that protocol as a reusable grid search over
:class:`~repro.core.TargADConfig` fields (or any detector factory).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core import TargAD, TargADConfig
from repro.data.schema import DatasetSplit
from repro.metrics import auprc


@dataclass
class TuningResult:
    """Grid-search outcome."""

    best_params: Dict
    best_score: float
    trials: List[Dict] = field(default_factory=list)

    def top(self, n: int = 5) -> List[Dict]:
        """The n best trials by validation score."""
        return sorted(self.trials, key=lambda t: -t["score"])[:n]


def expand_grid(param_grid: Dict[str, Sequence]) -> List[Dict]:
    """Cartesian product of a parameter grid (sklearn-style)."""
    if not param_grid:
        raise ValueError("param_grid must be non-empty")
    keys = list(param_grid)
    combos = itertools.product(*(param_grid[k] for k in keys))
    return [dict(zip(keys, values)) for values in combos]


def grid_search(
    split: DatasetSplit,
    param_grid: Dict[str, Sequence],
    base_config: Optional[TargADConfig] = None,
    metric: Callable[[np.ndarray, np.ndarray], float] = auprc,
    detector_factory: Optional[Callable[[Dict], object]] = None,
    verbose: bool = False,
) -> TuningResult:
    """Exhaustive search over TargAD hyperparameters on the validation split.

    Parameters
    ----------
    split:
        Preprocessed dataset split; fitting uses the training side, scoring
        the validation side (the test split is never touched).
    param_grid:
        Mapping of :class:`TargADConfig` field -> candidate values.
    base_config:
        Config whose non-searched fields are kept (default: defaults).
    metric:
        Validation metric (higher = better).
    detector_factory:
        Override to tune something other than TargAD: called with the
        parameter dict, must return a fitted-API detector.
    """
    base = base_config if base_config is not None else TargADConfig()
    trials: List[Dict] = []
    best_score, best_params = -np.inf, None

    for params in expand_grid(param_grid):
        if detector_factory is not None:
            model = detector_factory(params)
        else:
            config_kwargs = {**base.__dict__, **params}
            model = TargAD(TargADConfig(**config_kwargs))
        model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
        score = float(metric(split.y_val_binary, model.decision_function(split.X_val)))
        trials.append({"params": params, "score": score})
        if verbose:
            print(f"  {params} -> {score:.3f}")
        if score > best_score:
            best_score, best_params = score, params

    return TuningResult(best_params=best_params, best_score=best_score, trials=trials)
