"""Score-distribution analysis.

Shared diagnostics the benchmarks and examples compute inline: per-kind
score statistics, the composition of the top of the ranking (the "review
queue"), and per-family breakdowns — the quantities that explain *why* a
detector's AUPRC is what it is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.data.schema import KIND_NAMES


@dataclass(frozen=True)
class ScoreStats:
    """Summary statistics of one group's scores."""

    count: int
    mean: float
    std: float
    p10: float
    median: float
    p90: float

    @staticmethod
    def of(scores: np.ndarray) -> "ScoreStats":
        scores = np.asarray(scores, dtype=np.float64)
        if len(scores) == 0:
            raise ValueError("empty score group")
        return ScoreStats(
            count=len(scores),
            mean=float(scores.mean()),
            std=float(scores.std()),
            p10=float(np.quantile(scores, 0.1)),
            median=float(np.median(scores)),
            p90=float(np.quantile(scores, 0.9)),
        )


def score_stats_by_kind(scores: np.ndarray, kinds: np.ndarray) -> Dict[str, ScoreStats]:
    """Per-kind (normal / target / non-target) score statistics."""
    scores = np.asarray(scores, dtype=np.float64)
    kinds = np.asarray(kinds)
    if scores.shape != kinds.shape:
        raise ValueError("scores and kinds must have the same shape")
    out = {}
    for code, name in KIND_NAMES.items():
        mask = kinds == code
        if mask.any():
            out[name] = ScoreStats.of(scores[mask])
    return out


def queue_composition(
    scores: np.ndarray,
    kinds: np.ndarray,
    depth: int,
    families: Optional[Sequence] = None,
) -> Dict:
    """Composition of the top-``depth`` ranked instances.

    Returns counts by kind (and by family when given) plus the precision
    for target anomalies — what an analyst reviewing the queue experiences.
    """
    scores = np.asarray(scores, dtype=np.float64)
    kinds = np.asarray(kinds)
    if not 1 <= depth <= len(scores):
        raise ValueError(f"depth must be in [1, {len(scores)}]")
    top = np.argsort(-scores, kind="mergesort")[:depth]
    by_kind = {name: int((kinds[top] == code).sum()) for code, name in KIND_NAMES.items()}
    result: Dict = {
        "depth": depth,
        "by_kind": by_kind,
        "target_precision": by_kind["target"] / depth,
    }
    if families is not None:
        families = np.asarray(families, dtype=object)
        counts: Dict[str, int] = {}
        for fam in families[top]:
            counts[fam] = counts.get(fam, 0) + 1
        result["by_family"] = dict(sorted(counts.items(), key=lambda kv: -kv[1]))
    return result


def separation_ratio(scores: np.ndarray, kinds: np.ndarray) -> Dict[str, float]:
    """Mean-score ratios between the three kinds (the paper's core effect).

    ``target_vs_nontarget`` > 1 means the detector prioritizes targets over
    non-target anomalies — the property TargAD optimizes and generic
    detectors lack.
    """
    stats = score_stats_by_kind(scores, kinds)
    eps = 1e-12
    out = {}
    if "target" in stats and "normal" in stats:
        out["target_vs_normal"] = stats["target"].mean / (stats["normal"].mean + eps)
    if "target" in stats and "non-target" in stats:
        out["target_vs_nontarget"] = stats["target"].mean / (stats["non-target"].mean + eps)
    if "non-target" in stats and "normal" in stats:
        out["nontarget_vs_normal"] = stats["non-target"].mean / (stats["normal"].mean + eps)
    return out
