"""Evaluation: registry, multi-seed protocol, tables, thresholds, calibration."""

from repro.eval.analysis import (
    ScoreStats,
    queue_composition,
    score_stats_by_kind,
    separation_ratio,
)
from repro.eval.calibration import BinnedCalibrator, rank_normalize, unify_scores
from repro.eval.protocol import EvalResult, evaluate_detector, run_comparison
from repro.eval.registry import DETECTOR_NAMES, EXTRA_DETECTOR_NAMES, make_detector
from repro.eval.results import ResultTable, format_mean_std
from repro.eval.thresholds import best_f1_threshold, budget_threshold, recall_threshold

__all__ = [
    "BinnedCalibrator",
    "DETECTOR_NAMES",
    "EXTRA_DETECTOR_NAMES",
    "EvalResult",
    "ResultTable",
    "ScoreStats",
    "best_f1_threshold",
    "budget_threshold",
    "evaluate_detector",
    "format_mean_std",
    "make_detector",
    "queue_composition",
    "rank_normalize",
    "recall_threshold",
    "run_comparison",
    "score_stats_by_kind",
    "separation_ratio",
    "unify_scores",
]
