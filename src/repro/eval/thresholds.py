"""Decision-threshold selection for deployment.

AUPRC/AUROC evaluate rankings; an operating system needs a cutoff. These
utilities pick one from a labeled calibration set (typically the
validation split) under different operating policies:

- :func:`best_f1_threshold` — maximize F1 of the positive class;
- :func:`recall_threshold` — loosest cutoff achieving a target recall
  (catch-rate guarantees for high-risk anomalies);
- :func:`budget_threshold` — tightest cutoff flagging at most ``budget``
  instances (a fixed analyst review capacity).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.metrics.ranking import precision_recall_curve


def best_f1_threshold(y_true: np.ndarray, scores: np.ndarray) -> Tuple[float, float]:
    """Threshold maximizing F1; returns ``(threshold, f1)``.

    Predictions are ``score >= threshold``.
    """
    precision, recall, thresholds = precision_recall_curve(y_true, scores)
    # Drop the appended (P=1, R=0) anchor which has no threshold.
    precision = precision[:-1]
    recall = recall[:-1]
    denom = precision + recall
    f1 = np.where(denom > 0, 2 * precision * recall / np.where(denom > 0, denom, 1.0), 0.0)
    best = int(np.argmax(f1))
    return float(thresholds[best]), float(f1[best])


def recall_threshold(y_true: np.ndarray, scores: np.ndarray, target_recall: float) -> float:
    """Loosest threshold with recall >= ``target_recall``.

    Raises ``ValueError`` if the target is not reachable (i.e. > 1).
    """
    if not 0.0 < target_recall <= 1.0:
        raise ValueError("target_recall must be in (0, 1]")
    precision, recall, thresholds = precision_recall_curve(y_true, scores)
    recall = recall[:-1]
    feasible = np.flatnonzero(recall >= target_recall)
    if len(feasible) == 0:
        raise ValueError(f"recall {target_recall} not achievable")
    # Curve is ordered by decreasing threshold; take the *highest* threshold
    # (earliest index) that already reaches the target.
    return float(thresholds[feasible[0]])


def budget_threshold(scores: np.ndarray, budget: int) -> float:
    """Tightest threshold flagging at most ``budget`` instances."""
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if not 1 <= budget <= len(scores):
        raise ValueError(f"budget must be in [1, {len(scores)}]")
    order = np.sort(scores)[::-1]
    return float(order[budget - 1])
