"""Name-based detector factory used by the benchmark harness.

Instantiates TargAD and all eleven baselines with the hyperparameters used
throughout the experiments. ``dataset_overrides`` carries the few
dataset-specific settings (e.g. the known number of normal behaviour
groups for TargAD's ``k``, which the paper selects via the elbow method on
its real data; our synthetic analog's inertia curve is too smooth for a
reliable elbow, see DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines import (
    ADOA,
    DPLAN,
    ECOD,
    BaseDetector,
    DeepSAD,
    DeepSVDD,
    DevNet,
    DualMGAN,
    FEAWAD,
    IsolationForest,
    KNNDetector,
    LocalOutlierFactor,
    PIAWAL,
    PReNet,
    PUMAD,
    REPEN,
)
from repro.core import TargAD, TargADConfig

# The number of normal behaviour groups in each synthetic population
# (used as TargAD's k; see module docstring).
DATASET_K: Dict[str, int] = {
    "unsw_nb15": 4,
    "kddcup99": 3,
    "nsl_kdd": 3,
    "sqb": 4,
}

# The paper's Table II lineup.
DETECTOR_NAMES = [
    "iForest",
    "REPEN",
    "ADOA",
    "FEAWAD",
    "PUMAD",
    "DevNet",
    "DeepSAD",
    "DPLAN",
    "PIA-WAL",
    "Dual-MGAN",
    "PReNet",
    "TargAD",
]

# Additional detectors from the paper's related work (not in Table II).
EXTRA_DETECTOR_NAMES = ["LOF", "ECOD", "DeepSVDD", "kNN"]


def make_detector(
    name: str,
    random_state: Optional[int] = None,
    dataset: Optional[str] = None,
    **overrides,
):
    """Instantiate a detector by its Table II name.

    Parameters
    ----------
    name:
        One of :data:`DETECTOR_NAMES`.
    random_state:
        Seed forwarded to the detector.
    dataset:
        Optional dataset name; used to set dataset-specific defaults
        (TargAD's ``k``).
    overrides:
        Extra constructor keyword arguments.
    """
    factories = {
        "iForest": lambda: IsolationForest(random_state=random_state, **overrides),
        "REPEN": lambda: REPEN(random_state=random_state, **overrides),
        "ADOA": lambda: ADOA(random_state=random_state, **overrides),
        "FEAWAD": lambda: FEAWAD(random_state=random_state, **overrides),
        "PUMAD": lambda: PUMAD(random_state=random_state, **overrides),
        "DevNet": lambda: DevNet(random_state=random_state, **overrides),
        "DeepSAD": lambda: DeepSAD(random_state=random_state, **overrides),
        "DPLAN": lambda: DPLAN(random_state=random_state, **overrides),
        "PIA-WAL": lambda: PIAWAL(random_state=random_state, **overrides),
        "Dual-MGAN": lambda: DualMGAN(random_state=random_state, **overrides),
        "PReNet": lambda: PReNet(random_state=random_state, **overrides),
        "LOF": lambda: LocalOutlierFactor(random_state=random_state, **overrides),
        "ECOD": lambda: ECOD(random_state=random_state, **overrides),
        "DeepSVDD": lambda: DeepSVDD(random_state=random_state, **overrides),
        "kNN": lambda: KNNDetector(random_state=random_state, **overrides),
    }
    if name == "TargAD":
        kwargs = dict(overrides)
        if "k" not in kwargs and dataset is not None:
            kwargs["k"] = DATASET_K.get(dataset)
        return TargAD(TargADConfig(random_state=random_state, **kwargs))
    if name not in factories:
        choices = DETECTOR_NAMES + EXTRA_DETECTOR_NAMES
        raise KeyError(f"unknown detector {name!r}; choices: {choices}")
    return factories[name]()
