"""Result-table formatting for benchmark output."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_mean_std(mean: float, std: float, digits: int = 3) -> str:
    """Render ``0.804±0.001`` in the paper's Table II style."""
    return f"{mean:.{digits}f}±{std:.{digits}f}"


class ResultTable:
    """A simple fixed-width text table with row/column labels.

    Used by the benchmark harness to print paper-style tables next to the
    paper's reference numbers.
    """

    def __init__(self, title: str, columns: Sequence[str], row_header: str = "Model"):
        self.title = title
        self.columns = list(columns)
        self.row_header = row_header
        self._rows: List[tuple] = []

    def add_row(self, label: str, values: Dict[str, str]) -> None:
        """Add a row; missing columns render as '-'."""
        self._rows.append((label, [str(values.get(col, "-")) for col in self.columns]))

    def render(self) -> str:
        header = [self.row_header, *self.columns]
        table_rows = [[label, *vals] for label, vals in self._rows]
        widths = [
            max(len(str(row[i])) for row in [header, *table_rows]) for i in range(len(header))
        ]

        def fmt(row):
            return "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))

        sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
        lines = [self.title, sep, fmt(header), sep]
        lines.extend(fmt(row) for row in table_rows)
        lines.append(sep)
        return "\n".join(lines)

    def print(self) -> None:
        print("\n" + self.render() + "\n")
