"""Command-line interface for the TargAD reproduction.

Subcommands::

    repro info      [--dataset NAME]            # dataset statistics
    repro train     --dataset NAME [...]        # fit TargAD, report, save
    repro evaluate  --model PATH --dataset NAME # score a saved model
    repro compare   --dataset NAME [...]        # mini Table II
    repro telemetry --dataset NAME [...]        # profile fit+serve, dashboard
    repro resilience --model PATH --dataset NAME [...]  # chaos replay
    repro taxonomy  [--grid smoke|full] [...]   # cross-family robustness sweep
    repro serve-bench --dataset NAME [...]      # executor latency-under-load replay
    repro lifecycle --dataset NAME [...]        # drift-triggered refit + hot-swap replay

Serving commands select the execution path with the same ``executor=``
presets as :class:`repro.serving.ScoringPipeline` (``inline``,
``sharded``, ``daemon``, ``striped_daemon``) plus the striping /
adaptive micro-batching knobs, rather than raw constructor flags.

Every command is deterministic under ``--seed``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core import TargAD, TargADConfig, load_model, save_model
from repro.data import DATASET_NAMES, load_dataset
from repro.eval import DETECTOR_NAMES, ResultTable, evaluate_detector, format_mean_std
from repro.eval.registry import EXTRA_DETECTOR_NAMES
from repro.metrics import auprc, auroc, classification_report, precision_at_k


def _add_split_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", required=True, choices=DATASET_NAMES)
    parser.add_argument("--scale", type=float, default=None,
                        help="split size multiplier (Table I = 1.0; default REPRO_SCALE)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--contamination", type=float, default=None)


def _load_split(args):
    kwargs = {}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if getattr(args, "contamination", None) is not None:
        kwargs["contamination"] = args.contamination
    return load_dataset(args.dataset, random_state=args.seed, **kwargs)


def cmd_info(args) -> int:
    names = [args.dataset] if args.dataset else DATASET_NAMES
    for name in names:
        split = load_dataset(name, random_state=args.seed,
                             **({"scale": args.scale} if args.scale else {}))
        print(json.dumps(split.summary(), indent=2))
    return 0


def cmd_train(args) -> int:
    split = _load_split(args)
    print(f"Training TargAD on {args.dataset} "
          f"(n_unlabeled={len(split.X_unlabeled)}, m={split.n_target_classes})...")
    config = TargADConfig(
        k=args.k, alpha=args.alpha, random_state=args.seed,
        lambda1=args.lambda1, lambda2=args.lambda2,
    )
    model = TargAD(config)
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)

    for label, X, y in (
        ("validation", split.X_val, split.y_val_binary),
        ("test", split.X_test, split.y_test_binary),
    ):
        scores = model.decision_function(X)
        print(f"  {label:10s} AUPRC={auprc(y, scores):.3f} AUROC={auroc(y, scores):.3f} "
              f"P@50={precision_at_k(y, scores, min(50, len(y))):.3f}")

    if args.output:
        save_model(model, args.output)
        print(f"Model saved to {args.output}")
    return 0


def cmd_evaluate(args) -> int:
    model = load_model(args.model)
    split = _load_split(args)
    scores = model.decision_function(split.X_test)
    y = split.y_test_binary
    print(f"AUPRC={auprc(y, scores):.3f} AUROC={auroc(y, scores):.3f}")

    tri = model.predict_triclass(split.X_test, strategy=args.strategy)
    report = classification_report(split.test_kind, tri, labels=[0, 1, 2])
    rows = {0: "normal", 1: "target", 2: "non-target",
            "macro avg": "macro avg", "weighted avg": "weighted avg"}
    table = ResultTable(f"Tri-class report ({args.strategy.upper()})",
                        columns=["precision", "recall", "f1"], row_header="class")
    for key, label in rows.items():
        table.add_row(label, {m: f"{report[key][m]:.3f}" for m in table.columns})
    table.print()
    return 0


def cmd_compare(args) -> int:
    detectors = args.detectors.split(",") if args.detectors else DETECTOR_NAMES
    unknown = set(detectors) - set(DETECTOR_NAMES) - set(EXTRA_DETECTOR_NAMES)
    if unknown:
        print(f"unknown detectors: {sorted(unknown)}; choices: {DETECTOR_NAMES}",
              file=sys.stderr)
        return 2
    seeds = list(range(args.n_seeds))
    table = ResultTable(
        f"Comparison on {args.dataset} ({args.n_seeds} seeds)",
        columns=["AUPRC", "AUROC"],
    )
    for name in detectors:
        result = evaluate_detector(name, args.dataset, seeds=seeds,
                                   scale=args.scale)
        table.add_row(name, {
            "AUPRC": format_mean_std(result.auprc_mean, result.auprc_std),
            "AUROC": format_mean_std(result.auroc_mean, result.auroc_std),
        })
    table.print()
    return 0


def cmd_telemetry(args) -> int:
    """Profile one fit + serve cycle and print the telemetry dashboard."""
    from repro.backend import use_backend

    with use_backend(args.backend):
        return _telemetry_under_backend(args)


def _telemetry_under_backend(args) -> int:
    import numpy as np

    from repro.obs import TelemetryRegistry, dump_json, render_dashboard
    from repro.serving import ScoringPipeline

    split = _load_split(args)
    registry = TelemetryRegistry()
    print(f"Profiling TargAD on {args.dataset} "
          f"(n_unlabeled={len(split.X_unlabeled)}, seed={args.seed})...")
    model = TargAD(TargADConfig(k=args.k, alpha=args.alpha, random_state=args.seed),
                   telemetry=registry)
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)

    pipe = ScoringPipeline(model, policy="f1", telemetry=registry)
    pipe.calibrate(split.X_val, split.y_val_binary, X_reference=split.X_unlabeled)
    for chunk in np.array_split(np.arange(len(split.X_test)), max(args.batches, 1)):
        if len(chunk):
            pipe.process(split.X_test[chunk])

    print(render_dashboard(registry, title=f"repro telemetry — {args.dataset}"))
    if args.json:
        path = dump_json(registry, args.json, dataset=args.dataset, seed=args.seed)
        print(f"Telemetry snapshot written to {path}")
    return 0


def cmd_resilience(args) -> int:
    """Replay a fault plan against a saved model and watch the breaker."""
    import numpy as np

    from repro.core import ModelLoadError
    from repro.obs import TelemetryRegistry, dump_json
    from repro.resilience import CircuitBreaker, FaultPlan, FaultyModel, ManualClock, corrupt_rows
    from repro.serving import ScoringPipeline

    try:
        model = load_model(args.model)
    except ModelLoadError as exc:
        print(f"cannot load model {args.model}: {exc}", file=sys.stderr)
        return 2

    if args.plan:
        with open(args.plan) as fh:
            plan = FaultPlan.from_dict(json.load(fh))
    else:
        plan = FaultPlan(raise_on=(2, 3), nan_fraction=0.3, nan_on=(5,),
                         seed=args.seed)
    print(f"Fault plan: {plan.describe()}")

    split = _load_split(args)
    registry = TelemetryRegistry()
    clock = ManualClock()
    breaker = CircuitBreaker(
        failure_threshold=args.failure_threshold,
        cooldown=args.cooldown,
        clock=clock,
        telemetry=registry,
    )
    pipe = ScoringPipeline(
        model, policy="budget",
        review_budget=min(args.review_budget, len(split.X_val)),
        circuit_breaker=breaker, telemetry=registry, monitor_drift=False,
    )
    pipe.calibrate(split.X_val)
    # Swap the chaos wrapper in only after calibration so the plan's
    # 1-based call indices count *serving* batches, not the calibration pass.
    pipe.model = FaultyModel(model, plan, sleep=lambda s: None, telemetry=registry)

    rng = np.random.default_rng(args.seed)
    chunks = [c for c in np.array_split(np.arange(len(split.X_test)),
                                        max(args.batches, 1)) if len(c)]
    for i, chunk in enumerate(chunks):
        X = split.X_test[chunk]
        if args.corrupt_rows > 0:
            X = corrupt_rows(X, args.corrupt_rows, rng)
        batch = pipe.process(X)
        print(f"batch {i:2d} [breaker {breaker.state:>9s}] {batch.summary()}")
        clock.advance(args.advance)

    snap = breaker.snapshot()
    print(f"\nbreaker: state={snap['state']} "
          f"consecutive_failures={snap['consecutive_failures']}"
          f"/{snap['failure_threshold']} cooldown={snap['cooldown']:g}s")
    resilience_counters = {
        name: value for name, value in sorted(registry.counters.items())
        if name.startswith("resilience.")
    }
    for name, value in resilience_counters.items():
        print(f"  {name} = {value:g}")
    transitions = [e for e in registry.events
                   if e.name.startswith("resilience.breaker.")
                   and e.name != "resilience.breaker.state"]
    if transitions:
        print("breaker transitions:")
        for event in transitions:
            print("  " + event.format_line())
    if args.json:
        path = dump_json(registry, args.json, dataset=args.dataset, seed=args.seed)
        print(f"Telemetry snapshot written to {path}")
    return 0


def cmd_taxonomy(args) -> int:
    """Sweep detectors across the anomaly-taxonomy scenario grid."""
    from pathlib import Path

    from repro.data.taxonomy import INJECTOR_NAMES
    from repro.experiments.report import taxonomy_section, write_taxonomy_report
    from repro.experiments.taxonomy_sweep import grid_families, taxonomy_sweep
    from repro.obs import TelemetryRegistry, render_dashboard

    detectors = args.detectors.split(",") if args.detectors else DETECTOR_NAMES
    unknown = set(detectors) - set(DETECTOR_NAMES) - set(EXTRA_DETECTOR_NAMES)
    if unknown:
        print(f"unknown detectors: {sorted(unknown)}; choices: {DETECTOR_NAMES}",
              file=sys.stderr)
        return 2
    families = args.families.split(",") if args.families else list(grid_families(args.grid))
    unknown = set(families) - set(INJECTOR_NAMES)
    if unknown:
        print(f"unknown taxonomy families: {sorted(unknown)}; "
              f"choices: {INJECTOR_NAMES}", file=sys.stderr)
        return 2
    seeds = [args.seed + i for i in range(args.n_seeds)]

    registry = TelemetryRegistry()
    print(f"Taxonomy sweep on {args.dataset}: families {', '.join(families)} · "
          f"{len(detectors)} detector(s) · {len(seeds)} seed(s) · scale {args.scale}")
    result = taxonomy_sweep(
        args.dataset, detectors, families=families, seeds=seeds,
        scale=args.scale, telemetry=registry,
    )
    print()
    print(taxonomy_section(result))
    if args.json:
        Path(args.json).write_text(result.to_json() + "\n")
        print(f"JSON results written to {args.json}")
    if args.markdown:
        path = write_taxonomy_report(result, args.markdown)
        print(f"Markdown report written to {path}")
    if args.telemetry:
        print(render_dashboard(registry, title=f"repro taxonomy — {args.dataset}"))
    return 0


def _parse_batch_mix(text: str):
    """Parse ``"16:0.5,64:0.35,256:0.15"`` into ``((16, 0.5), ...)``."""
    entries = []
    for part in text.split(","):
        rows, _, weight = part.partition(":")
        entries.append((int(rows), float(weight) if weight else 1.0))
    return tuple(entries)


def cmd_serve_bench(args) -> int:
    """Replay open-loop traffic against the serving daemon vs single-process."""
    from repro.backend import use_backend

    with use_backend(args.backend):
        return _serve_bench_under_backend(args)


def _serve_bench_under_backend(args) -> int:
    import numpy as np

    from repro.serving.daemon import ServingDaemon
    from repro.serving.replay import ReplaySpec, build_schedule, replay_daemon, replay_sync
    from repro.serving.sharding import build_scoring_spec

    spec = ReplaySpec(
        name=args.dataset, rate_rps=args.rate, n_requests=args.requests,
        batch_mix=_parse_batch_mix(args.batch_mix), seed=args.seed,
    )
    split = _load_split(args)
    print(f"Fitting TargAD on {args.dataset} "
          f"(n_unlabeled={len(split.X_unlabeled)}, seed={args.seed})...")
    model = TargAD(TargADConfig(k=args.k, alpha=args.alpha, random_state=args.seed))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)
    X_pool = np.asarray(split.X_test, dtype=np.float64)
    schedule = build_schedule(spec, len(X_pool))
    n_rows = sum(len(r.rows) for r in schedule)
    print(f"Replaying {spec.n_requests} requests ({n_rows} rows) at "
          f"{spec.rate_rps:g} req/s offered, batch mix {args.batch_mix} ...")

    model.score_batch(X_pool[: min(64, len(X_pool))], strategy=args.strategy)
    single = replay_sync(spec, schedule, X_pool,
                         lambda X: model.score_batch(X, strategy=args.strategy))
    print("  " + single.summary())

    from repro.obs import TelemetryRegistry

    registry = TelemetryRegistry()
    if args.executor == "striped_daemon":
        from repro.serving.executor import StripedDaemonExecutor

        executor = StripedDaemonExecutor(
            lambda: build_scoring_spec(model, args.strategy),
            n_workers=args.workers, stripe_min_rows=args.stripe_min_rows,
            adaptive_batch=args.adaptive_batch,
            min_batch_rows=args.min_batch_rows, telemetry=registry,
        )
        try:
            # Warm with a striping-sized batch so every worker compiles
            # its plan before the clock starts.
            executor.score(X_pool[: min(2 * args.stripe_min_rows, len(X_pool))])
            result = replay_daemon(spec, schedule, X_pool, executor,
                                   mode="striped_daemon")
            slo = executor.daemon.slo_snapshot()
        finally:
            executor.close()
    else:
        scoring_spec = build_scoring_spec(model, args.strategy)
        with ServingDaemon(scoring_spec, n_workers=args.workers,
                           adaptive_batch=args.adaptive_batch,
                           min_batch_rows=args.min_batch_rows,
                           telemetry=registry) as daemon:
            daemon.score(X_pool[: min(64, len(X_pool))])
            result = replay_daemon(spec, schedule, X_pool, daemon)
            slo = daemon.slo_snapshot()
    print("  " + result.summary())
    speedup = (result.rows_per_sec / single.rows_per_sec
               if single.rows_per_sec else 0.0)
    print(f"  daemon vs single: {speedup:.2f}x throughput, "
          f"{single.percentile_ms(99) / max(result.percentile_ms(99), 1e-9):.2f}x p99")
    print(f"  daemon SLO gauges: p50={slo['p50_ms']:.2f}ms "
          f"p95={slo['p95_ms']:.2f}ms p99={slo['p99_ms']:.2f}ms "
          f"({slo['requests']:g} requests in {slo['dispatches']:g} dispatches, "
          f"{slo['coalesced']:g} coalesced)")
    if args.json:
        payload = {
            "workload": spec.name,
            "executor": args.executor,
            "backend": args.backend,
            "single": single.to_dict(),
            "daemon": result.to_dict(),
            "daemon_speedup_vs_single": round(speedup, 2),
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"Replay results written to {args.json}")
    return 0


def cmd_lifecycle(args) -> int:
    """Replay a drift scenario through the continual-learning loop."""
    import numpy as np

    from repro.data.schema import KIND_TARGET
    from repro.lifecycle import (
        DriftPolicy, LifecycleManager, drift_replay, make_split_oracle,
        shift_regime,
    )
    from repro.obs import TelemetryRegistry, render_dashboard
    from repro.serving import ScoringPipeline

    split = _load_split(args)
    print(f"Fitting TargAD on {args.dataset} "
          f"(n_unlabeled={len(split.X_unlabeled)}, seed={args.seed})...")
    model = TargAD(TargADConfig(k=args.k, alpha=args.alpha,
                                random_state=args.seed))
    model.fit(split.X_unlabeled, split.X_labeled, split.y_labeled)

    registry = TelemetryRegistry()
    pipe = ScoringPipeline(model, policy="f1", telemetry=registry,
                           drift_threshold=args.drift_threshold,
                           executor=args.executor)
    pipe.calibrate(split.X_val, split.y_val_binary,
                   X_reference=split.X_unlabeled)

    # Shifted regime: traffic, an eval slice, and the oracle's answer key
    # all come from the same seeded covariate shift of the test split.
    X_shifted = shift_regime(split.X_test, shift=args.shift, seed=args.seed)
    half = len(X_shifted) // 2
    X_drift, X_eval = X_shifted[:half], X_shifted[half:]
    y_all = np.where(split.test_kind == KIND_TARGET, 1, 0)
    oracle = make_split_oracle(X_drift, y_all[:half])

    manager = LifecycleManager(
        pipe, split.X_unlabeled, split.X_labeled, split.y_labeled,
        split.X_val, split.y_val_binary, oracle=oracle,
        policy=DriftPolicy(
            confirm_checks=args.confirm_checks,
            cooldown_batches=args.cooldown,
            label_budget=args.label_budget,
            refit_epochs=args.refit_epochs,
            min_auprc_ratio=args.min_auprc_ratio,
        ),
        checkpoint_dir=args.checkpoint_dir,
        telemetry=registry, seed=args.seed,
    )
    print(f"Replaying warm + shifted traffic (shift={args.shift:g}, "
          f"batches of {args.batch_rows} rows)...")
    result = drift_replay(
        manager, split.X_val, X_drift, X_eval, y_all[half:],
        batch_rows=args.batch_rows, progress=print,
    )

    print("\nRecovery report:")
    d = result.to_dict()
    print(f"  batches to detection:   {d['batches_to_detection']}")
    print(f"  detection -> swap:      "
          + (f"{d['detection_to_swap_seconds']:.2f}s"
             if d["detection_to_swap_seconds"] is not None else "n/a"))
    print(f"  AUPRC before drift:     {d['auprc_before_drift']:.3f}")
    print(f"  AUPRC at detection:     {d['auprc_at_detection']:.3f}")
    print(f"  AUPRC after recovery:   {d['auprc_final']:.3f}")
    print(f"  swaps / rollbacks:      {d['swaps']} / {d['rollbacks']}")
    print(f"  recovered:              {d['recovered']}")
    report = manager.report()
    print(f"  labels queried / found: {report['labels_queried']} / "
          f"{report['labels_found']}")
    for event in report["events"]:
        print(f"  event: {event}")
    if args.telemetry:
        print(render_dashboard(registry, title=f"repro lifecycle — {args.dataset}"))
    if args.json:
        payload = {"dataset": args.dataset, "seed": args.seed,
                   "replay": d, "report": report}
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"Lifecycle results written to {args.json}")
    pipe.close()  # tears down any daemon/shard workers the preset built
    return 0


def cmd_report(args) -> int:
    from repro.experiments import generate_report

    path = generate_report(
        args.output,
        datasets=tuple(args.datasets.split(",")),
        detectors=tuple(args.detectors.split(",")),
        seeds=tuple(range(args.n_seeds)),
        scale=args.scale,
    )
    print(f"Report written to {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="print dataset statistics")
    p_info.add_argument("--dataset", choices=DATASET_NAMES)
    p_info.add_argument("--scale", type=float, default=None)
    p_info.add_argument("--seed", type=int, default=0)
    p_info.set_defaults(func=cmd_info)

    p_train = sub.add_parser("train", help="fit TargAD and report metrics")
    _add_split_args(p_train)
    p_train.add_argument("--k", type=int, default=None, help="clusters (default: elbow)")
    p_train.add_argument("--alpha", type=float, default=0.05)
    p_train.add_argument("--lambda1", type=float, default=0.1)
    p_train.add_argument("--lambda2", type=float, default=1.0)
    p_train.add_argument("--output", help="save the fitted model (.npz)")
    p_train.set_defaults(func=cmd_train)

    p_eval = sub.add_parser("evaluate", help="evaluate a saved model")
    _add_split_args(p_eval)
    p_eval.add_argument("--model", required=True)
    p_eval.add_argument("--strategy", default="ed", choices=["msp", "es", "ed"])
    p_eval.set_defaults(func=cmd_evaluate)

    p_cmp = sub.add_parser("compare", help="compare detectors (mini Table II)")
    _add_split_args(p_cmp)
    p_cmp.add_argument("--detectors", help="comma-separated registry names (default: all)")
    p_cmp.add_argument("--n-seeds", type=int, default=3)
    p_cmp.set_defaults(func=cmd_compare)

    p_tel = sub.add_parser(
        "telemetry",
        help="profile a fit + serve cycle and print the telemetry dashboard",
    )
    _add_split_args(p_tel)
    p_tel.add_argument("--k", type=int, default=None, help="clusters (default: elbow)")
    p_tel.add_argument("--alpha", type=float, default=0.05)
    p_tel.add_argument("--batches", type=int, default=4,
                       help="serving batches the test split is processed in")
    p_tel.add_argument("--json", help="also dump the telemetry snapshot as JSON")
    p_tel.add_argument("--backend", default="numpy",
                       help="execution backend to profile under "
                       "(a repro.backend registry name, e.g. 'tiled')")
    p_tel.set_defaults(func=cmd_telemetry)

    p_res = sub.add_parser(
        "resilience",
        help="replay a fault plan against a saved model and watch the breaker",
    )
    _add_split_args(p_res)
    p_res.add_argument("--model", required=True, help="saved model (.npz)")
    p_res.add_argument("--plan", help="JSON fault-plan file (default: a built-in "
                       "raise-twice-then-NaN scenario)")
    p_res.add_argument("--batches", type=int, default=8,
                       help="serving batches the test split is processed in")
    p_res.add_argument("--corrupt-rows", type=float, default=0.0,
                       help="fraction of each batch's rows NaN-corrupted "
                       "(exercises the quarantine path)")
    p_res.add_argument("--failure-threshold", type=int, default=2,
                       help="consecutive faults that trip the breaker")
    p_res.add_argument("--cooldown", type=float, default=30.0,
                       help="seconds the breaker stays open (simulated clock)")
    p_res.add_argument("--advance", type=float, default=15.0,
                       help="simulated seconds between batches")
    p_res.add_argument("--review-budget", type=int, default=25)
    p_res.add_argument("--json", help="also dump the telemetry snapshot as JSON")
    p_res.set_defaults(func=cmd_resilience)

    p_tax = sub.add_parser(
        "taxonomy",
        help="sweep detectors across the anomaly-taxonomy scenario grid",
    )
    p_tax.add_argument("--dataset", default="kddcup99", choices=DATASET_NAMES)
    p_tax.add_argument("--grid", default="smoke", choices=["smoke", "full"],
                       help="predefined injector-family grid (default: smoke)")
    p_tax.add_argument("--families",
                       help="comma-separated injector families overriding --grid")
    p_tax.add_argument("--detectors",
                       help="comma-separated registry names (default: all Table II)")
    p_tax.add_argument("--seed", type=int, default=0)
    p_tax.add_argument("--n-seeds", type=int, default=1)
    p_tax.add_argument("--scale", type=float, default=0.02,
                       help="split size multiplier (default 0.02: smoke-sized)")
    p_tax.add_argument("--json", help="write the results table as canonical JSON")
    p_tax.add_argument("--markdown", help="write a standalone markdown report")
    p_tax.add_argument("--telemetry", action="store_true",
                       help="print the sweep's telemetry dashboard")
    p_tax.set_defaults(func=cmd_taxonomy)

    p_srv = sub.add_parser(
        "serve-bench",
        help="replay open-loop traffic against a daemon executor "
        "(ScoringPipeline executor= presets 'daemon'/'striped_daemon')",
    )
    _add_split_args(p_srv)
    p_srv.add_argument("--k", type=int, default=None, help="clusters (default: elbow)")
    p_srv.add_argument("--alpha", type=float, default=0.05)
    p_srv.add_argument("--strategy", default="ed", choices=["msp", "es", "ed"])
    p_srv.add_argument("--rate", type=float, default=500.0,
                       help="offered request rate (Poisson arrivals, req/s)")
    p_srv.add_argument("--requests", type=int, default=400,
                       help="number of requests to replay")
    p_srv.add_argument("--batch-mix", default="16:0.5,64:0.35,256:0.15",
                       help="rows:weight pairs, comma-separated")
    p_srv.add_argument("--executor", default="daemon",
                       choices=["daemon", "striped_daemon"],
                       help="execution path to replay against: the plain "
                       "always-on daemon, or the striped executor that "
                       "splits large batches across idle workers "
                       "(matches ScoringPipeline's executor= presets)")
    p_srv.add_argument("--workers", type=int, default=1,
                       help="daemon worker processes (striping needs >= 2)")
    p_srv.add_argument("--stripe-min-rows", type=int, default=1024,
                       help="smallest batch the striped executor splits")
    p_srv.add_argument("--adaptive-batch", action="store_true",
                       help="tune the coalescing ceiling from queue depth "
                       "instead of a fixed max batch")
    p_srv.add_argument("--min-batch-rows", type=int, default=64,
                       help="adaptive micro-batching floor (rows)")
    p_srv.add_argument("--json", help="write the replay results as JSON")
    p_srv.add_argument("--backend", default="numpy",
                       help="execution backend for scoring, parent and "
                       "workers alike (a repro.backend registry name, "
                       "e.g. 'tiled')")
    p_srv.set_defaults(func=cmd_serve_bench)

    p_lc = sub.add_parser(
        "lifecycle",
        help="replay a drift scenario through the continual-learning loop",
    )
    _add_split_args(p_lc)
    p_lc.add_argument("--k", type=int, default=None, help="clusters (default: elbow)")
    p_lc.add_argument("--alpha", type=float, default=0.05)
    p_lc.add_argument("--executor", default="inline",
                      choices=["inline", "sharded", "daemon", "striped_daemon"],
                      help="ScoringPipeline executor= preset the drift "
                      "scenario serves through (hot swaps push the new "
                      "generation to whichever path is live)")
    p_lc.add_argument("--shift", type=float, default=4.0,
                      help="covariate shift applied to half the features")
    p_lc.add_argument("--batch-rows", type=int, default=64,
                      help="rows per served batch")
    p_lc.add_argument("--drift-threshold", type=float, default=0.3,
                      help="per-feature KS threshold for the drift monitor")
    p_lc.add_argument("--confirm-checks", type=int, default=2,
                      help="consecutive drifted batches that confirm drift")
    p_lc.add_argument("--cooldown", type=int, default=10,
                      help="batches ignored after a swap or rollback")
    p_lc.add_argument("--label-budget", type=int, default=20,
                      help="oracle queries per refit cycle")
    p_lc.add_argument("--refit-epochs", type=int, default=5,
                      help="classifier epochs for the warm-started refit")
    p_lc.add_argument("--min-auprc-ratio", type=float, default=0.8,
                      help="validation gate: candidate AUPRC / live AUPRC floor")
    p_lc.add_argument("--checkpoint-dir",
                      help="checkpoint each refit cycle under this directory")
    p_lc.add_argument("--telemetry", action="store_true",
                      help="print the lifecycle telemetry dashboard")
    p_lc.add_argument("--json", help="write the replay results as JSON")
    p_lc.set_defaults(func=cmd_lifecycle)

    p_rep = sub.add_parser("report", help="write a markdown experiment report")
    p_rep.add_argument("--output", required=True, help="markdown file to write")
    p_rep.add_argument("--datasets", default="kddcup99",
                       help="comma-separated dataset names")
    p_rep.add_argument("--detectors", default="iForest,DevNet,TargAD")
    p_rep.add_argument("--n-seeds", type=int, default=1)
    p_rep.add_argument("--scale", type=float, default=0.03)
    p_rep.set_defaults(func=cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
