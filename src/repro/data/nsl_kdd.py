"""Synthetic analog of the NSL-KDD dataset (revised KDDCUP99).

Table I row: 41 features (35 numeric + two categorical columns of
cardinality 3), the same class designation as KDDCUP99 (*R2L*/*DoS* target,
*Probe* non-target); 200 labeled targets, 45,385 unlabeled at 5%
contamination.

NSL-KDD removes KDDCUP99's duplicate records, which makes the detection
problem measurably harder — encoded here by higher family difficulties, so
absolute AUPRC lands below the KDDCUP99 analog, as in the paper.
"""

from __future__ import annotations

from typing import Optional

from repro.data.schema import DatasetSplit
from repro.data.splits import TableISpec, build_split
from repro.data.synthetic import AnomalyFamilySpec, NormalGroupSpec, SyntheticTabularGenerator

TARGET_FAMILIES = ["R2L", "DoS"]
NONTARGET_FAMILIES = ["Probe"]

SPEC = TableISpec(
    name="NSL-KDD",
    n_labeled=200,
    n_unlabeled=45_385,
    val_counts=(10_743, 487, 366),
    test_counts=(13_492, 749, 629),
    contamination=0.05,
)

_POPULATION_SEED_OFFSET = 3003


def make_generator(random_state: Optional[int] = None) -> SyntheticTabularGenerator:
    """Build the fixed NSL-KDD-like population."""
    seed = None if random_state is None else random_state + _POPULATION_SEED_OFFSET
    normal_groups = [
        NormalGroupSpec("normal_http", weight=0.5, signature_size=9, offset_scale=1.0),
        NormalGroupSpec("normal_smtp", weight=0.3, signature_size=8, offset_scale=0.9),
        NormalGroupSpec("normal_other", weight=0.2, signature_size=7, offset_scale=1.1),
    ]
    anomaly_families = [
        AnomalyFamilySpec("R2L", is_target=True, n_affected=8, shift=3.4, scale=1.4,
                          difficulty=0.25, shared_shift=2.8, activation_rate=0.7),
        AnomalyFamilySpec("DoS", is_target=True, n_affected=11, shift=4.8, scale=1.7,
                          difficulty=0.1, shared_shift=3.4, activation_rate=0.75),
        AnomalyFamilySpec("Probe", is_target=False, n_affected=8, shift=3.2, scale=1.5,
                          difficulty=0.2, shared_shift=5.0, activation_rate=0.65),
    ]
    return SyntheticTabularGenerator(
        n_numeric=35,
        categorical_cardinalities=(3, 3),
        normal_groups=normal_groups,
        anomaly_families=anomaly_families,
        correlation_rank=4,
        shared_anomaly_dims=6,
        family_dim_pool=16,
        direction_agreement=0.9,
        random_state=seed,
    )


def load(random_state: Optional[int] = None, **kwargs) -> DatasetSplit:
    """Generate a preprocessed NSL-KDD-like split."""
    generator = make_generator(random_state)
    return build_split(generator, SPEC, random_state=random_state, **kwargs)
