"""Name-lookup error formatting shared by the data and taxonomy registries.

Every name-keyed registry in the package (:mod:`repro.data.registry`,
:mod:`repro.data.taxonomy`) raises the same shape of ``KeyError``: the
offending name, a "did you mean" suggestion when one is close enough
(via :mod:`difflib`), and the sorted list of valid choices.
"""

from __future__ import annotations

import difflib
from typing import Sequence


def unknown_name_message(kind: str, name: str, choices: Sequence[str]) -> str:
    """Build the error text for an unknown registry ``name``.

    ``kind`` is the noun for the message ("dataset", "injector",
    "taxonomy family", ...).
    """
    message = f"unknown {kind} {name!r}"
    close = difflib.get_close_matches(str(name), list(choices), n=1, cutoff=0.6)
    if close:
        message += f"; did you mean {close[0]!r}?"
    return f"{message} choices: {sorted(choices)}"


def unknown_name_error(kind: str, name: str, choices: Sequence[str]) -> KeyError:
    """``raise unknown_name_error("dataset", name, DATASET_NAMES)``."""
    return KeyError(unknown_name_message(kind, name, choices))
